package netdiag_test

import (
	"context"
	"io"
	"log/slog"
	"reflect"
	"testing"

	"netdiag"
)

// spanNames collects the distinct phase names of a span list.
func spanNames(spans []netdiag.Span) map[string]bool {
	out := map[string]bool{}
	for _, s := range spans {
		out[s.Name] = true
	}
	return out
}

// TestDiagnoseTelemetrySpans asserts an observed Diagnose call returns the
// per-phase span snapshot, and that attaching telemetry changes nothing
// about the hypothesis.
func TestDiagnoseTelemetrySpans(t *testing.T) {
	meas, routing := fig2Measurements(t)
	ctx := context.Background()

	plain, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
	).Diagnose(ctx, meas)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatalf("unobserved Diagnose populated Result.Telemetry: %v", plain.Telemetry)
	}

	reg := netdiag.NewTelemetry()
	observed, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
		netdiag.WithTelemetry(reg),
	).Diagnose(ctx, meas)
	if err != nil {
		t.Fatal(err)
	}
	names := spanNames(observed.Telemetry)
	for _, want := range []string{"validate", "expand", "build_sets", "candidates", "greedy"} {
		if !names[want] {
			t.Errorf("Result.Telemetry missing %q span (got %v)", want, observed.Telemetry)
		}
	}
	iters := 0
	for _, s := range observed.Telemetry {
		if s.Name == "greedy_iter" {
			iters++
			if s.Iteration < 1 {
				t.Errorf("greedy_iter span without iteration number: %+v", s)
			}
		}
	}
	if iters != observed.Iterations {
		t.Errorf("greedy_iter spans = %d, want %d (Result.Iterations)", iters, observed.Iterations)
	}

	observed.Telemetry = nil
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("telemetry changed the diagnosis:\nplain    %v\nobserved %v", plain, observed)
	}

	snap := reg.Snapshot()
	if snap.Counters["diagnose.runs"] != 1 {
		t.Errorf("diagnose.runs = %d, want 1", snap.Counters["diagnose.runs"])
	}
	if h, ok := snap.Histograms["diagnose.phase.greedy_ns"]; !ok || h.Count == 0 {
		t.Errorf("diagnose.phase.greedy_ns histogram missing or empty: %+v", h)
	}
}

// TestDiagnoseWithLogger asserts a logger alone also enables the span
// snapshot, and that logging goes through without disturbing the result.
func TestDiagnoseWithLogger(t *testing.T) {
	meas, _ := fig2Measurements(t)
	lg := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))

	plain, err := netdiag.NDEdge(meas)
	if err != nil {
		t.Fatal(err)
	}
	logged, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDEdgeAlgo),
		netdiag.WithLogger(lg),
	).Diagnose(context.Background(), meas)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged.Telemetry) == 0 {
		t.Fatal("WithLogger did not populate Result.Telemetry")
	}
	logged.Telemetry = nil
	if !reflect.DeepEqual(plain, logged) {
		t.Fatalf("logging changed the diagnosis:\nplain  %v\nlogged %v", plain, logged)
	}
}

// TestNetworkTelemetry asserts a simulated network wired with telemetry
// feeds the simulator-layer metrics: reconvergences, SPF cache activity,
// convergence-phase latencies, and probe-mesh counts.
func TestNetworkTelemetry(t *testing.T) {
	fig := netdiag.BuildFig2()
	reg := netdiag.NewTelemetry()
	net, err := netdiag.NewNetwork(fig.Topo,
		[]netdiag.ASN{fig.ASA, fig.ASB, fig.ASC},
		netdiag.WithNetworkTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	net.Mesh([]netdiag.RouterID{fig.S1, fig.S2, fig.S3})

	snap := reg.Snapshot()
	if snap.Counters["netsim.reconverges"] != 1 {
		t.Errorf("netsim.reconverges = %d, want 1", snap.Counters["netsim.reconverges"])
	}
	if snap.Counters["igp.spf_cache_hits"]+snap.Counters["igp.spf_cache_misses"] != 0 {
		t.Errorf("SPF cache counters moved without a cache attached")
	}
	for _, name := range []string{"netsim.phase.spf_ns", "netsim.phase.bgp_ns", "netsim.phase.mesh_ns"} {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("%s histogram missing or empty: %+v", name, h)
		}
	}
	if got := snap.Counters["probe.pairs_traced"]; got != 6 {
		t.Errorf("probe.pairs_traced = %d, want 6 (3 sensors, ordered pairs)", got)
	}
	if got := snap.Counters["probe.mesh_fills"]; got != 1 {
		t.Errorf("probe.mesh_fills = %d, want 1", got)
	}
	_ = net
}
