// Command topogen generates the paper's research-Internet evaluation
// topology (or the small Figure 1/2 example topologies) and dumps it as
// JSON or Graphviz DOT.
//
// Usage:
//
//	topogen [-kind research|fig1|fig2] [-seed S] [-format json|dot] [-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"netdiag/internal/netsim"
	"netdiag/internal/pool"
	"netdiag/internal/scenario"
	"netdiag/internal/topology"
)

func main() {
	var (
		kind   = flag.String("kind", "research", "topology: research, fig1, fig2")
		seed   = flag.Int64("seed", 2007, "generator seed (research only)")
		format = flag.String("format", "json", "output: json or dot")
		stats  = flag.Bool("stats", false, "print summary statistics instead of a dump")
		par    = flag.Int("parallelism", 1, "worker count for the -stats convergence check (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var topo *topology.Topology
	var origins []topology.ASN
	switch *kind {
	case "research":
		res, err := topology.GenerateResearch(topology.DefaultResearchConfig(*seed))
		if err != nil {
			fatal(err)
		}
		topo = res.Topo
		origins = res.Cores
	case "fig1":
		topo = topology.BuildFig1().Topo
		origins = topo.ASNumbers()
	case "fig2":
		topo = topology.BuildFig2().Topo
		origins = topo.ASNumbers()
	default:
		fatal(fmt.Errorf("unknown topology kind %q", *kind))
	}

	if *stats {
		kinds := map[topology.ASKind]int{}
		for _, asn := range topo.ASNumbers() {
			kinds[topo.AS(asn).Kind]++
		}
		intra, inter := 0, 0
		for _, l := range topo.Links() {
			if l.Kind == topology.Intra {
				intra++
			} else {
				inter++
			}
		}
		fmt.Printf("ASes: %d (%d core, %d tier-2, %d stub)\n",
			len(topo.ASNumbers()), kinds[topology.Core], kinds[topology.Tier2], kinds[topology.Stub])
		fmt.Printf("routers: %d\nlinks: %d (%d intra-AS, %d inter-AS)\n",
			topo.NumRouters(), topo.NumLinks(), intra, inter)
		// Sanity-check the generated topology actually converges: announce
		// one prefix per origin AS and time the IGP+BGP fixpoint. The
		// converged state is identical at any parallelism level.
		start := time.Now()
		if _, err := netsim.New(topo, origins, netsim.WithParallelism(*par)); err != nil {
			fatal(fmt.Errorf("convergence check failed: %w", err))
		}
		fmt.Printf("convergence check: %d origin prefixes converged in %v (%d workers)\n",
			len(origins), time.Since(start).Round(time.Millisecond), pool.Size(*par))
		return
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(scenario.DumpTopology(topo)); err != nil {
			fatal(err)
		}
	case "dot":
		if err := scenario.WriteDOT(os.Stdout, topo); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
