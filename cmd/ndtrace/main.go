// Command ndtrace explores the simulated research internetwork the way an
// operator would: place sensors, look at their traceroutes, inject
// failures, see what breaks or reroutes, and optionally export the episode
// as a scenario file for cmd/netdiagnoser or diagnose it on the spot.
//
// Usage:
//
//	ndtrace [-seed S] [-sensors N] [-fail X] [-misconfig] [-diagnose] [-export file.json]
//
// With no fault flags it prints the healthy full mesh. With -fail X it
// injects X simultaneous link failures (resampled until some sensor pair
// actually breaks); -misconfig injects a BGP export-filter
// misconfiguration instead.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"netdiag/internal/core"
	"netdiag/internal/experiment"
	"netdiag/internal/netsim"
	"netdiag/internal/scenario"
	"netdiag/internal/topology"
)

func main() {
	var (
		seed      = flag.Int64("seed", 2007, "simulation seed")
		sensors   = flag.Int("sensors", 6, "number of sensors at random stubs")
		failLinks = flag.Int("fail", 0, "inject this many simultaneous link failures")
		misconfig = flag.Bool("misconfig", false, "inject a BGP export-filter misconfiguration")
		diagnose  = flag.Bool("diagnose", false, "run ND-bgpigp on the episode and print the hypothesis")
		export    = flag.String("export", "", "write the episode as a scenario JSON file")
		par       = flag.Int("parallelism", 1, "worker count for convergence and mesh probing (0 = GOMAXPROCS); output is identical at any setting")
	)
	flag.Parse()

	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(*seed))
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	placed, _, err := experiment.PlaceSensors(res, experiment.PlaceRandomStubs, *sensors, rng)
	if err != nil {
		fatal(err)
	}
	env, err := experiment.NewEnv(res, placed, netsim.WithParallelism(*par))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("placed %d sensors; %d probed links; diagnosability %.2f\n",
		len(env.Sensors), len(env.PhysProbed), core.Diagnosability(env.Measurements().Before))
	for i, s := range env.Sensors {
		r := res.Topo.Router(s)
		fmt.Printf("  sensor %d: %s (%s, %s)\n", i, r.Name, r.Addr, res.Topo.AS(r.AS).Name)
	}

	if *failLinks == 0 && !*misconfig {
		fmt.Println("\nhealthy mesh:")
		for i := range env.BeforeMesh.Paths {
			for j, p := range env.BeforeMesh.Paths[i] {
				if i != j && i < j {
					fmt.Printf("  %d->%d: %s\n", i, j, p)
				}
			}
		}
		return
	}

	sample := func(rng *rand.Rand) (experiment.Fault, bool) {
		if *misconfig {
			return env.SampleMisconfig(rng)
		}
		return env.SampleLinkFault(rng, *failLinks)
	}
	asx := res.Cores[0]
	var td *experiment.TrialData
	for attempt := 0; attempt < 200; attempt++ {
		f, ok := sample(rng)
		if !ok {
			fatal(fmt.Errorf("no fault candidates for this placement"))
		}
		data, err := env.RunTrial(f, asx, nil, nil)
		if err == experiment.ErrNoImpact {
			continue
		}
		if err != nil {
			fatal(err)
		}
		td = data
		describeFault(res.Topo, f)
		break
	}
	if td == nil {
		fatal(fmt.Errorf("no impactful fault found in 200 attempts"))
	}

	fmt.Println("\nimpact:")
	for _, p := range td.Meas.After {
		if !p.OK {
			fmt.Printf("  %d->%d FAILS\n", p.SrcSensor, p.DstSensor)
		}
	}
	fmt.Printf("AS-X (%s) observed %d withdrawal(s), %d IGP link-down direction(s)\n",
		res.Topo.AS(asx).Name, len(td.Routing.Withdrawals), len(td.Routing.IGPDownLinks))

	if *diagnose {
		r, err := core.NDBgpIgp(td.Meas, td.Routing)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nND-bgpigp hypothesis:")
		for _, h := range r.Hypothesis {
			fmt.Printf("  %s -> %s (ASes %v)\n",
				core.Display(h.Link.From), core.Display(h.Link.To), h.ASes)
		}
		fmt.Printf("ground truth: %v\n", td.FailedLinks)
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := scenario.FromMeasurements(td.Meas, td.Routing).Write(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote scenario to %s (try: go run ./cmd/netdiagnoser -algo nd-bgpigp %s)\n",
			*export, *export)
	}
}

func describeFault(topo *topology.Topology, f experiment.Fault) {
	fmt.Println("\ninjected fault:")
	for _, id := range f.Links {
		l := topo.Link(id)
		fmt.Printf("  link down: %s -- %s\n", topo.Router(l.A).Name, topo.Router(l.B).Name)
	}
	for _, r := range f.Routers {
		fmt.Printf("  router down: %s\n", topo.Router(r).Name)
	}
	for _, flt := range f.Filters {
		fmt.Printf("  export filter: %s no longer announces %s to %s\n",
			topo.Router(flt.Router).Name, flt.Prefix, topo.Router(flt.Peer).Name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndtrace:", err)
	os.Exit(1)
}
