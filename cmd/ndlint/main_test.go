package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"netdiag/internal/lint"
)

func diag(file string, line int, analyzer, msg string) lint.Diagnostic {
	return lint.Diagnostic{File: file, Line: line, Col: 1, Analyzer: analyzer, Message: msg}
}

// TestBaselineRoundTrip writes a baseline through the same encoder the
// -update-baseline path uses, reads it back, and checks filtering keeps
// only findings outside it.
func TestBaselineRoundTrip(t *testing.T) {
	accepted := []lint.Diagnostic{
		diag("internal/server/flight.go", 10, "locksafe", "known finding"),
		diag("internal/igp/igp.go", 20, "hotalloc", "accepted alloc"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(f, lint.All(), accepted); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(accepted) {
		t.Fatalf("baseline has %d findings, want %d", len(base), len(accepted))
	}

	fresh := diag("internal/core/algorithms.go", 5, "goleak", "new finding")
	got := filterBaseline([]lint.Diagnostic{accepted[0], fresh, accepted[1]}, base)
	if len(got) != 1 || got[0] != fresh {
		t.Fatalf("filterBaseline = %v, want only the new finding", got)
	}

	// A baselined finding that no longer occurs does not resurface.
	if got := filterBaseline([]lint.Diagnostic{fresh}, base); len(got) != 1 || got[0] != fresh {
		t.Fatalf("filterBaseline with fixed baseline entries = %v", got)
	}
	if got := filterBaseline(accepted, base); got != nil {
		t.Fatalf("fully baselined run should filter to nothing, got %v", got)
	}
}

// TestBaselineRejectsGarbage checks a malformed baseline is a load
// error, not silently an empty baseline.
func TestBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

// TestWriteJSONEmptyFindings pins the empty-report shape the committed
// LINT_baseline.json uses: findings is [], never null.
func TestWriteJSONEmptyFindings(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, lint.All(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Fatalf("empty report should render findings as []:\n%s", buf.String())
	}
}
