// Command ndlint runs the project's static-analysis pass: the analyzers
// of internal/lint, which enforce the repo's determinism, context-flow,
// telemetry nil-safety, seeded-randomness, lock-discipline, span-balance,
// error-envelope, goroutine-lifetime and hotpath-allocation invariants at
// the source level on every build.
//
// Usage:
//
//	ndlint [-enable a,b] [-disable a,b] [-json] [-parallelism N]
//	       [-cache on|off] [-baseline FILE [-update-baseline]] [packages]
//
// Packages default to ./... relative to the enclosing module. Findings
// print as file:line:col: message [analyzer], sorted and deduplicated,
// byte-identically at any parallelism and with the cache on or off.
//
// The incremental cache (default on) persists per-package findings under
// <module>/.ndlint-cache keyed by a content hash of the package's
// sources, its module-local transitive imports, the analyzer set and the
// ndlint version; -cache=off forces a full cold run.
//
// With -baseline FILE, findings present in the baseline (a -json report,
// e.g. LINT_baseline.json) are accepted and only new findings print and
// fail the run; -update-baseline rewrites FILE with the current findings
// instead. Exit status: 0 when clean (including an empty package list),
// 1 when (non-baselined) findings exist, 2 on usage or load errors.
// Suppress a finding in place with //ndlint:ignore <analyzer> <reason>
// on or above the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netdiag/internal/lint"
)

func main() {
	var (
		enable   = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = flag.String("disable", "", "comma-separated analyzers to skip")
		jsonOut  = flag.Bool("json", false, "emit machine-readable findings (LINT_baseline.json style)")
		par      = flag.Int("parallelism", 0, "analysis worker count (0 = GOMAXPROCS); output is identical at any setting")
		list     = flag.Bool("list", false, "list analyzers and exit")
		cacheArg = flag.String("cache", "on", "incremental result cache under .ndlint-cache: on|off")
		baseline = flag.String("baseline", "", "baseline report (ndlint -json output); only findings not in it fail the run")
		updateBl = flag.Bool("update-baseline", false, "rewrite the -baseline file with the current findings and exit clean")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var cacheOn bool
	switch *cacheArg {
	case "on":
		cacheOn = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "ndlint: -cache must be on or off, got %q\n", *cacheArg)
		os.Exit(2)
	}
	if *updateBl && *baseline == "" {
		fmt.Fprintln(os.Stderr, "ndlint: -update-baseline requires -baseline FILE")
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, flag.Args(), lint.Config{
		Analyzers:   analyzers,
		Parallelism: *par,
		Cache:       cacheOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		os.Exit(2)
	}

	if *updateBl {
		f, err := os.Create(*baseline)
		if err == nil {
			err = writeJSON(f, analyzers, diags)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "ndlint: wrote %d finding(s) to %s\n", len(diags), *baseline)
		return
	}
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			os.Exit(2)
		}
		diags = filterBaseline(diags, base)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers applies -enable/-disable, validating every name.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	if names := split(enable); names != nil {
		return lint.ByName(names)
	}
	if names := split(disable); names != nil {
		skip, err := lint.ByName(names)
		if err != nil {
			return nil, err
		}
		skipped := map[string]bool{}
		for _, a := range skip {
			skipped[a.Name] = true
		}
		var out []*lint.Analyzer
		for _, a := range lint.All() {
			if !skipped[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	return lint.All(), nil
}

// report is the -json document: same machine-readable style as
// BENCH_pipeline.json, so CI can diff lint results across PRs. It is
// also the -baseline input format.
type report struct {
	Tool      string            `json:"tool"`
	Analyzers []string          `json:"analyzers"`
	Findings  []lint.Diagnostic `json:"findings"`
	Count     int               `json:"count"`
}

func writeJSON(w io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	r := report{Tool: "ndlint", Findings: diags, Count: len(diags)}
	if diags == nil {
		r.Findings = []lint.Diagnostic{}
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// readBaseline loads the accepted findings of a baseline report.
func readBaseline(path string) (map[lint.Diagnostic]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	base := make(map[lint.Diagnostic]bool, len(r.Findings))
	for _, d := range r.Findings {
		base[d] = true
	}
	return base, nil
}

// filterBaseline drops findings present in the baseline, keeping the
// relative order of the rest. Baselined findings that no longer occur
// are simply ignored: fixing an accepted finding never breaks the run.
func filterBaseline(diags []lint.Diagnostic, base map[lint.Diagnostic]bool) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		if !base[d] {
			out = append(out, d)
		}
	}
	return out
}
