// Command ndlint runs the project's static-analysis pass: the analyzers
// of internal/lint, which enforce the repo's determinism, context-flow,
// telemetry nil-safety and seeded-randomness invariants at the source
// level on every build.
//
// Usage:
//
//	ndlint [-enable a,b] [-disable a,b] [-json] [-parallelism N] [packages]
//
// Packages default to ./... relative to the enclosing module. Findings
// print as file:line:col: message [analyzer], sorted and deduplicated,
// byte-identically at any parallelism. Exit status: 0 when clean
// (including an empty package list), 1 when findings exist, 2 on usage
// or load errors. Suppress a finding in place with
// //ndlint:ignore <analyzer> <reason> on or above the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"netdiag/internal/lint"
)

func main() {
	var (
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		jsonOut = flag.Bool("json", false, "emit machine-readable findings (LINT_baseline.json style)")
		par     = flag.Int("parallelism", 0, "analysis worker count (0 = GOMAXPROCS); output is identical at any setting")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, flag.Args(), lint.Config{
		Analyzers:   analyzers,
		Parallelism: *par,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers applies -enable/-disable, validating every name.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	if names := split(enable); names != nil {
		return lint.ByName(names)
	}
	if names := split(disable); names != nil {
		skip, err := lint.ByName(names)
		if err != nil {
			return nil, err
		}
		skipped := map[string]bool{}
		for _, a := range skip {
			skipped[a.Name] = true
		}
		var out []*lint.Analyzer
		for _, a := range lint.All() {
			if !skipped[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	return lint.All(), nil
}

// report is the -json document: same machine-readable style as
// BENCH_pipeline.json, so CI can diff lint results across PRs.
type report struct {
	Tool      string            `json:"tool"`
	Analyzers []string          `json:"analyzers"`
	Findings  []lint.Diagnostic `json:"findings"`
	Count     int               `json:"count"`
}

func writeJSON(w *os.File, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	r := report{Tool: "ndlint", Findings: diags, Count: len(diags)}
	if diags == nil {
		r.Findings = []lint.Diagnostic{}
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
