package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

const streamOutput = `goos: linux
pkg: netdiag/internal/stream
BenchmarkIngestTraceroute 	       5	   5000000 ns/op	    200000 records/s
BenchmarkIngestBGP        	       5	   2000000 ns/op	     16000 records/s
BenchmarkEventLoop        	       5	   5500000 ns/op	         0.3333 dirty-pair-fraction	     40000 event-lag-ns
PASS
ok  	netdiag/internal/stream	0.1s
`

func TestParseStreamSection(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(streamOutput)))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stream
	if s == nil {
		t.Fatal("stream section missing")
	}
	if s.IngestTraceRecordsPerSec != 200000 || s.IngestBGPRecordsPerSec != 16000 {
		t.Fatalf("ingest throughput = %+v", s)
	}
	if s.EventLoopNsPerOp != 5500000 {
		t.Fatalf("event loop ns/op = %v, want 5500000", s.EventLoopNsPerOp)
	}
	if s.EventLagNs == nil || *s.EventLagNs != 40000 {
		t.Fatalf("event lag = %v, want 40000", s.EventLagNs)
	}
	if s.DirtyPairFraction == nil || *s.DirtyPairFraction != 0.3333 {
		t.Fatalf("dirty-pair fraction = %v, want 0.3333", s.DirtyPairFraction)
	}
}

func TestParseWithoutStreamBenchmarks(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(
		"BenchmarkIngestTraceroute 	 5	 5000000 ns/op	 200000 records/s\nok  	netdiag/internal/stream	0.1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stream != nil {
		t.Fatalf("stream section = %+v, want absent (no BGP counterpart)", rep.Stream)
	}
}

// TestCompareGatesDirtyPairFraction pins the delta-store pruning gate: a
// dirty-pair fraction that rises beyond the threshold fails the compare
// even when every individual benchmark stays inside the ns/op threshold.
func TestCompareGatesDirtyPairFraction(t *testing.T) {
	dir := t.TempDir()
	frac := func(v float64) *StreamSection {
		return &StreamSection{IngestTraceRecordsPerSec: 1, IngestBGPRecordsPerSec: 1, DirtyPairFraction: &v}
	}
	oldPath := writeReport(t, dir, "old.json", &Report{Stream: frac(0.33)})
	held := writeReport(t, dir, "held.json", &Report{Stream: frac(0.34)})
	var buf bytes.Buffer
	if regressed, err := runCompare(oldPath, held, 10, &buf); err != nil || regressed {
		t.Fatalf("held fraction counted as regression (err %v):\n%s", err, buf.String())
	}
	grown := writeReport(t, dir, "grown.json", &Report{Stream: frac(0.85)})
	buf.Reset()
	regressed, err := runCompare(oldPath, grown, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(buf.String(), "stream-dirty-pair-fraction") ||
		!strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("grown dirty-pair fraction not flagged:\n%s", buf.String())
	}
}
