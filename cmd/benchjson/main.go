// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so CI can diff benchmark runs without
// scraping free text. It reads the benchmark output on stdin and writes a
// JSON document to -o (default stdout):
//
//	go test -run xxx -bench . ./... | go run ./cmd/benchjson -o BENCH_pipeline.json
//
// Each entry carries the package (from the closing "ok <pkg> <time>" or
// "pkg:" lines), the benchmark name with its -N GOMAXPROCS suffix split
// off, iterations, ns/op, and the optional B/op and allocs/op columns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric columns (e.g. the server
	// benchmarks' "coalesce-hit-ratio") keyed by their unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// ServerSection summarizes the ndserve service benchmarks: what a warm
// snapshot saves over a cold convergence, and how much identical
// concurrent load the request coalescing absorbs.
type ServerSection struct {
	ColdNsPerOp      float64  `json:"cold_ns_per_op"`
	WarmNsPerOp      float64  `json:"warm_ns_per_op"`
	WarmSpeedup      float64  `json:"warm_speedup,omitempty"`
	CoalesceHitRatio *float64 `json:"coalesce_hit_ratio,omitempty"`
}

// IncrementalScenario pairs one reconvergence delta scenario's cold and
// incremental benchmark results: how much the warm-started, dirty-set-
// pruned path saves over a from-scratch reconvergence, and what fraction
// of the prefix set actually re-ran its fixpoint.
type IncrementalScenario struct {
	Scenario      string   `json:"scenario"`
	ColdNsPerOp   float64  `json:"cold_ns_per_op"`
	WarmNsPerOp   float64  `json:"warm_ns_per_op"`
	WarmSpeedup   float64  `json:"warm_speedup,omitempty"`
	DirtyFraction *float64 `json:"dirty_fraction,omitempty"`
}

// SnapshotScenario pairs one scenario's worker-start benchmarks: what
// loading a persisted snapshot saves over the cold SPF+BGP convergence a
// snapshot-less worker pays, plus the raw codec costs.
type SnapshotScenario struct {
	Scenario      string  `json:"scenario"`
	ColdNsPerOp   float64 `json:"cold_ns_per_op"`
	LoadNsPerOp   float64 `json:"load_ns_per_op"`
	LoadSpeedup   float64 `json:"load_speedup,omitempty"`
	EncodeNsPerOp float64 `json:"encode_ns_per_op,omitempty"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op,omitempty"`
}

// LintSection summarizes the ndlint incremental-cache benchmarks: what a
// warm, cache-hit run over the repository saves against the cold run
// that populated the cache, plus the findings count both report (the
// two must agree — the cache may only change speed, never output).
type LintSection struct {
	ColdNsPerOp float64  `json:"cold_ns_per_op"`
	WarmNsPerOp float64  `json:"warm_ns_per_op"`
	WarmSpeedup float64  `json:"warm_speedup,omitempty"`
	Findings    *float64 `json:"findings,omitempty"`
}

// StreamSection summarizes the streaming-plane benchmarks: NDJSON
// ingest throughput of both feed endpoints, the cost and latency of a
// full withdrawal -> correlation -> diagnosis cycle, and the fraction
// of mesh pairs a routing event actually re-probed (the delta store's
// pruning win — lower is better).
type StreamSection struct {
	IngestTraceRecordsPerSec float64  `json:"ingest_trace_records_per_sec"`
	IngestBGPRecordsPerSec   float64  `json:"ingest_bgp_records_per_sec"`
	EventLoopNsPerOp         float64  `json:"event_loop_ns_per_op,omitempty"`
	EventLagNs               *float64 `json:"event_lag_ns,omitempty"`
	DirtyPairFraction        *float64 `json:"dirty_pair_fraction,omitempty"`
}

// DiagnoseScenario pairs one sensor-count point of the diagnosis
// scalability series: the bitset engine against the map-based reference,
// end-to-end and on the greedy phase the bitset engine vectorizes. Points
// beyond the map engine's practical range (10k sensors) carry only the
// bitset side — MapNsPerOp and the speedups stay zero/omitted there.
type DiagnoseScenario struct {
	Sensors          string  `json:"sensors"`
	BitsetNsPerOp    float64 `json:"bitset_ns_per_op"`
	MapNsPerOp       float64 `json:"map_ns_per_op,omitempty"`
	Speedup          float64 `json:"speedup,omitempty"`
	GreedySpeedup    float64 `json:"greedy_speedup,omitempty"`
	SensorsPerSec    float64 `json:"sensors_per_sec,omitempty"`
	GreedyNsPerOp    float64 `json:"greedy_ns_per_op,omitempty"`
	MapGreedyNsPerOp float64 `json:"map_greedy_ns_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks  []Entry               `json:"benchmarks"`
	Server      *ServerSection        `json:"server,omitempty"`
	Incremental []IncrementalScenario `json:"incremental,omitempty"`
	Snapshot    []SnapshotScenario    `json:"snapshot,omitempty"`
	Lint        *LintSection          `json:"lint,omitempty"`
	Stream      *StreamSection        `json:"stream,omitempty"`
	Diagnose    []DiagnoseScenario    `json:"diagnose,omitempty"`
}

// serverSection derives the server summary from the parsed entries; it is
// nil when the server benchmarks are not part of the run.
func serverSection(entries []Entry) *ServerSection {
	var cold, warm *Entry
	var ratio *float64
	for i := range entries {
		e := &entries[i]
		switch e.Name {
		case "BenchmarkServerDiagnoseCold":
			cold = e
		case "BenchmarkServerDiagnoseWarm":
			warm = e
		case "BenchmarkServerCoalesce":
			if r, ok := e.Extra["coalesce-hit-ratio"]; ok {
				ratio = &r
			}
		}
	}
	if cold == nil || warm == nil {
		return nil
	}
	s := &ServerSection{ColdNsPerOp: cold.NsPerOp, WarmNsPerOp: warm.NsPerOp, CoalesceHitRatio: ratio}
	if warm.NsPerOp > 0 {
		s.WarmSpeedup = cold.NsPerOp / warm.NsPerOp
	}
	return s
}

// bestEntries collapses duplicate benchmark rows (same package, name and
// procs — e.g. a re-run appended at a higher -benchtime, as the bench
// target does for the Reconverge pairs) to the sample with the most
// iterations. First-appearance order is kept.
func bestEntries(entries []Entry) []*Entry {
	at := map[string]int{}
	var out []*Entry
	for i := range entries {
		e := &entries[i]
		k := benchKey(e)
		if j, ok := at[k]; ok {
			if e.Iterations > out[j].Iterations {
				out[j] = e
			}
			continue
		}
		at[k] = len(out)
		out = append(out, e)
	}
	return out
}

// incrementalSection pairs BenchmarkReconvergeCold/<scenario> entries with
// their BenchmarkReconvergeIncremental/<scenario> counterparts. Scenarios
// missing either side are dropped; the result is sorted by scenario name.
func incrementalSection(entries []Entry) []IncrementalScenario {
	cold := map[string]*Entry{}
	warm := map[string]*Entry{}
	for _, e := range bestEntries(entries) {
		if name, ok := strings.CutPrefix(e.Name, "BenchmarkReconvergeCold/"); ok {
			cold[name] = e
		} else if name, ok := strings.CutPrefix(e.Name, "BenchmarkReconvergeIncremental/"); ok {
			warm[name] = e
		}
	}
	names := make([]string, 0, len(cold))
	for name := range cold {
		if _, ok := warm[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []IncrementalScenario
	for _, name := range names {
		c, w := cold[name], warm[name]
		s := IncrementalScenario{Scenario: name, ColdNsPerOp: c.NsPerOp, WarmNsPerOp: w.NsPerOp}
		if w.NsPerOp > 0 {
			s.WarmSpeedup = c.NsPerOp / w.NsPerOp
		}
		if f, ok := w.Extra["dirty-fraction"]; ok {
			s.DirtyFraction = &f
		}
		out = append(out, s)
	}
	return out
}

// snapshotSection pairs BenchmarkWorkerStartCold/<scenario> entries with
// their BenchmarkWorkerStartLoad/<scenario> counterparts (plus the codec
// benchmarks when present). Scenarios missing either worker-start side
// are dropped; the result is sorted by scenario name.
func snapshotSection(entries []Entry) []SnapshotScenario {
	cold := map[string]*Entry{}
	load := map[string]*Entry{}
	encode := map[string]*Entry{}
	decode := map[string]*Entry{}
	for _, e := range bestEntries(entries) {
		if name, ok := strings.CutPrefix(e.Name, "BenchmarkWorkerStartCold/"); ok {
			cold[name] = e
		} else if name, ok := strings.CutPrefix(e.Name, "BenchmarkWorkerStartLoad/"); ok {
			load[name] = e
		} else if name, ok := strings.CutPrefix(e.Name, "BenchmarkSnapshotEncode/"); ok {
			encode[name] = e
		} else if name, ok := strings.CutPrefix(e.Name, "BenchmarkSnapshotDecode/"); ok {
			decode[name] = e
		}
	}
	names := make([]string, 0, len(cold))
	for name := range cold {
		if _, ok := load[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []SnapshotScenario
	for _, name := range names {
		c, l := cold[name], load[name]
		s := SnapshotScenario{Scenario: name, ColdNsPerOp: c.NsPerOp, LoadNsPerOp: l.NsPerOp}
		if l.NsPerOp > 0 {
			s.LoadSpeedup = c.NsPerOp / l.NsPerOp
		}
		if e, ok := encode[name]; ok {
			s.EncodeNsPerOp = e.NsPerOp
		}
		if d, ok := decode[name]; ok {
			s.DecodeNsPerOp = d.NsPerOp
		}
		out = append(out, s)
	}
	return out
}

// lintSection derives the lint summary from the BenchmarkLintCold and
// BenchmarkLintWarm entries; nil when either is absent. The findings
// metric comes from the warm entry (cold and warm must agree; the warm
// value is the one a cached CI run actually reports).
func lintSection(entries []Entry) *LintSection {
	var cold, warm *Entry
	for _, e := range bestEntries(entries) {
		switch e.Name {
		case "BenchmarkLintCold":
			cold = e
		case "BenchmarkLintWarm":
			warm = e
		}
	}
	if cold == nil || warm == nil {
		return nil
	}
	s := &LintSection{ColdNsPerOp: cold.NsPerOp, WarmNsPerOp: warm.NsPerOp}
	if warm.NsPerOp > 0 {
		s.WarmSpeedup = cold.NsPerOp / warm.NsPerOp
	}
	if f, ok := warm.Extra["findings"]; ok {
		s.Findings = &f
	}
	return s
}

// streamSection derives the streaming-plane summary from the
// BenchmarkIngestTraceroute / BenchmarkIngestBGP / BenchmarkEventLoop
// entries; nil when either ingest benchmark is absent.
func streamSection(entries []Entry) *StreamSection {
	var trace, bgp, loop *Entry
	for _, e := range bestEntries(entries) {
		switch e.Name {
		case "BenchmarkIngestTraceroute":
			trace = e
		case "BenchmarkIngestBGP":
			bgp = e
		case "BenchmarkEventLoop":
			loop = e
		}
	}
	if trace == nil || bgp == nil {
		return nil
	}
	s := &StreamSection{
		IngestTraceRecordsPerSec: trace.Extra["records/s"],
		IngestBGPRecordsPerSec:   bgp.Extra["records/s"],
	}
	if loop != nil {
		s.EventLoopNsPerOp = loop.NsPerOp
		if lag, ok := loop.Extra["event-lag-ns"]; ok {
			s.EventLagNs = &lag
		}
		if f, ok := loop.Extra["dirty-pair-fraction"]; ok {
			s.DirtyPairFraction = &f
		}
	}
	return s
}

// diagnoseSection pairs BenchmarkDiagnoseBitset/<sensors> entries with
// their BenchmarkDiagnoseMap/<sensors> counterparts into the scalability
// series. Bitset-only points (the map engine stops at 2k sensors) are
// kept — they are the curve's headline — so only the bitset side is
// required. Points are sorted by sensor count.
func diagnoseSection(entries []Entry) []DiagnoseScenario {
	bit := map[string]*Entry{}
	ref := map[string]*Entry{}
	for _, e := range bestEntries(entries) {
		if name, ok := strings.CutPrefix(e.Name, "BenchmarkDiagnoseBitset/"); ok {
			bit[name] = e
		} else if name, ok := strings.CutPrefix(e.Name, "BenchmarkDiagnoseMap/"); ok {
			ref[name] = e
		}
	}
	names := make([]string, 0, len(bit))
	for name := range bit {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, aerr := strconv.Atoi(names[i])
		b, berr := strconv.Atoi(names[j])
		if aerr == nil && berr == nil {
			return a < b
		}
		return names[i] < names[j]
	})
	var out []DiagnoseScenario
	for _, name := range names {
		be := bit[name]
		s := DiagnoseScenario{
			Sensors:       name,
			BitsetNsPerOp: be.NsPerOp,
			SensorsPerSec: be.Extra["sensors/s"],
			GreedyNsPerOp: be.Extra["greedy-ns/op"],
		}
		if me, ok := ref[name]; ok {
			s.MapNsPerOp = me.NsPerOp
			s.MapGreedyNsPerOp = me.Extra["greedy-ns/op"]
			if be.NsPerOp > 0 {
				s.Speedup = me.NsPerOp / be.NsPerOp
			}
			if s.GreedyNsPerOp > 0 && s.MapGreedyNsPerOp > 0 {
				s.GreedySpeedup = s.MapGreedyNsPerOp / s.GreedyNsPerOp
			}
		}
		out = append(out, s)
	}
	return out
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two reports: benchjson -compare [-threshold pct] old.json new.json")
	threshold := flag.Float64("threshold", 10, "ns/op regression threshold in percent for -compare")
	allocGuard := flag.String("allocguard", "", "assert 0 allocs/op for benchmarks matching this regex in the stdin bench output")
	flag.Parse()

	if *allocGuard != "" {
		rep, err := parse(bufio.NewScanner(os.Stdin))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		violations, err := runAllocGuard(rep, *allocGuard, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if violations > 0 {
			os.Exit(1)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Entry{}}
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	// Benchmark lines precede their package's closing "ok <pkg> <time>"
	// line, so entries are buffered per package and stamped on close.
	var pending []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			stamp(rep, &pending, pkg)
		case strings.HasPrefix(line, "ok "):
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				stamp(rep, &pending, fields[1])
			}
		case strings.HasPrefix(line, "Benchmark"):
			e, ok := parseBench(line)
			if ok {
				pending = append(pending, len(rep.Benchmarks))
				rep.Benchmarks = append(rep.Benchmarks, e)
			}
		}
	}
	rep.Server = serverSection(rep.Benchmarks)
	rep.Incremental = incrementalSection(rep.Benchmarks)
	rep.Snapshot = snapshotSection(rep.Benchmarks)
	rep.Lint = lintSection(rep.Benchmarks)
	rep.Stream = streamSection(rep.Benchmarks)
	rep.Diagnose = diagnoseSection(rep.Benchmarks)
	return rep, sc.Err()
}

// stamp assigns pkg to every pending entry and clears the buffer.
func stamp(rep *Report, pending *[]int, pkg string) {
	for _, i := range *pending {
		rep.Benchmarks[i].Package = pkg
	}
	*pending = (*pending)[:0]
}

// parseBench parses one "BenchmarkX-N  iters  ns/op [B/op allocs/op]" line.
func parseBench(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[2] != "ns/op" && !hasUnit(fields, "ns/op") {
		return Entry{}, false
	}
	var e Entry
	e.Name = fields[0]
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name, e.Procs = e.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.Iterations = iters
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Entry{}, false
			}
			e.NsPerOp = ns
			seen = true
		case "B/op":
			if b, err := strconv.ParseInt(val, 10, 64); err == nil {
				e.BytesPerOp = &b
			}
		case "allocs/op":
			if a, err := strconv.ParseInt(val, 10, 64); err == nil {
				e.AllocsPerOp = &a
			}
		default:
			// Custom b.ReportMetric columns, keyed by unit.
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[unit] = v
			}
		}
	}
	return e, seen
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
