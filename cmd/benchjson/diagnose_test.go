package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

const diagnoseOutput = `pkg: netdiag/internal/experiment
BenchmarkDiagnoseBitset/600      	      20	  70000000 ns/op	    550000 greedy-ns/op	      8500 sensors/s
BenchmarkDiagnoseBitset/10000    	       1	1900000000 ns/op	  74000000 greedy-ns/op	      5200 sensors/s
BenchmarkDiagnoseBitset/2000     	       5	 280000000 ns/op	   4800000 greedy-ns/op	      7000 sensors/s
BenchmarkDiagnoseMap/600         	       5	 200000000 ns/op	 148000000 greedy-ns/op	      3000 sensors/s
BenchmarkDiagnoseMap/2000        	       1	14000000000 ns/op	 13920000000 greedy-ns/op	       140 sensors/s
PASS
ok  	netdiag/internal/experiment	30.000s
`

func TestParseDiagnoseSection(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(diagnoseOutput)))
	if err != nil {
		t.Fatal(err)
	}
	diag := rep.Diagnose
	if len(diag) != 3 {
		t.Fatalf("diagnose section has %d points, want 3: %+v", len(diag), diag)
	}
	// Sorted by sensor count numerically, not lexically (10000 after 2000).
	if diag[0].Sensors != "600" || diag[1].Sensors != "2000" || diag[2].Sensors != "10000" {
		t.Fatalf("point order = %s, %s, %s", diag[0].Sensors, diag[1].Sensors, diag[2].Sensors)
	}
	p600 := diag[0]
	if p600.BitsetNsPerOp != 70000000 || p600.MapNsPerOp != 200000000 {
		t.Fatalf("600-sensor point = %+v", p600)
	}
	wantSpeedup := 200000000.0 / 70000000.0
	if diff := p600.Speedup - wantSpeedup; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("600-sensor speedup = %v, want %v", p600.Speedup, wantSpeedup)
	}
	wantGreedy := 148000000.0 / 550000.0
	if diff := p600.GreedySpeedup - wantGreedy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("600-sensor greedy speedup = %v, want %v", p600.GreedySpeedup, wantGreedy)
	}
	if p600.SensorsPerSec != 8500 || p600.GreedyNsPerOp != 550000 || p600.MapGreedyNsPerOp != 148000000 {
		t.Fatalf("600-sensor extras = %+v", p600)
	}
	// The 10k point is bitset-only: the map side and the ratios stay zero.
	p10k := diag[2]
	if p10k.BitsetNsPerOp != 1900000000 || p10k.SensorsPerSec != 5200 {
		t.Fatalf("10k point = %+v", p10k)
	}
	if p10k.MapNsPerOp != 0 || p10k.Speedup != 0 || p10k.GreedySpeedup != 0 {
		t.Fatalf("10k point invented a map side: %+v", p10k)
	}
}

func TestDiagnoseSectionAbsent(t *testing.T) {
	// A map-only run (no bitset counterpart) produces no section: the
	// bitset series is the one the curve is about.
	in := "BenchmarkDiagnoseMap/600 	 10	 90000 ns/op\nok  	netdiag/internal/experiment	0.020s\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagnose != nil {
		t.Fatalf("diagnose section = %+v, want absent", rep.Diagnose)
	}
}

// TestCompareGatesDiagnoseSpeedup pins the bitset-engine gate: an
// end-to-end speedup that collapses versus the committed report fails the
// compare even when every individual benchmark stays inside the ns/op
// threshold. Bitset-only points never trip the gate.
func TestCompareGatesDiagnoseSpeedup(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{
		Diagnose: []DiagnoseScenario{
			{Sensors: "2000", BitsetNsPerOp: 280000000, MapNsPerOp: 14000000000, Speedup: 50},
			{Sensors: "10000", BitsetNsPerOp: 1900000000},
		},
	})
	held := writeReport(t, dir, "held.json", &Report{
		Diagnose: []DiagnoseScenario{
			{Sensors: "2000", BitsetNsPerOp: 290000000, MapNsPerOp: 14000000000, Speedup: 48},
			{Sensors: "10000", BitsetNsPerOp: 1950000000},
		},
	})
	var buf bytes.Buffer
	if regressed, err := runCompare(oldPath, held, 10, &buf); err != nil || regressed {
		t.Fatalf("held speedup counted as regression (err %v):\n%s", err, buf.String())
	}
	collapsed := writeReport(t, dir, "collapsed.json", &Report{
		Diagnose: []DiagnoseScenario{
			{Sensors: "2000", BitsetNsPerOp: 280000000, MapNsPerOp: 1100000000, Speedup: 4},
			{Sensors: "10000", BitsetNsPerOp: 1900000000},
		},
	})
	buf.Reset()
	regressed, err := runCompare(oldPath, collapsed, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(buf.String(), "diagnose-speedup/2000") ||
		!strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("collapsed speedup not flagged:\n%s", buf.String())
	}
}
