package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: netdiag/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServerDiagnoseCold 	       1	   1000000 ns/op
BenchmarkServerDiagnoseWarm 	       1	    250000 ns/op
BenchmarkServerCoalesce     	       1	   2000000 ns/op	         0.8750 coalesce-hit-ratio
PASS
ok  	netdiag/internal/server	0.013s
BenchmarkMeshFill-4 	      10	     90000 ns/op	    4096 B/op	      12 allocs/op
ok  	netdiag/internal/probe	0.020s
`

func TestParseServerSection(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}

	co := rep.Benchmarks[2]
	if co.Name != "BenchmarkServerCoalesce" || co.Package != "netdiag/internal/server" {
		t.Fatalf("entry 2 = %+v", co)
	}
	if got := co.Extra["coalesce-hit-ratio"]; got != 0.875 {
		t.Fatalf("coalesce-hit-ratio extra = %v, want 0.875", got)
	}

	mesh := rep.Benchmarks[3]
	if mesh.Procs != 4 || mesh.BytesPerOp == nil || *mesh.BytesPerOp != 4096 ||
		mesh.AllocsPerOp == nil || *mesh.AllocsPerOp != 12 {
		t.Fatalf("entry 3 = %+v", mesh)
	}
	if len(mesh.Extra) != 0 {
		t.Fatalf("entry 3 has unexpected extras %v", mesh.Extra)
	}

	s := rep.Server
	if s == nil {
		t.Fatal("server section missing")
	}
	if s.ColdNsPerOp != 1000000 || s.WarmNsPerOp != 250000 || s.WarmSpeedup != 4 {
		t.Fatalf("server section = %+v", s)
	}
	if s.CoalesceHitRatio == nil || *s.CoalesceHitRatio != 0.875 {
		t.Fatalf("coalesce hit ratio = %v, want 0.875", s.CoalesceHitRatio)
	}
}

func TestParseWithoutServerBenchmarks(t *testing.T) {
	in := "BenchmarkMeshFill-4 	 10	 90000 ns/op\nok  	netdiag/internal/probe	0.020s\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Server != nil {
		t.Fatalf("report = %+v, want 1 benchmark and no server section", rep)
	}
}

const lintOutput = `pkg: netdiag/internal/lint
BenchmarkLintCold 	       1	2304941938 ns/op	         0 findings
BenchmarkLintWarm 	     100	  13137304 ns/op	         0 findings
PASS
ok  	netdiag/internal/lint	4.321s
`

func TestParseLintSection(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(lintOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lint == nil {
		t.Fatal("lint section missing")
	}
	if rep.Lint.ColdNsPerOp != 2304941938 || rep.Lint.WarmNsPerOp != 13137304 {
		t.Fatalf("lint section = %+v", rep.Lint)
	}
	want := 2304941938.0 / 13137304.0
	if diff := rep.Lint.WarmSpeedup - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("warm speedup = %v, want %v", rep.Lint.WarmSpeedup, want)
	}
	if rep.Lint.Findings == nil || *rep.Lint.Findings != 0 {
		t.Fatalf("findings = %v, want 0", rep.Lint.Findings)
	}
}

func TestParseWithoutLintBenchmarks(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lint != nil {
		t.Fatalf("lint section should be nil without lint benchmarks, got %+v", rep.Lint)
	}
}
