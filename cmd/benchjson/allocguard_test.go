package main

import (
	"bufio"
	"strings"
	"testing"
)

const allocSample = `goos: linux
pkg: netdiag/internal/telemetry
BenchmarkHotLoopDisabled       	  500000	      2100 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotLoopDisabledTraced 	  400000	      2500 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotLoopEnabled        	  100000	     12000 ns/op	      64 B/op	       2 allocs/op
BenchmarkSnapshot              	   10000	     90000 ns/op
ok  	netdiag/internal/telemetry	1.013s
`

func guard(t *testing.T, pattern string) (int, string) {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(allocSample)))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	n, err := runAllocGuard(rep, pattern, &b)
	if err != nil {
		t.Fatal(err)
	}
	return n, b.String()
}

func TestAllocGuardPasses(t *testing.T) {
	n, out := guard(t, `^BenchmarkHotLoopDisabled(Traced)?$`)
	if n != 0 {
		t.Fatalf("guard reported %d violations on a clean run:\n%s", n, out)
	}
	if !strings.Contains(out, "BenchmarkHotLoopDisabledTraced ok") {
		t.Errorf("guard output missing per-benchmark verdict:\n%s", out)
	}
}

func TestAllocGuardCatchesAllocations(t *testing.T) {
	n, out := guard(t, `^BenchmarkHotLoop`)
	if n != 1 || !strings.Contains(out, "BenchmarkHotLoopEnabled allocates 2 allocs/op") {
		t.Fatalf("violations = %d, out:\n%s", n, out)
	}
}

func TestAllocGuardRequiresReportAllocs(t *testing.T) {
	n, out := guard(t, `^BenchmarkSnapshot$`)
	if n != 1 || !strings.Contains(out, "reports no allocs/op") {
		t.Fatalf("violations = %d, out:\n%s", n, out)
	}
}

func TestAllocGuardRequiresAMatch(t *testing.T) {
	n, out := guard(t, `^BenchmarkNoSuchThing$`)
	if n != 1 || !strings.Contains(out, "guarding nothing") {
		t.Fatalf("violations = %d, out:\n%s", n, out)
	}
}

func TestAllocGuardBadPattern(t *testing.T) {
	rep := &Report{}
	if _, err := runAllocGuard(rep, `(`, &strings.Builder{}); err == nil {
		t.Fatal("bad pattern accepted")
	}
}
