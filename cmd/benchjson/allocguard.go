package main

import (
	"fmt"
	"io"
	"regexp"
)

// Alloc-guard mode: `benchjson -allocguard <regex>` reads `go test
// -bench` output on stdin (like the default mode) and asserts that every
// benchmark whose name matches the pattern reported exactly 0 allocs/op.
// It is how `make verify` pins the zero-allocation contract of the
// uninstrumented telemetry path: the guarded benchmarks run the disabled
// (nil-handle) hot loop with b.ReportAllocs(), and any allocation that
// creeps into that path fails the build instead of a human eyeballing
// benchmark text.
//
// The guard is strict in both directions: a matching benchmark without
// an allocs/op column (missing b.ReportAllocs) fails, and a pattern
// matching no benchmark at all fails — a guard that silently guards
// nothing is worse than none.

// runAllocGuard evaluates the guard over parsed report entries and
// writes its verdict to w. It returns the number of violations, with err
// reserved for a bad pattern.
func runAllocGuard(rep *Report, pattern string, w io.Writer) (violations int, err error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return 0, fmt.Errorf("bad -allocguard pattern: %w", err)
	}
	matched := 0
	for _, e := range bestEntries(rep.Benchmarks) {
		if !re.MatchString(e.Name) {
			continue
		}
		matched++
		switch {
		case e.AllocsPerOp == nil:
			violations++
			fmt.Fprintf(w, "allocguard: %s reports no allocs/op (add b.ReportAllocs to the benchmark)\n", e.Name)
		case *e.AllocsPerOp != 0:
			violations++
			fmt.Fprintf(w, "allocguard: %s allocates %d allocs/op, want 0\n", e.Name, *e.AllocsPerOp)
		default:
			fmt.Fprintf(w, "allocguard: %s ok (0 allocs/op over %d iterations)\n", e.Name, e.Iterations)
		}
	}
	if matched == 0 {
		violations++
		fmt.Fprintf(w, "allocguard: no benchmark matched %q — the guard is guarding nothing\n", pattern)
	}
	return violations, nil
}
