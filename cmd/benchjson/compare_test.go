package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const incrementalOutput = `pkg: netdiag/internal/netsim
BenchmarkReconvergeCold/fig2-link         	    2000	     80000 ns/op
BenchmarkReconvergeCold/fig1-link         	    2000	      6000 ns/op
BenchmarkReconvergeCold/orphan            	    2000	      1000 ns/op
BenchmarkReconvergeIncremental/fig1-link  	    2000	      2000 ns/op	         0 dirty-fraction
BenchmarkReconvergeIncremental/fig2-link  	    2000	     10000 ns/op	         0.4000 dirty-fraction
ok  	netdiag/internal/netsim	1.000s
`

func TestIncrementalSection(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(incrementalOutput)))
	if err != nil {
		t.Fatal(err)
	}
	inc := rep.Incremental
	if len(inc) != 2 {
		t.Fatalf("incremental section has %d scenarios, want 2 (orphan cold entry must be dropped): %+v", len(inc), inc)
	}
	// Sorted by scenario name regardless of input order.
	if inc[0].Scenario != "fig1-link" || inc[1].Scenario != "fig2-link" {
		t.Fatalf("scenario order = %s, %s", inc[0].Scenario, inc[1].Scenario)
	}
	if inc[0].ColdNsPerOp != 6000 || inc[0].WarmNsPerOp != 2000 || inc[0].WarmSpeedup != 3 {
		t.Fatalf("fig1-link = %+v", inc[0])
	}
	if inc[0].DirtyFraction == nil || *inc[0].DirtyFraction != 0 {
		t.Fatalf("fig1-link dirty fraction = %v, want 0", inc[0].DirtyFraction)
	}
	if inc[1].WarmSpeedup != 8 || inc[1].DirtyFraction == nil || *inc[1].DirtyFraction != 0.4 {
		t.Fatalf("fig2-link = %+v", inc[1])
	}
}

// The bench target runs the Reconverge pairs twice: once in the 1x
// whole-repo sweep and again at -benchtime 200x. The higher-iteration
// sample must win everywhere.
const duplicateOutput = `pkg: netdiag/internal/netsim
BenchmarkReconvergeCold/fig1-link         	       1	     60000 ns/op
BenchmarkReconvergeIncremental/fig1-link  	       1	     50000 ns/op	         0 dirty-fraction
ok  	netdiag/internal/netsim	1.000s
pkg: netdiag/internal/netsim
BenchmarkReconvergeCold/fig1-link         	     200	      6000 ns/op
BenchmarkReconvergeIncremental/fig1-link  	     200	      2000 ns/op	         0 dirty-fraction
ok  	netdiag/internal/netsim	1.000s
`

func TestIncrementalSectionKeepsHighestIterationSample(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(duplicateOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incremental) != 1 {
		t.Fatalf("incremental section = %+v, want 1 scenario", rep.Incremental)
	}
	got := rep.Incremental[0]
	if got.ColdNsPerOp != 6000 || got.WarmNsPerOp != 2000 || got.WarmSpeedup != 3 {
		t.Fatalf("duplicate rows not collapsed to the 200-iteration sample: %+v", got)
	}
}

func TestCompareCollapsesDuplicates(t *testing.T) {
	dir := t.TempDir()
	slow := entry("p", "BenchmarkA", 60000)
	slow.Iterations = 1
	fast := entry("p", "BenchmarkA", 1000)
	fast.Iterations = 200
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 1000),
	}})
	// The stale 1x sample (60x slower) must not register as a regression;
	// the 200x sample is the measurement.
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Entry{slow, fast}})
	var buf bytes.Buffer
	regressed, err := runCompare(oldPath, newPath, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("stale low-iteration duplicate counted as regression:\n%s", buf.String())
	}
	if strings.Count(buf.String(), "BenchmarkA") != 1 {
		t.Fatalf("duplicate rows printed:\n%s", buf.String())
	}
}

func TestIncrementalSectionAbsent(t *testing.T) {
	in := "BenchmarkMeshFill-4 	 10	 90000 ns/op\nok  	netdiag/internal/probe	0.020s\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incremental != nil {
		t.Fatalf("incremental section = %+v, want absent", rep.Incremental)
	}
}

// writeReport marshals a Report to a temp file and returns its path.
func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func entry(pkg, name string, ns float64) Entry {
	return Entry{Package: pkg, Name: name, Iterations: 100, NsPerOp: ns}
}

func TestCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 1000),
		entry("p", "BenchmarkB", 2000),
	}})
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 1050), // +5%, under threshold
		entry("p", "BenchmarkB", 1500), // improvement
	}})
	var buf bytes.Buffer
	regressed, err := runCompare(oldPath, newPath, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("no regression expected:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions beyond 10.0%") {
		t.Fatalf("missing summary line:\n%s", buf.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 1000),
	}})
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 1300), // +30%
	}})
	var buf bytes.Buffer
	regressed, err := runCompare(oldPath, newPath, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("regression not detected:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", buf.String())
	}
}

func TestCompareAddedAndRemoved(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkGone", 1000),
		entry("p", "BenchmarkKept", 500),
	}})
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Entry{
		entry("p", "BenchmarkKept", 500),
		entry("p", "BenchmarkNew", 700),
	}})
	var buf bytes.Buffer
	regressed, err := runCompare(oldPath, newPath, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("added/removed benchmarks must not count as regressions:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "added") || !strings.Contains(out, "removed") {
		t.Fatalf("added/removed rows missing:\n%s", out)
	}
}

func TestCompareDistinguishesProcs(t *testing.T) {
	dir := t.TempDir()
	e4 := entry("p", "BenchmarkA", 1000)
	e4.Procs = 4
	e8 := entry("p", "BenchmarkA", 1000)
	e8.Procs = 8
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Entry{e4}})
	newPath := writeReport(t, dir, "new.json", &Report{Benchmarks: []Entry{e8}})
	var buf bytes.Buffer
	if _, err := runCompare(oldPath, newPath, 10, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "added") || !strings.Contains(out, "removed") {
		t.Fatalf("same name at different GOMAXPROCS must not match:\n%s", out)
	}
}

func TestCompareMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runCompare("/nonexistent/old.json", "/nonexistent/new.json", 10, &buf); err == nil {
		t.Fatal("missing report file must error")
	}
}

const snapshotOutput = `pkg: netdiag/internal/snapshot
BenchmarkSnapshotEncode/fig1     	    5000	      4000 ns/op	 100 MB/s
BenchmarkSnapshotDecode/fig1     	    5000	      9000 ns/op	  50 MB/s
BenchmarkWorkerStartCold/fig2    	     100	    500000 ns/op
BenchmarkWorkerStartCold/fig1    	     100	     60000 ns/op
BenchmarkWorkerStartLoad/fig1    	    5000	     10000 ns/op	  50 MB/s
BenchmarkWorkerStartLoad/fig2    	    2000	    100000 ns/op	  80 MB/s
ok  	netdiag/internal/snapshot	1.000s
`

func TestSnapshotSection(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(snapshotOutput)))
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Snapshot
	if len(snap) != 2 {
		t.Fatalf("snapshot section has %d scenarios, want 2: %+v", len(snap), snap)
	}
	// Sorted by scenario name regardless of input order.
	if snap[0].Scenario != "fig1" || snap[1].Scenario != "fig2" {
		t.Fatalf("scenario order = %s, %s", snap[0].Scenario, snap[1].Scenario)
	}
	if snap[0].ColdNsPerOp != 60000 || snap[0].LoadNsPerOp != 10000 || snap[0].LoadSpeedup != 6 {
		t.Fatalf("fig1 = %+v", snap[0])
	}
	if snap[0].EncodeNsPerOp != 4000 || snap[0].DecodeNsPerOp != 9000 {
		t.Fatalf("fig1 codec columns = %+v", snap[0])
	}
	if snap[1].LoadSpeedup != 5 || snap[1].EncodeNsPerOp != 0 {
		t.Fatalf("fig2 = %+v", snap[1])
	}
}

func TestSnapshotSectionAbsent(t *testing.T) {
	in := "BenchmarkWorkerStartCold/fig1 	 10	 90000 ns/op\nok  	netdiag/internal/snapshot	0.020s\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot != nil {
		t.Fatalf("snapshot section = %+v, want absent (no load counterpart)", rep.Snapshot)
	}
}

// TestCompareGatesSnapshotSpeedup pins the fleet cold-start gate: a load
// speedup that collapses versus the committed report fails the compare
// even when every individual benchmark stays inside the ns/op threshold.
func TestCompareGatesSnapshotSpeedup(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{
		Snapshot: []SnapshotScenario{{Scenario: "fig1", ColdNsPerOp: 60000, LoadNsPerOp: 10000, LoadSpeedup: 6}},
	})
	held := writeReport(t, dir, "held.json", &Report{
		Snapshot: []SnapshotScenario{{Scenario: "fig1", ColdNsPerOp: 58000, LoadNsPerOp: 10000, LoadSpeedup: 5.8}},
	})
	var buf bytes.Buffer
	if regressed, err := runCompare(oldPath, held, 10, &buf); err != nil || regressed {
		t.Fatalf("held speedup counted as regression (err %v):\n%s", err, buf.String())
	}
	collapsed := writeReport(t, dir, "collapsed.json", &Report{
		Snapshot: []SnapshotScenario{{Scenario: "fig1", ColdNsPerOp: 60000, LoadNsPerOp: 30000, LoadSpeedup: 2}},
	})
	buf.Reset()
	regressed, err := runCompare(oldPath, collapsed, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("collapsed speedup not flagged:\n%s", buf.String())
	}
}
