// Benchmark-report comparison: `benchjson -compare old.json new.json`
// matches the two reports' benchmarks by package+name, prints a per-
// benchmark delta table, and fails (exit 1 from main) when any shared
// benchmark's ns/op regressed by more than -threshold percent. Added and
// removed benchmarks are reported but never fail the comparison.

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// loadReport reads one benchjson JSON document from disk.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// benchKey identifies a benchmark across reports. Procs is part of the
// identity: the same benchmark at different GOMAXPROCS is a different
// measurement.
func benchKey(e *Entry) string {
	return fmt.Sprintf("%s\x00%s\x00%d", e.Package, e.Name, e.Procs)
}

// runCompare diffs newPath against oldPath and writes the delta table to
// w. It reports whether any shared benchmark regressed beyond
// thresholdPct. Rows follow the new report's order, so the output is as
// deterministic as the reports themselves.
func runCompare(oldPath, newPath string, thresholdPct float64, w io.Writer) (regressed bool, err error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}

	// Reports may carry duplicate rows for one benchmark (the bench target
	// re-runs the Reconverge pairs at a higher -benchtime); compare the
	// highest-iteration sample from each side.
	oldBest := bestEntries(oldRep.Benchmarks)
	newBest := bestEntries(newRep.Benchmarks)
	oldByKey := make(map[string]*Entry, len(oldBest))
	for _, oe := range oldBest {
		oldByKey[benchKey(oe)] = oe
	}

	fmt.Fprintf(w, "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	matched := make(map[string]bool, len(newBest))
	var regressions int
	for _, ne := range newBest {
		oe, ok := oldByKey[benchKey(ne)]
		if !ok {
			fmt.Fprintf(w, "%-55s %14s %14.1f %9s\n", ne.Name, "-", ne.NsPerOp, "added")
			continue
		}
		matched[benchKey(ne)] = true
		delta := 0.0
		if oe.NsPerOp > 0 {
			delta = (ne.NsPerOp - oe.NsPerOp) / oe.NsPerOp * 100
		}
		mark := ""
		if delta > thresholdPct {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-55s %14.1f %14.1f %+8.1f%%%s\n", ne.Name, oe.NsPerOp, ne.NsPerOp, delta, mark)
	}
	for _, oe := range oldBest {
		if !matched[benchKey(oe)] {
			fmt.Fprintf(w, "%-55s %14.1f %14s %9s\n", oe.Name, oe.NsPerOp, "-", "removed")
		}
	}

	// The snapshot section gates the fleet's cold-start win as a ratio: a
	// scenario whose load speedup collapses versus the committed report
	// fails the comparison even when no single benchmark tripped the ns/op
	// threshold (cold getting faster shrinks the ratio too, but then the
	// snapshot path must keep up to stay worth its complexity).
	oldSnap := make(map[string]SnapshotScenario, len(oldRep.Snapshot))
	for _, s := range oldRep.Snapshot {
		oldSnap[s.Scenario] = s
	}
	for _, ns := range newRep.Snapshot {
		prev, ok := oldSnap[ns.Scenario]
		if !ok {
			fmt.Fprintf(w, "%-55s %13sx %13.1fx %9s\n",
				"snapshot-load-speedup/"+ns.Scenario, "-", ns.LoadSpeedup, "added")
			continue
		}
		if prev.LoadSpeedup <= 0 || ns.LoadSpeedup <= 0 {
			continue
		}
		drop := (prev.LoadSpeedup - ns.LoadSpeedup) / prev.LoadSpeedup * 100
		mark := ""
		if drop > thresholdPct {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-55s %13.1fx %13.1fx %+8.1f%%%s\n",
			"snapshot-load-speedup/"+ns.Scenario, prev.LoadSpeedup, ns.LoadSpeedup, -drop, mark)
	}

	// The stream section gates the delta store's pruning win: the
	// dirty-pair fraction rising beyond the threshold (relative to the
	// committed report) fails the comparison — a routing event starting
	// to re-probe most of the mesh defeats the point of the overlay,
	// even when every individual benchmark's ns/op still passes.
	if oldRep.Stream != nil && newRep.Stream != nil &&
		oldRep.Stream.DirtyPairFraction != nil && newRep.Stream.DirtyPairFraction != nil {
		prev, cur := *oldRep.Stream.DirtyPairFraction, *newRep.Stream.DirtyPairFraction
		if prev > 0 {
			rise := (cur - prev) / prev * 100
			mark := ""
			if rise > thresholdPct {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-55s %14.4f %14.4f %+8.1f%%%s\n",
				"stream-dirty-pair-fraction", prev, cur, rise, mark)
		}
	}

	// The diagnose section gates the bitset engine's win over the map
	// reference as a ratio, per sensor count: a point whose end-to-end
	// speedup collapses versus the committed report fails the comparison
	// even when no single benchmark tripped the ns/op threshold. Bitset-
	// only points (no map side, Speedup zero) are skipped — they are gated
	// by their own ns/op rows above.
	oldDiag := make(map[string]DiagnoseScenario, len(oldRep.Diagnose))
	for _, d := range oldRep.Diagnose {
		oldDiag[d.Sensors] = d
	}
	for _, nd := range newRep.Diagnose {
		prev, ok := oldDiag[nd.Sensors]
		if !ok {
			if nd.Speedup > 0 {
				fmt.Fprintf(w, "%-55s %13sx %13.1fx %9s\n",
					"diagnose-speedup/"+nd.Sensors, "-", nd.Speedup, "added")
			}
			continue
		}
		if prev.Speedup <= 0 || nd.Speedup <= 0 {
			continue
		}
		drop := (prev.Speedup - nd.Speedup) / prev.Speedup * 100
		mark := ""
		if drop > thresholdPct {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-55s %13.1fx %13.1fx %+8.1f%%%s\n",
			"diagnose-speedup/"+nd.Sensors, prev.Speedup, nd.Speedup, -drop, mark)
	}

	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond %.1f%%\n", regressions, thresholdPct)
		return true, nil
	}
	fmt.Fprintf(w, "\nno regressions beyond %.1f%%\n", thresholdPct)
	return false, nil
}
