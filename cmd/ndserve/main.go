// Command ndserve runs the NetDiagnoser diagnosis pipeline as a
// long-running HTTP service. Registered scenarios are converged once into
// warm snapshots; POST /v1/diagnose injects a failure set into a fork of
// a snapshot and returns the hypothesis set in the same wire JSON the
// netdiagnoser CLI prints with -json. Identical in-flight requests are
// coalesced into one computation, admission is bounded by a queue that
// sheds overload with 429, and SIGINT/SIGTERM triggers a graceful drain.
//
// Endpoints:
//
//	POST /v1/diagnose        {"scenario","algorithm","fail_links","fail_routers","timeout_ms"}
//	POST /v1/diagnose/batch  {"scenario","algorithm","items":[...],"timeout_ms"}
//	GET  /v1/scenarios       registered scenarios and their warm state
//	GET  /healthz            liveness
//	GET  /readyz             readiness (200 once every scenario is warm)
//	GET  /metrics            Prometheus text exposition of the telemetry registry
//	GET  /debug/traces       recent completed request traces as JSON
//
// Every v1 request is traced: the ND-Trace-Id header is honored when the
// client sends one (and minted otherwise), echoed on every response, and
// followed by the front to the owning shard. -slow-ms promotes slow
// requests to a per-phase access-log breakdown.
//
// With -watch, ndserve also runs the continuous monitoring loop of the
// paper's deployment model (§6): the watched scenario is measured every
// -watch-interval, and alarms confirmed by the transient-filtering
// detector are diagnosed through the same admission queue as the HTTP
// requests.
//
// A fleet splits the scenario set across worker processes and puts a
// routing tier in front: every worker gets the same -scenarios list plus
// -shard-of i/N (so it converges only the scenarios rendezvous hashing
// assigns to shard i), and one more ndserve runs with -shards listing
// the workers' base URLs, serving the same v1 API by proxying each
// request to the owning shard. -snapshot-dir lets the workers persist
// converged scenarios and skip convergence on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netdiag"
	"netdiag/internal/monitor"
	"netdiag/internal/probe"
	"netdiag/internal/server"
	"netdiag/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use port 0 for a random port)")
		par          = flag.Int("parallelism", 0, "simulation/diagnosis workers per request (0 = GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "concurrent diagnosis computations (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 16, "requests allowed to wait beyond the executing ones before shedding with 429")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request computation cap (requests may lower it via timeout_ms)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")
		scenarios    = flag.String("scenarios", "fig1,fig2", "comma-separated scenarios to register: fig1, fig2, research-<seed>")
		debugAddr    = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof for the telemetry registry on this address")
		watch        = flag.String("watch", "", "scenario to measure continuously, diagnosing confirmed alarms through the queue")
		watchEvery   = flag.Duration("watch-interval", 5*time.Second, "measurement round period for -watch")
		ingest       = flag.Bool("ingest", false, "enable the streaming plane: POST /v1/ingest/{traceroute,bgp} and GET /v1/events")
		eventWindow  = flag.Duration("event-window", 2*time.Second, "record-time correlation window bucketing streamed observations into one event")
		eventIdle    = flag.Duration("event-idle-close", 5*time.Second, "record-time idle gap after which a streaming event closes and is diagnosed")
		shards       = flag.String("shards", "", "run as the fleet front: comma-separated worker base URLs, index = shard id (disables local diagnosis)")
		shardOf      = flag.String("shard-of", "", "run as fleet worker i of N (\"i/N\"): register only the scenarios shard i owns")
		snapshotDir  = flag.String("snapshot-dir", "", "persist converged scenarios here and recover them at warm-up")
		slowMS       = flag.Int("slow-ms", 0, "promote requests at least this slow (milliseconds) to a per-phase access-log breakdown (0 disables)")
		traceBuffer  = flag.Int("trace-buffer", 0, "completed request traces retained for /debug/traces (0 = 64)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *shards != "" {
		if *shardOf != "" {
			fatal(fmt.Errorf("-shards and -shard-of are mutually exclusive: the front runs no diagnoses"))
		}
		if err := runFront(*addr, *shards, *drainTimeout, logger,
			time.Duration(*slowMS)*time.Millisecond, *traceBuffer); err != nil {
			fatal(err)
		}
		logger.Info("front drained cleanly, exiting")
		return
	}
	shardIdx, shardN, err := parseShardOf(*shardOf)
	if err != nil {
		fatal(err)
	}
	reg, err := buildRegistry(*scenarios, shardIdx, shardN)
	if err != nil {
		fatal(err)
	}
	tele := telemetry.New()
	srv := server.New(server.Config{
		Scenarios:      reg,
		Parallelism:    *par,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		SnapshotDir:    *snapshotDir,
		Telemetry:      tele,
		Logger:         logger,
		SlowThreshold:  time.Duration(*slowMS) * time.Millisecond,
		TraceBuffer:    *traceBuffer,
		Ingest:         *ingest,
		EventWindow:    *eventWindow,
		EventIdleClose: *eventIdle,
	})

	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr, tele)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		logger.Info("debug server up", "addr", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The smoke test (and port-0 users generally) parse this line to find
	// the bound address; keep its shape stable.
	fmt.Printf("ndserve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch != "" {
		if !reg.Has(*watch) {
			fatal(fmt.Errorf("-watch scenario %q is not registered", *watch))
		}
		if *ingest {
			go runWatchPull(ctx, srv, tele, logger, *watch, *watchEvery)
		} else {
			go runWatch(ctx, srv, tele, logger, *watch, *watchEvery)
		}
	}

	if err := srv.Serve(ctx, ln); err != nil {
		fatal(err)
	}
	logger.Info("drained cleanly, exiting")
}

// buildRegistry resolves the -scenarios list into a registry. As fleet
// worker shardIdx of shardN it registers only the scenarios that shard
// owns under rendezvous hashing — possibly none, which is a legitimate
// (instantly warm) worker; unsharded, an empty registry is a
// configuration error.
func buildRegistry(list string, shardIdx, shardN int) (*server.Registry, error) {
	reg := server.NewRegistry()
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" || (shardN > 1 && server.ShardIndex(name, shardN) != shardIdx) {
			continue
		}
		switch {
		case name == "fig1":
			if err := reg.Register(name, server.Fig1Scenario); err != nil {
				return nil, err
			}
		case name == "fig2":
			if err := reg.Register(name, server.Fig2Scenario); err != nil {
				return nil, err
			}
		case strings.HasPrefix(name, "research-"):
			seed, err := strconv.ParseInt(strings.TrimPrefix(name, "research-"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad research scenario %q: %w", name, err)
			}
			if err := reg.Register(name, server.ResearchScenario(seed, 8)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown scenario %q (want fig1, fig2 or research-<seed>)", name)
		}
	}
	if len(reg.Names()) == 0 && shardN <= 1 {
		return nil, fmt.Errorf("-scenarios registered nothing")
	}
	return reg, nil
}

// parseShardOf parses the -shard-of value "i/N"; empty means unsharded
// (0 of 1).
func parseShardOf(s string) (idx, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	i, rest, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard-of %q (want i/N)", s)
	}
	idx, err = strconv.Atoi(i)
	if err == nil {
		n, err = strconv.Atoi(rest)
	}
	if err != nil || n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("bad -shard-of %q (want i/N with 0 <= i < N)", s)
	}
	return idx, n, nil
}

// runFront serves the fleet routing tier until SIGINT/SIGTERM, then
// shuts down gracefully within drainTimeout. The front holds no state,
// so its drain is just the HTTP server's.
func runFront(addr, shards string, drainTimeout time.Duration, logger *slog.Logger,
	slowThreshold time.Duration, traceBuffer int) error {
	var backends []string
	for _, b := range strings.Split(shards, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		backends = append(backends, strings.TrimSuffix(b, "/"))
	}
	if len(backends) == 0 {
		return fmt.Errorf("-shards listed no backends")
	}
	front := server.NewFront(server.FrontConfig{
		Backends:      backends,
		Client:        &http.Client{Timeout: 30 * time.Second},
		Telemetry:     telemetry.New(),
		Logger:        logger,
		SlowThreshold: slowThreshold,
		TraceBuffer:   traceBuffer,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Same stable marker as worker mode; fleet scripts parse it too.
	fmt.Printf("ndserve: listening on %s\n", ln.Addr())
	logger.Info("front routing", "shards", len(backends))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: front.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drainTimeout)
	defer cancel()
	err = srv.Shutdown(sctx)
	<-serveErr // always http.ErrServerClosed after Shutdown
	return err
}

// runWatch drives the monitor.Watcher: one measurement round of the
// watched scenario per tick, confirmed alarms posted into the server's
// admission queue.
func runWatch(ctx context.Context, srv *server.Server, tele *telemetry.Registry,
	logger *slog.Logger, name string, every time.Duration) {
	w := monitor.NewWatcher(monitor.Config{Telemetry: tele})
	rounds := make(chan *probe.Mesh)
	go func() {
		defer close(rounds)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			m, err := srv.MeshScenario(ctx, name)
			if err != nil {
				logger.Warn("watch measurement failed", "scenario", name, "err", err)
				continue
			}
			select {
			case rounds <- m:
			case <-ctx.Done():
				return
			}
		}
	}()
	if err := w.Run(ctx, rounds, srv.AlarmSink(name, netdiag.NDEdgeAlgo)); err != nil && ctx.Err() == nil {
		logger.Warn("watch loop ended", "err", err)
	}
}

// runWatchPull is the -ingest variant of runWatch: instead of
// re-measuring the full mesh every tick, the watcher pulls the streaming
// plane's delta overlay, so a quiet tick runs zero traceroutes and only
// pairs dirtied by ingested routing events are ever re-probed.
func runWatchPull(ctx context.Context, srv *server.Server, tele *telemetry.Registry,
	logger *slog.Logger, name string, every time.Duration) {
	proc, err := srv.StreamProcessor(ctx, name)
	if err != nil {
		logger.Warn("watch could not open stream processor", "scenario", name, "err", err)
		return
	}
	w := monitor.NewWatcher(monitor.Config{Telemetry: tele})
	ticks := make(chan struct{})
	go func() {
		defer close(ticks)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			select {
			case ticks <- struct{}{}:
			case <-ctx.Done():
				return
			}
		}
	}()
	source := func(context.Context) (*probe.Mesh, error) { return proc.CurrentMesh(), nil }
	if err := w.RunPull(ctx, ticks, source, srv.AlarmSink(name, netdiag.NDEdgeAlgo)); err != nil && ctx.Err() == nil {
		logger.Warn("watch loop ended", "err", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndserve:", err)
	os.Exit(1)
}
