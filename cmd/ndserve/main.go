// Command ndserve runs the NetDiagnoser diagnosis pipeline as a
// long-running HTTP service. Registered scenarios are converged once into
// warm snapshots; POST /v1/diagnose injects a failure set into a fork of
// a snapshot and returns the hypothesis set in the same wire JSON the
// netdiagnoser CLI prints with -json. Identical in-flight requests are
// coalesced into one computation, admission is bounded by a queue that
// sheds overload with 429, and SIGINT/SIGTERM triggers a graceful drain.
//
// Endpoints:
//
//	POST /v1/diagnose   {"scenario","algorithm","fail_links","fail_routers","timeout_ms"}
//	GET  /v1/scenarios  registered scenarios and their warm state
//	GET  /healthz       liveness
//	GET  /readyz        readiness (200 once every scenario is warm)
//
// With -watch, ndserve also runs the continuous monitoring loop of the
// paper's deployment model (§6): the watched scenario is measured every
// -watch-interval, and alarms confirmed by the transient-filtering
// detector are diagnosed through the same admission queue as the HTTP
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netdiag"
	"netdiag/internal/monitor"
	"netdiag/internal/probe"
	"netdiag/internal/server"
	"netdiag/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use port 0 for a random port)")
		par          = flag.Int("parallelism", 0, "simulation/diagnosis workers per request (0 = GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "concurrent diagnosis computations (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 16, "requests allowed to wait beyond the executing ones before shedding with 429")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request computation cap (requests may lower it via timeout_ms)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")
		scenarios    = flag.String("scenarios", "fig1,fig2", "comma-separated scenarios to register: fig1, fig2, research-<seed>")
		debugAddr    = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof for the telemetry registry on this address")
		watch        = flag.String("watch", "", "scenario to measure continuously, diagnosing confirmed alarms through the queue")
		watchEvery   = flag.Duration("watch-interval", 5*time.Second, "measurement round period for -watch")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg, err := buildRegistry(*scenarios)
	if err != nil {
		fatal(err)
	}
	tele := telemetry.New()
	srv := server.New(server.Config{
		Scenarios:      reg,
		Parallelism:    *par,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		Telemetry:      tele,
		Logger:         logger,
	})

	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr, tele)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		logger.Info("debug server up", "addr", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The smoke test (and port-0 users generally) parse this line to find
	// the bound address; keep its shape stable.
	fmt.Printf("ndserve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch != "" {
		if !reg.Has(*watch) {
			fatal(fmt.Errorf("-watch scenario %q is not registered", *watch))
		}
		go runWatch(ctx, srv, tele, logger, *watch, *watchEvery)
	}

	if err := srv.Serve(ctx, ln); err != nil {
		fatal(err)
	}
	logger.Info("drained cleanly, exiting")
}

// buildRegistry resolves the -scenarios list into a registry.
func buildRegistry(list string) (*server.Registry, error) {
	reg := server.NewRegistry()
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "":
		case name == "fig1":
			if err := reg.Register(name, server.Fig1Scenario); err != nil {
				return nil, err
			}
		case name == "fig2":
			if err := reg.Register(name, server.Fig2Scenario); err != nil {
				return nil, err
			}
		case strings.HasPrefix(name, "research-"):
			seed, err := strconv.ParseInt(strings.TrimPrefix(name, "research-"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad research scenario %q: %w", name, err)
			}
			if err := reg.Register(name, server.ResearchScenario(seed, 8)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown scenario %q (want fig1, fig2 or research-<seed>)", name)
		}
	}
	if len(reg.Names()) == 0 {
		return nil, fmt.Errorf("-scenarios registered nothing")
	}
	return reg, nil
}

// runWatch drives the monitor.Watcher: one measurement round of the
// watched scenario per tick, confirmed alarms posted into the server's
// admission queue.
func runWatch(ctx context.Context, srv *server.Server, tele *telemetry.Registry,
	logger *slog.Logger, name string, every time.Duration) {
	w := monitor.NewWatcher(monitor.Config{Telemetry: tele})
	rounds := make(chan *probe.Mesh)
	go func() {
		defer close(rounds)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			m, err := srv.MeshScenario(ctx, name)
			if err != nil {
				logger.Warn("watch measurement failed", "scenario", name, "err", err)
				continue
			}
			select {
			case rounds <- m:
			case <-ctx.Done():
				return
			}
		}
	}()
	if err := w.Run(ctx, rounds, srv.AlarmSink(name, netdiag.NDEdgeAlgo)); err != nil && ctx.Err() == nil {
		logger.Warn("watch loop ended", "err", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndserve:", err)
	os.Exit(1)
}
