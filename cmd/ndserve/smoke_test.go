package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmoke is the end-to-end service check behind `make smoke`: build
// the real binary, start it on a random port, diagnose over HTTP, then
// shut it down with SIGTERM and require a clean exit.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the ndserve binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ndserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ndserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-scenarios", "fig1,fig2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout line from ndserve: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])

	client := &http.Client{Timeout: 5 * time.Second}
	waitOK := func(path string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := client.Get(base + path)
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never returned 200 (last err %v)", path, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitOK("/healthz")
	waitOK("/readyz")

	resp, err := client.Get(base + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []struct {
		Name string `json:"name"`
		Warm bool   `json:"warm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scenarios); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(scenarios) != 2 || scenarios[0].Name != "fig1" || scenarios[1].Name != "fig2" {
		t.Fatalf("scenario listing = %+v", scenarios)
	}

	resp, err = client.Post(base+"/v1/diagnose", "application/json",
		strings.NewReader(`{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Algorithm  string `json:"algorithm"`
		Hypothesis []any  `json:"hypothesis"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || wire.Algorithm != "nd-edge" || len(wire.Hypothesis) == 0 {
		t.Fatalf("diagnose = %d %+v, want 200 with an nd-edge hypothesis", resp.StatusCode, wire)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("ndserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ndserve did not exit after SIGTERM")
	}
}
