package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmoke is the end-to-end service check behind `make smoke`: build
// the real binary, start it on a random port, diagnose over HTTP, then
// shut it down with SIGTERM and require a clean exit.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the ndserve binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ndserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ndserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-scenarios", "fig1,fig2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout line from ndserve: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])

	client := &http.Client{Timeout: 5 * time.Second}
	waitOK := func(path string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := client.Get(base + path)
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never returned 200 (last err %v)", path, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitOK("/healthz")
	waitOK("/readyz")

	resp, err := client.Get(base + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []struct {
		Name string `json:"name"`
		Warm bool   `json:"warm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scenarios); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(scenarios) != 2 || scenarios[0].Name != "fig1" || scenarios[1].Name != "fig2" {
		t.Fatalf("scenario listing = %+v", scenarios)
	}

	resp, err = client.Post(base+"/v1/diagnose", "application/json",
		strings.NewReader(`{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Algorithm  string `json:"algorithm"`
		Hypothesis []any  `json:"hypothesis"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || wire.Algorithm != "nd-edge" || len(wire.Hypothesis) == 0 {
		t.Fatalf("diagnose = %d %+v, want 200 with an nd-edge hypothesis", resp.StatusCode, wire)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("ndserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ndserve did not exit after SIGTERM")
	}
}

// buildNdserve compiles the real binary once per test into a temp dir.
func buildNdserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ndserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ndserve: %v\n%s", err, out)
	}
	return bin
}

// startNdserve launches the binary with args, parses the listen marker
// off stdout and returns the process plus its base URL. The process is
// killed at cleanup if the test did not already shut it down.
func startNdserve(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout line from ndserve %v: %v", args, sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected first line %q", line)
	}
	return cmd, "http://" + strings.TrimSpace(line[i+len(marker):])
}

// sigtermClean sends SIGTERM and requires a clean exit.
func sigtermClean(t *testing.T, name string, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("%s exited uncleanly after SIGTERM: %v", name, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not exit after SIGTERM", name)
	}
}

// TestSmokeFleet is the end-to-end fleet check behind `make smoke`: two
// shard workers splitting fig1+fig2 by rendezvous hash and sharing a
// snapshot directory, one front routing over them; a batch diagnosis
// goes through the proxy to the owning shard, and the whole fleet drains
// cleanly on SIGTERM.
func TestSmokeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the ndserve binary")
	}
	bin := buildNdserve(t)
	snapDir := filepath.Join(t.TempDir(), "snapshots")

	var workers [2]*exec.Cmd
	var backends [2]string
	for i := range workers {
		workers[i], backends[i] = startNdserve(t, bin,
			"-addr", "127.0.0.1:0", "-scenarios", "fig1,fig2",
			"-shard-of", fmt.Sprintf("%d/2", i), "-snapshot-dir", snapDir)
	}
	front, base := startNdserve(t, bin, "-addr", "127.0.0.1:0",
		"-shards", backends[0]+","+backends[1])

	client := &http.Client{Timeout: 5 * time.Second}
	waitOK := func(path string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := client.Get(base + path)
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never returned 200 (last err %v)", path, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Fleet readiness aggregates both shards' warm-up.
	waitOK("/healthz")
	waitOK("/readyz")

	resp, err := client.Get(base + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []struct {
		Name string `json:"name"`
		Warm bool   `json:"warm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scenarios); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(scenarios) != 2 || scenarios[0].Name != "fig1" || scenarios[1].Name != "fig2" ||
		!scenarios[0].Warm || !scenarios[1].Warm {
		t.Fatalf("merged scenario listing = %+v, want warm fig1, fig2", scenarios)
	}

	// One batch through the proxy: routed to whichever shard owns fig2.
	resp, err = client.Post(base+"/v1/diagnose/batch", "application/json",
		strings.NewReader(`{"scenario":"fig2","algorithm":"nd-edge","items":[{"fail_links":[["b1","b2"]]},{"fail_routers":["y1"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Scenario string `json:"scenario"`
		Results  []struct {
			Status int             `json:"status"`
			Body   json.RawMessage `json:"body"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || batch.Scenario != "fig2" || len(batch.Results) != 2 {
		t.Fatalf("batch via front = %d %+v, want 200 with 2 results", resp.StatusCode, batch)
	}
	for i, slot := range batch.Results {
		if slot.Status != http.StatusOK || len(slot.Body) == 0 {
			t.Fatalf("batch slot %d = %d %s, want 200 with a body", i, slot.Status, slot.Body)
		}
	}

	// Workers persisted their snapshots for the next cold start.
	for _, name := range []string{"fig1", "fig2"} {
		if _, err := os.Stat(filepath.Join(snapDir, name+".ndsn")); err != nil {
			t.Errorf("missing persisted snapshot: %v", err)
		}
	}

	sigtermClean(t, "front", front)
	for i, w := range workers {
		sigtermClean(t, fmt.Sprintf("shard %d", i), w)
	}
}
