// Command ndsim regenerates the evaluation figures of the NetDiagnoser
// paper (CoNEXT 2007) on the simulated research-Internet topology. Each
// figure's data is printed as a summary and written as CSV.
//
// Usage:
//
//	ndsim [-figures all|fig5,fig7,...] [-scale N] [-seed S] [-out dir]
//
// -scale divides the paper's 10 placements x 100 failures per scenario;
// -scale 1 is the full paper scale (slow), -scale 10 a quick pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"netdiag/internal/experiment"
	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
)

type figureFunc func(experiment.Config) (*experiment.Figure, error)

var figures = []struct {
	id   string
	fn   figureFunc
	desc string
}{
	{"fig5", experiment.Figure5, "sensor placement vs diagnosability"},
	{"fig6", experiment.Figure6, "Tomo under different failure scenarios"},
	{"fig7", experiment.Figure7, "sensitivity of Tomo vs ND-edge"},
	{"fig8", experiment.Figure8, "specificity of ND-edge"},
	{"fig9", experiment.Figure9, "diagnosability vs specificity"},
	{"fig10", experiment.Figure10, "ND-edge vs ND-bgpigp"},
	{"fig11", experiment.Figure11, "the effect of blocked traceroutes"},
	{"fig12", experiment.Figure12, "the effect of Looking Glass servers"},
	{"router", experiment.RouterFailureStudy, "router failures (§5.2 text)"},
	{"aslevel", experiment.ASLevelStudy, "AS-level accuracy of ND-edge (§5.2 text)"},
	{"asxpos", experiment.ASXPositionStudy, "AS-X position (§5.3 text)"},
	{"ablation", experiment.AblationStudy, "feature ablation (beyond paper)"},
	{"scalability", experiment.ScalabilityStudy, "logical-link granularity §3.1 (beyond paper)"},
	{"paris", experiment.ParisStudy, "multipath topology discovery §2.2 (beyond paper)"},
	{"scfs", experiment.SCFSStudy, "SCFS tree baseline vs Tomo §2.1-2.2 (beyond paper)"},
	{"placement", experiment.PlacementOptStudy, "greedy sensor placement (beyond paper)"},
	{"skew", experiment.SkewStudy, "measurement synchronization robustness §6 (beyond paper)"},
}

func main() {
	var (
		which = flag.String("figures", "all", "comma-separated figure ids, or 'all'")
		scale = flag.Int("scale", 5, "divide the paper's run counts by this factor (1 = full scale)")
		seed  = flag.Int64("seed", 2007, "simulation seed")
		out   = flag.String("out", "results", "directory for CSV output")
		list  = flag.Bool("list", false, "list available figures and exit")
		par   = flag.Int("parallelism", 1, "worker count for simulation and trials (0 = GOMAXPROCS); CSV output is identical at any setting")
		debug = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. :6060) while figures run")
	)
	flag.Parse()

	if *list {
		for _, f := range figures {
			fmt.Printf("%-10s %s\n", f.id, f.desc)
		}
		return
	}

	want := map[string]bool{}
	if *which != "all" {
		for _, id := range strings.Split(*which, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	cfg := experiment.DefaultConfig(*seed).Scaled(*scale)
	if *par == 0 {
		cfg.Parallelism = pool.Size(0)
	} else {
		cfg.Parallelism = *par
	}
	if *debug != "" {
		cfg.Telemetry = telemetry.New()
		srv, err := telemetry.ServeDebug(*debug, cfg.Telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndsim: debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ndsim: debug server on http://%s/debug/vars and /debug/pprof\n", srv.Addr())
	}
	fmt.Printf("ndsim: seed=%d scale=1/%d (%d placements x %d failures per scenario, %d workers)\n\n",
		*seed, *scale, cfg.Placements, cfg.FailuresPerPlacement, cfg.Parallelism)

	ran := 0
	for _, f := range figures {
		if *which != "all" && !want[f.id] {
			continue
		}
		start := time.Now()
		fig, err := f.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndsim: %s failed: %v\n", f.id, err)
			os.Exit(1)
		}
		fig.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", f.id, time.Since(start).Round(time.Millisecond))
		if err := fig.WriteCSV(*out); err != nil {
			fmt.Fprintf(os.Stderr, "ndsim: writing CSV for %s: %v\n", f.id, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ndsim: no figures matched %q (use -list)\n", *which)
		os.Exit(1)
	}
	fmt.Printf("ndsim: wrote CSV for %d figure(s) to %s/\n", ran, *out)
}
