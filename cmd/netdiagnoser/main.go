// Command netdiagnoser runs the NetDiagnoser diagnosis algorithms on a
// measurement scenario file (JSON; see internal/scenario for the format)
// and prints the hypothesis set of failed links.
//
// Usage:
//
//	netdiagnoser -algo tomo|nd-edge|nd-bgpigp [-json] [-parallelism N] [-timeout D] scenario.json
//
// The scenario holds the full-mesh traceroutes before and after the
// failure event, plus optional routing observations (IGP link-downs and
// BGP withdrawals) for nd-bgpigp.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"netdiag"
	"netdiag/internal/scenario"
)

func main() {
	var (
		algo    = flag.String("algo", "nd-edge", "algorithm: tomo, nd-edge, nd-bgpigp, nd-lg")
		asJSON  = flag.Bool("json", false, "emit the hypothesis as JSON")
		verbose = flag.Bool("v", false, "print per-link attribution detail")
		par     = flag.Int("parallelism", 0, "diagnosis worker count (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "abort the diagnosis after this long (0 = no limit)")
		debug   = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address during the diagnosis")
		phases  = flag.Bool("phases", false, "print per-phase timing spans of the diagnosis")
		logDbg  = flag.Bool("log", false, "emit structured debug logs (per diagnosis phase) to stderr")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netdiagnoser [-algo tomo|nd-edge|nd-bgpigp|nd-lg] [-json] scenario.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Read(f)
	if err != nil {
		fatal(err)
	}
	meas, err := sc.Measurements()
	if err != nil {
		fatal(err)
	}

	opts := []netdiag.DiagnoserOption{netdiag.WithParallelism(*par)}
	if *debug != "" || *phases {
		reg := netdiag.NewTelemetry()
		opts = append(opts, netdiag.WithTelemetry(reg))
		if *debug != "" {
			srv, err := netdiag.ServeDebug(*debug, reg)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "netdiagnoser: debug server on http://%s/debug/vars and /debug/pprof\n", srv.Addr())
		}
	}
	if *logDbg {
		lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
		opts = append(opts, netdiag.WithLogger(lg))
	}
	algorithm, err := netdiag.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	opts = append(opts, netdiag.WithAlgorithm(algorithm))
	switch algorithm {
	case netdiag.NDBgpIgpAlgo:
		ri := sc.RoutingInfo()
		if ri == nil {
			fatal(fmt.Errorf("nd-bgpigp requires a \"routing\" section in the scenario"))
		}
		opts = append(opts, netdiag.WithRoutingInfo(ri))
	case netdiag.NDLGAlgo:
		lg := sc.LG()
		if lg == nil {
			fatal(fmt.Errorf("nd-lg requires a \"looking_glasses\" section in the scenario"))
		}
		ri := sc.RoutingInfo()
		if ri == nil {
			ri = &netdiag.RoutingInfo{}
		}
		opts = append(opts, netdiag.WithRoutingInfo(ri), netdiag.WithLookingGlass(lg))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := netdiag.New(opts...).Diagnose(ctx, meas)
	if err != nil {
		var verr *netdiag.ValidationError
		if errors.As(err, &verr) {
			fatal(fmt.Errorf("invalid scenario measurements: %w", verr))
		}
		fatal(err)
	}

	if *asJSON {
		// The exact wire type and encoder the ndserve HTTP API uses, so a
		// CLI run is byte-diffable against a served diagnosis.
		if err := res.Wire(algorithm.Slug()).Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s hypothesis set (%d links, %d greedy iterations):\n",
		algorithm.Slug(), len(res.Hypothesis), res.Iterations)
	for _, h := range res.Hypothesis {
		if *verbose {
			extra := ""
			if h.PhysKnown && display(h.Link) != h.Phys.String() {
				extra = fmt.Sprintf("  [physical %s]", h.Phys)
			}
			fmt.Printf("  %-40s ASes %v%s\n", display(h.Link), h.ASes, extra)
		} else {
			fmt.Printf("  %s\n", display(h.Link))
		}
	}
	if res.UnexplainedFailures > 0 {
		fmt.Printf("warning: %d failed path(s) could not be explained (inconsistent measurements?)\n",
			res.UnexplainedFailures)
	}
	if suspects := res.ASes(); len(suspects) > 0 {
		fmt.Printf("suspect ASes: %v\n", suspects)
	}
	if *phases {
		fmt.Println("phases:")
		for _, s := range res.Telemetry {
			if s.Iteration > 0 {
				fmt.Printf("  %-12s #%-3d +%-12v %v\n", s.Name, s.Iteration, s.Start, s.Duration)
			} else {
				fmt.Printf("  %-12s      +%-12v %v\n", s.Name, s.Start, s.Duration)
			}
		}
	}
}

func display(l netdiag.Link) string {
	return netdiag.DisplayNode(l.From) + "->" + netdiag.DisplayNode(l.To)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdiagnoser:", err)
	os.Exit(1)
}
