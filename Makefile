GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Reduced-scale benchmark sweep, including the parallelism comparisons.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The full verify loop: tier-1 (build + test) plus vet and the race
# detector. Run before every commit.
verify: build vet test race
