GO ?= go

.PHONY: build test vet race lint lint-cold bench benchdiff smoke allocguard verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Project-invariant static analysis (see "Enforced invariants" in
# DESIGN.md). Exit 1 means findings; fix them or suppress in place with
# an //ndlint:ignore <analyzer> <reason> comment. Uses the incremental
# result cache in .ndlint-cache/ — clean packages replay persisted
# findings; output is byte-identical either way.
lint:
	$(GO) run ./cmd/ndlint ./...

# Full cold lint, bypassing the incremental cache (e.g. when the cache
# itself is suspect).
lint-cold:
	$(GO) run ./cmd/ndlint -cache=off ./...

# Reduced-scale benchmark sweep, including the parallelism comparisons.
# The results also land in BENCH_pipeline.json (machine-readable, for CI
# diffing) via cmd/benchjson. The text output is captured first so a
# failing `go test` fails the target instead of vanishing into a pipe.
# The Reconverge cold-vs-incremental pairs re-run at higher iteration
# counts: the "incremental" section's warm_speedup compares microsecond-
# scale operations, which a single 1x sample cannot resolve. benchjson
# keeps the highest-iteration sample per benchmark. The stream ingest /
# event-loop benchmarks re-run likewise so the "stream" section's
# throughput, event-lag and dirty-pair-fraction metrics come from a
# multi-iteration sample.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./... > BENCH_pipeline.txt || (cat BENCH_pipeline.txt; rm -f BENCH_pipeline.txt; exit 1)
	$(GO) test -run xxx -bench 'BenchmarkReconverge(Cold|Incremental)' -benchtime 200x ./internal/netsim/ >> BENCH_pipeline.txt || (cat BENCH_pipeline.txt; rm -f BENCH_pipeline.txt; exit 1)
	$(GO) test -run xxx -bench 'BenchmarkIngest|BenchmarkEventLoop' -benchtime 10x ./internal/stream/ >> BENCH_pipeline.txt || (cat BENCH_pipeline.txt; rm -f BENCH_pipeline.txt; exit 1)
	@cat BENCH_pipeline.txt
	$(GO) run ./cmd/benchjson -o BENCH_pipeline.json < BENCH_pipeline.txt
	@rm -f BENCH_pipeline.txt

# Re-run the benchmark sweep and diff it against the committed
# BENCH_pipeline.json: exits non-zero when any benchmark's ns/op regressed
# by more than the threshold. 1x runs on a shared single-core container
# are noisy, hence the wide margin — catch order-of-magnitude regressions,
# not jitter.
benchdiff:
	$(GO) test -run xxx -bench . -benchtime 1x ./... > BENCH_diff.txt || (cat BENCH_diff.txt; rm -f BENCH_diff.txt; exit 1)
	$(GO) run ./cmd/benchjson -o BENCH_diff.json < BENCH_diff.txt
	@rm -f BENCH_diff.txt
	$(GO) run ./cmd/benchjson -compare -threshold 300 BENCH_pipeline.json BENCH_diff.json || (rm -f BENCH_diff.json; exit 1)
	@rm -f BENCH_diff.json

# End-to-end service check: build the real ndserve binary, start it on a
# random port, diagnose over HTTP, drain it with SIGTERM.
smoke:
	$(GO) test -run TestSmoke -count=1 ./cmd/ndserve

# Zero-allocation guards: the uninstrumented telemetry path (disabled-
# handle hot-loop benchmarks, including the trace-plumbed variant) and the
# bitset greedy scoring kernels (scanBest / accumDelta / retireSets as the
# greedy loop composes them) must report exactly 0 allocs/op.
allocguard:
	$(GO) test -run xxx -bench 'BenchmarkHotLoopDisabled' -benchtime 100x ./internal/telemetry/ | $(GO) run ./cmd/benchjson -allocguard '^BenchmarkHotLoopDisabled'
	$(GO) test -run xxx -bench 'BenchmarkGreedyScoreKernel' -benchtime 100x ./internal/core/ | $(GO) run ./cmd/benchjson -allocguard '^BenchmarkGreedyScoreKernel'

# The full verify loop: tier-1 (build + test) plus vet, the project
# linter, the race detector, the service smoke test and the telemetry
# alloc guard. Run before every commit.
verify: build vet lint test race smoke allocguard
