GO ?= go

.PHONY: build test vet race lint bench smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Project-invariant static analysis (see "Enforced invariants" in
# DESIGN.md). Exit 1 means findings; fix them or suppress in place with
# an //ndlint:ignore <analyzer> <reason> comment.
lint:
	$(GO) run ./cmd/ndlint ./...

# Reduced-scale benchmark sweep, including the parallelism comparisons.
# The results also land in BENCH_pipeline.json (machine-readable, for CI
# diffing) via cmd/benchjson. The text output is captured first so a
# failing `go test` fails the target instead of vanishing into a pipe.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./... > BENCH_pipeline.txt || (cat BENCH_pipeline.txt; rm -f BENCH_pipeline.txt; exit 1)
	@cat BENCH_pipeline.txt
	$(GO) run ./cmd/benchjson -o BENCH_pipeline.json < BENCH_pipeline.txt
	@rm -f BENCH_pipeline.txt

# End-to-end service check: build the real ndserve binary, start it on a
# random port, diagnose over HTTP, drain it with SIGTERM.
smoke:
	$(GO) test -run TestSmoke -count=1 ./cmd/ndserve

# The full verify loop: tier-1 (build + test) plus vet, the project
# linter, the race detector and the service smoke test. Run before every
# commit.
verify: build vet lint test race smoke
