package netdiag_test

import (
	"testing"

	"netdiag"
)

// TestFacadeEndToEnd drives the public API exactly like the quickstart
// example: simulate, fail, measure, diagnose, score.
func TestFacadeEndToEnd(t *testing.T) {
	fig := netdiag.BuildFig2()
	net, err := netdiag.NewNetwork(fig.Topo, []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		t.Fatal(err)
	}
	sensors := []netdiag.RouterID{fig.S1, fig.S2, fig.S3}
	before := net.Mesh(sensors)

	link, ok := fig.Topo.LinkBetween(fig.R["b1"], fig.R["b2"])
	if !ok {
		t.Fatal("b1-b2 missing")
	}
	net.FailLink(link.ID)
	if err := net.Reconverge(); err != nil {
		t.Fatal(err)
	}
	after := net.Mesh(sensors)

	meas := netdiag.ToMeasurements(before, after)
	res, err := netdiag.NDEdge(meas)
	if err != nil {
		t.Fatal(err)
	}
	truth := []netdiag.Link{
		{From: netdiag.Node(fig.Topo.Router(fig.R["b1"]).Addr), To: netdiag.Node(fig.Topo.Router(fig.R["b2"]).Addr)},
		{From: netdiag.Node(fig.Topo.Router(fig.R["b2"]).Addr), To: netdiag.Node(fig.Topo.Router(fig.R["b1"]).Addr)},
	}
	if s := netdiag.Sensitivity(truth, res.PhysLinks()); s != 1 {
		t.Fatalf("sensitivity = %v, want 1 (H=%v)", s, res.PhysLinks())
	}
	universe := netdiag.ProbedLinks(fig.Topo, before)
	if sp := netdiag.Specificity(universe, truth, res.PhysLinks()); sp < 0.5 {
		t.Fatalf("specificity = %v unexpectedly low", sp)
	}
	if d := netdiag.Diagnosability(meas.Before); d <= 0 || d > 1 {
		t.Fatalf("diagnosability = %v out of range", d)
	}
}

// TestFacadeSCFS exercises the tree baseline through the facade.
func TestFacadeSCFS(t *testing.T) {
	paths := []*netdiag.TracePath{
		{SrcSensor: 0, DstSensor: 1, OK: false, Hops: []netdiag.Hop{
			{Node: "s"}, {Node: "a"}, {Node: "b"}}},
		{SrcSensor: 0, DstSensor: 2, OK: true, Hops: []netdiag.Hop{
			{Node: "s"}, {Node: "c"}}},
	}
	links, err := netdiag.SCFS(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 || links[0] != (netdiag.Link{From: "s", To: "a"}) {
		t.Fatalf("SCFS = %v", links)
	}
}

// TestFacadeCustomTopology builds a topology through the public builder.
func TestFacadeCustomTopology(t *testing.T) {
	b := netdiag.NewTopologyBuilder()
	b.AddAS(1, 2 /* Stub */, "left")
	b.AddAS(2, 2, "right")
	b.AddAS(3, 1 /* Tier2 */, "mid")
	l := b.AddRouter(1, "")
	r := b.AddRouter(2, "")
	m1 := b.AddRouter(3, "")
	m2 := b.AddRouter(3, "")
	b.Connect(m1, m2, 1)
	b.Interconnect(m1, l, 1 /* Customer */)
	b.Interconnect(m2, r, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := netdiag.NewNetwork(topo, []netdiag.ASN{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := net.Traceroute(l, r)
	if !p.OK || len(p.Hops) != 4 {
		t.Fatalf("traceroute %v", p)
	}
}

// TestFacadeVariants exercises every facade wrapper at least once.
func TestFacadeVariants(t *testing.T) {
	fig := netdiag.BuildFig2()
	net, err := netdiag.NewNetwork(fig.Topo, []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		t.Fatal(err)
	}
	sensors := []netdiag.RouterID{fig.S1, fig.S2, fig.S3}
	before := net.Mesh(sensors)
	beforeBGP := net.BGP()

	link, _ := fig.Topo.LinkBetween(fig.R["y4"], fig.R["b1"])
	net.FailLink(link.ID)
	if err := net.Reconverge(); err != nil {
		t.Fatal(err)
	}
	after := net.Mesh(sensors)
	blocked := map[netdiag.ASN]bool{fig.ASY: true}
	meas := netdiag.ToMeasurements(before.Mask(blocked), after.Mask(blocked))

	origins := []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC}
	routing := &netdiag.RoutingInfo{
		ASX:          fig.ASX,
		IGPDownLinks: netdiag.AdaptIGPDowns(net, fig.ASX),
		Withdrawals: netdiag.AdaptWithdrawals(fig.Topo,
			netdiag.ObserveWithdrawals(fig.Topo, beforeBGP, net.BGP(), fig.ASX), origins),
	}
	prefixes := []netdiag.Prefix{
		netdiag.PrefixFor(fig.ASA), netdiag.PrefixFor(fig.ASB), netdiag.PrefixFor(fig.ASC),
	}
	lg := netdiag.NewLookingGlassRegistry(net.BGP(), beforeBGP, nil, fig.ASX, prefixes)

	if _, err := netdiag.Tomo(meas); err != nil {
		t.Fatal(err)
	}
	if _, err := netdiag.NDBgpIgp(meas, routing); err != nil {
		t.Fatal(err)
	}
	res, err := netdiag.NDLG(meas, routing, lg)
	if err != nil {
		t.Fatal(err)
	}
	// The failure (y4-b1) touches blocked AS-Y: ND-LG's AS attribution
	// must include Y or B.
	found := false
	for _, as := range res.ASes() {
		if as == fig.ASY || as == fig.ASB {
			found = true
		}
	}
	if !found {
		t.Fatalf("ND-LG ASes = %v, expected Y or B", res.ASes())
	}
	if _, err := netdiag.Run(meas, netdiag.Options{UseReroutes: true, UsePartialTraces: true}); err != nil {
		t.Fatal(err)
	}

	// Metrics wrappers.
	cov := []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC, fig.ASX, fig.ASY}
	se := netdiag.ASSensitivity([]netdiag.ASN{fig.ASY}, res.ASes())
	sp := netdiag.ASSpecificity(cov, []netdiag.ASN{fig.ASY}, res.ASes())
	if se < 0 || se > 1 || sp < 0 || sp > 1 {
		t.Fatalf("AS metrics out of range: %v %v", se, sp)
	}
	if netdiag.DisplayNode("plain") != "plain" {
		t.Fatal("DisplayNode")
	}

	// Research generator + detector wrappers.
	if _, err := netdiag.GenerateResearch(99); err != nil {
		t.Fatal(err)
	}
	d := netdiag.NewDetector(netdiag.DetectorConfig{Confirm: 1})
	d.Observe(before)
	if a := d.Observe(after); a == nil {
		t.Fatal("detector should alarm with Confirm=1 after a healthy baseline")
	}
}
