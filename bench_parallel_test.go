// Benchmarks for the parallel engine: the same workload at increasing
// worker counts. On a multi-core machine the higher worker counts should
// show a clear (>= 2x at 4 workers) speedup; on a single-core machine the
// variants measure the overhead of the pool, which is small. The outputs
// are byte-identical at every parallelism level (see
// internal/experiment's TestParallelismCSVDeterminism), so these compare
// pure wall-clock cost.
package netdiag_test

import (
	"fmt"
	"testing"

	"netdiag"
	"netdiag/internal/experiment"
)

var parallelismLevels = []int{1, 2, 4, 8}

// BenchmarkNetworkConvergenceParallelism converges the paper's 165-AS
// research topology (per-prefix BGP fan-out + per-AS SPF fan-out).
func BenchmarkNetworkConvergenceParallelism(b *testing.B) {
	res, err := netdiag.GenerateResearch(7)
	if err != nil {
		b.Fatal(err)
	}
	origins := append([]netdiag.ASN{}, res.Stubs...)
	for _, par := range parallelismLevels {
		b.Run(fmt.Sprintf("workers-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := netdiag.NewNetwork(res.Topo, origins,
					netdiag.WithNetworkParallelism(par)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioParallelism runs a trial-driven scenario figure
// (Figure 7: envs, fault trials, meshes and diagnoses) end to end.
func BenchmarkScenarioParallelism(b *testing.B) {
	for _, par := range parallelismLevels {
		b.Run(fmt.Sprintf("workers-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i + 1))
				cfg.Parallelism = par
				if _, err := experiment.Figure7(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
