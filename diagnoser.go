package netdiag

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"netdiag/internal/core"
	"netdiag/internal/netsim"
	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
)

// Algorithm names one of the paper's diagnosis algorithm variants. The zero
// value is the Tomo baseline; the ND* constants enable the corresponding
// sections' features.
type Algorithm int

const (
	// TomoAlgo is the multi-AS Boolean tomography baseline (§2).
	TomoAlgo Algorithm = iota
	// NDEdgeAlgo adds logical links and reroute information (§3.1–3.2).
	NDEdgeAlgo
	// NDBgpIgpAlgo adds AS-X's IGP link-downs and BGP withdrawals (§3.3);
	// supply them with WithRoutingInfo.
	NDBgpIgpAlgo
	// NDLGAlgo adds Looking-Glass handling of traceroute-blocking ASes
	// (§3.4); supply the oracle with WithLookingGlass.
	NDLGAlgo
)

// ParseAlgorithm resolves a user-facing algorithm name ("tomo", "nd-edge",
// "nd-bgpigp", "nd-lg", case-insensitive, dashes optional) to the Algorithm
// constant. The CLI flags and the ndserve request decoder both go through
// here, so the two front ends accept exactly the same names.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "tomo":
		return TomoAlgo, nil
	case "nd-edge", "ndedge":
		return NDEdgeAlgo, nil
	case "nd-bgpigp", "ndbgpigp":
		return NDBgpIgpAlgo, nil
	case "nd-lg", "ndlg":
		return NDLGAlgo, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want tomo, nd-edge, nd-bgpigp or nd-lg)", s)
}

// Slug returns the canonical lower-case wire name of the algorithm — the
// form ParseAlgorithm accepts and the JSON wire results carry.
func (a Algorithm) Slug() string {
	switch a {
	case TomoAlgo:
		return "tomo"
	case NDEdgeAlgo:
		return "nd-edge"
	case NDBgpIgpAlgo:
		return "nd-bgpigp"
	case NDLGAlgo:
		return "nd-lg"
	}
	return "algorithm-?"
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case TomoAlgo:
		return "Tomo"
	case NDEdgeAlgo:
		return "ND-edge"
	case NDBgpIgpAlgo:
		return "ND-bgpigp"
	case NDLGAlgo:
		return "ND-LG"
	}
	return "Algorithm(?)"
}

// engineOptions maps the algorithm to the core feature flags.
func (a Algorithm) engineOptions() Options {
	switch a {
	case NDEdgeAlgo, NDBgpIgpAlgo:
		return Options{LogicalLinks: true, UseReroutes: true}
	case NDLGAlgo:
		return Options{LogicalLinks: true, UseReroutes: true, KeepUnidentified: true}
	}
	return Options{}
}

// ValidationError is the typed error returned when a Measurements input is
// malformed; extract it with errors.As to learn the offending mesh and
// sensor pair.
type ValidationError = core.ValidationError

// Diagnoser is a reusable diagnosis session: an algorithm choice plus the
// session-wide inputs (routing observations, Looking Glass oracle) and the
// concurrency budget. A Diagnoser is immutable after New and safe for
// concurrent Diagnose calls.
type Diagnoser struct {
	algo   Algorithm
	custom *Options
	ri     *RoutingInfo
	lg     LookingGlass
	par    int
	tele   *telemetry.Registry
	logger *slog.Logger
}

// DiagnoserOption configures a Diagnoser at construction time.
type DiagnoserOption func(*Diagnoser)

// WithAlgorithm selects the diagnosis algorithm (default TomoAlgo).
func WithAlgorithm(a Algorithm) DiagnoserOption {
	return func(d *Diagnoser) { d.algo = a }
}

// WithOptions supplies a custom engine configuration instead of an
// Algorithm preset; WithRoutingInfo, WithLookingGlass and WithParallelism
// still apply on top of it.
func WithOptions(o Options) DiagnoserOption {
	return func(d *Diagnoser) { d.custom = &o }
}

// WithRoutingInfo supplies AS-X's control-plane observations (§3.3).
func WithRoutingInfo(ri *RoutingInfo) DiagnoserOption {
	return func(d *Diagnoser) { d.ri = ri }
}

// WithLookingGlass supplies the Looking Glass oracle for blocked ASes
// (§3.4).
func WithLookingGlass(lg LookingGlass) DiagnoserOption {
	return func(d *Diagnoser) { d.lg = lg }
}

// WithParallelism bounds the worker count used inside Diagnose. n <= 0
// selects runtime.GOMAXPROCS(0), the default; n = 1 reproduces the exact
// sequential execution. The hypothesis set is identical at any setting.
func WithParallelism(n int) DiagnoserOption {
	return func(d *Diagnoser) { d.par = pool.Size(n) }
}

// WithTelemetry attaches a telemetry registry to the session: every
// Diagnose call bumps "diagnose.runs", feeds per-phase latency histograms
// ("diagnose.phase.<name>_ns") and the scoring pool metrics, and returns
// its phase spans in Result.Telemetry. The default (nil) disables all of
// it at zero cost; telemetry never changes the hypothesis. Publish the
// registry with ServeDebug to watch a live session.
func WithTelemetry(r *Telemetry) DiagnoserOption {
	return func(d *Diagnoser) { d.tele = r }
}

// WithLogger attaches a structured logger: each Diagnose call emits one
// debug record per phase and a summary record, and populates
// Result.Telemetry like WithTelemetry does. Nil (the default) logs nothing.
func WithLogger(lg *slog.Logger) DiagnoserOption {
	return func(d *Diagnoser) { d.logger = lg }
}

// New builds a diagnosis session from functional options:
//
//	d := netdiag.New(
//		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
//		netdiag.WithRoutingInfo(ri),
//		netdiag.WithParallelism(4),
//	)
//	res, err := d.Diagnose(ctx, meas)
func New(opts ...DiagnoserOption) *Diagnoser {
	d := &Diagnoser{algo: TomoAlgo, par: pool.Size(0)}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Algorithm reports the session's algorithm choice.
func (d *Diagnoser) Algorithm() Algorithm { return d.algo }

// Parallelism reports the session's resolved worker count.
func (d *Diagnoser) Parallelism() int { return d.par }

// Diagnose validates m and runs the configured algorithm on it. A
// malformed input yields a *ValidationError; ctx cancellation is honored
// between pipeline phases and on every greedy iteration and surfaces as
// ctx.Err(). Safe to call concurrently on the same Diagnoser.
func (d *Diagnoser) Diagnose(ctx context.Context, m *Measurements) (*Result, error) {
	o := d.algo.engineOptions()
	if d.custom != nil {
		o = *d.custom
	}
	if d.ri != nil {
		o.Routing = d.ri
	}
	if d.lg != nil {
		o.LG = d.lg
	}
	if d.tele != nil {
		o.Telemetry = d.tele
	}
	if d.logger != nil {
		o.Logger = d.logger
	}
	o.Parallelism = d.par
	return core.RunCtx(ctx, m, o)
}

// RunCtx executes a custom engine configuration with cancellation support;
// it is Run with a context.
func RunCtx(ctx context.Context, m *Measurements, opts Options) (*Result, error) {
	return core.RunCtx(ctx, m, opts)
}

// NetworkOption configures a simulated Network at construction time.
type NetworkOption = netsim.Option

// WithNetworkParallelism bounds the worker count the Network uses for BGP
// convergence, SPF computation and full-mesh tracerouting. n <= 0 selects
// runtime.GOMAXPROCS(0); the converged state is identical at any setting.
func WithNetworkParallelism(n int) NetworkOption { return netsim.WithParallelism(n) }
