module netdiag

go 1.22
