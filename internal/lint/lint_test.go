package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	as, err := ByName([]string{"wallclock", "maporder"})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "wallclock" || as[1].Name != "maporder" {
		t.Errorf("ByName returned %v, want [wallclock maporder] in request order", names(as))
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName([]string{"wallclock", "bogus"})
	if err == nil || !strings.Contains(err.Error(), `unknown analyzer "bogus"`) {
		t.Errorf("ByName(bogus) error = %v, want unknown-analyzer error", err)
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// An unmatched recursive pattern is an empty package list, and an empty
// package list is clean — not an error (CI can lint a directory that
// does not exist yet).
func TestUnmatchedRecursivePatternIsClean(t *testing.T) {
	diags, err := Run(".", []string{"./no/such/dir/..."}, Config{})
	if err != nil {
		t.Fatalf("unmatched ... pattern: %v, want nil error", err)
	}
	if len(diags) != 0 {
		t.Errorf("unmatched ... pattern produced %d findings, want 0", len(diags))
	}
}

// A non-recursive pattern naming a missing directory is a user error.
func TestMissingDirErrors(t *testing.T) {
	_, err := Run(".", []string{"./no/such/dir"}, Config{})
	if err == nil || !strings.Contains(err.Error(), "no such package directory") {
		t.Errorf("missing dir error = %v, want no-such-package-directory error", err)
	}
}

func parseOne(t *testing.T, src string) (*token.FileSet, map[int][]suppression, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	rel := func(pos token.Pos) (string, int, int) {
		p := fset.Position(pos)
		return p.Filename, p.Line, p.Column
	}
	byLine, malformed := parseSuppressions(fset, f, rel)
	return fset, byLine, malformed
}

func TestSuppressionParsing(t *testing.T) {
	src := `package p

//ndlint:ignore wallclock,maporder reads the clock to label a scratch file
var x = 1

var y = 2 //ndlint:ignore ctxflow detached background job by design
`
	_, byLine, malformed := parseOne(t, src)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	// The comment-only line covers itself and the next line.
	for _, line := range []int{3, 4} {
		ss := byLine[line]
		if len(ss) != 1 || !ss[0].matches("wallclock") || !ss[0].matches("maporder") {
			t.Errorf("line %d suppressions = %+v, want one covering wallclock and maporder", line, ss)
		}
		if len(ss) == 1 && ss[0].matches("ctxflow") {
			t.Errorf("line %d suppression unexpectedly covers ctxflow", line)
		}
	}
	if ss := byLine[6]; len(ss) != 1 || !ss[0].matches("ctxflow") {
		t.Errorf("line 6 suppressions = %+v, want one covering ctxflow", ss)
	}
}

// A suppression without a reason must not suppress anything — it is
// itself reported, under the "ndlint" pseudo-analyzer.
func TestSuppressionRequiresReason(t *testing.T) {
	src := `package p

//ndlint:ignore wallclock
var x = 1
`
	_, byLine, malformed := parseOne(t, src)
	if len(byLine) != 0 {
		t.Errorf("reason-less suppression still registered: %+v", byLine)
	}
	if len(malformed) != 1 {
		t.Fatalf("malformed = %v, want exactly one finding", malformed)
	}
	d := malformed[0]
	if d.Analyzer != "ndlint" || d.Line != 3 || !strings.Contains(d.Message, "requires a reason") {
		t.Errorf("malformed finding = %s, want ndlint requires-a-reason at line 3", d)
	}
}
