package lint

import (
	"go/token"
	"sort"
)

// This file is the solver half of the dataflow lint framework: a
// classic iterative worklist fixpoint over the CFG of cfg.go. An
// analysis states its problem as a Lattice (the fact domain and its
// join), a direction and a transfer function; Solve returns the fact at
// every block boundary. The lattices the shipped analyzers use are
// finite (sets of lock keys, sets of live span variables), so the
// ascending-chain condition holds and the fixpoint terminates.

// Fact is one analysis's dataflow fact. Implementations must treat
// returned facts as immutable: transfer and join produce new values
// rather than mutating their inputs, so facts can be shared between
// blocks.
type Fact any

// Lattice defines the fact domain of one dataflow problem.
type Lattice interface {
	// Bottom is the initial fact of every block boundary.
	Bottom() Fact
	// Join combines the facts of two converging paths.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are the same (the fixpoint test).
	Equal(a, b Fact) bool
}

// Direction orients a dataflow problem.
type Direction int

const (
	// Forward propagates facts along control flow (entry towards exit).
	Forward Direction = iota
	// Backward propagates facts against control flow (exit towards
	// entry).
	Backward
)

// Problem is one dataflow analysis over a CFG.
type Problem struct {
	Lattice   Lattice
	Direction Direction
	// Boundary is the fact entering the graph: at Entry for a forward
	// problem, at Exit for a backward one. Nil means Lattice.Bottom().
	Boundary Fact
	// Transfer computes the fact leaving a block from the fact entering
	// it (in execution order for forward problems, reverse for
	// backward).
	Transfer func(b *Block, in Fact) Fact
}

// Solution holds the per-block boundary facts of a solved problem. For a
// forward problem In is the fact before the block and Out after it; a
// backward problem mirrors the meaning.
type Solution struct {
	In  map[*Block]Fact
	Out map[*Block]Fact
}

// Solve runs the worklist fixpoint and returns the boundary facts. The
// worklist is ordered by block index, so the iteration sequence — and
// therefore any diagnostic an analyzer derives while re-walking blocks —
// is deterministic.
func (c *CFG) Solve(p Problem) *Solution {
	sol := &Solution{In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	for _, b := range c.Blocks {
		sol.In[b] = p.Lattice.Bottom()
		sol.Out[b] = p.Transfer(b, sol.In[b])
	}
	start := c.Entry
	preds := map[*Block][]*Block{}
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	// flows(b) are the blocks whose out-fact joins into b's in-fact;
	// affected(b) are the blocks to revisit when b's out-fact changes.
	flows, affected := preds, map[*Block][]*Block(nil)
	if p.Direction == Backward {
		start = c.Exit
		flows = map[*Block][]*Block{}
		for _, b := range c.Blocks {
			flows[b] = b.Succs
		}
		affected = preds
	}

	boundary := p.Boundary
	if boundary == nil {
		boundary = p.Lattice.Bottom()
	}
	sol.In[start] = boundary
	sol.Out[start] = p.Transfer(start, boundary)

	work := newWorklist(c.Blocks)
	for {
		b, ok := work.pop()
		if !ok {
			return sol
		}
		in := p.Lattice.Bottom()
		if b == start {
			in = boundary
		}
		for _, f := range flows[b] {
			in = p.Lattice.Join(in, sol.Out[f])
		}
		out := p.Transfer(b, in)
		sol.In[b] = in
		if p.Lattice.Equal(out, sol.Out[b]) {
			continue
		}
		sol.Out[b] = out
		next := b.Succs
		if p.Direction == Backward {
			next = affected[b]
		}
		for _, s := range next {
			work.push(s)
		}
	}
}

// worklist is an index-ordered block queue: pop always returns the
// lowest-index pending block, which keeps fixpoint iteration (and any
// order-sensitive diagnostics) deterministic regardless of how edges
// were wired.
type worklist struct {
	pending map[int]*Block
	order   []int
}

func newWorklist(blocks []*Block) *worklist {
	w := &worklist{pending: map[int]*Block{}}
	for _, b := range blocks {
		w.pending[b.Index] = b
		w.order = append(w.order, b.Index)
	}
	sort.Ints(w.order)
	return w
}

func (w *worklist) push(b *Block) {
	if _, ok := w.pending[b.Index]; ok {
		return
	}
	w.pending[b.Index] = b
	// Insert in sorted position; worklists are small (blocks per
	// function), so a linear scan beats maintaining a heap.
	i := sort.SearchInts(w.order, b.Index)
	w.order = append(w.order, 0)
	copy(w.order[i+1:], w.order[i:])
	w.order[i] = b.Index
}

func (w *worklist) pop() (*Block, bool) {
	if len(w.order) == 0 {
		return nil, false
	}
	idx := w.order[0]
	w.order = w.order[1:]
	b := w.pending[idx]
	delete(w.pending, idx)
	return b, true
}

// posSet is the shared fact shape of the resource-balance analyzers: a
// set of live resources (held locks, un-ended spans) keyed by a
// canonical string, each carrying the position that created it so
// reports point at the acquisition site. posSet values are immutable
// once published to the solver.
type posSet map[string]token.Pos

// posSetLattice joins by union, keeping the earliest position per key so
// merged facts stay deterministic.
type posSetLattice struct{}

func (posSetLattice) Bottom() Fact { return posSet(nil) }

func (posSetLattice) Join(a, b Fact) Fact {
	x, y := a.(posSet), b.(posSet)
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(posSet, len(x)+len(y))
	for k, p := range x {
		out[k] = p
	}
	for k, p := range y {
		if q, ok := out[k]; !ok || p < q {
			out[k] = p
		}
	}
	return out
}

func (posSetLattice) Equal(a, b Fact) bool {
	x, y := a.(posSet), b.(posSet)
	if len(x) != len(y) {
		return false
	}
	for k, p := range x {
		if q, ok := y[k]; !ok || p != q {
			return false
		}
	}
	return true
}

// with returns a copy of s with k set to pos.
func (s posSet) with(k string, pos token.Pos) posSet {
	out := make(posSet, len(s)+1)
	for key, p := range s {
		out[key] = p
	}
	out[k] = pos
	return out
}

// without returns a copy of s with k removed (or s itself when absent).
func (s posSet) without(k string) posSet {
	if _, ok := s[k]; !ok {
		return s
	}
	out := make(posSet, len(s))
	for key, p := range s {
		if key != k {
			out[key] = p
		}
	}
	return out
}

// sortedKeys returns the set's keys in deterministic order.
func (s posSet) sortedKeys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
