package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceCarry encodes the request-tracing contract of the serving layer:
// a server-package function that hands work to the admission queue
// (referencing pool.Queue.TrySubmit, directly or as the submit argument
// of the coalescing group) moves the rest of the request onto a worker
// goroutine — and the request's trace must move with it. Such a function
// must therefore carry the trace across the hop by calling
// telemetry.ContextWithTrace (attaching the trace to the job context) or
// telemetry.TraceFromContext (picking an inherited one up) somewhere in
// its body, including the enqueued closures. A handler that enqueues
// without either call silently drops the trace: the job's spans land
// nowhere and /debug/traces shows an empty request.
//
// The check is scoped to packages named "server" and "stream" — the two
// places where request or event handling meets the admission queue (the
// streaming plane's diagnoser hands closed events to the same queue) —
// and matches the plumbing functions by name, so the fixture can model
// the contract without importing the real telemetry package.
var TraceCarry = &Analyzer{
	Name: "tracecarry",
	Doc:  "server/stream functions that enqueue work via TrySubmit must carry the request trace (ContextWithTrace/TraceFromContext)",
	Run:  runTraceCarry,
}

func runTraceCarry(p *Pass) {
	if p.Pkg.Name() != "server" && p.Pkg.Name() != "stream" {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || p.InTestFile(fd.Pos()) {
				continue
			}
			enqueues := token.NoPos
			carries := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				switch fn.Name() {
				case "TrySubmit":
					if enqueues == token.NoPos {
						enqueues = id.Pos()
					}
				case "ContextWithTrace", "TraceFromContext":
					carries = true
				}
				return true
			})
			if enqueues != token.NoPos && !carries {
				p.Reportf(enqueues,
					"%s enqueues work via TrySubmit without carrying the request trace; attach it with telemetry.ContextWithTrace (or pick it up with TraceFromContext) so the job's spans reach the trace",
					fd.Name.Name)
			}
		}
	}
}
