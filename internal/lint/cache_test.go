package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The cache tests build a throwaway module on disk so files can be
// edited between runs: package a (leaf), package b importing a, and an
// unrelated package c. Package p is the module root name.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.21\n",
		"a/a.go": "package a\n\nfunc Answer() int { return 42 }\n",
		"b/b.go": "package b\n\nimport \"cachetest/a\"\n\nfunc Double() int { return 2 * a.Answer() }\n",
		"c/c.go": "package c\n\nfunc Noop() {}\n",
	}
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// entryDigests reads the digest field of every cache entry, keyed by
// entry file name.
func entryDigests(t *testing.T, cacheDir string) map[string]string {
	t.Helper()
	ents, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatalf("reading cache dir: %v", err)
	}
	out := map[string]string{}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(cacheDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Digest is enough to identify an entry generation; parse crudely
		// so a deliberately corrupted entry doesn't fail the helper.
		if i := strings.Index(string(data), `"digest":"`); i >= 0 {
			rest := string(data)[i+len(`"digest":"`):]
			out[e.Name()] = rest[:strings.IndexByte(rest, '"')]
		} else {
			out[e.Name()] = "corrupt"
		}
	}
	return out
}

func runCached(t *testing.T, root, cacheDir string, cfg Config) []Diagnostic {
	t.Helper()
	cfg.Cache = true
	cfg.CacheDir = cacheDir
	diags, err := Run(root, []string{"./..."}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestCacheInvalidatesPackageAndReverseDeps edits one file and checks
// exactly its package and the packages importing it are re-analyzed.
func TestCacheInvalidatesPackageAndReverseDeps(t *testing.T) {
	root := writeCacheModule(t)
	cacheDir := filepath.Join(root, ".ndlint-cache")

	if diags := runCached(t, root, cacheDir, Config{}); len(diags) != 0 {
		t.Fatalf("clean module has findings: %v", diags)
	}
	before := entryDigests(t, cacheDir)
	for _, name := range []string{"cachetest__a.json", "cachetest__b.json", "cachetest__c.json"} {
		if _, ok := before[name]; !ok {
			t.Fatalf("missing cache entry %s (have %v)", name, before)
		}
	}

	// Introduce a goleak violation in a, so the second run's output
	// proves the edited package really was re-analyzed, not replayed.
	src := "package a\n\nfunc Answer() int { return 42 }\n\nfunc leak() {\n\tgo func() {\n\t\tfor {\n\t\t}\n\t}()\n}\n"
	if err := os.WriteFile(filepath.Join(root, "a", "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runCached(t, root, cacheDir, Config{})
	if len(diags) != 1 || diags[0].Analyzer != "goleak" {
		t.Fatalf("after edit want exactly the new goleak finding, got %v", diags)
	}
	after := entryDigests(t, cacheDir)
	if before["cachetest__a.json"] == after["cachetest__a.json"] {
		t.Errorf("edited package a kept a stale cache entry")
	}
	if before["cachetest__b.json"] == after["cachetest__b.json"] {
		t.Errorf("reverse dependency b kept a stale cache entry")
	}
	if before["cachetest__c.json"] != after["cachetest__c.json"] {
		t.Errorf("unrelated package c was invalidated")
	}

	// Third run with nothing changed: pure replay, same output.
	replay := runCached(t, root, cacheDir, Config{})
	if render(replay) != render(diags) {
		t.Errorf("warm replay differs:\n%s\nvs\n%s", render(replay), render(diags))
	}
}

// TestCacheInvalidatesOnAnalyzerSet changes the analyzer set between
// runs: every entry must be recomputed, none replayed.
func TestCacheInvalidatesOnAnalyzerSet(t *testing.T) {
	root := writeCacheModule(t)
	cacheDir := filepath.Join(root, ".ndlint-cache")

	runCached(t, root, cacheDir, Config{})
	before := entryDigests(t, cacheDir)

	runCached(t, root, cacheDir, Config{Analyzers: []*Analyzer{GoLeak, WallClock}})
	after := entryDigests(t, cacheDir)
	for name := range before {
		if before[name] == after[name] {
			t.Errorf("entry %s survived an analyzer-set change", name)
		}
	}
}

// TestCacheCorruptEntryFallsBackCold truncates and scrambles an entry;
// the next run must quietly re-analyze and heal it.
func TestCacheCorruptEntryFallsBackCold(t *testing.T) {
	root := writeCacheModule(t)
	cacheDir := filepath.Join(root, ".ndlint-cache")

	runCached(t, root, cacheDir, Config{})
	entry := filepath.Join(cacheDir, "cachetest__b.json")
	if err := os.WriteFile(entry, []byte(`{"version":"2","digest":`), 0o644); err != nil {
		t.Fatal(err)
	}

	if diags := runCached(t, root, cacheDir, Config{}); len(diags) != 0 {
		t.Fatalf("corrupted cache changed the findings: %v", diags)
	}
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"findings":[]`) {
		t.Errorf("corrupted entry was not rewritten: %s", data)
	}
}

// TestCacheOutputByteIdentical runs all four combinations of cache
// on/off and parallelism 1/8 over a module with real findings; every
// rendering must be identical.
func TestCacheOutputByteIdentical(t *testing.T) {
	root := writeCacheModule(t)
	src := "package c\n\nfunc Noop() {}\n\nfunc leak() {\n\tgo func() {\n\t\tfor {\n\t\t}\n\t}()\n}\n"
	if err := os.WriteFile(filepath.Join(root, "c", "c.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(root, ".ndlint-cache")

	uncached, err := Run(root, []string{"./..."}, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(uncached) == 0 {
		t.Fatal("fixture module should have findings")
	}
	cold := runCached(t, root, cacheDir, Config{Parallelism: 8})
	warm := runCached(t, root, cacheDir, Config{Parallelism: 1})
	warm8 := runCached(t, root, cacheDir, Config{Parallelism: 8})
	want := render(uncached)
	for name, got := range map[string][]Diagnostic{"cold": cold, "warm": warm, "warm8": warm8} {
		if render(got) != want {
			t.Errorf("%s output differs from uncached:\n%s\nvs\n%s", name, render(got), want)
		}
	}
}
