package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// GlobalRand encodes the trial-reproducibility contract: library code
// must derive every *rand.Rand from the scenario seed, never from the
// process-global math/rand source (which is racy across goroutines and
// unseeded across runs). Flagged in non-main packages:
//
//   - package-level math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Float64, rand.Shuffle, ...) — they draw from the global
//     source; constructors (rand.New, rand.NewSource, rand.NewZipf,
//     rand.NewPCG, ...) stay legal,
//   - rand.NewSource/rand.NewPCG seeded from the wall clock (any
//     time.* call in the seed expression) — that is an unseeded RNG in
//     disguise.
//
// Main packages (cmd/, examples/) may do as they please: they own their
// seeds.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no math/rand global source or clock-seeded RNGs in library packages (seeded trials)",
	Run:  runGlobalRand,
}

func runGlobalRand(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
				name, ok := isPkgCall(p.Info, call, randPkg)
				if !ok {
					continue
				}
				if strings.HasPrefix(name, "New") {
					if pos, ok := clockSeed(p, call); ok {
						p.Reportf(pos, "RNG seeded from the wall clock; derive the seed from the scenario seed (seeded trials)")
					}
					continue
				}
				p.Reportf(call.Pos(), "global math/rand source (rand.%s) in library code; derive a *rand.Rand from the scenario seed (seeded trials)", name)
			}
			return true
		})
	}
}

// clockSeed reports whether any argument of the constructor call reads
// the clock (a time.* call in the seed expression).
func clockSeed(p *Pass, call *ast.CallExpr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(p.Info, inner); f != nil && f.Pkg() != nil && f.Pkg().Path() == "time" {
				pos, found = inner.Pos(), true
				return false
			}
			return !found
		})
		if found {
			return pos, true
		}
	}
	return token.NoPos, false
}
