package lint

import (
	"go/ast"
)

// WallClock encodes the replay-determinism contract of the
// simulate→probe→diagnose path: wall-clock reads (time.Now, time.Since)
// live only in internal/telemetry — which centralizes every clock read
// behind nil-guarded, zero-cost-when-off instrumentation — and in the
// cmd/ mains, where human-facing progress timing is fine. Library code
// that needs timing goes through telemetry.Now/telemetry.Since (or a
// *telemetry.Trace), so a replayed or resumed run never observes the
// clock. _test.go files are exempt: tests may time themselves for
// reporting without touching pipeline results.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/time.Since only in internal/telemetry and cmd/ (replay determinism)",
	Run:  runWallClock,
}

func runWallClock(p *Pass) {
	// The telemetry package is the sanctioned clock seam; main packages
	// (cmd/, examples/) own their progress timing.
	if p.Pkg.Name() == "telemetry" || p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := isPkgCall(p.Info, call, "time", "Now", "Since", "Until")
			if !ok || p.InTestFile(call.Pos()) {
				return true
			}
			p.Reportf(call.Pos(), "wall-clock read time.%s outside internal/telemetry and cmd/; use telemetry.Now/telemetry.Since or accept a timestamp (replay determinism)", name)
			return true
		})
	}
}
