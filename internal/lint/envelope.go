package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Envelope guards the v1 error envelope seam of the server and stream
// packages: every error response must flow through writeError so
// clients always see the {"error": {...}} shape with a request id. Outside the seam it
// reports http.Error calls, WriteHeader with a constant status >= 400,
// and hand-rolled error JSON (string literals containing `"error"`
// written straight to a ResponseWriter).
//
// It also runs one flow-sensitive check over the CFG: at most one
// status write per path per writer. A second WriteHeader/http.Error/
// writeError on a path that already wrote a status is the classic
// "missing return after writeError" bug — net/http only logs a
// superfluous-WriteHeader warning at runtime; this catches it
// statically.
var Envelope = &Analyzer{
	Name: "envelope",
	Doc:  "server/stream error responses go through the writeError envelope seam; no double status writes on any path",
	Run:  runEnvelope,
}

func runEnvelope(p *Pass) {
	if p.Pkg.Name() != "server" && p.Pkg.Name() != "stream" {
		return
	}
	// Seam checks: shape-level, anywhere in the package outside the seam
	// functions themselves.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && isEnvelopeSeam(fn) {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.InTestFile(call.Pos()) {
				return true
			}
			if _, ok := isPkgCall(p.Info, call, "net/http", "Error"); ok {
				p.Reportf(call.Pos(), "http.Error bypasses the v1 error envelope; use writeError so clients get the {\"error\": ...} shape")
				return true
			}
			if status, ok := constStatusWrite(p.Info, call); ok && status >= 400 {
				p.Reportf(call.Pos(), "WriteHeader(%d) writes an error status outside the writeError seam; use writeError for the v1 envelope", status)
				return true
			}
			if handRolledErrorJSON(p.Info, call) {
				p.Reportf(call.Pos(), "hand-rolled error JSON written to the ResponseWriter; use writeError so the envelope shape stays uniform")
			}
			return true
		})
	}
	// Flow check: one status write per path.
	funcBodies(p, func(sig *types.Signature, body *ast.BlockStmt) {
		doubleRespondFunc(p, body)
	})
}

// isEnvelopeSeam reports whether the declaration is the envelope seam
// itself, which is allowed to touch the wire directly.
func isEnvelopeSeam(fn *ast.FuncDecl) bool {
	switch fn.Name.Name {
	case "writeError", "errorEnvelope":
		return true
	}
	return false
}

// constStatusWrite matches w.WriteHeader(<integer constant>) and returns
// the status.
func constStatusWrite(info *types.Info, call *ast.CallExpr) (int64, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "WriteHeader" || len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	status, exact := constant.Int64Val(tv.Value)
	return status, exact
}

// handRolledErrorJSON matches writes of string literals that look like
// error JSON (contain an "error" key) going to an http.ResponseWriter:
// fmt.Fprint* with a writer first arg, or w.Write.
func handRolledErrorJSON(info *types.Info, call *ast.CallExpr) bool {
	hasErrorLit := false
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				text := lit.Value
				if s, err := strconv.Unquote(lit.Value); err == nil {
					text = s
				}
				if strings.Contains(text, `"error"`) {
					hasErrorLit = true
				}
			}
			return true
		})
	}
	if !hasErrorLit {
		return false
	}
	if _, ok := isPkgCall(info, call, "fmt", "Fprint", "Fprintf", "Fprintln"); ok {
		return len(call.Args) > 0 && isResponseWriter(info, call.Args[0])
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Write" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return isResponseWriter(info, sel.X)
		}
	}
	return false
}

// isResponseWriter reports whether the expression's type is (or
// implements, for the common named cases) http.ResponseWriter.
func isResponseWriter(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if isNamed(t, "net/http", "ResponseWriter") {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	// Duck-typed stand-ins (golden fixtures) count if they carry the
	// ResponseWriter trio.
	var hasWrite, hasHeader bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Write":
			hasWrite = true
		case "WriteHeader":
			hasHeader = true
		}
	}
	return hasWrite && hasHeader
}

// doubleRespondFunc runs the one-status-write-per-path dataflow check
// over one function body.
func doubleRespondFunc(p *Pass, body *ast.BlockStmt) {
	cfg := buildCFG(body, p.Info)

	// statusWrite returns the written-to writer's key when the node
	// commits a response status: w.WriteHeader(...), http.Error(w, ...),
	// writeError(..., w, ...).
	statusWrite := func(n ast.Node) (string, bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return "", false
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return "", false
		}
		switch {
		case fn.Name() == "WriteHeader":
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(p.Info, sel.X) {
				if key := exprKey(p.Info, sel.X); key != "" {
					return key, true
				}
			}
		case fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error":
			if len(call.Args) > 0 {
				if key := exprKey(p.Info, call.Args[0]); key != "" {
					return key, true
				}
			}
		case fn.Name() == "writeError":
			for _, a := range call.Args {
				if isResponseWriter(p.Info, a) {
					if key := exprKey(p.Info, a); key != "" {
						return key, true
					}
				}
			}
		}
		return "", false
	}

	apply := func(b *Block, in Fact, report func(pos, firstPos token.Pos)) Fact {
		fact := in.(posSet)
		for _, n := range b.Nodes {
			walkSkipFuncLit(n, func(sub ast.Node) {
				key, ok := statusWrite(sub)
				if !ok {
					return
				}
				if firstPos, already := fact[key]; already && report != nil {
					report(sub.Pos(), firstPos)
				}
				fact = fact.with(key, sub.Pos())
			})
		}
		return fact
	}

	sol := cfg.Solve(Problem{
		Lattice:   posSetLattice{},
		Direction: Forward,
		Transfer:  func(b *Block, in Fact) Fact { return apply(b, in, nil) },
	})
	seen := map[token.Pos]bool{}
	for _, b := range cfg.Blocks {
		apply(b, sol.In[b], func(pos, firstPos token.Pos) {
			if seen[pos] || p.InTestFile(pos) {
				return
			}
			seen[pos] = true
			p.Reportf(pos, "HTTP status already written on this path (line %d); add the missing return",
				p.Fset.Position(firstPos).Line)
		})
	}
}
