package lint

import (
	"fmt"
	"path"
	"path/filepath"
	"sort"

	"netdiag/internal/pool"
)

// Config configures a lint run.
type Config struct {
	// Analyzers to run; defaults to All() when empty.
	Analyzers []*Analyzer
	// Parallelism bounds the worker count for the analysis phase
	// (loading is sequential). <= 0 means GOMAXPROCS.
	Parallelism int
	// Cache enables the incremental result cache (see cache.go): clean
	// packages answer from persisted findings without being parsed or
	// type-checked. Output is byte-identical with the cache on or off.
	Cache bool
	// CacheDir overrides the cache location; empty means
	// <module>/.ndlint-cache.
	CacheDir string
}

// Run loads the packages matching patterns (relative to the module
// containing dir) and applies the analyzers. Diagnostics come back
// deduplicated across the test/non-test variants of each package and
// sorted by file, line, column, analyzer and message — the output is
// byte-deterministic at any parallelism, and with the incremental cache
// on or off, cold or warm.
func Run(dir string, patterns []string, cfg Config) ([]Diagnostic, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}
	ld, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := ld.expandPatterns(patterns)
	if err != nil {
		return nil, err
	}

	// Split the directories into cache hits (findings replayed verbatim)
	// and the dirty rest, which alone is loaded and analyzed.
	var out []Diagnostic
	dirty := dirs
	var c *lintCache
	if cfg.Cache {
		c = newLintCache(ld, cfg.CacheDir, analyzers)
		dirty = nil
		for _, d := range dirs {
			if ds, ok := c.lookup(d); ok {
				out = append(out, ds...)
			} else {
				dirty = append(dirty, d)
			}
		}
	}

	units, err := ld.loadUnits(dirty)
	if err != nil {
		return nil, err
	}

	// One task per unit, results in index-addressed slots so merge order
	// never depends on scheduling.
	perUnit := make([][]Diagnostic, len(units))
	workers := pool.Size(cfg.Parallelism)
	err = pool.ForEach(nil, workers, len(units), func(i int) error {
		perUnit[i] = runUnit(ld, units[i], analyzers)
		return nil
	})
	if err != nil {
		return nil, err
	}

	seen := map[Diagnostic]bool{}
	var fresh []Diagnostic
	for _, ds := range perUnit {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				fresh = append(fresh, d)
			}
		}
	}

	if c != nil {
		// Persist per-directory results, keyed by the diagnostic's file
		// directory (a pass only reports positions inside its own files).
		byDir := map[string][]Diagnostic{}
		for _, d := range fresh {
			rel := path.Dir(d.File)
			byDir[rel] = append(byDir[rel], d)
		}
		for _, d := range dirty {
			rel, err := filepath.Rel(ld.modRoot, d)
			if err != nil {
				continue
			}
			c.store(d, byDir[filepath.ToSlash(rel)])
		}
	}

	out = append(out, fresh...)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out, nil
}

// runUnit applies every analyzer to one unit and filters the findings
// through the unit's //ndlint:ignore suppressions.
func runUnit(ld *loader, u *unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:    ld.fset,
			Files:   u.files,
			Pkg:     u.pkg,
			Info:    u.info,
			PkgPath: u.pkgPath,
			ModPath: ld.modPath,
			diags:   &diags,
			name:    a.Name,
			rel:     ld.relPos,
		}
		a.Run(pass)
	}

	// Suppressions, keyed per file by line.
	supp := map[string]map[int][]suppression{}
	for _, f := range u.files {
		file, _, _ := ld.relPos(f.Pos())
		byLine, malformed := parseSuppressions(ld.fset, f, ld.relPos)
		supp[file] = byLine
		diags = append(diags, malformed...)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range supp[d.File][d.Line] {
			if s.matches(d.Analyzer) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// ByName resolves analyzer names (e.g. from -enable/-disable flags) to
// analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
