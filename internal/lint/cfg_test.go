package lint

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// cfgFromSrc parses a function body and builds its CFG (no type info:
// the shape tests exercise pure control flow; isPanicCall treats a
// syntactic panic as the builtin).
func cfgFromSrc(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fn.Body, nil), fset
}

// nodeText renders one node's source text.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var b bytes.Buffer
	printer.Fprint(&b, fset, n)
	return b.String()
}

// blockWith returns the unique block containing a node whose source
// includes substr.
func blockWith(t *testing.T, cfg *CFG, fset *token.FileSet, substr string) *Block {
	t.Helper()
	var found *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(fset, n), substr) {
				if found != nil && found != b {
					t.Fatalf("node %q appears in blocks %d and %d", substr, found.Index, b.Index)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q", substr)
	}
	return found
}

// succHas reports whether any successor of b contains substr (Exit
// matches the literal "EXIT").
func succHas(cfg *CFG, fset *token.FileSet, b *Block, substr string) bool {
	for _, s := range b.Succs {
		if substr == "EXIT" && s == cfg.Exit {
			return true
		}
		for _, n := range s.Nodes {
			if strings.Contains(nodeText(fset, n), substr) {
				return true
			}
		}
	}
	return false
}

// reachable returns the blocks reachable from b (inclusive).
func reachable(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(x *Block) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Succs {
			walk(s)
		}
	}
	walk(b)
	return seen
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a() {
				continue outer
			}
			if b() {
				break outer
			}
			c()
		}
	}
	d()`)
	cont := blockWith(t, cfg, fset, "continue outer")
	if !succHas(cfg, fset, cont, "i++") {
		t.Errorf("continue outer should edge to the outer loop's post block (i++); succs of block %d don't", cont.Index)
	}
	brk := blockWith(t, cfg, fset, "break outer")
	if !succHas(cfg, fset, brk, "d()") {
		t.Errorf("break outer should edge past the outer loop to d(); succs of block %d don't", brk.Index)
	}
	// An unlabeled continue/break would have targeted the inner loop;
	// make sure the labeled ones do NOT edge to the inner post (j++).
	if succHas(cfg, fset, cont, "j++") {
		t.Errorf("continue outer must not edge to the inner loop's post block")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	for i := 0; i < 3; i++ {
		acquire()
		defer release()
	}
	after()`)
	// The defer is a plain statement of the loop body block (the
	// documented model: its effect applies at its program point), and the
	// body loops back through the post block.
	body := blockWith(t, cfg, fset, "defer release()")
	if lock := blockWith(t, cfg, fset, "acquire()"); lock != body {
		t.Errorf("acquire() and defer release() should share the loop body block; got %d and %d", lock.Index, body.Index)
	}
	if !succHas(cfg, fset, body, "i++") {
		t.Errorf("loop body should edge to the post block")
	}
	if !reachable(body)[blockWith(t, cfg, fset, "after()")] {
		t.Errorf("code after the loop should be reachable from the body")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	select {
	case <-ch:
		a()
	case ch2 <- v:
		b()
	default:
		c()
	}
	d()`)
	for _, stmt := range []string{"a()", "b()", "c()"} {
		cb := blockWith(t, cfg, fset, stmt)
		if !succHas(cfg, fset, cb, "d()") {
			t.Errorf("select clause %s should edge to d()", stmt)
		}
	}
	// The comm statement lives with its clause body.
	if blockWith(t, cfg, fset, "<-ch") != blockWith(t, cfg, fset, "a()") {
		t.Errorf("comm statement should share the clause body block")
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	before()
	select {}
	never()`)
	entry := blockWith(t, cfg, fset, "before()")
	if reachable(entry)[blockWith(t, cfg, fset, "never()")] {
		t.Errorf("code after select{} must be unreachable")
	}
	if reachable(entry)[cfg.Exit] {
		t.Errorf("select{} never returns; Exit must be unreachable")
	}
}

func TestCFGPanicEdges(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	defer func() {
		recover()
	}()
	if bad() {
		panic("x")
	}
	y()`)
	pb := blockWith(t, cfg, fset, `panic("x")`)
	// panic edges straight to Exit — a recover resumes in the caller,
	// not later in this body — and nothing else.
	if len(pb.Succs) != 1 || pb.Succs[0] != cfg.Exit {
		t.Errorf("panic block should have exactly the Exit successor, got %d succs", len(pb.Succs))
	}
	if !reachable(cfg.Entry)[blockWith(t, cfg, fset, "y()")] {
		t.Errorf("the non-panicking path to y() should remain reachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	d()`)
	fa := blockWith(t, cfg, fset, "a()")
	if !succHas(cfg, fset, fa, "b()") {
		t.Errorf("fallthrough should edge from case 1's body into case 2's body")
	}
	if succHas(cfg, fset, fa, "d()") {
		t.Errorf("a case ending in fallthrough must not edge to the after block")
	}
	for _, stmt := range []string{"b()", "c()"} {
		if !succHas(cfg, fset, blockWith(t, cfg, fset, stmt), "d()") {
			t.Errorf("case body %s should edge to d()", stmt)
		}
	}
}

func TestCFGGoto(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	i := 0
loop:
	if i < 3 {
		work()
		i++
		goto loop
	}
	done()`)
	gb := blockWith(t, cfg, fset, "goto loop")
	if !succHas(cfg, fset, gb, "i < 3") {
		t.Errorf("goto should edge back to the labeled block")
	}
	if !reachable(cfg.Entry)[blockWith(t, cfg, fset, "done()")] {
		t.Errorf("done() should be reachable")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	if c() {
		early()
		return
	}
	late()`)
	rb := blockWith(t, cfg, fset, "early()")
	if !succHas(cfg, fset, rb, "EXIT") {
		t.Errorf("return should edge to Exit")
	}
	if succHas(cfg, fset, rb, "late()") {
		t.Errorf("return must not fall through to late()")
	}
}

// TestDataflowForwardJoin checks the forward solver joins facts at merge
// points (and that solving is deterministic).
func TestDataflowForwardJoin(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	if c() {
		a()
	} else {
		b()
	}
	d()`)
	transfer := func(b *Block, in Fact) Fact {
		fact := in.(posSet)
		for _, n := range b.Nodes {
			txt := nodeText(fset, n)
			for _, gen := range []string{"a()", "b()"} {
				if strings.Contains(txt, gen) {
					fact = fact.with(gen, n.Pos())
				}
			}
		}
		return fact
	}
	prob := Problem{Lattice: posSetLattice{}, Direction: Forward, Transfer: transfer}
	sol := cfg.Solve(prob)
	merge := blockWith(t, cfg, fset, "d()")
	got := sol.In[merge].(posSet).sortedKeys()
	if len(got) != 2 || got[0] != "a()" || got[1] != "b()" {
		t.Errorf("fact at merge = %v, want union {a(), b()}", got)
	}
	if thenIn := sol.In[blockWith(t, cfg, fset, "a()")].(posSet); len(thenIn) != 0 {
		t.Errorf("branch entry fact should be empty, got %v", thenIn.sortedKeys())
	}
	again := cfg.Solve(prob)
	for _, b := range cfg.Blocks {
		if !prob.Lattice.Equal(sol.In[b], again.In[b]) || !prob.Lattice.Equal(sol.Out[b], again.Out[b]) {
			t.Fatalf("solver is not deterministic at block %d", b.Index)
		}
	}
}

// TestDataflowBackward checks boundary facts propagate against control
// flow, including around a loop.
func TestDataflowBackward(t *testing.T) {
	cfg, fset := cfgFromSrc(t, `
	for i := 0; i < 3; i++ {
		work()
	}
	tail()`)
	boundary := posSet{"exit": token.Pos(1)}
	sol := cfg.Solve(Problem{
		Lattice:   posSetLattice{},
		Direction: Backward,
		Boundary:  boundary,
		Transfer:  func(b *Block, in Fact) Fact { return in },
	})
	for _, probe := range []string{"work()", "tail()"} {
		b := blockWith(t, cfg, fset, probe)
		if got := sol.Out[b].(posSet); len(got) != 1 {
			t.Errorf("backward fact should reach %s; got %v", probe, got.sortedKeys())
		}
	}
}
