package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-alloc budget on functions marked with a
// `//ndlint:hotpath` doc comment — the Fork/Reconverge/mesh/diagnose
// hot loop that `make allocguard` pins at 0 allocs/op. Inside a marked
// function it flags the alloc-inducing constructs that have crept into
// hot loops before: fmt calls (every verb allocates), non-constant
// string concatenation, map literals and make(map), and append to a
// slice inside a loop when the slice was not preallocated with a
// length/capacity via make. Nested function literals inherit the
// marker: they run as part of the hot path.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no alloc-inducing constructs (fmt, string concat, map literals, unpreallocated append-in-loop) in //ndlint:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathMarker is the doc-comment marker that opts a function into the
// hotalloc budget.
const hotpathMarker = "//ndlint:hotpath"

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			if p.InTestFile(fn.Pos()) {
				continue
			}
			hotAllocFunc(p, fn.Body)
		}
	}
}

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

func hotAllocFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Info
	// Slices preallocated with make(T, n) or make(T, n, c) are allowed
	// to grow with append inside loops.
	prealloc := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if t := info.TypeOf(rhs); t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
					continue
				}
			}
			if lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.ObjectOf(lhs); obj != nil {
					prealloc[obj] = true
				}
			}
		}
		return true
	})

	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := isPkgCall(info, n, "fmt"); ok {
				p.Reportf(n.Pos(), "fmt.%s allocates; hotpath functions must stay alloc-free (build strings with strconv/append)", name)
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						if t := info.TypeOf(n); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								p.Reportf(n.Pos(), "make(map) allocates; hoist the map out of the hotpath or reuse a scratch buffer")
							}
						}
					case "append":
						if inLoop(stack) && !appendPreallocated(info, n, prealloc) {
							p.Reportf(n.Pos(), "append inside a loop grows an unpreallocated slice; make it with a capacity outside the loop")
						}
					}
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(n.Pos(), "map literal allocates; hoist it out of the hotpath")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				p.Reportf(n.Pos(), "string concatenation allocates; build hotpath keys with append on a byte slice")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isNonConstString(info, n.Lhs[0]) {
				p.Reportf(n.Pos(), "string += allocates; build hotpath keys with append on a byte slice")
			}
		}
		return true
	})
}

// isNonConstString reports whether e has string type and is not a
// compile-time constant (constant folding is free).
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	return tv.Value == nil
}

// inLoop reports whether the ancestor stack contains a loop.
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// appendPreallocated reports whether the append call grows a slice the
// function preallocated with a length/capacity.
func appendPreallocated(info *types.Info, call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	return obj != nil && prealloc[obj]
}
