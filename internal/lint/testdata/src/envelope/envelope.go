// Package server (fixture dir "envelope") is golden-test input for the
// envelope analyzer: error responses must flow through the writeError
// seam, and no path may write an HTTP status twice. The package is named
// server because the analyzer only guards the server package.
package server

import (
	"errors"
	"fmt"
	"net/http"
)

var errBoom = errors.New("boom")

// writeError is the envelope seam: the one place allowed to touch the
// wire directly with an error shape.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, code, msg)
}

// goodSeamUse answers errors through the seam and returns.
func goodSeamUse(w http.ResponseWriter, err error) {
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// badHTTPError bypasses the envelope with the stdlib helper.
func badHTTPError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want envelope "http.Error bypasses the v1 error envelope"
}

// badRawStatus writes an error status outside the seam.
func badRawStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest) // want envelope "WriteHeader(400) writes an error status outside the writeError seam"
}

// goodOKStatus writes a success status: only error statuses are gated.
func goodOKStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted)
}

// badHandRolledFprintf prints an error envelope by hand.
func badHandRolledFprintf(w http.ResponseWriter) {
	fmt.Fprintf(w, `{"error":{"code":"internal","message":%q}}`, errBoom) // want envelope "hand-rolled error JSON written to the ResponseWriter"
}

// badHandRolledWrite writes error JSON bytes directly.
func badHandRolledWrite(w http.ResponseWriter) {
	w.Write([]byte(`{"error":{"code":"internal"}}`)) // want envelope "hand-rolled error JSON written to the ResponseWriter"
}

// goodPayloadWrite writes non-error JSON directly: allowed.
func goodPayloadWrite(w http.ResponseWriter) {
	w.Write([]byte(`{"results":[]}`))
}

// badMissingReturn forgets the return after answering the error, so the
// success path writes a second status.
func badMissingReturn(w http.ResponseWriter, err error) {
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
	w.WriteHeader(http.StatusNoContent) // want envelope "HTTP status already written on this path"
}

// probe mirrors the /readyz plain-text exemption: a reasoned
// suppression keeps the deliberate bare status write.
func probe(w http.ResponseWriter, ready bool) {
	if !ready {
		//ndlint:ignore envelope fixture: plain-text probe endpoint for load balancers, the JSON envelope seam does not apply
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
}
