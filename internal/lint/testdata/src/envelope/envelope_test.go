package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// Test files are exempt: a test asserting raw wire behavior may answer
// however it likes. This file also forces the test-augmented variant of
// the package, exercising diagnostic dedupe across unit variants.
func TestRawErrorExempt(t *testing.T) {
	rec := httptest.NewRecorder()
	http.Error(rec, "boom", http.StatusInternalServerError)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
}
