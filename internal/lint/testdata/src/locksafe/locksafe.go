// Package locksafe is golden-test input for the locksafe analyzer:
// lock/unlock balance on all paths, the defer idiom, banned operations
// inside critical sections, and per-package lock-order facts.
package locksafe

import (
	"net/http"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

type queue struct{}

// TrySubmit mirrors the admission seam locksafe bans under a lock.
func (q *queue) TrySubmit(fn func()) bool { return true }

// goodDefer releases on every path via the defer idiom.
func (s *store) goodDefer(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// goodExplicit releases explicitly on both paths.
func (s *store) goodExplicit(k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

// goodDeferClosure releases through a directly deferred closure.
func (s *store) goodDeferClosure(k string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.m[k]
}

// badEarlyReturn leaks the lock on the miss path.
func (s *store) badEarlyReturn(k string) (int, bool) {
	s.mu.Lock() // want locksafe "s.mu is not released on every path out of the function"
	v, ok := s.m[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// badWrongMode releases the write half of an RWMutex taken for read.
func (s *store) badWrongMode(k string) int {
	s.rw.RLock() // want locksafe "s.rw (read) is not released on every path out of the function"
	v := s.m[k]
	s.rw.Unlock()
	return v
}

// goodRW balances the read mode.
func (s *store) goodRW(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.m[k]
}

// badDoubleLock re-acquires a lock it already holds.
func (s *store) badDoubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want locksafe "s.mu acquired while already held (self-deadlock)"
	s.mu.Unlock()
}

// badSubmitUnderLock enqueues while inside the critical section — the
// defer idiom must not blind the check.
func (s *store) badSubmitUnderLock(q *queue) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q.TrySubmit(func() {}) // want locksafe "admission-queue submit (TrySubmit) while holding s.mu"
}

// badHTTPUnderLock does a round trip while holding the lock.
func (s *store) badHTTPUnderLock(c *http.Client) {
	s.mu.Lock()
	_, _ = c.Get("http://example.invalid/") // want locksafe "HTTP round trip (http.Get) while holding s.mu"
	s.mu.Unlock()
}

// badRecvUnderLock may park on the channel with the lock held.
func (s *store) badRecvUnderLock(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want locksafe "channel receive while holding s.mu"
}

// goodSelectDefault is a non-blocking channel op: exempt.
func (s *store) goodSelectDefault(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// badIndirectUnderLock runs unknown code inside the critical section.
func (s *store) badIndirectUnderLock(build func() int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return build() // want locksafe "call through func value build while holding s.mu"
}

// goodBuildOutsideLock is the restructured shape: check under lock,
// build outside, re-check on re-lock.
func (s *store) goodBuildOutsideLock(k string, build func() int) int {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := build()
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.m[k]; ok {
		return prev
	}
	s.m[k] = v
	return v
}

// goodOwnCriticalSection: a closure that locks and unlocks for itself
// must not count as releasing the caller's lock (it runs later).
func (s *store) goodOwnCriticalSection(k string) func() {
	cleanup := func() {
		s.mu.Lock()
		delete(s.m, k)
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = 1
	return cleanup
}

// suppressed shows a reasoned suppression silencing a finding.
func (s *store) suppressed() {
	//ndlint:ignore locksafe fixture: demonstrates a reasoned suppression of a deliberate leak
	s.mu.Lock()
}

type orderA struct{ mu sync.Mutex }

type orderB struct{ mu sync.Mutex }

// abOrder acquires orderA.mu then orderB.mu.
func abOrder(x *orderA, y *orderB) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// baOrder acquires them in the opposite order: together with abOrder
// this is the AB/BA deadlock shape the lock-order facts catch.
func baOrder(x *orderA, y *orderB) {
	y.mu.Lock()
	x.mu.Lock() // want locksafe "lock-order cycle: orderA.mu and orderB.mu are acquired in both orders"
	x.mu.Unlock()
	y.mu.Unlock()
}
