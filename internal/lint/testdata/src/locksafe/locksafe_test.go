package locksafe

import "testing"

// Test files are exempt: a lock deliberately held across a test body
// (to force contention) is a legitimate pattern. This file also forces
// the test-augmented variant of the package, exercising diagnostic
// dedupe across unit variants.
func TestHeldLockExempt(t *testing.T) {
	s := &store{m: map[string]int{}}
	s.mu.Lock()
	if len(s.m) != 0 {
		t.Fatal("not empty")
	}
	// Deliberately not unlocked: exempt in _test.go.
}
