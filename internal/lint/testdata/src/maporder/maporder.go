// Package maporder is golden-test input for the maporder analyzer:
// deliberate determinism violations paired with the legal patterns the
// analyzer must not flag.
package maporder

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"sort"

	"netdiag/internal/telemetry"
)

// appendNoSort leaks map order into the returned slice.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder "append to \"keys\" inside map iteration without a later sort"
	}
	return keys
}

// appendThenSortStrings is the sanctioned sortedKeys idiom.
func appendThenSortStrings(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSortSlice sorts with a comparator; also legal.
func appendThenSortSlice(m map[int]string) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// appendThenSlicesSort uses the slices package; also legal.
func appendThenSlicesSort(m map[string]bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// appendThenSortStable reaches the slice through a conversion; the sort
// still counts.
func appendThenSortStable(m map[string]bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Stable(sort.StringSlice(keys))
	return keys
}

// fprintInLoop writes map-ordered lines to a writer.
func fprintInLoop(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maporder "map iteration feeds fmt.Fprintf"
	}
}

// bufferWriteInLoop hits the io.Writer method sink.
func bufferWriteInLoop(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want maporder "map iteration feeds Buffer.WriteString"
	}
	return b.String()
}

// csvWriteInLoop feeds CSV output in map order.
func csvWriteInLoop(w *csv.Writer, m map[string]string) {
	for k, v := range m {
		_ = w.Write([]string{k, v}) // want maporder "map iteration feeds Writer.Write"
	}
}

// spanInLoop records telemetry spans in map order.
func spanInLoop(tr *telemetry.Trace, m map[string]int) {
	for k := range m {
		tr.StartSpan(k)() // want maporder "map iteration feeds telemetry span recording"
	}
}

// mapToMap builds another map: order-insensitive, legal.
func mapToMap(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// localAppend appends to a slice scoped inside the loop; its order never
// escapes an iteration, legal.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}

// sliceRange iterates a slice, not a map: legal.
func sliceRange(xs []string, w io.Writer) {
	var out []string
	for _, x := range xs {
		out = append(out, x)
		fmt.Fprintln(w, x)
	}
	_ = out
}

// scalarSum folds into a scalar: commutative, legal.
func scalarSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
