// Package telemetry is golden-test input for the nilhandle analyzer.
// The analyzer gates on the package *name* telemetry, so this fixture
// declares it too and mirrors the real handle contract.
package telemetry

// A Gauge is a telemetry handle; a nil *Gauge is a no-op, so handles
// can be called unconditionally on the hot path.
type Gauge struct {
	v int64
}

// Set honors the contract: the nil guard is the first statement.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value guards and returns a zero value for nil handles: legal.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Inc delegates to Add in a single statement: legal, because calling a
// method on a nil pointer receiver does not dereference it and the
// callee carries the guard.
func (g *Gauge) Inc() {
	g.Add(1)
}

// Add dereferences a possibly-nil receiver with no guard.
func (g *Gauge) Add(v int64) { // want nilhandle "exported method (*Gauge).Add lacks a leading nil-receiver guard"
	g.v += v
}

// Swap guards, but not first: the contract wants the guard as the
// leading statement so nothing runs before it.
func (g *Gauge) Swap(v int64) int64 { // want nilhandle "exported method (*Gauge).Swap lacks a leading nil-receiver guard"
	old := v
	if g == nil {
		return 0
	}
	old, g.v = g.v, v
	return old
}

// reset is unexported: package-internal callers check for themselves.
func (g *Gauge) reset() {
	g.v = 0
}

// A Scratch accumulator makes no promise about handles being optional,
// so its methods owe no guard.
type Scratch struct {
	n int
}

// Bump has no guard and needs none: Scratch is not a nil-documented
// handle type.
func (s *Scratch) Bump() {
	s.n++
}
