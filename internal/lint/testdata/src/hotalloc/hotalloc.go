// Package hotalloc is golden-test input for the hotalloc analyzer:
// functions marked //ndlint:hotpath must avoid alloc-inducing
// constructs; unmarked functions are out of scope.
package hotalloc

import (
	"fmt"
	"strconv"
)

// coldFormat is unmarked: the zero-alloc budget does not apply.
func coldFormat(keys []string) string {
	s := ""
	for _, k := range keys {
		s += k
	}
	return fmt.Sprintf("[%s]", s)
}

//ndlint:hotpath
func badFmt(n int) string {
	return fmt.Sprintf("%d", n) // want hotalloc "fmt.Sprintf allocates; hotpath functions must stay alloc-free"
}

// goodStrconv builds the same string alloc-consciously.
//
//ndlint:hotpath
func goodStrconv(dst []byte, n int) []byte {
	return strconv.AppendInt(dst, int64(n), 10)
}

//ndlint:hotpath
func badMakeMap(n int) int {
	seen := make(map[int]bool, n) // want hotalloc "make(map) allocates"
	return len(seen)
}

//ndlint:hotpath
func badMapLiteral() int {
	weights := map[string]int{"a": 1} // want hotalloc "map literal allocates; hoist it out of the hotpath"
	return weights["a"]
}

//ndlint:hotpath
func badAppendInLoop(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want hotalloc "append inside a loop grows an unpreallocated slice"
	}
	return out
}

// goodPreallocAppend grows a slice made with a capacity: amortized free.
//
//ndlint:hotpath
func goodPreallocAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// goodAppendOutsideLoop appends once; no loop, no repeated growth.
//
//ndlint:hotpath
func goodAppendOutsideLoop(xs []int, x int) []int {
	return append(xs, x)
}

//ndlint:hotpath
func badConcat(a, b string) string {
	return a + b // want hotalloc "string concatenation allocates"
}

// goodConstConcat folds at compile time.
//
//ndlint:hotpath
func goodConstConcat() string {
	return "net" + "diag"
}

//ndlint:hotpath
func badPlusAssign(keys []string) string {
	s := ""
	for _, k := range keys {
		s += k // want hotalloc "string += allocates"
	}
	return s
}

// badNestedClosure: function literals inside a marked function run as
// part of the hot path and inherit the budget.
//
//ndlint:hotpath
func badNestedClosure(ns []int) func() string {
	return func() string {
		return fmt.Sprint(ns) // want hotalloc "fmt.Sprint allocates"
	}
}

// suppressed shows a reasoned suppression of a one-off alloc.
//
//ndlint:hotpath
func suppressed(n int) string {
	//ndlint:ignore hotalloc fixture: demonstrates a reasoned suppression of a cold error path inside a hot function
	return fmt.Sprintf("overflow at %d", n)
}
