package hotalloc

import (
	"fmt"
	"testing"
)

// Test files are exempt even when marked: benchmarks and helpers may
// format freely. This file also forces the test-augmented variant of
// the package, exercising diagnostic dedupe across unit variants.
//
//ndlint:hotpath
func formatForAssertion(n int) string {
	return fmt.Sprintf("%d", n)
}

func TestColdFormat(t *testing.T) {
	if got := formatForAssertion(7); got != "7" {
		t.Fatalf("got %q", got)
	}
}
