// Package ctxflow is golden-test input for the ctxflow analyzer.
package ctxflow

import (
	"context"
	"time"
)

func callee(ctx context.Context) error { return ctx.Err() }

func variadicCallee(ctx context.Context, xs ...int) { _ = xs }

// mintsBackground drops the caller's cancellation scope.
func mintsBackground(ctx context.Context) error {
	return callee(context.Background()) // want ctxflow "context.Background inside a function that receives a ctx"
}

// mintsTODO is the same defect spelled TODO.
func mintsTODO(ctx context.Context) error {
	return callee(context.TODO()) // want ctxflow "context.TODO inside a function that receives a ctx"
}

// passesNil hands a callee a nil context.
func passesNil(ctx context.Context) {
	_ = callee(nil) // want ctxflow "nil passed as context.Context"
}

// passesNilVariadic still resolves the fixed ctx parameter.
func passesNilVariadic(ctx context.Context) {
	variadicCallee(nil, 1, 2) // want ctxflow "nil passed as context.Context"
}

// forwards is the contract honored.
func forwards(ctx context.Context) error {
	return callee(ctx)
}

// derives builds a child context from the received one: legal.
func derives(ctx context.Context) error {
	child, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return callee(child)
}

// nilDefault is the sanctioned nil-tolerant entry-point idiom.
func nilDefault(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return callee(ctx)
}

// noCtxParam may mint roots freely: it owns no caller scope.
func noCtxParam() error {
	return callee(context.Background())
}

// closureInherits: a literal without its own ctx param lives in the
// enclosing function's scope, so minting a root inside it still drops
// the received ctx.
func closureInherits(ctx context.Context) func() error {
	return func() error {
		return callee(context.Background()) // want ctxflow "context.Background inside a function that receives a ctx"
	}
}

// closureOwnCtx: a literal with its own ctx parameter is its own scope
// and is judged on its own (and violates here).
func closureOwnCtx() func(context.Context) error {
	return func(ctx context.Context) error {
		return callee(context.TODO()) // want ctxflow "context.TODO inside a function that receives a ctx"
	}
}

// nilOutsideCtxFunc: nil contexts in ctx-less functions are the callee's
// problem (nil-tolerant entry points exist); not flagged here.
func nilOutsideCtxFunc() {
	_ = callee(nil)
}
