// Package stream is golden-test input for the tracecarry analyzer's
// streaming-plane scope: the analyzer gates on the package *name*
// stream (alongside server), because the streaming diagnoser hands
// closed events to the same admission queue as HTTP requests and owes
// them the same trace plumbing. The fixture models an ingest-triggered
// diagnosis hop without importing the service packages.
package stream

import "context"

// Trace stands in for the telemetry request trace.
type Trace struct{}

// ContextWithTrace mirrors telemetry.ContextWithTrace.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context { return ctx }

// TraceFromContext mirrors telemetry.TraceFromContext.
func TraceFromContext(ctx context.Context) *Trace { return nil }

// queue mirrors pool.Queue.
type queue struct{}

// TrySubmit mirrors the admission seam the analyzer keys on.
func (q *queue) TrySubmit(fn func()) bool { fn(); return true }

type processor struct{ q *queue }

// goodDiagnose forwards a closed event to the queue with the event's
// trace attached to the job context: legal.
func (p *processor) goodDiagnose(ctx context.Context, tr *Trace) {
	p.q.TrySubmit(func() {
		_ = ContextWithTrace(ctx, tr)
	})
}

// badIngestDiagnose is the ingest handler that drops the trace: it
// enqueues the event's diagnosis but never moves the trace across the
// worker hop, so the diagnosis spans land nowhere.
func (p *processor) badIngestDiagnose(ctx context.Context) {
	p.q.TrySubmit(func() { // want tracecarry "badIngestDiagnose enqueues work via TrySubmit without carrying the request trace"
		_ = ctx.Err()
	})
}

// sweepOnly never enqueues, so it owes no trace plumbing.
func (p *processor) sweepOnly(ctx context.Context) {
	_ = TraceFromContext
	_ = ctx.Err()
}
