// Package goleak is golden-test input for the goleak analyzer: bare go
// statements in library code must carry a visible termination edge — a
// context, a channel operation, or a WaitGroup join.
package goleak

import (
	"context"
	"sync"
)

type worker struct {
	n    int
	jobs chan int
}

func work() {}

// spin has no termination edge: it runs until the process dies.
func (w *worker) spin() {
	for {
		w.n++
	}
}

// pump drains the jobs channel; closing it terminates the goroutine.
func (w *worker) pump() {
	for j := range w.jobs {
		w.n += j
	}
}

// badBareGo spawns a goroutine nothing can stop.
func badBareGo() {
	go func() { // want goleak "goroutine has no termination edge (no ctx, done channel, or WaitGroup); it can outlive its caller"
		for {
			work()
		}
	}()
}

// badNamedSpin spawns a same-package method whose body shows no edge.
func badNamedSpin(w *worker) {
	go w.spin() // want goleak "goroutine has no termination edge"
}

// goodNamedPump: the callee's body parks on a channel the caller owns.
func goodNamedPump(w *worker) {
	go w.pump()
}

// goodCtxClosure watches its context.
func goodCtxClosure(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goodCtxArg passes a context into the spawned call: the callee is
// expected to honor it.
func goodCtxArg(ctx context.Context, run func(context.Context)) {
	go run(ctx)
}

// goodRecv parks on a done channel.
func goodRecv(done chan struct{}) {
	go func() {
		work()
		<-done
	}()
}

// goodSend is released by the reader of results.
func goodSend(results chan int) {
	go func() {
		results <- 1
	}()
}

// goodSelect multiplexes over channels.
func goodSelect(done chan struct{}, ticks chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// goodClose signals completion by closing a channel.
func goodClose(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

// goodWaitGroup is joined by the caller.
func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// goodIndirect spawns through a func value: the value's owner is assumed
// to bound it.
func goodIndirect(fn func()) {
	go fn()
}

// suppressed shows a reasoned suppression of a deliberate daemon.
func suppressed() {
	//ndlint:ignore goleak fixture: demonstrates a reasoned suppression of a process-lifetime daemon
	go func() {
		for {
			work()
		}
	}()
}
