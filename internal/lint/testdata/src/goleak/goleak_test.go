package goleak

import "testing"

// Test files are exempt: test lifetime bounds their goroutines. This
// file also forces the test-augmented variant of the package,
// exercising diagnostic dedupe across unit variants.
func TestBareGoExempt(t *testing.T) {
	go func() {
		for {
			work()
		}
	}()
	if testing.Short() {
		t.Skip()
	}
}
