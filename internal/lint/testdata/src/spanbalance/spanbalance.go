// Package spanbalance is golden-test input for the spanbalance
// analyzer: every telemetry span started must be ended on all paths,
// with discard/overwrite shape violations reported at their site.
package spanbalance

import "errors"

var errEarly = errors.New("early")

// tracer stands in for telemetry.Trace: span starts return an end func.
type tracer struct{}

func (t *tracer) StartSpan(name string) func()             { return func() {} }
func (t *tracer) StartIteration(name string, i int) func() { return func() {} }

func work()          {}
func stop(i int) bool { return i > 1 }
func finish(f func()) { f() }

// goodLinear ends the span on the only path.
func goodLinear(tr *tracer) {
	end := tr.StartSpan("linear")
	work()
	end()
}

// goodDefer ends via defer, covering every return.
func goodDefer(tr *tracer, fail bool) error {
	end := tr.StartSpan("deferred")
	defer end()
	if fail {
		return errEarly
	}
	return nil
}

// goodDeferInline starts and schedules the end in one statement.
func goodDeferInline(tr *tracer) {
	defer tr.StartSpan("inline")()
	work()
}

// goodIteration balances a per-iteration span.
func goodIteration(tr *tracer, n int) {
	for i := 0; i < n; i++ {
		endIt := tr.StartIteration("item", i)
		work()
		endIt()
	}
}

// badEarlyReturn leaks the span on the error path.
func badEarlyReturn(tr *tracer, fail bool) error {
	end := tr.StartSpan("load") // want spanbalance "span \"load\" started here is not ended on every path out of the function"
	if fail {
		return errEarly
	}
	end()
	return nil
}

// badDiscard drops the end func on the floor.
func badDiscard(tr *tracer) {
	tr.StartSpan("fire") // want spanbalance "the end func returned by the span start is discarded; the span \"fire\" is never ended"
	work()
}

// badDiscardBlank assigns the end func to the blank identifier.
func badDiscardBlank(tr *tracer) {
	_ = tr.StartSpan("blank") // want spanbalance "the end func returned by the span start is discarded; the span \"blank\" is never ended"
}

// badOverwrite replaces a live end func, orphaning the first span.
func badOverwrite(tr *tracer) {
	end := tr.StartSpan("first")
	end = tr.StartSpan("second") // want spanbalance "end func overwritten while its span \"first\""
	end()
}

// goodHandoff returns the end func: the caller owns the obligation.
func goodHandoff(tr *tracer) func() {
	end := tr.StartSpan("handoff")
	return end
}

// goodPassAlong hands the end func to another function.
func goodPassAlong(tr *tracer) {
	end := tr.StartSpan("pass")
	finish(end)
}

// goodClosureCapture lets a closure own the end call.
func goodClosureCapture(tr *tracer) func() {
	end := tr.StartSpan("captured")
	return func() {
		work()
		end()
	}
}

// badLoopLeak breaks out of the loop with the iteration span open.
func badLoopLeak(tr *tracer, n int) {
	for i := 0; i < n; i++ {
		end := tr.StartSpan("iter") // want spanbalance "span \"iter\" started here is not ended on every path out of the function"
		if stop(i) {
			break
		}
		end()
	}
}

// suppressed shows a reasoned suppression silencing a discard.
func suppressed(tr *tracer) {
	//ndlint:ignore spanbalance fixture: demonstrates a reasoned suppression of a fire-and-forget span
	tr.StartSpan("forgotten")
}
