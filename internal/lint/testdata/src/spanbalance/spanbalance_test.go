package spanbalance

import "testing"

// Test files are exempt: a span leaked inside a test dies with the
// test process. This file also forces the test-augmented variant of
// the package, exercising diagnostic dedupe across unit variants.
func TestSpanExempt(t *testing.T) {
	tr := &tracer{}
	end := tr.StartSpan("test-only")
	if end == nil {
		t.Fatal("no end func")
	}
	// Deliberately not ended: exempt in _test.go.
}
