// Package stream (fixture dir "streamenvelope") is golden-test input
// for the envelope analyzer's streaming-plane scope: the ingest and
// event endpoints answer errors in the same v1 envelope as the server
// package, through a stream-local writeError seam the analyzer
// recognizes by name.
package stream

import (
	"fmt"
	"net/http"
)

// writeError is the stream package's leg of the envelope seam.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, code, msg)
}

// goodIngest answers a bad chunk through the seam and returns.
func goodIngest(w http.ResponseWriter, ok bool) {
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request", "bad chunk")
		return
	}
	w.Write([]byte(`{"accepted":1,"rejected":0}`))
}

// badIngestHTTPError bypasses the envelope with the stdlib helper.
func badIngestHTTPError(w http.ResponseWriter) {
	http.Error(w, "unknown scenario", http.StatusNotFound) // want envelope "http.Error bypasses the v1 error envelope"
}

// badIngestMissingReturn keeps writing after the seam answered: the
// classic missing-return double status write.
func badIngestMissingReturn(w http.ResponseWriter, ok bool) {
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "draining", "draining")
	}
	w.WriteHeader(http.StatusOK) // want envelope "HTTP status already written on this path"
}
