// Package globalrand is golden-test input for the globalrand analyzer.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// pickGlobal draws from the process-global source: racy across the
// worker pool and unseeded across runs.
func pickGlobal(n int) int {
	return rand.Intn(n) // want globalrand "global math/rand source (rand.Intn)"
}

// jitterGlobal is the same defect through a float helper.
func jitterGlobal() float64 {
	return rand.Float64() // want globalrand "global math/rand source (rand.Float64)"
}

// shuffleGlobal mutates through the global source.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want globalrand "global math/rand source (rand.Shuffle)"
}

// pickGlobalV2 shows math/rand/v2 is covered too, import rename and all.
func pickGlobalV2(n int) int {
	return randv2.IntN(n) // want globalrand "global math/rand source (rand.IntN)"
}

// clockSeeded is an unseeded RNG in disguise: the seed is a wall-clock
// read, so no two runs agree.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want globalrand "RNG seeded from the wall clock"
}

// clockSeededV2 hides the clock one expression deeper.
func clockSeededV2() *randv2.Rand {
	return randv2.New(randv2.NewPCG(uint64(time.Now().UnixNano()), 2)) // want globalrand "RNG seeded from the wall clock"
}

// seeded is the sanctioned pattern: the RNG derives from a scenario
// seed threaded in by the caller.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// seededV2 is the v2 spelling of the same pattern.
func seededV2(a, b uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(a, b))
}

// methods on a seeded *rand.Rand are fine: the source is owned.
func drawSeeded(r *rand.Rand, n int) int {
	return r.Intn(n)
}
