package wallclock

import (
	"testing"
	"time"
)

// Test files are exempt: timing a test for reporting never feeds
// pipeline results. This file also forces the test-augmented variant of
// the package to be analyzed, so the golden test exercises diagnostic
// dedupe across unit variants.
func TestClockExempt(t *testing.T) {
	t0 := time.Now()
	if time.Since(t0) < 0 {
		t.Fatal("clock went backwards")
	}
}
