// Package wallclock is golden-test input for the wallclock analyzer.
package wallclock

import "time"

// Stamp reads the clock in library code: the core violation.
func Stamp() time.Time {
	return time.Now() // want wallclock "wall-clock read time.Now"
}

// Elapsed reads the clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "wall-clock read time.Since"
}

// Deadline reads the clock through Until.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want wallclock "wall-clock read time.Until"
}

// Pure time arithmetic never reads the clock: legal.
func Pure(a, b time.Time) time.Duration {
	_ = time.Date(2007, 12, 10, 0, 0, 0, 0, time.UTC)
	_ = a.Add(3 * time.Second)
	return a.Sub(b)
}

// Suppressions with a reason silence a finding in place: on the same
// line or on the line directly above.
func suppressed() (time.Time, time.Time) {
	a := time.Now() //ndlint:ignore wallclock same-line suppression exercised by golden tests
	//ndlint:ignore wallclock line-above suppression exercised by golden tests
	b := time.Now()
	return a, b
}
