// Package server is golden-test input for the tracecarry analyzer. The
// analyzer gates on the package *name* server and matches the trace
// plumbing by function name, so this fixture models the real admission
// seam — TrySubmit, a coalescing submit argument, the trace context
// helpers — without importing the service packages.
package server

import "context"

// Trace stands in for the telemetry request trace.
type Trace struct{}

// ContextWithTrace mirrors telemetry.ContextWithTrace.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context { return ctx }

// TraceFromContext mirrors telemetry.TraceFromContext.
func TraceFromContext(ctx context.Context) *Trace { return nil }

// queue mirrors pool.Queue.
type queue struct{}

// TrySubmit mirrors the admission seam the analyzer keys on.
func (q *queue) TrySubmit(fn func()) bool { fn(); return true }

// do mirrors flightGroup.do: the enqueue happens through the submit
// argument the handler passes in.
func do(submit func(func()) bool, compute func()) { submit(compute) }

type handlers struct{ q *queue }

// goodAttach enqueues and attaches the trace to the job context: legal.
func (h *handlers) goodAttach(ctx context.Context, tr *Trace) {
	h.q.TrySubmit(func() {
		_ = ContextWithTrace(ctx, tr)
	})
}

// goodInherit enqueues and picks the inherited trace up inside the job:
// legal.
func (h *handlers) goodInherit(ctx context.Context) {
	do(h.q.TrySubmit, func() {
		_ = TraceFromContext(ctx)
	})
}

// badDirect enqueues a closure that runs without the request trace.
func (h *handlers) badDirect(ctx context.Context) {
	h.q.TrySubmit(func() { // want tracecarry "badDirect enqueues work via TrySubmit without carrying the request trace"
		_ = ctx.Err()
	})
}

// badViaSubmitArg drops the trace even though TrySubmit is only passed
// along as the coalescing group's submit argument, never called here.
func (h *handlers) badViaSubmitArg(ctx context.Context) {
	do(h.q.TrySubmit, func() { // want tracecarry "badViaSubmitArg enqueues work via TrySubmit without carrying the request trace"
		_ = ctx.Err()
	})
}

// noEnqueue never touches the queue, so it owes no trace plumbing.
func (h *handlers) noEnqueue(ctx context.Context) {
	_ = ContextWithTrace
	_ = ctx.Err()
}
