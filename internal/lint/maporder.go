package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder encodes the byte-determinism contract of the figure/CSV
// pipeline: iterating a Go map yields a scheduling-dependent order, so a
// `for range` over a map must not feed order-sensitive output. Flagged
// sinks inside the loop body are
//
//   - appends to a slice declared outside the loop with no subsequent
//     sort of that slice in the same function,
//   - writes to an io.Writer (fmt.Fprint*/Print*, Write/WriteString/...
//     methods) including encoding/csv writers,
//   - telemetry span recording (*telemetry.Trace methods), whose span
//     order is part of the rendered output.
//
// Building another map, or summing into scalars, is order-insensitive
// and not flagged. Collect the keys, sort them (see
// experiment.sortedKeys), and iterate the slice instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration must not feed ordered output (slices left unsorted, writers, spans)",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		// Collect enclosing function bodies so "a later sort in the same
		// function" has a scope to search.
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, rs, enclosingBody(stack))
			return true
		})
	}
}

// enclosingBody returns the innermost function body on the stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(p *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	// Slices appended to inside the loop, keyed by their variable; the
	// value is the position of the first append (for the report).
	appended := map[*types.Var]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || len(call.Args) == 0 {
					continue
				}
				v := sliceVar(p.Info, call.Args[0])
				if v == nil {
					continue
				}
				// Only slices that outlive the loop carry its order out.
				if v.Pos() < rs.Pos() || v.Pos() > rs.End() {
					if _, ok := appended[v]; !ok {
						appended[v] = call.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := writerSink(p, n); ok {
				p.Reportf(n.Pos(), "map iteration feeds %s; iterate sorted keys instead (determinism contract)", name)
			}
		}
		return true
	})

	for v, pos := range appended {
		if fnBody != nil && sortedAfter(p, fnBody, rs, v) {
			continue
		}
		p.Reportf(pos, "append to %q inside map iteration without a later sort; sort %q or iterate sorted keys (determinism contract)", v.Name(), v.Name())
	}
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sliceVar resolves the appendee expression to its variable, if it is a
// plain identifier.
func sliceVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// writerSink reports whether the call writes to ordered output: a
// fmt.Print*/Fprint* call, a Write-family method on an io.Writer, an
// encoding/csv writer, or a telemetry trace span.
func writerSink(p *Pass, call *ast.CallExpr) (string, bool) {
	if name, ok := isPkgCall(p.Info, call, "fmt",
		"Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println"); ok {
		return "fmt." + name, true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	name := sel.Sel.Name
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
		if implementsIOWriter(recv) || isNamed(recv, "encoding/csv", "Writer") {
			return typeLabel(recv) + "." + name, true
		}
	case "StartSpan", "StartIteration":
		if isNamed(recv, p.ModPath+"/internal/telemetry", "Trace") {
			return "telemetry span recording", true
		}
	}
	return "", false
}

// ioWriter is the io.Writer interface, built directly so the analyzer
// does not depend on loading package io.
var ioWriter = types.NewInterfaceType([]*types.Func{
	types.NewFunc(token.NoPos, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p",
			types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type())),
		false)),
}, nil).Complete()

func implementsIOWriter(t types.Type) bool {
	return types.Implements(t, ioWriter) ||
		types.Implements(types.NewPointer(t), ioWriter)
}

func typeLabel(t types.Type) string {
	if n := namedType(t); n != nil {
		return n.Obj().Name()
	}
	return t.String()
}

// sortedAfter reports whether v is sorted (sort.* or slices.Sort*) by a
// call positioned after the range statement inside the function body.
func sortedAfter(p *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(p.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(p.Info, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := isPkgCall(info, call, "sort",
		"Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s"); ok {
		return true
	}
	if _, ok := isPkgCall(info, call, "slices",
		"Sort", "SortFunc", "SortStableFunc"); ok {
		return true
	}
	return false
}

// refersTo reports whether expr mentions the variable v (directly or
// under & / parens / selector roots).
func refersTo(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
			return false
		}
		return !found
	})
	return found
}
