package lint

import (
	"go/ast"
	"go/types"
)

// All returns the project's analyzers in their canonical (alphabetical)
// order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		Envelope,
		GlobalRand,
		GoLeak,
		HotAlloc,
		LockSafe,
		MapOrder,
		NilHandle,
		SpanBalance,
		TraceCarry,
		WallClock,
	}
}

// calleeFunc resolves a call to the *types.Func it invokes, if any
// (package-level function or method; nil for builtins, conversions and
// indirect calls through plain variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgCall reports whether the call invokes the package-level function
// pkgPath.name (resolved through the type info, so import renames are
// handled).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // method, not a package-level function
	}
	if len(names) == 0 {
		return f.Name(), true
	}
	for _, n := range names {
		if f.Name() == n {
			return n, true
		}
	}
	return "", false
}

// namedType unwraps pointers and aliases to the *types.Named beneath a
// type, if any.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamed(t, "context", "Context")
}

// hasCtxParam returns the *types.Var of the first context.Context
// parameter of the function type, or nil.
func hasCtxParam(sig *types.Signature) *types.Var {
	if sig == nil {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

// funcBodies visits every function body in the files: declarations and
// function literals, paired with the enclosing *types.Signature.
func funcBodies(p *Pass, visit func(sig *types.Signature, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
						visit(obj.Type().(*types.Signature), fn.Body)
					}
				}
			case *ast.FuncLit:
				if sig, ok := p.Info.TypeOf(fn.Type).(*types.Signature); ok {
					visit(sig, fn.Body)
				}
			}
			return true
		})
	}
}

// inspectStack walks root calling fn with the ancestor stack (outermost
// first, not including n itself). Returning false skips the subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // subtree skipped: no matching nil arrives
		}
		stack = append(stack, n)
		return true
	})
}
