package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Version identifies the analysis semantics of this ndlint build. It is
// folded into every cache key, so bumping it (whenever an analyzer, the
// CFG lowering, or the suppression rules change behavior) invalidates
// all persisted results at once.
const Version = "2"

// The incremental cache persists per-package findings under
// <module>/.ndlint-cache/, one JSON entry per package directory. An
// entry is valid only when its key matches, and the key is a content
// hash over everything that can change the package's findings:
//
//   - Version and the exact analyzer set of the run,
//   - the names and contents of the directory's Go files (including
//     in-package and external test files), and
//   - recursively, the same digest for every module-local package the
//     directory imports — so editing one file re-lints its package and
//     every reverse dependency, and nothing else.
//
// Any defect in an entry — missing, truncated, corrupted JSON, stale
// digest, foreign version — reads as a cache miss and falls back to a
// cold analysis of that package; the cache can never change what a run
// reports, only how much of it is recomputed. Entries are written via
// rename so a crashed run leaves no torn files.
type lintCache struct {
	root  string // cache directory
	ld    *loader
	azKey string // Version + analyzer-set fold-in for key()

	digests map[string]string // package dir -> transitive content digest
	walking map[string]bool   // guards digest recursion against cycles
}

// cacheEntry is the persisted form of one package directory's result.
type cacheEntry struct {
	Version  string       `json:"version"`
	Digest   string       `json:"digest"`
	Findings []Diagnostic `json:"findings"`
}

func newLintCache(ld *loader, dir string, analyzers []*Analyzer) *lintCache {
	if dir == "" {
		dir = filepath.Join(ld.modRoot, ".ndlint-cache")
	}
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return &lintCache{
		root:    dir,
		ld:      ld,
		azKey:   Version + "|" + strings.Join(names, ","),
		digests: map[string]string{},
		walking: map[string]bool{},
	}
}

// key computes the full cache key for one package directory.
func (c *lintCache) key(dir string) (string, error) {
	td, err := c.transitive(dir)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(c.azKey + "|" + td))
	return hex.EncodeToString(h[:]), nil
}

// transitive digests the directory's Go sources and, recursively, those
// of every module-local import (std imports are pinned by the toolchain
// and excluded). Results are memoized per run, so a warm full-repo pass
// hashes each file exactly once.
func (c *lintCache) transitive(dir string) (string, error) {
	if d, ok := c.digests[dir]; ok {
		return d, nil
	}
	if c.walking[dir] {
		// Only an external-test self-import can revisit a directory; its
		// files are already in the digest in progress.
		return "", nil
	}
	c.walking[dir] = true
	defer delete(c.walking, dir)

	bp, err := c.ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		return "", err
	}
	files := make([]string, 0, len(bp.GoFiles)+len(bp.TestGoFiles)+len(bp.XTestGoFiles))
	files = append(append(append(files, bp.GoFiles...), bp.TestGoFiles...), bp.XTestGoFiles...)
	sort.Strings(files)
	h := sha256.New()
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s\x00%x\n", name, sum)
	}

	self := c.ld.importPath(dir)
	deps := map[string]bool{}
	for _, set := range [][]string{bp.Imports, bp.TestImports, bp.XTestImports} {
		for _, ip := range set {
			if ip != self && (ip == c.ld.modPath || strings.HasPrefix(ip, c.ld.modPath+"/")) {
				deps[ip] = true
			}
		}
	}
	sorted := make([]string, 0, len(deps))
	for ip := range deps {
		sorted = append(sorted, ip)
	}
	sort.Strings(sorted)
	for _, ip := range sorted {
		depDir, err := c.ld.resolveDir(ip)
		if err != nil {
			return "", err
		}
		dd, err := c.transitive(depDir)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "import %s %s\n", ip, dd)
	}

	digest := hex.EncodeToString(h.Sum(nil))
	c.digests[dir] = digest
	return digest, nil
}

// entryPath maps a package directory to its cache file, named after the
// import path with separators flattened.
func (c *lintCache) entryPath(dir string) string {
	return filepath.Join(c.root, strings.ReplaceAll(c.ld.importPath(dir), "/", "__")+".json")
}

// lookup returns the cached findings for dir, or ok=false when the
// package must be analyzed cold.
func (c *lintCache) lookup(dir string) ([]Diagnostic, bool) {
	key, err := c.key(dir)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(dir))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Version != Version || e.Digest != key {
		return nil, false
	}
	return e.Findings, true
}

// store persists one freshly analyzed directory's findings. Failures are
// deliberately silent: a cache that cannot be written degrades to cold
// runs, never to a failed lint.
func (c *lintCache) store(dir string, findings []Diagnostic) {
	key, err := c.key(dir)
	if err != nil {
		return
	}
	if findings == nil {
		findings = []Diagnostic{}
	}
	data, err := json.Marshal(cacheEntry{Version: Version, Digest: key, Findings: findings})
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.root, 0o755); err != nil {
		return
	}
	tmp := c.entryPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, c.entryPath(dir)); err != nil {
		os.Remove(tmp)
	}
}
