package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafe encodes the concurrency contract that keeps the serving
// layer's shared state race-free: a sync.Mutex/RWMutex acquired in a
// function is released on every path out of it (the defer idiom counts
// the moment it executes), a lock is never re-acquired while already
// held (self-deadlock), and critical sections stay small — no admission-
// queue submit (TrySubmit), no HTTP round trip, no potentially-blocking
// channel operation, and no call through a func-typed value (unknown
// code) while a lock is held. Channel operations inside a select with a
// default clause are non-blocking and exempt. Per package, the analyzer
// also derives lock-order facts — which lock types were held while
// acquiring which — and reports a cycle (A held while taking B, and B
// held while taking A elsewhere) as a potential deadlock.
//
// The analysis is flow-sensitive: each function body is lowered to a
// CFG (cfg.go) and a forward held-set fact is solved to fixpoint
// (dataflow.go), so early returns, loops, labeled breaks and panic
// edges are all real paths that must release.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "every Lock has an Unlock on all paths out; no queue submit, HTTP round trip, channel op or indirect call while a lock is held",
	Run:  runLockSafe,
}

// lockOrderFact is one "held A while acquiring B" observation.
type lockOrderFact struct {
	held, acquired string
	pos            token.Pos
}

func runLockSafe(p *Pass) {
	var order []lockOrderFact
	funcBodies(p, func(sig *types.Signature, body *ast.BlockStmt) {
		order = append(order, lockSafeFunc(p, body)...)
	})
	reportLockOrderCycles(p, order)
}

// lockSafeFunc analyzes one function body and returns the lock-order
// facts it observed.
//
// Two dataflow problems over the same CFG, differing only in how they
// treat deferred code:
//
//   - The balance fact drives the release-on-all-paths check. A
//     deferred unlock (`defer mu.Unlock()` or `defer func() {
//     mu.Unlock() }()`) releases on every path that passes its program
//     point, so it kills the fact right there. What survives to Exit is
//     an acquire some path never releases.
//   - The held fact drives the while-held checks (banned operations,
//     double-acquire, lock-order). A deferred unlock runs at function
//     exit, so it must NOT kill: the lock is held for the rest of the
//     body. Deferred subtrees and nested closures are skipped entirely
//     in this mode (they don't execute at their program point).
//
// Using the balance fact for while-held checks would blind them in
// exactly the defer-idiom functions the repo prefers.
func lockSafeFunc(p *Pass, body *ast.BlockStmt) []lockOrderFact {
	cfg := buildCFG(body, p.Info)
	// exemptChanOps are channel operations inside a select that has a
	// default clause: they never block.
	exemptChanOps := nonBlockingChanOps(body)
	// typeKeys lifts each acquire site's per-function key to the
	// type-level key lock-order facts compare across functions.
	typeKeys := map[string]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, kind := lockOp(p.Info, call); kind == lockAcquire {
				typeKeys[key] = lockTypeKeyOf(p.Info, call)
			}
		}
		return true
	})

	balanceWalk := func(n ast.Node, visit func(ast.Node)) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if sub == nil {
				return false
			}
			if d, ok := sub.(*ast.DeferStmt); ok {
				// Visit the deferred call so `defer mu.Unlock()` kills;
				// a directly deferred closure's unlocks count too.
				if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
					visit(d.Call)
					ast.Inspect(fl.Body, func(m ast.Node) bool {
						if _, kind := lockOp(p.Info, m); kind == lockRelease {
							visit(m)
						}
						_, isLit := m.(*ast.FuncLit)
						return !isLit
					})
					return false
				}
				return true
			}
			// Closures not directly deferred are opaque: they run at an
			// unknown time (or re-lock for their own critical section,
			// like a flight's cleanup), so their lock ops are theirs.
			if _, isLit := sub.(*ast.FuncLit); isLit {
				return false
			}
			visit(sub)
			return true
		})
	}
	heldWalk := func(n ast.Node, visit func(ast.Node)) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if sub == nil {
				return false
			}
			switch sub.(type) {
			case *ast.DeferStmt, *ast.FuncLit:
				return false
			}
			visit(sub)
			return true
		})
	}

	apply := func(b *Block, in posSet, walk func(ast.Node, func(ast.Node)), visit func(sub ast.Node, fact posSet) posSet) posSet {
		fact := in
		for _, n := range b.Nodes {
			walk(n, func(sub ast.Node) {
				fact = visit(sub, fact)
			})
		}
		return fact
	}
	lockTransfer := func(sub ast.Node, fact posSet) posSet {
		switch key, kind := lockOp(p.Info, sub); kind {
		case lockAcquire:
			return fact.with(key, sub.Pos())
		case lockRelease:
			return fact.without(key)
		}
		return fact
	}

	balanceSol := cfg.Solve(Problem{
		Lattice:   posSetLattice{},
		Direction: Forward,
		Transfer: func(b *Block, in Fact) Fact {
			return apply(b, in.(posSet), balanceWalk, lockTransfer)
		},
	})
	heldSol := cfg.Solve(Problem{
		Lattice:   posSetLattice{},
		Direction: Forward,
		Transfer: func(b *Block, in Fact) Fact {
			return apply(b, in.(posSet), heldWalk, lockTransfer)
		},
	})

	// Reporting pass over the held facts: re-walk each block from its
	// solved in-fact so every node sees the exact held set on its path.
	var order []lockOrderFact
	type rep struct {
		pos token.Pos
		msg string
	}
	seen := map[rep]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if p.InTestFile(pos) {
			return
		}
		r := rep{pos, fmt.Sprintf(format, args...)}
		if !seen[r] {
			seen[r] = true
			p.Reportf(pos, "%s", r.msg)
		}
	}
	for _, b := range cfg.Blocks {
		apply(b, heldSol.In[b].(posSet), heldWalk, func(sub ast.Node, fact posSet) posSet {
			if len(fact) > 0 {
				if msg := bannedUnderLock(p.Info, sub, exemptChanOps); msg != "" {
					report(sub.Pos(), "%s while holding %s; move it outside the critical section",
						msg, lockKeyNames(fact.sortedKeys()))
				}
			}
			if key, kind := lockOp(p.Info, sub); kind == lockAcquire {
				if _, already := fact[key]; already {
					report(sub.Pos(), "%s acquired while already held (self-deadlock)", lockKeyName(key))
				}
				for _, heldKey := range fact.sortedKeys() {
					if ht, at := typeKeys[heldKey], typeKeys[key]; ht != "" && at != "" && ht != at {
						order = append(order, lockOrderFact{held: ht, acquired: at, pos: sub.Pos()})
					}
				}
			}
			return lockTransfer(sub, fact)
		})
	}
	exitFact := balanceSol.In[cfg.Exit].(posSet)
	for _, key := range exitFact.sortedKeys() {
		report(exitFact[key], "%s is not released on every path out of the function; add the missing Unlock or use the defer idiom", lockKeyName(key))
	}
	return order
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a node as a lock acquire/release on a canonically
// keyed sync.Mutex/RWMutex, or neither. Keys end in "#w" (Lock/Unlock)
// or "#r" (RLock/RUnlock) so the two RWMutex modes balance separately.
func lockOp(info *types.Info, n ast.Node) (string, lockKind) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", lockNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	var mode string
	var kind lockKind
	switch fn.Name() {
	case "Lock":
		mode, kind = "#w", lockAcquire
	case "Unlock":
		mode, kind = "#w", lockRelease
	case "RLock":
		mode, kind = "#r", lockAcquire
	case "RUnlock":
		mode, kind = "#r", lockRelease
	default:
		return "", lockNone
	}
	key := exprKey(info, sel.X)
	if key == "" {
		return "", lockNone
	}
	return key + mode, kind
}

// exprKey canonicalizes a lock receiver expression — an identifier or a
// chain of field selections rooted in one — to a stable per-function
// key. Anything else (index expressions, call results) is untrackable
// and yields "".
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return fmt.Sprintf("%s@%d", e.Name, obj.Pos())
		}
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// lockKeyName renders a lock key for humans: strip the position
// disambiguator and the mode suffix.
func lockKeyName(key string) string {
	name := key
	mode := ""
	if cut, ok := strings.CutSuffix(name, "#w"); ok {
		name, mode = cut, ""
	} else if cut, ok := strings.CutSuffix(name, "#r"); ok {
		name, mode = cut, " (read)"
	}
	var parts []string
	for _, seg := range strings.Split(name, ".") {
		if at := strings.IndexByte(seg, '@'); at >= 0 {
			seg = seg[:at]
		}
		parts = append(parts, seg)
	}
	return strings.Join(parts, ".") + mode
}

func lockKeyNames(keys []string) string {
	names := make([]string, len(keys))
	for i, k := range keys {
		names[i] = lockKeyName(k)
	}
	return strings.Join(names, ", ")
}

// lockTypeKeyOf lifts one acquire site to the per-package type-level key
// lock-order facts compare across functions: the named type owning the
// mutex field plus the field name (e.g. "flightGroup.mu"). Locks that
// are not fields of a named type — plain local mutex variables — yield
// "" and stay out of ordering.
func lockTypeKeyOf(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	owner := namedType(info.TypeOf(field.X))
	if owner == nil {
		return ""
	}
	return owner.Obj().Name() + "." + field.Sel.Name
}

// reportLockOrderCycles reports pairs of lock types acquired in both
// orders within the package — the classic AB/BA deadlock shape.
func reportLockOrderCycles(p *Pass, facts []lockOrderFact) {
	type edge struct{ a, b string }
	first := map[edge]token.Pos{}
	for _, f := range facts {
		e := edge{f.held, f.acquired}
		if pos, ok := first[e]; !ok || f.pos < pos {
			first[e] = f.pos
		}
	}
	var reported []edge
	for e := range first {
		rev := edge{e.b, e.a}
		if _, ok := first[rev]; ok && e.a < e.b {
			reported = append(reported, e)
		}
	}
	sort.Slice(reported, func(i, j int) bool {
		if reported[i].a != reported[j].a {
			return reported[i].a < reported[j].a
		}
		return reported[i].b < reported[j].b
	})
	for _, e := range reported {
		pos := first[e]
		if other := first[edge{e.b, e.a}]; other > pos {
			pos = other
		}
		if p.InTestFile(pos) {
			continue
		}
		p.Reportf(pos, "lock-order cycle: %s and %s are acquired in both orders in this package (potential deadlock); pick one order and document it", e.a, e.b)
	}
}

// bannedUnderLock classifies operations that must not run while a lock
// is held; it returns a short description or "".
func bannedUnderLock(info *types.Info, n ast.Node, exemptChanOps map[ast.Node]bool) string {
	switch n := n.(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(info, n); fn != nil {
			if fn.Name() == "TrySubmit" {
				return "admission-queue submit (TrySubmit)"
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
				switch fn.Name() {
				case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
					return "HTTP round trip (http." + fn.Name() + ")"
				}
			}
			return ""
		}
		// Indirect call through a func-typed value: unknown code runs
		// inside the critical section.
		if isIndirectCall(info, n) {
			return "call through func value " + indirectCallName(n)
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !exemptChanOps[n] {
			return "channel receive"
		}
	case *ast.SendStmt:
		if !exemptChanOps[n] {
			return "channel send"
		}
	}
	return ""
}

// isIndirectCall reports whether call invokes a plain func-typed value
// (variable, parameter or field) rather than a declared function,
// method, builtin or conversion.
func isIndirectCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		if _, ok := obj.(*types.Var); !ok {
			return false
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if _, ok := sel.Obj().(*types.Var); !ok {
				return false
			}
		} else if _, ok := info.Uses[fun.Sel].(*types.Var); !ok {
			return false
		}
	default:
		return false
	}
	if tv, ok := info.Types[call.Fun]; ok {
		_, isSig := tv.Type.Underlying().(*types.Signature)
		return isSig
	}
	return false
}

func indirectCallName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "?"
}

// nonBlockingChanOps collects the channel operations that appear as the
// comm statement of a select clause whose select carries a default case:
// those never block.
func nonBlockingChanOps(body *ast.BlockStmt) map[ast.Node]bool {
	exempt := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.UnaryExpr, *ast.SendStmt:
					exempt[m] = true
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// walkSkipFuncLit visits every node of the subtree rooted at n except
// the insides of nested function literals (their flow is analyzed
// separately); the literal itself is still visited.
func walkSkipFuncLit(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			return false
		}
		visit(sub)
		_, isLit := sub.(*ast.FuncLit)
		return !isLit
	})
}
