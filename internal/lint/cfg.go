package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the control-flow half of the dataflow lint framework: an
// intraprocedural CFG built directly over go/ast, with go/types on hand
// for the semantic questions the builder must answer (is this call the
// builtin panic? is that range expression a channel?). Blocks carry the
// statements they execute in order; edges carry Go's structured control
// flow — loops, labeled break/continue, switch/type-switch/select,
// goto, fallthrough — plus a synthetic Exit block every return, every
// panic and the final fallthrough all converge on. The dataflow solver
// in dataflow.go runs lattice problems over this graph.
//
// Two deliberate simplifications, both safe for the analyzers built on
// top:
//
//   - defer is a plain statement, not an exit-time edge. Analyzers that
//     care (locksafe, spanbalance) treat a DeferStmt as taking effect at
//     its program point: once `defer mu.Unlock()` executes, every path
//     leaving the function releases the lock, so killing the fact right
//     there is sound — and it naturally keeps a defer inside one branch
//     from excusing the branch that never ran it.
//   - panic edges go to Exit. A recover in a deferred closure resumes in
//     the caller, not in this function's body, so for intraprocedural
//     facts "panic leaves the function" is the truth.

// Block is one straight-line run of statements. Nodes holds the
// statements (and branch-deciding expressions) in execution order; Succs
// are the blocks control can reach next, in deterministic source order.
type Block struct {
	// Index is the block's position in CFG.Blocks (creation order; Entry
	// is 0). Solver worklists key on it so iteration is deterministic.
	Index int
	// Nodes are the statements executed in this block, in order.
	Nodes []ast.Node
	// Succs are the successor blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in creation (roughly source) order.
	// Blocks[0] is Entry.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the synthetic block every return, panic and normal
	// function end flows into. It holds no statements.
	Exit *Block
}

// cfgBuilder tracks the open control-flow context while walking a body.
type cfgBuilder struct {
	cfg  *CFG
	cur  *Block // nil after a terminator (return/branch/panic): code is unreachable
	info *types.Info

	// targets is the stack of enclosing breakable/continuable regions.
	targets []cfgTarget
	// labels maps label names to their blocks, for goto and labeled
	// break/continue. Forward gotos are patched via gotoFixups.
	labels     map[string]*Block
	gotoFixups []gotoFixup
	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built, so `break L`/`continue L` can find its loop.
	pendingLabel string
}

// cfgTarget is one enclosing loop/switch/select a break or continue can
// jump out of. cont is nil for switch/select (continue skips them).
type cfgTarget struct {
	label string
	brk   *Block
	cont  *Block
}

type gotoFixup struct {
	from  *Block
	label string
	pos   token.Pos
}

// buildCFG constructs the CFG of one function body. info resolves the
// semantic questions (panic calls, channel ranges); it may be nil in
// tests that only need the shape.
func buildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		info:   info,
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	exit := b.newBlock()
	b.cfg.Exit = exit
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edgeTo(exit)
	// Patch forward gotos now that every label is known. An unknown label
	// is a compile error upstream, so silently dropping it is fine.
	for _, fx := range b.gotoFixups {
		if t, ok := b.labels[fx.label]; ok {
			addEdge(fx.from, t)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// edgeTo links the current block to next (no-op when the current point is
// unreachable).
func (b *cfgBuilder) edgeTo(next *Block) {
	if b.cur != nil {
		addEdge(b.cur, next)
	}
}

// startBlock makes next the current block (after wiring the fall-through
// edge from the old current block).
func (b *cfgBuilder) startBlock(next *Block) {
	b.edgeTo(next)
	b.cur = next
}

// add appends a node to the current block. Unreachable statements get a
// fresh predecessor-less block so analyzers still see them.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for a loop/switch about to be
// built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue to its enclosing region.
func (b *cfgBuilder) findTarget(label string, needCont bool) *cfgTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement opens a fresh block so goto/continue have
		// a stable target.
		lb := b.newBlock()
		b.startBlock(lb)
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(label, false); t != nil {
				b.edgeTo(t.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(label, true); t != nil {
				b.edgeTo(t.cont)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotoFixups = append(b.gotoFixups, gotoFixup{from: b.cur, label: label, pos: s.Pos()})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder (edge to the next case body);
			// the statement itself terminates the block.
			b.cur = nil
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.startBlock(thenBlk)
		b.stmt(s.Body)
		b.edgeTo(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			if condBlk != nil {
				addEdge(condBlk, elseBlk)
			}
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edgeTo(after)
		} else if condBlk != nil {
			addEdge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		addEdge(head, body)
		if s.Cond != nil {
			addEdge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			addEdge(post, head)
			cont = post
		}
		b.targets = append(b.targets, cfgTarget{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.edgeTo(cont)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		// Only the range expression is a block node: adding the RangeStmt
		// itself would hand analyzers the whole loop body again when they
		// walk the node's subtree. The per-iteration key/value assignment
		// carries no facts any shipped analyzer tracks.
		b.add(s.X)
		head := b.newBlock()
		b.startBlock(head)
		body := b.newBlock()
		after := b.newBlock()
		addEdge(head, body)
		addEdge(head, after)
		b.targets = append(b.targets, cfgTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.edgeTo(head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.targets = append(b.targets, cfgTarget{label: label, brk: after})
		anyBody := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			anyBody = true
			cb := b.newBlock()
			addEdge(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		if !anyBody {
			// select{} blocks forever: no successors.
			b.cur = nil
			return
		}
		b.cur = after

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(b.info, s.X) {
			b.edgeTo(b.cfg.Exit)
			b.cur = nil
		}

	case *ast.GoStmt, *ast.DeferStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// switchStmt builds value and type switches. tag is the switch
// expression (nil for type switches, which pass assign instead).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.targets = append(b.targets, cfgTarget{label: label, brk: after})

	// Pre-create the case body blocks so fallthrough can edge forward.
	var clauses []*ast.CaseClause
	var bodies []*Block
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		bodies = append(bodies, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		addEdge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, st := range cc.Body {
			// fallthrough is only legal as the final statement of a case
			// body; wire its edge from the block it actually sits in, so
			// facts accumulated in the case flow into the next one.
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				b.add(br)
				if i+1 < len(bodies) {
					b.edgeTo(bodies[i+1])
				}
				b.cur = nil
				continue
			}
			b.stmt(st)
		}
		b.edgeTo(after)
	}
	if !hasDefault {
		addEdge(head, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if info == nil {
		return true
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
