package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// NilHandle preserves the zero-alloc no-op hot path of the telemetry
// layer: every handle type in internal/telemetry documents "a nil *T is
// a no-op", and instrumented code calls handles unconditionally instead
// of branching on an enabled flag — so every exported pointer-receiver
// method on a nil-documented type must tolerate a nil receiver. A method
// satisfies the contract when either
//
//   - its first statement is the guard `if recv == nil { return ... }`,
//     or
//   - its whole body delegates: a single statement calling another
//     method on the receiver (e.g. Counter.Inc calling c.Add), which is
//     safe because a method call on a nil pointer receiver does not
//     dereference it and the callee is itself checked.
//
// The set of guarded types is read from the package's own docs: any
// exported type whose doc comment contains "nil *T" or "nil receiver"
// promises nil-safety and is held to it.
var NilHandle = &Analyzer{
	Name: "nilhandle",
	Doc:  "exported methods on nil-documented telemetry handles start with a nil-receiver guard",
	Run:  runNilHandle,
}

var nilDocRe = regexp.MustCompile(`(?i)\bnil \*[A-Za-z]|\bnil receiver\b|\bnil \*?Registry\b`)

func runNilHandle(p *Pass) {
	if p.Pkg.Name() != "telemetry" {
		return
	}
	// Pass 1: which exported types document nil-safety?
	guarded := map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc != nil && nilDocRe.MatchString(doc.Text()) {
					guarded[ts.Name.Name] = true
				}
			}
		}
	}
	// Pass 2: every exported pointer method on a guarded type checks or
	// delegates.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if p.InTestFile(fd.Pos()) {
				continue
			}
			recvName, typeName, isPtr := receiver(p, fd)
			if !isPtr || !guarded[typeName] {
				continue
			}
			if startsWithNilGuard(fd.Body, recvName) || delegatesToReceiver(p, fd.Body, recvName) {
				continue
			}
			p.Reportf(fd.Pos(), "exported method (*%s).%s lacks a leading nil-receiver guard; nil handles must be no-ops (zero-alloc telemetry contract)", typeName, fd.Name.Name)
		}
	}
}

// receiver extracts the receiver name, base type name and pointer-ness
// of a method declaration.
func receiver(p *Pass, fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := p.Info.TypeOf(field.Type)
	if t == nil {
		return "", "", false
	}
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return recvName, "", false
	}
	if n := namedType(t); n != nil {
		return recvName, n.Obj().Name(), true
	}
	return recvName, "", false
}

// startsWithNilGuard reports whether the body's first statement is
// `if recv == nil { return ... }` (no else).
func startsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if recvName == "" || len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	if !isNilCompare(ifs.Cond, recvName) {
		return false
	}
	for _, s := range ifs.Body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

// isNilCompare matches `x == nil` / `nil == x` for the identifier x.
func isNilCompare(cond ast.Expr, name string) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return false
	}
	isIdent := func(e ast.Expr, want string) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == want
	}
	return (isIdent(be.X, name) && isIdent(be.Y, "nil")) ||
		(isIdent(be.X, "nil") && isIdent(be.Y, name))
}

// delegatesToReceiver reports whether the body is a single statement
// whose expression is a method call on the receiver (possibly returned).
func delegatesToReceiver(p *Pass, body *ast.BlockStmt, recvName string) bool {
	if recvName == "" || len(body.List) != 1 {
		return false
	}
	var expr ast.Expr
	switch s := body.List[0].(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		expr = s.Results[0]
	default:
		return false
	}
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == recvName
}
