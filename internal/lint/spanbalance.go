package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// SpanBalance checks that every telemetry span started in a function is
// ended on every path out of it. A span start is a call to a method or
// function named StartSpan/StartIteration that returns an end func; the
// fact tracks the variable the end func was stored in. The analysis is
// deliberately conservative about aliasing: any use of the variable
// other than the starting assignment — calling it, deferring it,
// passing it along, returning it, comparing it, capturing it in a
// closure — counts as handing off responsibility and stops tracking.
// What remains at function exit is an end func that no path ever
// touched: a span that stays open forever on at least one return path
// (typically an early error return added after the span was
// introduced).
//
// Two shape violations are reported immediately: discarding the end
// func (`tr.StartSpan("x")` as a statement, or assigning it to `_`) and
// overwriting a still-live end func with a new one.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "every telemetry span started is ended on all paths out of the function",
	Run:  runSpanBalance,
}

func runSpanBalance(p *Pass) {
	funcBodies(p, func(sig *types.Signature, body *ast.BlockStmt) {
		spanBalanceFunc(p, body)
	})
}

func spanBalanceFunc(p *Pass, body *ast.BlockStmt) {
	cfg := buildCFG(body, p.Info)
	// Span labels for messages, keyed by the start call's position.
	labels := map[token.Pos]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := spanStartCall(p.Info, call); ok {
				labels[call.Pos()] = name
			}
		}
		return true
	})
	spanLabel := func(pos token.Pos) string {
		if l := labels[pos]; l != "" {
			return fmt.Sprintf("span %q", l)
		}
		return "span"
	}

	transfer := func(b *Block, in Fact) Fact {
		return spanWalkBlock(p, b, in.(posSet), nil)
	}
	sol := cfg.Solve(Problem{
		Lattice:   posSetLattice{},
		Direction: Forward,
		Transfer:  transfer,
	})

	type rep struct {
		pos token.Pos
		msg string
	}
	seen := map[rep]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if p.InTestFile(pos) {
			return
		}
		r := rep{pos, fmt.Sprintf(format, args...)}
		if !seen[r] {
			seen[r] = true
			p.Reportf(pos, "%s", r.msg)
		}
	}
	for _, b := range cfg.Blocks {
		spanWalkBlock(p, b, sol.In[b].(posSet), func(pos token.Pos, startPos token.Pos, kind string) {
			switch kind {
			case "discard":
				report(pos, "the end func returned by the span start is discarded; the %s is never ended", spanLabel(pos))
			case "overwrite":
				report(pos, "end func overwritten while its %s (started at line %d) is still open; end it first",
					spanLabel(startPos), p.Fset.Position(startPos).Line)
			}
		})
	}
	exitFact := sol.In[cfg.Exit].(posSet)
	for _, key := range exitFact.sortedKeys() {
		pos := exitFact[key]
		report(pos, "%s started here is not ended on every path out of the function; end it before each return or use defer", spanLabel(pos))
	}
}

// spanWalkBlock applies one block's statements to a span fact. When
// violate is non-nil (the reporting pass), shape violations are surfaced
// through it as (site, span start, kind) triples.
func spanWalkBlock(p *Pass, b *Block, fact posSet, violate func(pos, startPos token.Pos, kind string)) posSet {
	info := p.Info

	// killUses removes every tracked end func mentioned anywhere in the
	// subtree: a use means something else now owns (or at least shares)
	// the obligation to end the span.
	var killUses func(n ast.Node)
	killUses = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(sub ast.Node) bool {
			switch sub := sub.(type) {
			case *ast.Ident:
				if key := spanVarKey(info, sub); key != "" {
					fact = fact.without(key)
				}
			case *ast.FuncLit:
				// A closure capturing the end func may call it later.
				ast.Inspect(sub.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if key := spanVarKey(info, id); key != "" {
							fact = fact.without(key)
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}

	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Pairwise form only; tuple assignments from one call never
			// produce span end funcs in this codebase.
			paired := len(n.Lhs) == len(n.Rhs)
			for i, rhs := range n.Rhs {
				isStart := false
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					_, isStart = spanStartCall(info, call)
				}
				if isStart && paired {
					// The call's own subexpressions (receiver, args) may
					// still use tracked vars.
					if call := ast.Unparen(rhs).(*ast.CallExpr); true {
						killUses(call.Fun)
						for _, a := range call.Args {
							killUses(a)
						}
					}
					continue
				}
				_ = i
				killUses(rhs)
			}
			for i, lhs := range n.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent {
					killUses(lhs)
					continue
				}
				key := spanVarKey(info, id)
				var startCall *ast.CallExpr
				if paired {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
						if _, ok := spanStartCall(info, call); ok {
							startCall = call
						}
					}
				}
				if key != "" {
					if startPos, live := fact[key]; live {
						if violate != nil {
							violate(lhs.Pos(), startPos, "overwrite")
						}
						fact = fact.without(key)
					}
				}
				if startCall != nil {
					if id.Name == "_" || info.ObjectOf(id) == nil {
						if violate != nil {
							violate(startCall.Pos(), startCall.Pos(), "discard")
						}
					} else if k := objKey(info.ObjectOf(id)); k != "" {
						fact = fact.with(k, startCall.Pos())
					}
				}
			}

		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if _, ok := spanStartCall(info, call); ok {
					if violate != nil {
						violate(call.Pos(), call.Pos(), "discard")
					}
					killUses(call.Fun)
					for _, a := range call.Args {
						killUses(a)
					}
					continue
				}
			}
			killUses(n)

		case *ast.DeferStmt:
			// `defer tr.StartSpan("x")()` starts and schedules the end in
			// one statement: balanced by construction.
			if inner, ok := ast.Unparen(n.Call.Fun).(*ast.CallExpr); ok {
				if _, ok := spanStartCall(info, inner); ok {
					continue
				}
			}
			killUses(n)

		default:
			killUses(n)
		}
	}
	return fact
}

// spanStartCall reports whether the call starts a span: a call to a
// function or method named StartSpan or StartIteration whose single
// result is a func (the end callback). The returned name is the span's
// first argument when it is a string literal.
func spanStartCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "StartSpan", "StartIteration":
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return "", false
	}
	if _, ok := sig.Results().At(0).Type().Underlying().(*types.Signature); !ok {
		return "", false
	}
	name := ""
	if len(call.Args) > 0 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				name = s
			}
		}
	}
	return name, true
}

// spanVarKey returns the tracking key of an identifier that refers to a
// local variable, or "" for anything else.
func spanVarKey(info *types.Info, id *ast.Ident) string {
	obj := info.Uses[id]
	if obj == nil {
		return ""
	}
	if _, ok := obj.(*types.Var); !ok {
		return ""
	}
	return objKey(obj)
}

// objKey keys an object by name and declaration position, which
// disambiguates shadowed variables.
func objKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if _, ok := obj.(*types.Var); !ok {
		return ""
	}
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}
