package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags bare `go` statements in library code whose goroutine has
// no visible termination edge. A goroutine is considered bounded when
// its body (the spawned function literal, or the body of a same-package
// function it calls) shows one of:
//
//   - a context.Context in scope (ctx.Done selection or any
//     context-typed value referenced),
//   - a channel operation (receive, send, close, range over a channel,
//     or a select) — the goroutine parks on and is released by a
//     channel the caller controls,
//   - a sync.WaitGroup Done/Wait call — the caller joins it.
//
// Calls into other packages are assumed bounded (their contract is not
// visible to an intraprocedural analysis); package main and test files
// are exempt, since process or test lifetime bounds them.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in library code carry a ctx/done-channel/WaitGroup termination edge",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	// Same-package function bodies, so `go s.worker()` can be judged by
	// what worker does.
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn.Body
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.InTestFile(g.Pos()) {
				return true
			}
			if goStmtBounded(p.Info, g, bodies) {
				return true
			}
			p.Reportf(g.Pos(), "goroutine has no termination edge (no ctx, done channel, or WaitGroup); it can outlive its caller")
			return true
		})
	}
}

// goStmtBounded reports whether the spawned goroutine has a visible
// termination edge.
func goStmtBounded(info *types.Info, g *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) bool {
	// Arguments evaluated at spawn (including a bound ctx) count: a
	// context passed into the call is a termination edge the callee is
	// expected to honor.
	for _, a := range g.Call.Args {
		if t := info.TypeOf(a); isContextType(t) {
			return true
		}
	}
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return bodyBounded(info, fl.Body)
	}
	fn := calleeFunc(info, g.Call)
	if fn == nil {
		// Indirect spawn through a func value: can't see the body;
		// assume the owner of the value bounds it.
		return true
	}
	body, ok := bodies[fn]
	if !ok {
		// Cross-package callee: its lifetime contract is not visible
		// intraprocedurally; assume bounded.
		return true
	}
	return bodyBounded(info, body)
}

// bodyBounded scans a function body for any termination-edge shape.
func bodyBounded(info *types.Info, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				bounded = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			bounded = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					bounded = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					bounded = true
				}
			}
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				switch fn.Name() {
				case "Done", "Wait":
					bounded = true
				}
			}
		case *ast.Ident:
			if t := info.TypeOf(n); isContextType(t) {
				bounded = true
			}
		}
		return !bounded
	})
	return bounded
}
