package lint

import (
	"os"
	"path"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Golden tests: each analyzer has a fixture package under
// testdata/src/<name> mixing deliberate violations with the legal
// patterns it must not flag. Expected findings are annotated in place:
//
//	offendingCode() // want <analyzer> "<message substring>"
//
// The assertion is exact and line-by-line in both directions: every
// finding must consume a distinct annotation on its line, and every
// annotation must be consumed. Duplicate findings (e.g. from a failure
// to dedupe the test-augmented package variant) therefore fail too.

var wantRe = regexp.MustCompile(`// want (\S+) ("(?:[^"\\]|\\.)*")`)

type want struct {
	line     int
	analyzer string
	substr   string
	matched  bool
}

// parseWants scans the fixture directory's Go files for want comments,
// keyed by base filename.
func parseWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	wants := map[string][]*want{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			substr, err := strconv.Unquote(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", e.Name(), i+1, m[2], err)
			}
			wants[e.Name()] = append(wants[e.Name()], &want{
				line:     i + 1,
				analyzer: m[1],
				substr:   substr,
			})
		}
	}
	return wants
}

func TestGolden(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
	}{
		{"ctxflow", CtxFlow},
		{"envelope", Envelope},
		{"globalrand", GlobalRand},
		{"goleak", GoLeak},
		{"hotalloc", HotAlloc},
		{"locksafe", LockSafe},
		{"maporder", MapOrder},
		{"nilhandle", NilHandle},
		{"spanbalance", SpanBalance},
		{"streamenvelope", Envelope},
		{"streamingest", TraceCarry},
		{"tracecarry", TraceCarry},
		{"wallclock", WallClock},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations", tc.fixture)
			}
			diags, err := Run(".", []string{"./internal/lint/testdata/src/" + tc.fixture},
				Config{Analyzers: []*Analyzer{tc.analyzer}})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				if !consume(wants[path.Base(d.File)], d) {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for file, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s:%d: expected %s finding matching %q, got none",
							file, w.line, w.analyzer, w.substr)
					}
				}
			}
		})
	}
}

// consume marks the first unmatched annotation the diagnostic satisfies.
func consume(ws []*want, d Diagnostic) bool {
	for _, w := range ws {
		if !w.matched && w.line == d.Line && w.analyzer == d.Analyzer &&
			strings.Contains(d.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestRepoSelfClean is the linter eating its own dog food: ndlint over
// the whole repository reports nothing, and its output is byte-identical
// at parallelism 1 and 8 and with the incremental cache cold, warm or
// off (the determinism the driver promises CI).
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type-check in -short mode")
	}
	serial, err := Run(".", []string{"./..."}, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(".", []string{"./..."}, Config{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(parallel), render(serial); got != want {
		t.Errorf("output differs across parallelism:\nserial:\n%s\nparallel:\n%s", want, got)
	}
	cacheDir := t.TempDir()
	cold, err := Run(".", []string{"./..."}, Config{Parallelism: 8, Cache: true, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(".", []string{"./..."}, Config{Parallelism: 1, Cache: true, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string][]Diagnostic{"cache-cold": cold, "cache-warm": warm} {
		if render(got) != render(serial) {
			t.Errorf("%s output differs from uncached:\n%s\nvs\n%s", name, render(got), render(serial))
		}
	}
	if len(serial) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", render(serial))
	}
}

func render(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
