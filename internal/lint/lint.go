// Package lint is the project's static-analysis framework: a small,
// stdlib-only analyzer harness (go/parser + go/types with a source
// importer — no x/tools dependency) plus the analyzers that encode the
// repo's invariants at the source level:
//
//   - maporder  — map iteration must not feed ordered output unsorted
//     (the byte-determinism contract of the figure/CSV pipeline)
//   - wallclock — wall-clock reads live only in internal/telemetry and
//     the cmd/ mains (replay determinism of the simulate→probe→diagnose
//     path)
//   - ctxflow   — a function that receives a context.Context uses it,
//     instead of minting context.Background()/TODO() or passing nil
//     (the Diagnose session API contract)
//   - nilhandle — exported pointer methods on nil-documented telemetry
//     handle types begin with a nil-receiver guard (the zero-alloc
//     no-op hot path)
//   - globalrand — library code derives randomness from scenario seeds,
//     never from math/rand's global source
//   - tracecarry — server functions that enqueue work via the admission
//     queue carry the request trace across the goroutine hop (the
//     fleet-wide request tracing contract)
//
// plus the flow-sensitive analyzers, which lower each function body to a
// control-flow graph (cfg.go) and solve worklist dataflow problems over
// it (dataflow.go), so early returns, loops, labeled branches and panic
// edges are real paths:
//
//   - locksafe — every mutex acquire is released on all paths out of
//     the function; no queue submit, HTTP round trip, blocking channel
//     op or indirect call while a lock is held; no re-acquire of a held
//     lock; per-package lock-order cycle detection (AB/BA)
//   - spanbalance — every telemetry span started is ended on all paths;
//     discarding or overwriting a live end func is reported at the site
//   - envelope — in internal/server, error responses flow through the
//     writeError seam (no http.Error, bare error WriteHeader, or
//     hand-rolled error JSON), and no path writes two HTTP statuses
//   - goleak — bare `go` statements in library code carry a visible
//     termination edge: a context, a channel operation, or a WaitGroup
//   - hotalloc — functions marked //ndlint:hotpath stay free of
//     alloc-inducing constructs (fmt, string concat, map literals,
//     unpreallocated append-in-loop)
//
// Diagnostics are deterministic: sorted by file, line, column, analyzer
// and message, deduplicated across the test/non-test variants of a
// package, and byte-identical at any parallelism — and, via the
// incremental result cache (cache.go), identical with caching on or
// off. Findings are suppressed in place with
//
//	//ndlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it; the reason is
// mandatory — a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Diagnostic is one finding. File is slash-separated and relative to the
// module root, so output is stable across checkouts.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// less orders diagnostics by file, line, column, analyzer, message.
func (d Diagnostic) less(o Diagnostic) bool {
	if d.File != o.File {
		return d.File < o.File
	}
	if d.Line != o.Line {
		return d.Line < o.Line
	}
	if d.Col != o.Col {
		return d.Col < o.Col
	}
	if d.Analyzer != o.Analyzer {
		return d.Analyzer < o.Analyzer
	}
	return d.Message < o.Message
}

// Analyzer is one named invariant check. Run inspects the pass's files
// and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in output, -enable/-disable and
	// suppression comments.
	Name string
	// Doc is the one-line description shown by ndlint -list.
	Doc string
	// Run performs the check on one type-checked unit.
	Run func(*Pass)
}

// Pass is one (analyzer, package unit) execution: the parsed files and
// type information of a single type-checked unit.
type Pass struct {
	// Fset positions the unit's files.
	Fset *token.FileSet
	// Files are the parsed files of the unit.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the unit's type-checking facts.
	Info *types.Info
	// PkgPath is the unit's import path (test variants share the path of
	// the package they augment, so path-scoped analyzers treat them
	// alike).
	PkgPath string
	// ModPath is the module path ("netdiag"), for path-scoped rules.
	ModPath string

	diags *[]Diagnostic
	name  string
	rel   func(token.Pos) (string, int, int)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	file, line, col := p.rel(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// suppression is one parsed //ndlint:ignore comment.
type suppression struct {
	analyzers []string
	reason    string
	line      int
}

var ignoreRe = regexp.MustCompile(`^//\s*ndlint:ignore\s+(\S+)(?:\s+(.*))?$`)

// parseSuppressions extracts the //ndlint:ignore comments of a file,
// keyed by the line they suppress. A comment suppresses its own line and,
// when it is the only thing on its line, the line below. Malformed
// suppressions (no reason) are reported as findings under the "ndlint"
// pseudo-analyzer so they cannot silently disable a check.
func parseSuppressions(fset *token.FileSet, f *ast.File, rel func(token.Pos) (string, int, int)) (map[int][]suppression, []Diagnostic) {
	byLine := map[int][]suppression{}
	var malformed []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			reason := strings.TrimSpace(m[2])
			if reason == "" {
				file, line, col := rel(c.Pos())
				malformed = append(malformed, Diagnostic{
					Analyzer: "ndlint",
					File:     file,
					Line:     line,
					Col:      col,
					Message:  "ndlint:ignore requires a reason: //ndlint:ignore <analyzer> <reason>",
				})
				continue
			}
			s := suppression{analyzers: strings.Split(m[1], ","), reason: reason, line: pos.Line}
			byLine[pos.Line] = append(byLine[pos.Line], s)
			// A comment on its own line suppresses the next line too.
			byLine[pos.Line+1] = append(byLine[pos.Line+1], s)
		}
	}
	return byLine, malformed
}

// matches reports whether the suppression covers the analyzer.
func (s suppression) matches(analyzer string) bool {
	for _, a := range s.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}
