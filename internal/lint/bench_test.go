package lint

import (
	"testing"
	"time"
)

// The lint benchmarks measure the incremental cache over the real
// repository: a cold run parses and type-checks every package, a warm
// run only re-digests source files and replays persisted findings. Both
// report the findings count so benchjson's lint section can assert the
// cached and uncached runs agree.

func BenchmarkLintCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cacheDir := b.TempDir()
		b.StartTimer()
		diags, err := Run(".", []string{"./..."}, Config{Cache: true, CacheDir: cacheDir})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(diags)), "findings")
	}
}

func BenchmarkLintWarm(b *testing.B) {
	cacheDir := b.TempDir()
	if _, err := Run(".", []string{"./..."}, Config{Cache: true, CacheDir: cacheDir}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := Run(".", []string{"./..."}, Config{Cache: true, CacheDir: cacheDir})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(diags)), "findings")
	}
}

// TestLintWarmSpeedup pins the acceptance bar for the cache: a warm
// full-repo run at least 3x faster than the cold run that filled it.
// The real gap is one-to-two orders of magnitude (hashing files vs
// type-checking the module and half of GOROOT), so 3x has headroom.
func TestLintWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint in -short mode")
	}
	cacheDir := t.TempDir()
	start := time.Now()
	coldDiags, err := Run(".", []string{"./..."}, Config{Cache: true, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	start = time.Now()
	warmDiags, err := Run(".", []string{"./..."}, Config{Cache: true, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)

	if render(coldDiags) != render(warmDiags) {
		t.Errorf("warm findings differ from cold:\n%s\nvs\n%s", render(warmDiags), render(coldDiags))
	}
	if warm*3 > cold {
		t.Errorf("warm lint %v is not 3x faster than cold %v", warm, cold)
	}
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
}
