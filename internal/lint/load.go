package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// unit is one type-checked body of code an analyzer pass runs over: a
// package's non-test files, the package augmented with its in-package
// test files, or its external _test package.
type unit struct {
	pkgPath string // import path of the underlying package
	dir     string
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
}

// loader resolves and type-checks packages from source. It is the
// module-aware source importer of the framework: module-local import
// paths map onto the module tree, everything else resolves against
// GOROOT/src (with the std vendor directory as fallback), matching the
// repo's zero-dependency policy. Loading is single-threaded; the
// analyzers parallelize afterwards over the loaded units.
type loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	modRoot string
	modPath string
	goroot  string
	pkgs    map[string]*types.Package
	loading map[string]bool

	// local retains the parsed files and type info of module-local
	// packages, so a package imported as a dependency and later analyzed
	// as a unit is one and the same *types.Package (anything else breaks
	// type identity across units).
	local map[string]*unit

	// selfPath/selfPkg temporarily alias an import path to a test-
	// augmented package so an external _test package sees the in-package
	// test helpers it is entitled to.
	selfPath string
	selfPkg  *types.Package
}

// newLoader finds the module root at or above dir and returns a loader
// for it.
func newLoader(dir string) (*loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go variants only; nothing here needs cgo
	return &loader{
		fset:    token.NewFileSet(),
		ctxt:    ctxt,
		modRoot: root,
		modPath: path,
		goroot:  runtime.GOROOT(),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
		local:   map[string]*unit{},
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and reads the
// module path from it.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
	}
}

// relPos converts a position to a module-root-relative slash path plus
// line and column, the stable coordinates diagnostics use.
func (ld *loader) relPos(pos token.Pos) (string, int, int) {
	p := ld.fset.Position(pos)
	rel, err := filepath.Rel(ld.modRoot, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}

// Import implements types.Importer over the module tree and GOROOT
// sources.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.selfPath && ld.selfPkg != nil {
		return ld.selfPkg, nil
	}
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir, err := ld.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", path, err)
	}
	files, err := ld.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	// Keep analysis facts for module-local packages: if this package is
	// later requested as a unit it must be this exact *types.Package.
	var info *types.Info
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		info = newInfo()
	}
	pkg, err := ld.check(path, files, info)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = pkg
	if info != nil {
		ld.local[path] = &unit{pkgPath: path, dir: dir, files: files, pkg: pkg, info: info}
	}
	return pkg, nil
}

// resolveDir maps an import path to a source directory.
func (ld *loader) resolveDir(path string) (string, error) {
	if path == ld.modPath {
		return ld.modRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
		return filepath.Join(ld.modRoot, filepath.FromSlash(rest)), nil
	}
	for _, d := range []string{
		filepath.Join(ld.goroot, "src", filepath.FromSlash(path)),
		filepath.Join(ld.goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (module %q, GOROOT %q)", path, ld.modPath, ld.goroot)
}

func (ld *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as package path, filling info when non-nil.
func (ld *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{
		Importer:    ld,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// loadUnits type-checks each package directory as up to three units:
// the plain package, the package augmented with its in-package test
// files, and the external _test package. Dirs must already be sorted
// (expandPatterns sorts) so downstream work is deterministic; with the
// incremental cache on, Run passes only the dirty subset here and the
// clean directories are never parsed or type-checked at all.
func (ld *loader) loadUnits(dirs []string) ([]*unit, error) {
	var units []*unit
	for _, dir := range dirs {
		bp, err := ld.ctxt.ImportDir(dir, 0)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %v", dir, err)
		}
		pkgPath := ld.importPath(dir)

		// Plain package, via the importer so a dependency loaded earlier
		// and a unit are the same *types.Package.
		var base []*ast.File
		if len(bp.GoFiles) > 0 {
			if _, err := ld.Import(pkgPath); err != nil {
				return nil, err
			}
			u := ld.local[pkgPath]
			base = u.files
			units = append(units, u)
		}

		// Package augmented with in-package test files.
		var augPkg *types.Package
		if len(bp.TestGoFiles) > 0 {
			testFiles, err := ld.parseFiles(dir, bp.TestGoFiles)
			if err != nil {
				return nil, err
			}
			all := append(append([]*ast.File{}, base...), testFiles...)
			info := newInfo()
			augPkg, err = ld.check(pkgPath, all, info)
			if err != nil {
				return nil, err
			}
			units = append(units, &unit{pkgPath: pkgPath, dir: dir, files: all, pkg: augPkg, info: info})
		}

		// External _test package; its self-import sees the augmented
		// package so exported in-package test helpers resolve.
		if len(bp.XTestGoFiles) > 0 {
			xfiles, err := ld.parseFiles(dir, bp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			if augPkg != nil {
				ld.selfPath, ld.selfPkg = pkgPath, augPkg
			}
			info := newInfo()
			xpkg, err := ld.check(pkgPath+"_test", xfiles, info)
			ld.selfPath, ld.selfPkg = "", nil
			if err != nil {
				return nil, err
			}
			units = append(units, &unit{pkgPath: pkgPath, dir: dir, files: xfiles, pkg: xpkg, info: info})
		}
	}
	return units, nil
}

// importPath maps a module-local directory back to its import path.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.modRoot, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}

// expandPatterns resolves go-style package patterns — "./...",
// "./dir/...", "./dir", or a module-local import path — to the sorted
// set of directories containing Go files. Directories named testdata or
// vendor, and those starting with "." or "_", are skipped, matching the
// go tool. An unmatched "..." pattern yields no directories (and no
// error): linting nothing is clean.
func (ld *loader) expandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		if rest, ok := strings.CutPrefix(pat, ld.modPath); ok && (rest == "" || strings.HasPrefix(rest, "/")) {
			pat = "." + rest
		}
		root := filepath.Join(ld.modRoot, filepath.FromSlash(pat))
		st, err := os.Stat(root)
		if err != nil || !st.IsDir() {
			if rec {
				continue // pattern matched nothing: clean, not an error
			}
			return nil, fmt.Errorf("lint: no such package directory %q", pat)
		}
		if !rec {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
