package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow encodes the Diagnose session API contract: a function that
// receives a context.Context owns that context's cancellation scope and
// must flow it downward. Inside such a function it is a violation to
//
//   - mint a fresh root with context.Background() or context.TODO()
//     (the caller's deadline and cancellation are silently dropped), or
//   - pass a nil literal where a callee expects a context.Context.
//
// One idiom is exempt: nil-tolerant entry points may default their own
// parameter, `if ctx == nil { ctx = context.Background() }` — the
// assignment target is the context variable being defaulted inside its
// own nil check, so no caller-provided context is lost. Deriving
// contexts (context.WithTimeout(ctx, ...)) is of course fine: the
// argument is the received ctx.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a ctx must flow it: no context.Background/TODO, no nil ctx args",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	funcBodies(p, func(sig *types.Signature, body *ast.BlockStmt) {
		if hasCtxParam(sig) == nil {
			return
		}
		inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
			// A nested function literal with its own ctx parameter is its
			// own scope; funcBodies visits it separately.
			if lit, ok := n.(*ast.FuncLit); ok {
				if litSig, ok := p.Info.TypeOf(lit.Type).(*types.Signature); ok && hasCtxParam(litSig) != nil {
					return false
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgCall(p.Info, call, "context", "Background", "TODO"); ok {
				if !isNilDefaultIdiom(p, call, stack) {
					p.Reportf(call.Pos(), "context.%s inside a function that receives a ctx; forward the ctx instead (session API contract)", name)
				}
			}
			checkNilCtxArgs(p, call)
			return true
		})
	})
}

// checkNilCtxArgs flags nil literals in context.Context argument slots.
func checkNilCtxArgs(p *Pass, call *ast.CallExpr) {
	sig, ok := types.Unalias(p.Info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if _, isNil := p.Info.Uses[id].(*types.Nil); !isNil {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			continue
		}
		if isContextType(sig.Params().At(pi).Type()) {
			p.Reportf(arg.Pos(), "nil passed as context.Context by a function that receives a ctx; forward the ctx (session API contract)")
		}
	}
}

// isNilDefaultIdiom recognizes `v = context.Background()` as the sole
// effect of `if v == nil { ... }` for the same context variable v: the
// nil-tolerant entry-point defaulting idiom.
func isNilDefaultIdiom(p *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// Expect ... IfStmt > BlockStmt > AssignStmt > (call). Allow the call
	// to sit directly in the assignment RHS only.
	var assign *ast.AssignStmt
	var ifStmt *ast.IfStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			if assign == nil {
				assign = s
			}
		case *ast.IfStmt:
			ifStmt = s
		case *ast.BlockStmt, *ast.ExprStmt, *ast.ParenExpr:
			continue
		default:
			// Any other construct between the call and the if breaks the
			// idiom (e.g. the call is an argument of something else).
			if assign == nil {
				return false
			}
		}
		if ifStmt != nil {
			break
		}
	}
	if assign == nil || ifStmt == nil {
		return false
	}
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != call {
		return false
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := p.Info.Uses[lhs].(*types.Var)
	if !ok && assign.Tok.String() == ":=" {
		return false
	}
	if v == nil || !isContextType(v.Type()) {
		return false
	}
	return isNilCompare(ifStmt.Cond, lhs.Name)
}
