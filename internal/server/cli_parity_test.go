package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"netdiag/internal/core"
	"netdiag/internal/experiment"
	"netdiag/internal/scenario"
)

// TestCLIParity pins the acceptance contract that a served diagnosis is
// byte-identical to the equivalent one-shot CLI run: it exports the same
// fork's measurements as a scenario file, runs the built netdiagnoser
// binary with -json on it, and diffs the stdout against the HTTP
// response for every algorithm the file format carries.
func TestCLIParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the netdiagnoser binary")
	}
	s := New(Config{})
	defer s.Close()
	ctx := context.Background()
	snap, err := s.store.Get(ctx, "fig2")
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce the request pipeline for fail_links [["b1","b2"]] and
	// export its measurements in the CLI's scenario format.
	fork := snap.Net.Fork()
	link, ok := snap.Scenario.Topo.LinkBetween(mustRouter(t, snap, "b1"), mustRouter(t, snap, "b2"))
	if !ok {
		t.Fatal("fig2 has no b1-b2 link")
	}
	fork.FailLink(link.ID)
	if err := fork.ReconvergeCtx(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := fork.MeshCtx(ctx, snap.Scenario.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	meas := experiment.ToMeasurementsMapped(snap.BeforeMesh, after, snap.IP2AS.Lookup)
	asx := snap.Scenario.ASX
	sc := scenario.FromMeasurements(meas, &core.RoutingInfo{
		ASX:          asx,
		IGPDownLinks: experiment.AdaptIGPDowns(fork, asx),
		Withdrawals: experiment.AdaptWithdrawals(snap.Scenario.Topo,
			fork.ObserveWithdrawals(snap.BeforeBGP, asx), snap.SensorASes),
	})

	dir := t.TempDir()
	scnPath := filepath.Join(dir, "fig2-b1b2.json")
	f, err := os.Create(scnPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bin := filepath.Join(dir, "netdiagnoser")
	build := exec.Command("go", "build", "-o", bin, "./cmd/netdiagnoser")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building netdiagnoser: %v\n%s", err, out)
	}

	for _, algo := range []string{"tomo", "nd-edge", "nd-bgpigp"} {
		cli := exec.Command(bin, "-algo", algo, "-json", scnPath)
		cliOut, err := cli.Output()
		if err != nil {
			t.Fatalf("%s: CLI run failed: %v", algo, err)
		}
		body := fmt.Sprintf(`{"scenario":"fig2","algorithm":%q,"fail_links":[["b1","b2"]]}`, algo)
		w := post(t, s.Handler(), body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: server status %d: %s", algo, w.Code, w.Body.String())
		}
		if !bytes.Equal(cliOut, w.Body.Bytes()) {
			t.Errorf("%s: CLI and server bytes differ\nCLI:\n%s\nserver:\n%s",
				algo, cliOut, w.Body.Bytes())
		}
	}
}
