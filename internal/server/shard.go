package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"time"

	"netdiag/internal/core"
	"netdiag/internal/telemetry"
)

// ShardIndex assigns a scenario to one of n shards by rendezvous
// (highest-random-weight) hashing: every (scenario, shard) pair gets an
// FNV-64a weight and the scenario belongs to the shard with the highest.
// Unlike modulo hashing, growing the fleet from n to n+1 shards only
// moves the ~1/(n+1) of scenarios whose new shard wins — every other
// scenario keeps its warm snapshot where it is. n <= 1 maps everything
// to shard 0.
func ShardIndex(scenario string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestW := 0, uint64(0)
	for i := 0; i < n; i++ {
		h := fnv.New64a()
		io.WriteString(h, scenario)
		io.WriteString(h, "|shard|")
		io.WriteString(h, strconv.Itoa(i))
		if w := h.Sum64(); i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// FrontConfig parameterizes a Front.
type FrontConfig struct {
	// Backends are the shard workers' base URLs (e.g.
	// "http://127.0.0.1:8081"); index i is shard i of len(Backends). The
	// fleet only routes correctly when every worker was started with the
	// matching -shard-of i/N filter.
	Backends []string
	// Client performs the proxied requests; nil selects a default client.
	Client *http.Client
	// Telemetry receives the "front.*" counters; nil disables them.
	Telemetry *telemetry.Registry
	// Logger receives proxy failure records; nil logs nothing.
	Logger *slog.Logger
	// SlowThreshold promotes requests at least this slow to an extra
	// access-log line with the per-phase span breakdown. Zero disables
	// promotion.
	SlowThreshold time.Duration
	// TraceBuffer sizes the /debug/traces ring. Zero selects 64.
	TraceBuffer int
}

// Front is the fleet's routing tier: a thin, stateless proxy that owns no
// snapshots and runs no diagnoses. It routes each diagnosis to the shard
// that owns its scenario (see ShardIndex), merges the per-shard scenario
// listings, and aggregates readiness, so clients see one v1 API over the
// whole fleet.
type Front struct {
	backends []string
	client   *http.Client
	log      *slog.Logger
	tele     *telemetry.Registry
	traces   *telemetry.TraceRing
	slowNs   int64
	mux      *http.ServeMux

	proxied     *telemetry.Counter
	backendErrs *telemetry.Counter
}

// NewFront builds the routing tier over cfg.Backends. It panics if no
// backends are configured — a front with nothing behind it can serve no
// request at all.
func NewFront(cfg FrontConfig) *Front {
	if len(cfg.Backends) == 0 {
		panic("server: NewFront needs at least one backend")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Front{
		backends:    cfg.Backends,
		client:      client,
		log:         cfg.Logger,
		tele:        cfg.Telemetry,
		traces:      telemetry.NewTraceRing(cfg.TraceBuffer),
		slowNs:      cfg.SlowThreshold.Nanoseconds(),
		proxied:     cfg.Telemetry.Counter("front.proxied"),
		backendErrs: cfg.Telemetry.Counter("front.backend_errors"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.Handle("GET /v1/scenarios", f.observe("scenarios", f.handleScenarios))
	mux.Handle("POST /v1/diagnose", f.observe("proxy", f.handleProxy))
	mux.Handle("POST /v1/diagnose/batch", f.observe("proxy", f.handleProxy))
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.Handle("GET /debug/traces", f.traces)
	f.mux = mux
	return f
}

// observe is the front's per-request observability envelope: the same
// trace-ID assignment, header echo, access log and trace-ring retention
// the workers apply (see access.go), minus the worker-only queue
// metrics. The front is an edge too — requests hitting it directly get
// their ID here, and it follows them to the owning shard.
func (f *Front) observe(op string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := telemetry.Now()
		acc := &access{op: op, id: requestTraceID(r)}
		acc.tr = telemetry.NewRequestTrace(acc.id)
		w.Header().Set(core.TraceHeader, acc.id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(contextWithAccess(r.Context(), acc)))
		finishAccess(f.log, f.traces, f.slowNs, acc, sw.status, telemetry.Since(start).Nanoseconds())
	})
}

// handleMetrics serves the front's Prometheus exposition. Before
// rendering, it probes every shard's /healthz and re-exports the result
// as per-shard gauges — front.shard<i>_up (1/0) and
// front.shard<i>_probe_ns (exposed in seconds) — so one scrape of the
// front tells which shards are reachable and how fast they answer.
func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if f.tele != nil {
		for i, base := range f.backends {
			t0 := telemetry.Now()
			status, _, err := f.get(r, base, "/healthz")
			up := int64(0)
			if err == nil && status == http.StatusOK {
				up = 1
			}
			f.tele.Gauge(fmt.Sprintf("front.shard%d_up", i)).Set(up)
			f.tele.Gauge(fmt.Sprintf("front.shard%d_probe_ns", i)).Set(telemetry.Since(t0).Nanoseconds())
		}
	}
	telemetry.PromHandler(f.tele).ServeHTTP(w, r)
}

// Handler returns the front's HTTP API — the same v1 surface a single
// worker serves.
func (f *Front) Handler() http.Handler { return f.mux }

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz aggregates shard readiness: the fleet is ready only when
// every shard answers /readyz with 200. The body names the first shard
// that is not, so an operator can tell a warming fleet from a dead one.
func (f *Front) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for i, base := range f.backends {
		status, body, err := f.get(r, base, "/readyz")
		if err != nil {
			//ndlint:ignore envelope /readyz is a plain-text probe endpoint for load balancers, not part of the v1 JSON surface; the envelope seam does not apply
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shard %d: unreachable: %v\n", i, err)
			return
		}
		if status != http.StatusOK {
			//ndlint:ignore envelope /readyz is a plain-text probe endpoint for load balancers, not part of the v1 JSON surface; the envelope seam does not apply
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shard %d: %s", i, body)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

// handleScenarios merges the shard listings into one, sorted by name —
// the union a single unsharded worker would have served.
func (f *Front) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var infos []ScenarioInfo
	for i, base := range f.backends {
		status, body, err := f.get(r, base, "/v1/scenarios")
		if err != nil {
			f.backendError(w, r, i, err)
			return
		}
		if status != http.StatusOK {
			f.backendError(w, r, i, fmt.Errorf("scenario listing answered %d", status))
			return
		}
		var part []ScenarioInfo
		if err := json.Unmarshal(body, &part); err != nil {
			f.backendError(w, r, i, fmt.Errorf("bad scenario listing: %w", err))
			return
		}
		infos = append(infos, part...)
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(infos); err != nil && f.log != nil {
		f.log.Warn("encoding merged scenario listing", "err", err)
	}
}

// handleProxy forwards a diagnosis (single or batch — the two bodies
// agree on the scenario field) to the shard that owns its scenario, and
// relays the shard's exact status, retry signal and body. The front adds
// no interpretation of its own: a shed (429) or draining (503) from the
// worker passes through with its Retry-After intact, so the client's
// backoff contract is the same with or without the routing tier.
func (f *Front) handleProxy(w http.ResponseWriter, r *http.Request) {
	f.proxied.Inc()
	acc := accessFrom(r.Context())
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "reading request body: "+err.Error())
		return
	}
	var sniff struct {
		Scenario string `json:"scenario"`
	}
	if err := json.Unmarshal(body, &sniff); err != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "invalid request body: "+err.Error())
		return
	}
	acc.scenario = sniff.Scenario
	shard := ShardIndex(sniff.Scenario, len(f.backends))
	acc.shard = f.backends[shard]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		f.backends[shard]+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, core.ErrInternal, err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// The same trace ID follows the request to the owning shard, so the
	// front's and the worker's spans stitch into one trace.
	req.Header.Set(core.TraceHeader, acc.id)
	endBackend := acc.tr.StartSpan("proxy_backend")
	resp, err := f.client.Do(req)
	endBackend()
	if err != nil {
		f.backendError(w, r, shard, err)
		return
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil && f.log != nil {
		f.log.Warn("relaying shard response", "shard", shard, "err", err)
	}
}

// get performs one backend GET under the incoming request's context and
// returns the status and full body.
func (f *Front) get(r *http.Request, base, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// backendError reports a shard the front could not use: 502 with the
// bad_gateway envelope naming the shard — carrying retry_after_s and the
// matching Retry-After header, since a lone unreachable worker is
// usually restarting. The failure log and the request's access line both
// name the failing shard's backend URL.
func (f *Front) backendError(w http.ResponseWriter, r *http.Request, shard int, err error) {
	f.backendErrs.Inc()
	base := f.backends[shard]
	acc := accessFrom(r.Context())
	acc.shard = base
	if f.log != nil {
		f.log.Warn("shard backend failed",
			"shard", shard, "backend", base, "trace", acc.id, "err", err)
	}
	writeError(w, http.StatusBadGateway, core.ErrBadGateway,
		fmt.Sprintf("shard %d: %v", shard, err))
}
