package server

import (
	"context"
	"fmt"

	"netdiag"
	"netdiag/internal/monitor"
	"netdiag/internal/probe"
	"netdiag/internal/stream"
	"netdiag/internal/telemetry"
)

// Streaming-plane wiring: the stream.Service owns the per-scenario
// processors (journal, delta overlay, event correlation); the server
// contributes the warm snapshots they fork from and the diagnosis
// callback that routes closed events through the same admission queue,
// coalescing group and telemetry as the HTTP diagnosis requests.

// newStreamService builds the streaming facade over this server's
// snapshot store.
func (s *Server) newStreamService() *stream.Service {
	return stream.NewService(stream.ServiceConfig{
		Open:     s.openStreamProcessor,
		Known:    s.reg.Has,
		Draining: s.draining.Load,
		Logger:   s.log,
	})
}

// openStreamProcessor converges (or reuses) the scenario snapshot and
// builds its streaming processor over a private fork.
func (s *Server) openStreamProcessor(ctx context.Context, name string) (*stream.Processor, error) {
	snap, err := s.store.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	return stream.NewProcessor(stream.Config{
		View: stream.View{
			Scenario: name,
			Topo:     snap.Scenario.Topo,
			Sensors:  snap.Scenario.Sensors,
			Prefixes: snap.Prefixes,
			Baseline: snap.BeforeMesh,
			Net:      snap.Net.Fork(),
			Router:   snap.Router,
			Workers:  s.par,
		},
		WindowMS:    s.eventWindowMS,
		IdleCloseMS: s.eventIdleCloseMS,
		Diagnose:    s.streamDiagnoser(name),
		Life:        s.lifeCtx,
		Telemetry:   s.tele,
		Logger:      s.log,
	}), nil
}

// streamDiagnoser adapts one scenario's closed events onto the
// queue/flight diagnosis path. The flight key is the event ID, so a
// re-closed event (journal reset) coalesces with its own in-flight
// diagnosis instead of recomputing; the event ID is also the trace ID,
// keeping replayed runs byte-identical with tracing on or off. A shed
// reports retry=true and the processor parks the event as pending.
func (s *Server) streamDiagnoser(scenarioName string) stream.Diagnoser {
	algo := netdiag.NDEdgeAlgo
	return func(eventID string, tminus, tplus *probe.Mesh) ([]byte, bool, error) {
		if s.draining.Load() {
			return nil, false, errDraining
		}
		tr := telemetry.NewRequestTrace(eventID)
		key := "event|" + scenarioName + "|" + algo.Slug() + "|" + eventID
		f, _, ok := s.flights.do(key, tr.ID(), s.queue.TrySubmit, func() ([]byte, error) {
			if s.draining.Load() {
				return nil, errDraining
			}
			if s.testJobStart != nil {
				s.testJobStart()
			}
			ctx, cancel := context.WithTimeout(s.lifeCtx, s.requestTimeout)
			defer cancel()
			return s.computeAlarm(telemetry.ContextWithTrace(ctx, tr), scenarioName, algo,
				&monitor.Alarm{Baseline: tminus, Current: tplus})
		})
		if !ok {
			s.shed.Inc()
			return nil, true, nil
		}
		select {
		case <-f.done:
			return f.body, false, f.err
		case <-s.lifeCtx.Done():
			return nil, false, s.lifeCtx.Err()
		}
	}
}

// StreamProcessor returns (building on first use) the streaming
// processor for a registered scenario. It errors when the server was
// built without Config.Ingest.
func (s *Server) StreamProcessor(ctx context.Context, name string) (*stream.Processor, error) {
	if s.streamSvc == nil {
		return nil, fmt.Errorf("server: streaming ingestion disabled (Config.Ingest)")
	}
	if !s.reg.Has(name) {
		return nil, fmt.Errorf("server: unknown scenario %q", name)
	}
	return s.streamSvc.Processor(ctx, name)
}
