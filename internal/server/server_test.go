package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netdiag"
	"netdiag/internal/core"
	"netdiag/internal/monitor"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// post runs one POST /v1/diagnose against the handler and returns the
// recorded response.
func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/diagnose", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealthReadyScenarios(t *testing.T) {
	s := New(Config{Telemetry: telemetry.New()})
	defer s.Close()

	if w := get(t, s.Handler(), "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
	if w := get(t, s.Handler(), "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before warm-up = %d, want 503", w.Code)
	}
	if err := s.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w := get(t, s.Handler(), "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz after warm-up = %d, want 200", w.Code)
	}

	w := get(t, s.Handler(), "/v1/scenarios")
	if w.Code != http.StatusOK {
		t.Fatalf("scenarios = %d, want 200", w.Code)
	}
	var infos []ScenarioInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "fig1" || infos[1].Name != "fig2" {
		t.Fatalf("scenario listing = %+v, want sorted [fig1 fig2]", infos)
	}
	for _, in := range infos {
		if !in.Warm {
			t.Fatalf("scenario %s not warm after WarmAll", in.Name)
		}
		if in.Sensors != 3 {
			t.Fatalf("scenario %s sensors = %d, want 3", in.Name, in.Sensors)
		}
	}
	// The listing must be byte-deterministic (sorted names, stable JSON).
	if w2 := get(t, s.Handler(), "/v1/scenarios"); !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("scenario listing bytes differ between identical requests")
	}
}

// TestDiagnoseByteIdentity pins the service's determinism contract: the
// response for a given (scenario, failure set, algorithm) is byte-
// identical at any parallelism, with telemetry on or off, and across
// freshly converged servers.
func TestDiagnoseByteIdentity(t *testing.T) {
	type cfg struct {
		par  int
		tele *telemetry.Registry
	}
	cfgs := []cfg{{1, nil}, {1, telemetry.New()}, {4, nil}, {4, telemetry.New()}}
	algos := []string{"tomo", "nd-edge", "nd-bgpigp", "nd-lg"}

	golden := map[string][]byte{}
	for i, c := range cfgs {
		s := New(Config{Parallelism: c.par, Telemetry: c.tele})
		for _, algo := range algos {
			body := fmt.Sprintf(`{"scenario":"fig2","algorithm":%q,"fail_links":[["b1","b2"]]}`, algo)
			w := post(t, s.Handler(), body)
			if w.Code != http.StatusOK {
				t.Fatalf("cfg %d algo %s: status %d: %s", i, algo, w.Code, w.Body.String())
			}
			var res core.WireResult
			if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
				t.Fatalf("cfg %d algo %s: invalid wire JSON: %v", i, algo, err)
			}
			if res.Algorithm != algo {
				t.Fatalf("cfg %d: wire algorithm %q, want %q", i, res.Algorithm, algo)
			}
			if len(res.Hypothesis) == 0 {
				t.Fatalf("cfg %d algo %s: empty hypothesis for a real failure", i, algo)
			}
			if g, ok := golden[algo]; !ok {
				golden[algo] = w.Body.Bytes()
			} else if !bytes.Equal(g, w.Body.Bytes()) {
				t.Fatalf("algo %s: response bytes differ between configs\n%s\nvs\n%s",
					algo, g, w.Body.Bytes())
			}
		}
		s.Close()
	}
}

// TestWarmRequestsReuseSnapshot pins the warm-snapshot contract: one cold
// convergence, every later request a warm hit — and equal bytes.
func TestWarmRequestsReuseSnapshot(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg})
	defer s.Close()
	body := `{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`
	first := post(t, s.Handler(), body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d: %s", first.Code, first.Body.String())
	}
	for i := 0; i < 3; i++ {
		w := post(t, s.Handler(), body)
		if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), first.Body.Bytes()) {
			t.Fatalf("request %d: status %d or bytes differ from first", i, w.Code)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cold_converges"] != 1 {
		t.Fatalf("cold_converges = %d, want 1", snap.Counters["server.cold_converges"])
	}
	if snap.Counters["server.warm_hits"] != 3 {
		t.Fatalf("warm_hits = %d, want 3", snap.Counters["server.warm_hits"])
	}
}

// TestDiagnoseUsesIncrementalReconvergence pins the served warm path end to
// end: a diagnosis forks the scenario's converged snapshot, so its
// reconvergence must ride the delta-driven incremental path (not a cold
// recompute) and record the dirty-set pruning telemetry.
func TestDiagnoseUsesIncrementalReconvergence(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg})
	defer s.Close()
	body := `{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`
	w := post(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("diagnose: %d: %s", w.Code, w.Body.String())
	}
	snap := reg.Snapshot()
	if snap.Counters["netsim.reconverges_incremental"] == 0 {
		t.Fatal("served diagnosis did not use incremental reconvergence")
	}
	if snap.Counters["bgp.prefixes_dirty"] == 0 {
		t.Fatal("incremental reconvergence recorded no dirty prefixes for a real failure")
	}
}

// waitCounter polls a telemetry counter until it reaches want.
func waitCounter(t testing.TB, reg *telemetry.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counters[name] >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (now %d)", name, want, reg.Snapshot().Counters[name])
}

// TestDiagnoseCoalesces holds the single worker busy and fires identical
// requests: exactly one computation runs and every client gets the same
// bytes, asserted through the coalesce counters.
func TestDiagnoseCoalesces(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Workers: 1, QueueDepth: 4, Telemetry: reg})
	defer s.Close()
	if err := s.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testJobStart = func() {
		started <- struct{}{}
		<-gate
	}
	body := `{"scenario":"fig2","algorithm":"tomo","fail_links":[["b1","b2"]]}`
	// The same failure set written differently must coalesce too.
	alias := `{"scenario":"fig2","fail_links":[["b2","b1"],["b1","b2"]]}`

	var wg sync.WaitGroup
	results := make([]*httptest.ResponseRecorder, 3)
	for i, b := range []string{body, body, alias} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = post(t, s.Handler(), b)
		}()
		if i == 0 {
			<-started // leader's job is executing before followers arrive
		}
	}
	waitCounter(t, reg, "server.coalesce_hits", 2)
	close(gate)
	wg.Wait()

	for i, w := range results {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), results[0].Body.Bytes()) {
			t.Fatalf("request %d: coalesced bytes differ", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["server.coalesce_misses"] != 1 || snap.Counters["server.coalesce_hits"] != 2 {
		t.Fatalf("coalesce counters = misses %d hits %d, want 1/2",
			snap.Counters["server.coalesce_misses"], snap.Counters["server.coalesce_hits"])
	}
	if r := snap.Derived["server.coalesce_hit_ratio"]; r < 0.66 || r > 0.67 {
		t.Fatalf("coalesce_hit_ratio = %v, want 2/3", r)
	}
	if snap.Counters["pool.queue_executed"] != 1 {
		t.Fatalf("queue executed %d jobs for 3 identical requests, want 1",
			snap.Counters["pool.queue_executed"])
	}
}

// TestDiagnoseSheds429 fills the single worker and the single queue slot,
// then asserts the next (distinct) request is shed with 429 + Retry-After.
func TestDiagnoseSheds429(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Workers: 1, QueueDepth: 1, Telemetry: reg})
	defer s.Close()
	if err := s.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testJobStart = func() {
		started <- struct{}{}
		<-gate
	}

	var wg sync.WaitGroup
	reqA := `{"scenario":"fig2","fail_links":[["b1","b2"]]}`
	reqB := `{"scenario":"fig2","fail_links":[["c1","c2"]]}`
	reqC := `{"scenario":"fig2","fail_routers":["y1"]}`
	codes := make([]int, 2)
	wg.Add(1)
	go func() { defer wg.Done(); codes[0] = post(t, s.Handler(), reqA).Code }()
	<-started // worker now busy with A; queue slot empty
	wg.Add(1)
	go func() { defer wg.Done(); codes[1] = post(t, s.Handler(), reqB).Code }()
	waitCounter(t, reg, "pool.queue_submitted", 2) // B occupies the only slot

	w := post(t, s.Handler(), reqC)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request = %d, want 429: %s", w.Code, w.Body.String())
	}
	if ra := w.Result().Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.requests_shed"] != 1 || snap.Counters["pool.queue_shed"] != 1 {
		t.Fatalf("shed counters = server %d queue %d, want 1/1",
			snap.Counters["server.requests_shed"], snap.Counters["pool.queue_shed"])
	}

	close(gate)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("accepted request %d finished with %d, want 200", i, c)
		}
	}
}

func TestDiagnoseErrors(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	cases := []struct {
		name, body string
		want       int
		wantCode   string
	}{
		{"unknown scenario", `{"scenario":"nope"}`, http.StatusNotFound, "not_found"},
		{"unknown algorithm", `{"scenario":"fig2","algorithm":"magic"}`, http.StatusBadRequest, "bad_request"},
		{"bad json", `{"scenario":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"scenario":"fig2","frobnicate":1}`, http.StatusBadRequest, "bad_request"},
		{"unknown router", `{"scenario":"fig2","fail_routers":["zz9"]}`, http.StatusBadRequest, "bad_request"},
		{"no such link", `{"scenario":"fig2","fail_links":[["s1","s2"]]}`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		w := post(t, s.Handler(), c.body)
		if w.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.want, w.Body.String())
		}
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Message == "" {
			t.Errorf("%s: error body %q not the v1 envelope", c.name, w.Body.String())
		}
		if e.Error.Code != c.wantCode {
			t.Errorf("%s: error code %q, want %q", c.name, e.Error.Code, c.wantCode)
		}
	}
	// Wrong method on a registered pattern.
	req := httptest.NewRequest(http.MethodGet, "/v1/diagnose", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/diagnose = %d, want 405", w.Code)
	}
}

// TestDiagnoseAlarm feeds a watcher-confirmed alarm through the shared
// queue and checks the diagnosis names the failed region.
func TestDiagnoseAlarm(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg})
	defer s.Close()
	ctx := context.Background()
	snap, err := s.store.Get(ctx, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	// Produce a real post-failure mesh the way a sensor overlay would see it.
	fork := snap.Net.Fork()
	link, ok := snap.Scenario.Topo.LinkBetween(mustRouter(t, snap, "b1"), mustRouter(t, snap, "b2"))
	if !ok {
		t.Fatal("fig2 has no b1-b2 link")
	}
	fork.FailLink(link.ID)
	if err := fork.ReconvergeCtx(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := fork.MeshCtx(ctx, snap.Scenario.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	if !after.AnyFailed() {
		t.Fatal("failing b1-b2 broke no sensor pair")
	}

	w := monitor.NewWatcher(monitor.Config{Confirm: 2})
	w.Observe(snap.BeforeMesh)
	w.Observe(after)
	alarm := w.Observe(after)
	if alarm == nil {
		t.Fatal("watcher did not confirm the persistent failure")
	}

	res, err := s.DiagnoseAlarm(ctx, "fig2", netdiag.NDEdgeAlgo, alarm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "nd-edge" || len(res.Hypothesis) == 0 {
		t.Fatalf("alarm diagnosis = %+v, want nd-edge hypothesis", res)
	}
	if reg.Snapshot().Counters["pool.queue_executed"] != 1 {
		t.Fatal("alarm diagnosis did not go through the admission queue")
	}
	// Routing-dependent algorithms are rejected for alarms.
	if _, err := s.DiagnoseAlarm(ctx, "fig2", netdiag.NDLGAlgo, alarm); err == nil {
		t.Fatal("DiagnoseAlarm(nd-lg) succeeded, want request error")
	}
}

func mustRouter(t *testing.T, snap *Snapshot, name string) topology.RouterID {
	t.Helper()
	r, ok := snap.Router(name)
	if !ok {
		t.Fatalf("router %q not found", name)
	}
	return r
}
