package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"netdiag/internal/bgp"
	"netdiag/internal/igp"
	"netdiag/internal/ip2as"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Snapshot is a warm, converged scenario: the healthy network plus every
// derived artifact a diagnosis request needs (pre-failure mesh and BGP
// state, IP-to-AS table, sensor prefixes). Requests never mutate a
// Snapshot — each one works on a private Fork of Net — so one Snapshot
// serves any number of concurrent diagnoses.
type Snapshot struct {
	Scenario   *Scenario
	Net        *netsim.Network
	BeforeMesh *probe.Mesh
	BeforeBGP  *bgp.State
	IP2AS      *ip2as.Table
	Prefixes   []bgp.Prefix
	SensorASes []topology.ASN

	routerByName map[string]topology.RouterID
}

// Router resolves a router reference from a request: a router name from
// the topology, or a numeric router ID.
func (s *Snapshot) Router(ref string) (topology.RouterID, bool) {
	if id, ok := s.routerByName[ref]; ok {
		return id, true
	}
	if n, err := strconv.Atoi(ref); err == nil && n >= 0 && n < s.Scenario.Topo.NumRouters() {
		return topology.RouterID(n), true
	}
	return 0, false
}

// storeEntry tracks one scenario's convergence: ready closes when snap
// and err are final.
type storeEntry struct {
	ready chan struct{}
	snap  *Snapshot
	err   error
}

// Store owns the warm snapshots. The expensive part of a diagnosis — BGP
// and SPF convergence of the healthy network — is paid once per scenario
// (at startup via WarmAll, or lazily on first request) and every later
// request forks off the warm base. Concurrent Get calls for a converging
// scenario share one convergence (singleflight); a failed convergence is
// cleared so the next request retries it.
type Store struct {
	reg     *Registry
	par     int
	snapDir string

	mu      sync.Mutex
	entries map[string]*storeEntry

	tele          *telemetry.Registry
	warmHits      *telemetry.Counter
	coldConverges *telemetry.Counter
	snapLoads     *telemetry.Counter
	snapSaves     *telemetry.Counter
	warmupNS      *telemetry.Histogram
}

// NewStore returns a store over the registry. parallelism bounds the
// workers each scenario's network uses for convergence and meshing (<= 0
// selects GOMAXPROCS); snapshotDir, when non-empty, is the directory
// warm snapshots are persisted to and recovered from (see Store.build);
// a non-nil telemetry registry receives the "server.warm_hits" /
// "server.cold_converges" / "server.snapshot_loads" /
// "server.snapshot_saves" counters, the "server.warmup_ns" histogram and
// the simulation-layer metrics.
func NewStore(reg *Registry, parallelism int, snapshotDir string, tele *telemetry.Registry) *Store {
	return &Store{
		reg:           reg,
		par:           parallelism,
		snapDir:       snapshotDir,
		entries:       map[string]*storeEntry{},
		tele:          tele,
		warmHits:      tele.Counter("server.warm_hits"),
		coldConverges: tele.Counter("server.cold_converges"),
		snapLoads:     tele.Counter("server.snapshot_loads"),
		snapSaves:     tele.Counter("server.snapshot_saves"),
		warmupNS:      tele.Histogram("server.warmup_ns", telemetry.DurationBuckets),
	}
}

// IsWarm reports whether the named scenario has a converged snapshot
// ready right now.
func (s *Store) IsWarm(name string) bool {
	s.mu.Lock()
	e := s.entries[name]
	s.mu.Unlock()
	if e == nil {
		return false
	}
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// Get returns the warm snapshot for name, converging it first if no
// request has needed it yet. The convergence itself is not cancellable
// mid-flight (it runs to completion so later requests can reuse it), but
// Get stops waiting and returns ctx.Err() when ctx ends first.
func (s *Store) Get(ctx context.Context, name string) (*Snapshot, error) {
	s.mu.Lock()
	e := s.entries[name]
	if e == nil {
		e = &storeEntry{ready: make(chan struct{})}
		s.entries[name] = e
		s.coldConverges.Inc()
		go s.converge(name, e)
	} else {
		s.warmHits.Inc()
	}
	s.mu.Unlock()

	select {
	case <-e.ready:
		return e.snap, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// converge builds the snapshot for one entry and publishes it. On failure
// the entry is removed first, so a later Get starts a fresh convergence
// instead of serving a pinned error.
func (s *Store) converge(name string, e *storeEntry) {
	start := telemetry.Now()
	snap, err := s.build(name)
	e.snap, e.err = snap, err
	if err != nil {
		s.mu.Lock()
		delete(s.entries, name)
		s.mu.Unlock()
	} else {
		s.warmupNS.Observe(telemetry.Since(start).Nanoseconds())
	}
	close(e.ready)
}

// build converges one scenario into a snapshot, mirroring the experiment
// harness setup: the network announces one prefix per sensor AS, a shared
// SPF cache makes request forks reuse unchanged per-AS routing tables,
// and the healthy full mesh plus the BGP state become the T- baseline.
// With a snapshot directory configured, a persisted snapshot short-cuts
// the whole convergence, and a cold convergence persists its result for
// the next worker.
func (s *Store) build(name string) (*Snapshot, error) {
	scn, err := s.reg.Get(name)
	if err != nil {
		return nil, err
	}
	topo := scn.Topo
	seen := map[topology.ASN]bool{}
	var origins []topology.ASN
	sensorASes := make([]topology.ASN, len(scn.Sensors))
	for i, r := range scn.Sensors {
		as := topo.RouterAS(r)
		sensorASes[i] = as
		if !seen[as] {
			seen[as] = true
			origins = append(origins, as)
		}
	}
	opts := []netsim.Option{
		netsim.WithSPFCache(igp.NewCache()),
		netsim.WithParallelism(s.par),
		netsim.WithTelemetry(s.tele),
	}
	var (
		net    *netsim.Network
		before *probe.Mesh
		table  *ip2as.Table
	)
	if loaded := s.loadSnapshot(name, scn, opts); loaded != nil {
		net, before, table = loaded.Net, loaded.Mesh, loaded.IP2AS
	} else {
		net, err = netsim.New(topo, origins, opts...)
		if err != nil {
			return nil, fmt.Errorf("server: converging scenario %q: %w", name, err)
		}
		before = net.Mesh(scn.Sensors)
		if before.AnyFailed() {
			return nil, fmt.Errorf("server: scenario %q: pre-failure mesh has unreachable pairs", name)
		}
		table, err = ip2as.FromTopology(topo)
		if err != nil {
			return nil, fmt.Errorf("server: scenario %q: %w", name, err)
		}
		s.persistSnapshot(name, scn, net, before, table)
	}
	prefixes := make([]bgp.Prefix, len(sensorASes))
	for i, as := range sensorASes {
		prefixes[i] = bgp.PrefixFor(as)
	}
	byName := make(map[string]topology.RouterID, topo.NumRouters())
	for i := 0; i < topo.NumRouters(); i++ {
		id := topology.RouterID(i)
		byName[topo.Router(id).Name] = id
	}
	return &Snapshot{
		Scenario:     scn,
		Net:          net,
		BeforeMesh:   before,
		BeforeBGP:    net.BGP(),
		IP2AS:        table,
		Prefixes:     prefixes,
		SensorASes:   sensorASes,
		routerByName: byName,
	}, nil
}

// WarmAll converges every registered scenario in name order, so a server
// that warms at startup answers its first request from a hot snapshot.
// It stops early (returning ctx.Err()) if ctx ends, and returns the first
// convergence error otherwise.
func (s *Store) WarmAll(ctx context.Context) error {
	for _, name := range s.reg.Names() {
		if _, err := s.Get(ctx, name); err != nil {
			return err
		}
	}
	return nil
}
