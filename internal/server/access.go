package server

import (
	"context"
	"log/slog"
	"net/http"

	"netdiag/internal/core"
	"netdiag/internal/telemetry"
)

// Per-request observability: every request entering the v1 surface gets a
// trace ID at the edge (propagated via the ND-Trace-Id header, minted
// when the client sent none), a *telemetry.Trace collecting its phase
// spans across the queue/flight/fork pipeline, one structured access log
// line, and a TraceRecord retained in the /debug/traces ring. The trace
// ID is echoed in the response header of every outcome — success, shed,
// error envelope — and never enters a response body.

// access accumulates one request's observability record while the
// handler runs. The handler goroutine owns every field: queueWait is
// copied from the flight after <-flight.done (the close is the
// happens-before edge), so no field needs an atomic. A handler that
// gives up early (504) logs a deterministic zero wait.
type access struct {
	op          string
	id          string
	tr          *telemetry.Trace
	scenario    string
	algo        string
	shard       string
	coalesced   bool
	leaderTrace string
	queueWait   int64 // nanoseconds from admission to job start
}

// accessKey carries the *access record through the request context so
// the handler and the pipeline underneath it annotate the same record.
type accessKey struct{}

func contextWithAccess(ctx context.Context, a *access) context.Context {
	return context.WithValue(ctx, accessKey{}, a)
}

// accessFrom returns the request's access record. Handlers reached
// without the observe wrapper (direct unit-test invocation) get a
// discardable record, so annotation is always safe.
func accessFrom(ctx context.Context) *access {
	if a, ok := ctx.Value(accessKey{}).(*access); ok {
		return a
	}
	return &access{}
}

// requestTraceID resolves the request's trace ID: a valid propagated
// ND-Trace-Id is kept (so one ID follows the request across the fleet),
// anything else — absent, oversized, bad characters — is replaced by a
// fresh one at this edge.
func requestTraceID(r *http.Request) string {
	if id := r.Header.Get(core.TraceHeader); telemetry.ValidTraceID(id) {
		return id
	}
	return telemetry.NewTraceID()
}

// statusWriter captures the status code a handler answers with, for the
// access log and trace record. Default is 200 (Write without an explicit
// WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// observe wraps a worker handler with the per-request observability
// envelope: trace ID assignment and echo, status capture, the request
// counter and latency histogram (for the diagnosis ops, preserving their
// pre-tracing semantics), and the finishing access log + trace record.
func (s *Server) observe(op string, counted bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := telemetry.Now()
		if counted {
			s.requests.Inc()
		}
		acc := &access{op: op, id: requestTraceID(r)}
		acc.tr = telemetry.NewRequestTrace(acc.id)
		w.Header().Set(core.TraceHeader, acc.id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(contextWithAccess(r.Context(), acc)))
		durNs := telemetry.Since(start).Nanoseconds()
		if counted {
			s.latency.Observe(durNs)
		}
		finishAccess(s.log, s.traces, s.slowNs, acc, sw.status, durNs)
	})
}

// finishAccess closes out one request: retain its TraceRecord in the
// ring and emit the structured access line. Durations are logged in
// seconds (see telemetry/units.go). A request slower than slowNs (> 0)
// is promoted to a second line carrying the per-phase span breakdown.
func finishAccess(log *slog.Logger, ring *telemetry.TraceRing, slowNs int64,
	acc *access, status int, durNs int64) {
	rec := telemetry.TraceRecord{
		TraceID:   acc.id,
		Op:        acc.op,
		Scenario:  acc.scenario,
		Algorithm: acc.algo,
		Shard:     acc.shard,
		Status:    status,
		Coalesced: acc.coalesced,
		DurationS: telemetry.Seconds(durNs),
		Spans:     acc.tr.Views(),
	}
	ring.Add(rec)
	if log == nil {
		return
	}
	attrs := []any{
		"trace", acc.id,
		"op", acc.op,
		"scenario", acc.scenario,
		"algorithm", acc.algo,
		"status", status,
		"coalesced", acc.coalesced,
		"queue_wait_s", telemetry.Seconds(acc.queueWait),
		"duration_s", rec.DurationS,
	}
	if acc.shard != "" {
		attrs = append(attrs, "shard", acc.shard)
	}
	if acc.coalesced && acc.leaderTrace != "" {
		attrs = append(attrs, "leader_trace", acc.leaderTrace)
	}
	log.Info("access", attrs...)
	if slowNs > 0 && durNs >= slowNs {
		log.Warn("slow request",
			"trace", acc.id, "op", acc.op, "scenario", acc.scenario,
			"duration_s", rec.DurationS, "spans", rec.Spans)
	}
}
