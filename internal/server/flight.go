package server

import (
	"sync"

	"netdiag/internal/telemetry"
)

// flight is one in-flight diagnosis computation. Its result is final once
// done closes; every coalesced request for the same key reads the same
// bytes, which is what makes coalescing invisible to clients.
type flight struct {
	done chan struct{}
	body []byte
	err  error
	// leaderTrace is the trace ID of the request that submitted the
	// computation; coalesced followers log it so one slow computation's
	// access lines stitch together across its waiters.
	leaderTrace string
	// queueWaitNs is the admission→job-start wait measured by the group
	// itself, so every handler gets it for free instead of each one
	// wiring its own clock into the job closure. A plain field, not an
	// atomic: the job goroutine writes it before close(done), and readers
	// only look after <-done, so the channel close is the happens-before
	// edge. A handler that gives up early (504) never reads it.
	queueWaitNs int64
}

// flightGroup coalesces identical in-flight requests (singleflight): the
// first request for a canonical key becomes the leader and submits one
// computation; requests arriving before it completes attach to it instead
// of queueing their own. Entries are removed as soon as the computation
// finishes — this is request coalescing, not a response cache: a request
// arriving after completion recomputes (against the warm snapshot).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight

	hits   *telemetry.Counter
	misses *telemetry.Counter
}

func newFlightGroup(tele *telemetry.Registry) *flightGroup {
	return &flightGroup{
		m:      map[string]*flight{},
		hits:   tele.Counter("server.coalesce_hits"),
		misses: tele.Counter("server.coalesce_misses"),
	}
}

// do returns the flight for key, creating and submitting it when none is
// in flight. The submit func must be non-blocking (pool.Queue.TrySubmit);
// it is invoked under the group lock so that a shed admission leaves no
// window for followers to attach to a flight that will never run.
// traceID is the calling request's trace ID, retained on the flight when
// this caller becomes the leader. leader reports which role the caller
// got; ok is false only when this caller would have been the leader and
// admission was refused — the caller sheds the request.
func (g *flightGroup) do(key, traceID string, submit func(func()) bool, compute func() ([]byte, error)) (f *flight, leader, ok bool) {
	g.mu.Lock()
	if f := g.m[key]; f != nil {
		g.mu.Unlock()
		g.hits.Inc()
		return f, false, true
	}
	f = &flight{done: make(chan struct{}), leaderTrace: traceID}
	submitted := telemetry.Now()
	run := func() {
		f.queueWaitNs = telemetry.Since(submitted).Nanoseconds()
		f.body, f.err = compute()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}
	//ndlint:ignore locksafe submit is pool.Queue.TrySubmit, non-blocking by contract; invoking it under g.mu is deliberate so a shed admission leaves no window for followers to attach to a flight that will never run
	if !submit(run) {
		g.mu.Unlock()
		return nil, false, false
	}
	g.m[key] = f
	g.misses.Inc()
	g.mu.Unlock()
	return f, true, true
}
