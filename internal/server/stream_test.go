package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"netdiag"
	"netdiag/internal/core"
	"netdiag/internal/monitor"
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
)

// ingestTask is one POST against an ingest endpoint: a line-aligned
// chunk of the committed feed. Trace chunks keep each probe's lines
// together (a probe must complete within one body); BGP records travel
// one per request so the parallel replay exercises maximal reordering.
type ingestTask struct {
	path string
	body string
}

// streamFeedTasks loads the committed fig2 feed and splits it into the
// per-request chunks the replay posts concurrently.
func streamFeedTasks(t *testing.T) []ingestTask {
	t.Helper()
	var tasks []ingestTask

	bgpRaw, err := os.ReadFile(filepath.Join("testdata", "streamfeed", "bgp.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(bgpRaw)), "\n") {
		tasks = append(tasks, ingestTask{path: "/v1/ingest/bgp", body: line + "\n"})
	}

	traceRaw, err := os.ReadFile(filepath.Join("testdata", "streamfeed", "trace.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	var probeID string
	var chunk []string
	flush := func() {
		if len(chunk) > 0 {
			tasks = append(tasks, ingestTask{path: "/v1/ingest/traceroute", body: strings.Join(chunk, "\n") + "\n"})
			chunk = nil
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(string(traceRaw)), "\n") {
		var hdr struct {
			Probe string `json:"probe"`
		}
		if err := json.Unmarshal([]byte(line), &hdr); err != nil {
			t.Fatalf("feed line %q: %v", line, err)
		}
		if hdr.Probe != probeID {
			flush()
			probeID = hdr.Probe
		}
		chunk = append(chunk, line)
	}
	flush()
	return tasks
}

// pollEvents polls GET /v1/events?scenario= until every event has
// reached a terminal status, returning the final body verbatim.
func pollEvents(t *testing.T, h http.Handler, scenario string) []byte {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		w := get(t, h, "/v1/events?scenario="+scenario)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/events = %d: %s", w.Code, w.Body.String())
		}
		var evs []core.WireEvent
		if err := json.Unmarshal(w.Body.Bytes(), &evs); err != nil {
			t.Fatalf("decoding events: %v", err)
		}
		settled := len(evs) > 0
		for _, ev := range evs {
			if ev.Status != core.EventDiagnosed && ev.Status != core.EventFailed {
				settled = false
			}
		}
		if settled {
			return w.Body.Bytes()
		}
		if time.Now().After(deadline) {
			t.Fatalf("events never settled: %s", w.Body.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runStreamReplay replays the committed feed against a fresh ingest
// server at the given POST parallelism, with or without client trace
// IDs, and returns the settled /v1/events body.
func runStreamReplay(t *testing.T, par int, withTrace bool) []byte {
	t.Helper()
	s := New(Config{Telemetry: telemetry.New(), Ingest: true})
	defer s.Close()
	h := s.Handler()

	tasks := streamFeedTasks(t)
	// Deterministically shuffled per configuration so different runs
	// arrive in genuinely different orders.
	rnd := rand.New(rand.NewSource(int64(par)*7919 + 17))
	rnd.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })

	ch := make(chan ingestTask)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			seq := 0
			for tk := range ch {
				req := httptest.NewRequest(http.MethodPost, tk.path+"?scenario=fig2", strings.NewReader(tk.body))
				if withTrace {
					req.Header.Set(core.TraceHeader, fmt.Sprintf("replay-%d-%d-%d", par, worker, seq))
				}
				seq++
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				var resp struct {
					Accepted int    `json:"accepted"`
					Rejected int    `json:"rejected"`
					FirstErr string `json:"first_error"`
				}
				err := json.Unmarshal(w.Body.Bytes(), &resp)
				mu.Lock()
				switch {
				case w.Code != http.StatusOK:
					if firstErr == nil {
						firstErr = fmt.Errorf("POST %s = %d: %s", tk.path, w.Code, w.Body.String())
					}
				case err != nil:
					if firstErr == nil {
						firstErr = fmt.Errorf("decoding ingest response: %v", err)
					}
				case resp.Rejected != 0:
					if firstErr == nil {
						firstErr = fmt.Errorf("feed chunk rejected: %s", resp.FirstErr)
					}
				}
				mu.Unlock()
			}
		}(i)
	}
	for _, tk := range tasks {
		ch <- tk
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return pollEvents(t, h, "fig2")
}

// TestStreamReplayDeterminism is the acceptance check for the streaming
// plane: the committed feed replayed at parallelism 1 and 8, with
// tracing off and on, must yield byte-identical /v1/events bodies —
// the journal's (ts, key) order, not arrival order, defines the run.
func TestStreamReplayDeterminism(t *testing.T) {
	seq := runStreamReplay(t, 1, false)
	par := runStreamReplay(t, 8, false)
	traced := runStreamReplay(t, 8, true)

	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel replay diverged from sequential:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", seq, par)
	}
	if !bytes.Equal(seq, traced) {
		t.Fatalf("traced replay diverged from untraced:\n--- off ---\n%s\n--- on ---\n%s", seq, traced)
	}

	var evs []core.WireEvent
	if err := json.Unmarshal(seq, &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1 correlated event:\n%s", len(evs), seq)
	}
	ev := evs[0]
	if ev.Status != core.EventDiagnosed {
		t.Fatalf("event status = %q, want diagnosed (error %q)", ev.Status, ev.Error)
	}
	if len(ev.Observations) != 4 {
		t.Fatalf("observations = %d, want 4 (2 withdrawals + 2 failing traces)", len(ev.Observations))
	}
	if ev.TraceID != ev.ID || !telemetry.ValidTraceID(ev.TraceID) {
		t.Fatalf("trace id %q should equal the event id %q and be valid", ev.TraceID, ev.ID)
	}
	if ev.Hypothesis == nil {
		t.Fatal("diagnosed event carries no hypothesis")
	}
}

// TestStreamQuietTickNoReprobe is the regression test for the -watch
// fix: with the watcher pulling the streaming overlay, a tick with no
// intervening routing event must not trace a single pair — the old
// timer loop re-measured the full mesh every round.
func TestStreamQuietTickNoReprobe(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg, Ingest: true})
	defer s.Close()

	proc, err := s.StreamProcessor(context.Background(), "fig2")
	if err != nil {
		t.Fatal(err)
	}

	pairsTraced := reg.Counter("probe.pairs_traced")
	reprobed := reg.Counter("stream.pairs_reprobed")
	baseTraced, baseReprobed := pairsTraced.Value(), reprobed.Value()

	w := monitor.NewWatcher(monitor.Config{Confirm: 2})
	ticks := make(chan struct{})
	alarms := 0
	done := make(chan error, 1)
	go func() {
		done <- w.RunPull(context.Background(), ticks,
			func(context.Context) (*probe.Mesh, error) { return proc.CurrentMesh(), nil },
			func(context.Context, *monitor.Alarm) { alarms++ })
	}()
	for i := 0; i < 5; i++ {
		ticks <- struct{}{}
	}
	close(ticks)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if got := pairsTraced.Value(); got != baseTraced {
		t.Fatalf("quiet ticks traced %d pairs, want 0", got-baseTraced)
	}
	if got := reprobed.Value(); got != baseReprobed {
		t.Fatalf("quiet ticks re-probed %d pairs, want 0", got-baseReprobed)
	}
	if alarms != 0 {
		t.Fatalf("quiet ticks raised %d alarms, want 0", alarms)
	}
}

// TestStreamIngestAlarmPath covers the live half of the -watch fix: a
// withdrawal arriving over ingest dirties the overlay, and the pulled
// watcher confirms and diagnoses the resulting alarm through the same
// sink as the timer loop — while re-probing only the dirtied pairs.
func TestStreamIngestAlarmPath(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg, Ingest: true})
	defer s.Close()
	h := s.Handler()

	proc, err := s.StreamProcessor(context.Background(), "fig2")
	if err != nil {
		t.Fatal(err)
	}

	pairsTraced := reg.Counter("probe.pairs_traced")
	baseTraced := pairsTraced.Value()
	diagnosed := reg.Counter("server.alarms_diagnosed")

	w := monitor.NewWatcher(monitor.Config{Confirm: 2})
	source := func(context.Context) (*probe.Mesh, error) { return proc.CurrentMesh(), nil }
	sink := s.AlarmSink("fig2", netdiag.NDEdgeAlgo)
	runTicks := func(n int) {
		t.Helper()
		ticks := make(chan struct{})
		done := make(chan error, 1)
		go func() { done <- w.RunPull(context.Background(), ticks, source, sink) }()
		for i := 0; i < n; i++ {
			ticks <- struct{}{}
		}
		close(ticks)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// One healthy tick seeds the detector's baseline.
	runTicks(1)

	// Disconnect s3: both y3 links go, dirtying only the s3 pairs.
	for _, line := range []string{
		`{"ts":1000,"type":"withdrawal","a":"y3","b":"y4"}`,
		`{"ts":1200,"type":"withdrawal","a":"y2","b":"y3"}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest/bgp?scenario=fig2", strings.NewReader(line+"\n"))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
		}
	}

	// Two failing ticks confirm the streak and raise exactly one alarm.
	runTicks(2)

	if got := diagnosed.Value(); got != 1 {
		t.Fatalf("alarms diagnosed = %d, want 1", got)
	}
	// The two withdrawals dirtied at most the four s3 pairs twice over;
	// the ticks themselves trace nothing (the overlay is pull-only), and
	// a single full re-mesh would have traced all 6 pairs.
	if delta := pairsTraced.Value() - baseTraced; delta == 0 || delta > 8 {
		t.Fatalf("ingest re-traced %d pairs, want >0 and at most the dirtied pairs", delta)
	}
}

// TestStreamIngestErrors pins the v1 error envelope on the ingest
// surface: missing and unknown scenarios fail fast without converging
// anything.
func TestStreamIngestErrors(t *testing.T) {
	s := New(Config{Telemetry: telemetry.New(), Ingest: true})
	defer s.Close()
	h := s.Handler()

	cases := []struct {
		path string
		code int
		want string
	}{
		{"/v1/ingest/bgp", http.StatusBadRequest, core.ErrBadRequest},
		{"/v1/ingest/traceroute?scenario=nope", http.StatusNotFound, core.ErrNotFound},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, c.path, strings.NewReader(`{}`))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != c.code {
			t.Fatalf("POST %s = %d, want %d: %s", c.path, w.Code, c.code, w.Body.String())
		}
		var env struct {
			Error core.WireError `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("POST %s: decoding envelope: %v", c.path, err)
		}
		if env.Error.Code != c.want {
			t.Fatalf("POST %s error code = %q, want %q", c.path, env.Error.Code, c.want)
		}
	}

	// Ingest endpoints are absent entirely when Config.Ingest is off.
	plain := New(Config{Telemetry: telemetry.New()})
	defer plain.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest/bgp?scenario=fig2", strings.NewReader("{}\n"))
	w := httptest.NewRecorder()
	plain.Handler().ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Fatal("ingest should not be routed without Config.Ingest")
	}
}
