package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"netdiag/internal/core"
	"netdiag/internal/telemetry"
)

// Fleet-wide observability tests: trace propagation across the front and
// the shard workers, the /metrics exposition on both tiers, structured
// access-log content, and the contract that tracing never changes a
// response body.

// postTraced runs one POST with an explicit ND-Trace-Id header.
func postTraced(t *testing.T, h http.Handler, path, body, traceID string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if traceID != "" {
		req.Header.Set(core.TraceHeader, traceID)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// findTrace fetches /debug/traces from the handler and returns the
// record for the given trace ID, failing the test when absent.
func findTrace(t *testing.T, h http.Handler, id string) telemetry.TraceRecord {
	t.Helper()
	w := get(t, h, "/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d: %s", w.Code, w.Body.String())
	}
	var page struct {
		Traces []telemetry.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatalf("decoding /debug/traces: %v: %s", err, w.Body.String())
	}
	for _, rec := range page.Traces {
		if rec.TraceID == id {
			return rec
		}
	}
	t.Fatalf("trace %q not in /debug/traces (%d records): %s", id, len(page.Traces), w.Body.String())
	return telemetry.TraceRecord{}
}

func spanNames(rec telemetry.TraceRecord) map[string]int {
	names := map[string]int{}
	for _, sp := range rec.Spans {
		names[sp.Name]++
	}
	return names
}

// TestTracePropagationAcrossFleet pins the tentpole contract: one trace
// ID set by the client follows the request through the front into the
// owning shard, both tiers echo it in the response header, and both
// tiers retain a stitched span record for it in /debug/traces.
func TestTracePropagationAcrossFleet(t *testing.T) {
	front, workers := fleet(t)
	shard := ShardIndex("fig2", len(workers))

	const traceID = "fleet-trace-0001"
	w := postTraced(t, front.Handler(), "/v1/diagnose",
		`{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`, traceID)
	if w.Code != http.StatusOK {
		t.Fatalf("diagnose via front = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(core.TraceHeader); got != traceID {
		t.Fatalf("front echoed trace %q, want %q", got, traceID)
	}

	// The owning worker saw the same ID and recorded the pipeline spans.
	rec := findTrace(t, workers[shard].Handler(), traceID)
	if rec.Op != "diagnose" || rec.Scenario != "fig2" || rec.Algorithm != "nd-edge" || rec.Status != http.StatusOK {
		t.Errorf("worker trace record = %+v, want op=diagnose scenario=fig2 algorithm=nd-edge status=200", rec)
	}
	names := spanNames(rec)
	for _, want := range []string{"admission_wait", "fork", "diagnose", "encode"} {
		if names[want] == 0 {
			t.Errorf("worker trace missing span %q (spans: %v)", want, names)
		}
	}

	// The front retained its own view: the proxy record naming the shard
	// it routed to, with the backend round-trip as a span.
	frec := findTrace(t, front.Handler(), traceID)
	if frec.Op != "proxy" || frec.Status != http.StatusOK || frec.Shard == "" {
		t.Errorf("front trace record = %+v, want op=proxy status=200 with shard set", frec)
	}
	if n := spanNames(frec); n["proxy_backend"] == 0 {
		t.Errorf("front trace missing proxy_backend span (spans: %v)", n)
	}

	// Batch rides the same plumbing, and its per-item spans carry
	// iteration numbers.
	const batchID = "fleet-trace-batch-02"
	w = postTraced(t, front.Handler(), "/v1/diagnose/batch",
		`{"scenario":"fig2","items":[{"fail_links":[["b1","b2"]]},{"fail_routers":["y1"]}]}`, batchID)
	if w.Code != http.StatusOK {
		t.Fatalf("batch via front = %d: %s", w.Code, w.Body.String())
	}
	brec := findTrace(t, workers[shard].Handler(), batchID)
	if brec.Op != "batch" {
		t.Errorf("batch trace op = %q, want batch", brec.Op)
	}
	iters := map[int]bool{}
	for _, sp := range brec.Spans {
		if sp.Name == "item" {
			iters[sp.Iteration] = true
		}
	}
	if !iters[1] || !iters[2] {
		t.Errorf("batch trace item iterations = %v, want {1,2} (spans: %+v)", iters, brec.Spans)
	}
}

// TestTraceHeaderNeverChangesBody pins byte-identity: the exact same
// diagnosis (and error envelope) bytes come back whether the client sent
// a trace ID, sent garbage, or sent nothing — the ID lives in headers
// only.
func TestTraceHeaderNeverChangesBody(t *testing.T) {
	s := New(Config{Telemetry: telemetry.New()})
	defer s.Close()
	h := s.Handler()

	body := `{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`
	plain := postTraced(t, h, "/v1/diagnose", body, "")
	traced := postTraced(t, h, "/v1/diagnose", body, "abc123")
	garbage := postTraced(t, h, "/v1/diagnose", body, "has space")
	if plain.Code != http.StatusOK {
		t.Fatalf("diagnose = %d: %s", plain.Code, plain.Body.String())
	}
	if !bytes.Equal(plain.Body.Bytes(), traced.Body.Bytes()) || !bytes.Equal(plain.Body.Bytes(), garbage.Body.Bytes()) {
		t.Fatal("diagnosis bytes differ depending on the ND-Trace-Id header")
	}

	// Header semantics: a valid client ID is echoed, anything else is
	// replaced by a freshly minted valid ID at the edge.
	if got := traced.Header().Get(core.TraceHeader); got != "abc123" {
		t.Errorf("valid client trace echoed as %q, want abc123", got)
	}
	for _, w := range []*httptest.ResponseRecorder{plain, garbage} {
		id := w.Header().Get(core.TraceHeader)
		if !telemetry.ValidTraceID(id) || id == "has space" {
			t.Errorf("edge minted trace ID %q, want a fresh valid ID", id)
		}
	}

	// Error envelopes carry the ID in the header too, with stable bytes.
	e1 := postTraced(t, h, "/v1/diagnose", `{"scenario":"nope"}`, "")
	e2 := postTraced(t, h, "/v1/diagnose", `{"scenario":"nope"}`, "abc123")
	if e1.Code != http.StatusNotFound || !bytes.Equal(e1.Body.Bytes(), e2.Body.Bytes()) {
		t.Errorf("error envelope differs under tracing: %d %q vs %q",
			e1.Code, e1.Body.String(), e2.Body.String())
	}
	if got := e2.Header().Get(core.TraceHeader); got != "abc123" {
		t.Errorf("error response trace header = %q, want abc123", got)
	}
}

// promFamily is one parsed metric family from a text-format scrape.
type promFamily struct {
	kind    string
	samples map[string]float64 // series key (name or name{le="..."} etc.) -> value
}

// parseProm is the minimal Prometheus text-format (0.0.4) parser the
// golden test needs: # TYPE lines open a family, sample lines attach to
// the family their name prefix belongs to. Anything malformed fails the
// test immediately.
func parseProm(t *testing.T, text string) map[string]promFamily {
	t.Helper()
	fams := map[string]promFamily{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			fams[parts[2]] = promFamily{kind: parts[3], samples: map[string]float64{}}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil && valText != "+Inf" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		fam, ok := fams[name]
		if !ok {
			// Histogram child series (_bucket/_sum/_count) belong to the
			// base family announced by # TYPE.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suf); found {
					if fam, ok = fams[base]; ok {
						break
					}
				}
			}
			if !ok {
				t.Fatalf("sample %q precedes its # TYPE line", line)
			}
		}
		fam.samples[series] = val
	}
	return fams
}

// TestMetricsExposition is the /metrics golden test: a worker that served
// two diagnoses exposes its counters and histograms in text format with
// all durations normalized to seconds, and a rescrape keeps the exact
// same family structure.
func TestMetricsExposition(t *testing.T) {
	s := New(Config{Telemetry: telemetry.New()})
	defer s.Close()
	h := s.Handler()

	for i := 0; i < 2; i++ {
		if w := post(t, h, `{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`); w.Code != http.StatusOK {
			t.Fatalf("diagnose %d = %d: %s", i, w.Code, w.Body.String())
		}
	}

	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q, want text/plain; version=0.0.4", ct)
	}
	fams := parseProm(t, w.Body.String())

	if f, ok := fams["server_requests_total"]; !ok || f.kind != "counter" {
		t.Fatalf("server_requests_total family = %+v, want a counter", fams)
	} else if got := f.samples["server_requests_total"]; got != 2 {
		t.Errorf("server_requests_total = %v, want 2", got)
	}

	for _, name := range []string{"server_request_seconds", "pool_queue_wait_seconds"} {
		f, ok := fams[name]
		if !ok || f.kind != "histogram" {
			t.Fatalf("%s missing or not a histogram (families: %v)", name, famNames(fams))
		}
		// The queue histogram counts every pool job (parallel pipeline
		// subtasks included), so only the request histogram pins an exact
		// count; both must keep +Inf == _count.
		inf, count := f.samples[name+`_bucket{le="+Inf"}`], f.samples[name+"_count"]
		if inf != count || count < 2 {
			t.Errorf("%s: +Inf bucket %v vs _count %v, want equal and >= 2", name, inf, count)
		}
		if name == "server_request_seconds" && count != 2 {
			t.Errorf("%s_count = %v, want exactly 2", name, count)
		}
		// Seconds scale: two sub-minute requests sum well below 120s and
		// above zero.
		if sum := f.samples[name+"_sum"]; sum <= 0 || sum > 120 {
			t.Errorf("%s_sum = %v, not in seconds scale", name, sum)
		}
	}

	// The normalization seam leaves no nanosecond-named series behind.
	for name := range fams {
		if strings.HasSuffix(name, "_ns") {
			t.Errorf("metric %s escaped duration normalization", name)
		}
	}

	// Structural stability: a second scrape exposes the same families.
	again := parseProm(t, get(t, h, "/metrics").Body.String())
	if a, b := famNames(fams), famNames(again); a != b {
		t.Errorf("family set changed between scrapes:\n%s\nvs\n%s", a, b)
	}
}

func famNames(fams map[string]promFamily) string {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// TestFrontMetricsReExportShards pins the front's scrape-time fleet view:
// per-shard up/probe-latency gauges appear alongside the proxy counters,
// and a shard going dark flips its gauge to 0 on the next scrape.
func TestFrontMetricsReExportShards(t *testing.T) {
	front, workers := fleet(t)

	fams := parseProm(t, get(t, front.Handler(), "/metrics").Body.String())
	for i := range workers {
		up := "front_shard" + strconv.Itoa(i) + "_up"
		if f, ok := fams[up]; !ok || f.kind != "gauge" || f.samples[up] != 1 {
			t.Errorf("%s = %+v, want gauge 1", up, fams[up])
		}
		probe := "front_shard" + strconv.Itoa(i) + "_probe_seconds"
		if f, ok := fams[probe]; !ok || f.kind != "gauge" {
			t.Errorf("%s missing from front exposition (families: %s)", probe, famNames(fams))
		} else if v := f.samples[probe]; v <= 0 || v > 60 {
			t.Errorf("%s = %v, not in seconds scale", probe, v)
		}
	}

	// Kill one shard: the next scrape reprobes and reports it down.
	dead := ShardIndex("fig1", len(workers))
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	front.backends[dead] = ts.URL
	fams = parseProm(t, get(t, front.Handler(), "/metrics").Body.String())
	up := "front_shard" + strconv.Itoa(dead) + "_up"
	if got := fams[up].samples[up]; got != 0 {
		t.Errorf("%s after shard death = %v, want 0", up, got)
	}
}

// TestBadGatewayRetryAfterParity pins the 502 surface end to end: the
// envelope's retry_after_s matches the Retry-After header, and both the
// failure log and the access line name the failing shard's backend.
func TestBadGatewayRetryAfterParity(t *testing.T) {
	front, workers := fleet(t)
	dead := ShardIndex("fig1", len(workers))
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	front.backends[dead] = ts.URL

	var buf bytes.Buffer
	front.log = slog.New(slog.NewJSONHandler(&buf, nil))

	const traceID = "deadshard-trace-1"
	w := postTraced(t, front.Handler(), "/v1/diagnose", `{"scenario":"fig1"}`, traceID)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("dead shard = %d, want 502: %s", w.Code, w.Body.String())
	}
	var e struct {
		Error core.WireError `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("decoding envelope: %v: %s", err, w.Body.String())
	}
	if e.Error.Code != core.ErrBadGateway || e.Error.RetryAfterS != 1 {
		t.Errorf("envelope = %+v, want code=bad_gateway retry_after_s=1", e.Error)
	}
	if got := w.Header().Get("Retry-After"); got != strconv.Itoa(e.Error.RetryAfterS) {
		t.Errorf("Retry-After header %q does not match envelope retry_after_s %d", got, e.Error.RetryAfterS)
	}
	if got := w.Header().Get(core.TraceHeader); got != traceID {
		t.Errorf("502 trace header = %q, want %q", got, traceID)
	}

	logs := buf.String()
	for _, want := range []string{"shard backend failed", "access", ts.URL, traceID} {
		if !strings.Contains(logs, want) {
			t.Errorf("front logs missing %q:\n%s", want, logs)
		}
	}
	// The retained trace also names the failing shard.
	rec := findTrace(t, front.Handler(), traceID)
	if rec.Status != http.StatusBadGateway || rec.Shard != ts.URL {
		t.Errorf("502 trace record = %+v, want status=502 shard=%s", rec, ts.URL)
	}
}

// TestSlowRequestPromotion pins the -slow-ms contract: with a 1ns
// threshold every request is "slow", so the access line is followed by a
// warn line carrying the per-phase span breakdown.
func TestSlowRequestPromotion(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{
		Telemetry:     telemetry.New(),
		Logger:        slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowThreshold: time.Nanosecond,
	})
	defer s.Close()

	w := post(t, s.Handler(), `{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("diagnose = %d: %s", w.Code, w.Body.String())
	}
	traceID := w.Header().Get(core.TraceHeader)

	logs := buf.String()
	for _, want := range []string{
		`"msg":"access"`, `"msg":"slow request"`, traceID,
		`"scenario":"fig2"`, `"algorithm":"nd-edge"`, `"queue_wait_s"`,
		`"name":"fork"`, `"name":"diagnose"`, `"name":"encode"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("slow-request logs missing %q:\n%s", want, logs)
		}
	}
}
