package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strings"

	"netdiag"
	"netdiag/internal/core"
	"netdiag/internal/experiment"
	"netdiag/internal/lookingglass"
	"netdiag/internal/monitor"
	"netdiag/internal/netsim"
	"netdiag/internal/telemetry"
)

// DiagnoseRequest is the POST /v1/diagnose body: a registered scenario, a
// failure set to inject into a fork of its warm snapshot, and the
// algorithm to run on the resulting measurements. Router references are
// topology router names (or numeric router IDs).
type DiagnoseRequest struct {
	Scenario string `json:"scenario"`
	// Algorithm is a netdiag.ParseAlgorithm name; empty means "tomo".
	Algorithm string `json:"algorithm,omitempty"`
	// FailLinks lists physical links to fail, each as the pair of router
	// references at its ends.
	FailLinks [][2]string `json:"fail_links,omitempty"`
	// FailRouters lists routers to fail entirely.
	FailRouters []string `json:"fail_routers,omitempty"`
	// TimeoutMS caps this request's computation time in milliseconds;
	// zero (or anything above it) means the server's request timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// requestError is an error with a fixed HTTP status, raised for inputs
// the computation discovers to be invalid (unknown router, no such link).
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &requestError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// canonicalKey normalizes a request to its coalescing identity: two
// requests that differ only in failure order, duplicate entries or link
// endpoint order produce the same key and share one computation.
func canonicalKey(scenarioName string, algo netdiag.Algorithm, links [][2]string, routers []string) string {
	tok := make([]string, 0, len(links)+len(routers))
	for _, l := range links {
		a, b := l[0], l[1]
		if b < a {
			a, b = b, a
		}
		tok = append(tok, "L:"+a+"~"+b)
	}
	for _, r := range routers {
		tok = append(tok, "R:"+r)
	}
	sort.Strings(tok)
	tok = slices.Compact(tok)
	return scenarioName + "|" + algo.Slug() + "|" + strings.Join(tok, ",")
}

// parseAlgo resolves the optional wire algorithm field ("" means tomo).
func parseAlgo(name string) (netdiag.Algorithm, error) {
	if name == "" {
		name = "tomo"
	}
	return netdiag.ParseAlgorithm(name)
}

// compute runs one diagnosis against a fork of the scenario's warm
// snapshot and renders the stable wire JSON. This is the deterministic
// core of the service: the same scenario, failure set and algorithm yield
// the same bytes at any parallelism, with telemetry on or off, and match
// the one-shot netdiagnoser CLI on the equivalent exported scenario.
func (s *Server) compute(ctx context.Context, req *DiagnoseRequest, algo netdiag.Algorithm) ([]byte, error) {
	snap, err := s.store.Get(ctx, req.Scenario)
	if err != nil {
		return nil, err
	}
	endFork := telemetry.TraceFromContext(ctx).StartSpan("fork")
	fork := snap.Net.Fork()
	err = applyFaults(snap, fork, req.FailLinks, req.FailRouters)
	endFork()
	if err != nil {
		return nil, err
	}
	return s.diagnoseFork(ctx, snap, fork, algo)
}

// applyFaults injects a request's failure set into fork, resolving router
// references against the scenario snapshot.
func applyFaults(snap *Snapshot, fork *netsim.Network, links [][2]string, routers []string) error {
	topo := snap.Scenario.Topo
	for _, l := range links {
		a, ok := snap.Router(l[0])
		if !ok {
			return badRequestf("unknown router %q in fail_links", l[0])
		}
		b, ok := snap.Router(l[1])
		if !ok {
			return badRequestf("unknown router %q in fail_links", l[1])
		}
		link, ok := topo.LinkBetween(a, b)
		if !ok {
			return badRequestf("no link between %q and %q", l[0], l[1])
		}
		fork.FailLink(link.ID)
	}
	for _, rr := range routers {
		r, ok := snap.Router(rr)
		if !ok {
			return badRequestf("unknown router %q in fail_routers", rr)
		}
		fork.FailRouter(r)
	}
	return nil
}

// diagnoseFork reconverges a faulted fork, measures the post-failure mesh,
// runs the selected algorithm and renders the wire bytes. The single and
// batch endpoints share this path, which is what makes a batch slot
// byte-identical to the equivalent standalone response.
func (s *Server) diagnoseFork(ctx context.Context, snap *Snapshot, fork *netsim.Network, algo netdiag.Algorithm) ([]byte, error) {
	tr := telemetry.TraceFromContext(ctx)
	endSpan := tr.StartSpan("reconverge")
	err := fork.ReconvergeCtx(ctx)
	endSpan()
	if err != nil {
		return nil, err
	}
	endSpan = tr.StartSpan("mesh")
	after, err := fork.MeshCtx(ctx, snap.Scenario.Sensors)
	endSpan()
	if err != nil {
		return nil, err
	}
	meas := experiment.ToMeasurementsMapped(snap.BeforeMesh, after, snap.IP2AS.Lookup)

	opts := []netdiag.DiagnoserOption{
		netdiag.WithAlgorithm(algo),
		netdiag.WithParallelism(s.par),
		netdiag.WithTelemetry(s.tele),
	}
	asx := snap.Scenario.ASX
	if algo == netdiag.NDBgpIgpAlgo || algo == netdiag.NDLGAlgo {
		ri := &netdiag.RoutingInfo{
			ASX:          asx,
			IGPDownLinks: experiment.AdaptIGPDowns(fork, asx),
			Withdrawals: experiment.AdaptWithdrawals(snap.Scenario.Topo,
				fork.ObserveWithdrawals(snap.BeforeBGP, asx), snap.SensorASes),
		}
		opts = append(opts, netdiag.WithRoutingInfo(ri))
	}
	if algo == netdiag.NDLGAlgo {
		opts = append(opts,
			netdiag.WithLookingGlass(lookingglass.New(fork.BGP(), snap.BeforeBGP, nil, asx, snap.Prefixes)))
	}
	endSpan = tr.StartSpan("diagnose")
	res, err := netdiag.New(opts...).Diagnose(ctx, meas)
	endSpan()
	if err != nil {
		return nil, err
	}
	endSpan = tr.StartSpan("encode")
	defer endSpan()
	return encodeWire(res, algo)
}

// computeAlarm diagnoses a monitor alarm: the alarm's own T-/T+ meshes
// are the measurements, so no fault is injected — the failure is already
// in the data. Only the measurement-only algorithms apply here (the
// control-plane feeds of nd-bgpigp/nd-lg come from fault injection, which
// an observed alarm does not have).
func (s *Server) computeAlarm(ctx context.Context, scenarioName string, algo netdiag.Algorithm, a *monitor.Alarm) ([]byte, error) {
	if algo != netdiag.TomoAlgo && algo != netdiag.NDEdgeAlgo {
		return nil, badRequestf("alarm diagnosis supports tomo and nd-edge, not %s", algo.Slug())
	}
	snap, err := s.store.Get(ctx, scenarioName)
	if err != nil {
		return nil, err
	}
	meas := experiment.ToMeasurementsMapped(a.Baseline, a.Current, snap.IP2AS.Lookup)
	res, err := netdiag.New(
		netdiag.WithAlgorithm(algo),
		netdiag.WithParallelism(s.par),
		netdiag.WithTelemetry(s.tele),
	).Diagnose(ctx, meas)
	if err != nil {
		return nil, err
	}
	return encodeWire(res, algo)
}

// encodeWire renders a result in the shared wire form — the exact bytes
// the netdiagnoser CLI's -json flag prints.
func encodeWire(res *netdiag.Result, algo netdiag.Algorithm) ([]byte, error) {
	var buf bytes.Buffer
	if err := res.Wire(algo.Slug()).Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DiagnoseAlarm routes a confirmed monitor alarm through the same
// admission queue, coalescing group and telemetry as the HTTP requests,
// so monitoring-triggered diagnoses contend fairly with operator ones.
// It blocks until the diagnosis completes or ctx ends, and returns
// errShed when the queue refuses admission.
func (s *Server) DiagnoseAlarm(ctx context.Context, scenarioName string, algo netdiag.Algorithm, a *monitor.Alarm) (*core.WireResult, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	// Alarms trace like HTTP requests: reuse a trace already on ctx (so a
	// caller can correlate), otherwise mint one for this diagnosis.
	tr := telemetry.TraceFromContext(ctx)
	if tr.ID() == "" {
		tr = telemetry.NewRequestTrace(telemetry.NewTraceID())
	}
	key := fmt.Sprintf("alarm|%s|%s|round%d", scenarioName, algo.Slug(), a.Round)
	f, _, ok := s.flights.do(key, tr.ID(), s.queue.TrySubmit, func() ([]byte, error) {
		if s.draining.Load() {
			return nil, errDraining
		}
		if s.testJobStart != nil {
			s.testJobStart()
		}
		cctx, cancel := context.WithTimeout(s.lifeCtx, s.requestTimeout)
		defer cancel()
		return s.computeAlarm(telemetry.ContextWithTrace(cctx, tr), scenarioName, algo, a)
	})
	if !ok {
		s.shed.Inc()
		return nil, errShed
	}
	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		return decodeWire(f.body)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// AlarmSink adapts DiagnoseAlarm to the monitor.Watcher sink signature,
// logging each outcome and feeding the "server.alarms_diagnosed" /
// "server.alarms_failed" counters. This is what ndserve's -watch mode
// wires between the watcher and the queue.
func (s *Server) AlarmSink(scenarioName string, algo netdiag.Algorithm) func(context.Context, *monitor.Alarm) {
	diagnosed := s.tele.Counter("server.alarms_diagnosed")
	failed := s.tele.Counter("server.alarms_failed")
	return func(ctx context.Context, a *monitor.Alarm) {
		res, err := s.DiagnoseAlarm(ctx, scenarioName, algo, a)
		if err != nil {
			failed.Inc()
			if s.log != nil {
				s.log.Warn("alarm diagnosis failed",
					"scenario", scenarioName, "round", a.Round, "err", err)
			}
			return
		}
		diagnosed.Inc()
		if s.log != nil {
			s.log.Info("alarm diagnosed", "scenario", scenarioName,
				"round", a.Round, "algorithm", algo.Slug(),
				"hypothesis", len(res.Hypothesis), "unexplained", res.Unexplained)
		}
	}
}
