package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"netdiag/internal/telemetry"
)

// TestGracefulShutdown runs the full Serve lifecycle over a real listener
// and pins the drain contract: in-flight diagnoses complete with 200,
// queued ones are rejected with 503, new connections are refused because
// the listener closes, and Serve returns nil within the drain timeout.
func TestGracefulShutdown(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Workers: 1, QueueDepth: 1, Telemetry: reg, DrainTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// Wait until warm-up finishes and the server reports ready.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testJobStart = func() {
		started <- struct{}{}
		<-gate
	}
	postJSON := func(body string) (*http.Response, error) {
		return client.Post(base+"/v1/diagnose", "application/json", strings.NewReader(body))
	}

	// A executes on the single worker; B waits in the single queue slot.
	type result struct {
		resp *http.Response
		err  error
	}
	aCh := make(chan result, 1)
	bCh := make(chan result, 1)
	go func() {
		resp, err := postJSON(`{"scenario":"fig2","fail_links":[["b1","b2"]]}`)
		aCh <- result{resp, err}
	}()
	<-started
	go func() {
		resp, err := postJSON(`{"scenario":"fig2","fail_links":[["c1","c2"]]}`)
		bCh <- result{resp, err}
	}()
	waitCounter(t, reg, "pool.queue_submitted", 2)

	// Begin the drain and wait until the server is refusing new work.
	cancel()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	// A fresh request must not be served: the listener is closing (dial
	// error) or the draining check rejects it with 503.
	if resp, err := postJSON(`{"scenario":"fig2","fail_routers":["y1"]}`); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request during drain = %d, want 503 or refused connection", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Release the worker: A completes, B is rejected by the drain check.
	close(gate)
	a := <-aCh
	if a.err != nil {
		t.Fatalf("in-flight request failed: %v", a.err)
	}
	body, _ := io.ReadAll(a.resp.Body)
	a.resp.Body.Close()
	if a.resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("in-flight request = %d (%s), want 200 with a result", a.resp.StatusCode, body)
	}
	b := <-bCh
	if b.err != nil {
		t.Fatalf("queued request failed at transport level: %v", b.err)
	}
	b.resp.Body.Close()
	if b.resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request = %d, want 503", b.resp.StatusCode)
	}

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after graceful drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}
}
