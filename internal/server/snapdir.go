package server

import (
	"os"
	"path/filepath"
	"slices"

	"netdiag/internal/ip2as"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/snapshot"
)

// snapshotPath is where one scenario's persisted snapshot lives. The
// scenario name is the filename: registry names (fig1, research-<seed>)
// are already filesystem-safe.
func (s *Store) snapshotPath(name string) string {
	return filepath.Join(s.snapDir, name+".ndsn")
}

// loadSnapshot recovers a scenario from the snapshot directory, or
// returns nil when the store should converge cold: no directory
// configured, no file yet, or anything wrong with the bytes (foreign
// magic, version or topology mismatch, corruption) or with the recorded
// scenario identity. A load failure is never an error — the persisted
// file is purely an accelerator and cold convergence rebuilds the same
// state.
func (s *Store) loadSnapshot(name string, scn *Scenario, opts []netsim.Option) *snapshot.Snapshot {
	if s.snapDir == "" {
		return nil
	}
	data, err := os.ReadFile(s.snapshotPath(name))
	if err != nil {
		return nil
	}
	snap, err := snapshot.Decode(data, scn.Topo, opts...)
	if err != nil {
		return nil
	}
	if snap.Scenario != name || !slices.Equal(snap.Sensors, scn.Sensors) {
		return nil
	}
	s.snapLoads.Inc()
	return snap
}

// persistSnapshot writes a freshly converged scenario into the snapshot
// directory so the next worker can skip convergence. The write is
// tmp-file-plus-rename, so a reader never observes a half-written
// snapshot even with several workers converging concurrently — and
// because every worker converges to identical state, last-rename-wins is
// harmless. Persistence failures are silently dropped: the in-memory
// snapshot this worker just built is unaffected.
func (s *Store) persistSnapshot(name string, scn *Scenario, net *netsim.Network, mesh *probe.Mesh, table *ip2as.Table) {
	if s.snapDir == "" {
		return
	}
	data, err := snapshot.Encode(&snapshot.Snapshot{
		Scenario: name,
		Sensors:  scn.Sensors,
		Net:      net,
		Mesh:     mesh,
		IP2AS:    table,
	})
	if err != nil {
		return
	}
	if err := os.MkdirAll(s.snapDir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.snapDir, name+".*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), s.snapshotPath(name)); err != nil {
		return
	}
	s.snapSaves.Inc()
}
