// Package server implements ndserve, the long-running diagnosis service:
// named simulation scenarios converged once into warm snapshots, an
// HTTP/JSON API that diagnoses injected failures against those snapshots,
// singleflight coalescing of identical in-flight requests, a bounded
// admission queue with load shedding, and graceful drain on shutdown.
//
// The serving pipeline reuses the library layers unchanged — netsim for
// the world model, experiment for the measurement adapters, the netdiag
// facade for the algorithms — so a served diagnosis is byte-identical to
// the equivalent one-shot netdiagnoser CLI run (pinned by tests).
package server

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"netdiag/internal/experiment"
	"netdiag/internal/topology"
)

// Scenario is one registered simulation world: a topology, the sensor
// overlay probing it, and the troubleshooter AS whose control-plane view
// the nd-bgpigp and nd-lg algorithms use. Scenarios are immutable once
// built; the Store converges each one exactly once into a warm Snapshot.
type Scenario struct {
	Name    string
	Topo    *topology.Topology
	Sensors []topology.RouterID
	// ASX is the troubleshooter AS (paper §3.3): the AS whose IGP
	// link-down events, BGP withdrawals and Looking Glass queries feed the
	// routing-aware algorithms.
	ASX topology.ASN
}

// Builder constructs a Scenario on first use, so registering a scenario
// (including the heavyweight research topologies) costs nothing until a
// request or the warm-up loop asks for it.
type Builder func() (*Scenario, error)

// Registry maps scenario names to builders and memoizes the built
// scenarios. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	builders map[string]Builder
	built    map[string]*Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{builders: map[string]Builder{}, built: map[string]*Scenario{}}
}

// Register adds a named scenario builder. Registering an empty name or a
// duplicate is an error.
func (r *Registry) Register(name string, b Builder) error {
	if name == "" {
		return fmt.Errorf("server: scenario name must be non-empty")
	}
	if b == nil {
		return fmt.Errorf("server: scenario %q has a nil builder", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.builders[name]; ok {
		return fmt.Errorf("server: scenario %q already registered", name)
	}
	r.builders[name] = b
	return nil
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.builders[name]
	return ok
}

// Names returns the registered scenario names in sorted order — the
// /v1/scenarios listing and the warm-up loop both iterate this, so every
// externally visible ordering is deterministic.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.builders))
	for n := range r.builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the built scenario for name, invoking its builder on first
// use. The build runs outside the registry lock — a heavyweight research
// topology must not block Register/Names/Has for its whole construction —
// so two concurrent first requests may both build; the first to store
// wins and the loser adopts its instance, keeping the memoized scenario
// unique.
func (r *Registry) Get(name string) (*Scenario, error) {
	r.mu.Lock()
	if s, ok := r.built[name]; ok {
		r.mu.Unlock()
		return s, nil
	}
	b, ok := r.builders[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: unknown scenario %q", name)
	}
	s, err := b()
	if err != nil {
		return nil, fmt.Errorf("server: building scenario %q: %w", name, err)
	}
	if err := validateScenario(name, s); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.built[name]; ok {
		return prev, nil
	}
	r.built[name] = s
	return s, nil
}

func validateScenario(name string, s *Scenario) error {
	if s == nil || s.Topo == nil {
		return fmt.Errorf("server: scenario %q built without a topology", name)
	}
	if len(s.Sensors) < 2 {
		return fmt.Errorf("server: scenario %q has %d sensors, need at least 2", name, len(s.Sensors))
	}
	if s.Name == "" {
		s.Name = name
	}
	return nil
}

// Fig1Scenario builds the paper's Figure 1 single-AS tree with sensors
// s1, s2, s3.
func Fig1Scenario() (*Scenario, error) {
	fig := topology.BuildFig1()
	return &Scenario{
		Name:    "fig1",
		Topo:    fig.Topo,
		Sensors: []topology.RouterID{fig.S1, fig.S2, fig.S3},
		ASX:     fig.Topo.ASNumbers()[0],
	}, nil
}

// Fig2Scenario builds the paper's Figure 2 multi-AS example with sensors
// in the stub ASes A, B, C and AS-X as the troubleshooter.
func Fig2Scenario() (*Scenario, error) {
	fig := topology.BuildFig2()
	return &Scenario{
		Name:    "fig2",
		Topo:    fig.Topo,
		Sensors: []topology.RouterID{fig.S1, fig.S2, fig.S3},
		ASX:     fig.ASX,
	}, nil
}

// ResearchScenario returns a builder for the paper-scale research
// topology ("research-<seed>"): sensors at randomly chosen stub ASes (the
// paper's worst-case placement) and the first core AS as troubleshooter.
// The placement derives deterministically from the seed.
func ResearchScenario(seed int64, sensors int) Builder {
	return func() (*Scenario, error) {
		res, err := topology.GenerateResearch(topology.DefaultResearchConfig(seed))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		placed, _, err := experiment.PlaceSensors(res, experiment.PlaceRandomStubs, sensors, rng)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			Name:    fmt.Sprintf("research-%d", seed),
			Topo:    res.Topo,
			Sensors: placed,
			ASX:     res.Cores[0],
		}, nil
	}
}

// BuiltinRegistry returns a registry with the paper's two illustrative
// topologies, "fig1" and "fig2" — the default scenario set of ndserve.
func BuiltinRegistry() *Registry {
	r := NewRegistry()
	if err := r.Register("fig1", Fig1Scenario); err != nil {
		panic(err)
	}
	if err := r.Register("fig2", Fig2Scenario); err != nil {
		panic(err)
	}
	return r
}
