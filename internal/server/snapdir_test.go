package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"netdiag/internal/telemetry"
)

// TestSnapshotDirRoundTrip pins the persistence contract: the first
// worker converges cold and saves one snapshot file per scenario; a
// second worker over the same directory loads them instead of
// converging, and answers the same request with the same bytes.
func TestSnapshotDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := `{"scenario":"fig2","algorithm":"nd-bgpigp","fail_links":[["b1","b2"]]}`

	cold := telemetry.New()
	s1 := New(Config{SnapshotDir: dir, Telemetry: cold})
	defer s1.Close()
	if err := s1.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := post(t, s1.Handler(), req)
	if want.Code != http.StatusOK {
		t.Fatalf("cold diagnose = %d: %s", want.Code, want.Body.String())
	}
	cs := cold.Snapshot()
	if cs.Counters["server.snapshot_saves"] != 2 || cs.Counters["server.snapshot_loads"] != 0 {
		t.Fatalf("cold worker saves/loads = %d/%d, want 2/0",
			cs.Counters["server.snapshot_saves"], cs.Counters["server.snapshot_loads"])
	}
	for _, name := range []string{"fig1", "fig2"} {
		if _, err := os.Stat(filepath.Join(dir, name+".ndsn")); err != nil {
			t.Fatalf("missing persisted snapshot: %v", err)
		}
	}

	warm := telemetry.New()
	s2 := New(Config{SnapshotDir: dir, Telemetry: warm})
	defer s2.Close()
	if err := s2.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := post(t, s2.Handler(), req)
	if got.Code != http.StatusOK || got.Body.String() != want.Body.String() {
		t.Errorf("snapshot-loaded diagnose = %d %q, cold = %d %q",
			got.Code, got.Body.String(), want.Code, want.Body.String())
	}
	ws := warm.Snapshot()
	if ws.Counters["server.snapshot_loads"] != 2 || ws.Counters["server.snapshot_saves"] != 0 {
		t.Errorf("loaded worker loads/saves = %d/%d, want 2/0",
			ws.Counters["server.snapshot_loads"], ws.Counters["server.snapshot_saves"])
	}
	if ws.Counters["server.cold_converges"] != 2 {
		// Get still counts a "cold" store miss per scenario; the load is
		// what makes it cheap. Pin that so the counter keeps meaning
		// "store entry built", not "full convergence".
		t.Errorf("loaded worker cold_converges = %d, want 2", ws.Counters["server.cold_converges"])
	}
}

// TestSnapshotDirCorruptFallsBack pins the safety contract: any decode
// failure (here a flipped byte breaking the digest) silently falls back
// to cold convergence and rewrites a good snapshot.
func TestSnapshotDirCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{SnapshotDir: dir})
	defer s1.Close()
	if err := s1.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "fig2.ndsn")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	tele := telemetry.New()
	s2 := New(Config{SnapshotDir: dir, Telemetry: tele})
	defer s2.Close()
	if err := s2.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := post(t, s2.Handler(), `{"scenario":"fig2","fail_links":[["b1","b2"]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("diagnose after corrupt snapshot = %d: %s", w.Code, w.Body.String())
	}
	snap := tele.Snapshot()
	if snap.Counters["server.snapshot_loads"] != 1 { // fig1 loads, fig2 falls back
		t.Errorf("loads = %d, want 1 (fig1 only)", snap.Counters["server.snapshot_loads"])
	}
	if snap.Counters["server.snapshot_saves"] != 1 { // fig2 re-persisted
		t.Errorf("saves = %d, want 1 (fig2 rewritten)", snap.Counters["server.snapshot_saves"])
	}
	if fresh, err := os.ReadFile(path); err != nil || string(fresh) == string(data) {
		t.Errorf("corrupt snapshot was not rewritten (err %v)", err)
	}
}
