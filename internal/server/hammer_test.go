package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"netdiag/internal/telemetry"
)

// TestDiagnoseHammer fires many concurrent requests over a small key set
// at one warm snapshot and checks the service stays consistent under
// contention: every response is 200 (or an honest 429), and all 200
// bodies for a key are byte-identical. Run under -race this doubles as
// the data-race audit of the store/flight/queue interplay.
func TestDiagnoseHammer(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Workers: 4, QueueDepth: 64, Telemetry: reg})
	defer s.Close()
	if err := s.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	bodies := []string{
		`{"scenario":"fig2","algorithm":"tomo","fail_links":[["b1","b2"]]}`,
		`{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`,
		`{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["c1","c2"]]}`,
		`{"scenario":"fig2","algorithm":"nd-bgpigp","fail_routers":["y1"]}`,
	}
	golden := make([][]byte, len(bodies))
	for i, b := range bodies {
		w := post(t, s.Handler(), b)
		if w.Code != http.StatusOK {
			t.Fatalf("golden %d: %d: %s", i, w.Code, w.Body.String())
		}
		golden[i] = w.Body.Bytes()
	}

	const goroutines, perG = 16, 5
	errs := make(chan error, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g + i) % len(bodies)
				w := post(t, s.Handler(), bodies[k])
				switch w.Code {
				case http.StatusOK:
					if !bytes.Equal(w.Body.Bytes(), golden[k]) {
						errs <- fmt.Errorf("key %d: bytes diverged under load", k)
					}
				case http.StatusTooManyRequests:
					// Honest shedding is allowed under load.
				default:
					errs <- fmt.Errorf("key %d: status %d: %s", k, w.Code, w.Body.String())
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cold_converges"] != 2 {
		t.Errorf("cold_converges = %d, want 2 (fig1+fig2 warmed once)", snap.Counters["server.cold_converges"])
	}
	total := snap.Counters["server.requests_total"]
	if total != int64(goroutines*perG+len(bodies)) {
		t.Errorf("requests_total = %d, want %d", total, goroutines*perG+len(bodies))
	}
}
