package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"netdiag/internal/core"
	"netdiag/internal/pool"
	"netdiag/internal/probe"
	"netdiag/internal/stream"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

var (
	// errDraining is returned for work refused because the server is
	// shutting down; it surfaces as HTTP 503.
	errDraining = errors.New("server: draining")
	// errShed is returned when the admission queue refuses a request; it
	// surfaces as HTTP 429 with a Retry-After header.
	errShed = errors.New("server: queue full")
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Scenarios is the scenario registry; nil selects BuiltinRegistry().
	Scenarios *Registry
	// Parallelism bounds the workers each diagnosis and simulation phase
	// uses (<= 0 selects GOMAXPROCS). It never changes results.
	Parallelism int
	// Workers is the number of concurrent diagnosis computations (<= 0
	// selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds the jobs waiting beyond the executing ones; a
	// request arriving with the queue full is shed with HTTP 429. Zero
	// selects 16; negative means no waiting room at all.
	QueueDepth int
	// RequestTimeout caps one diagnosis computation (and is the upper
	// bound for per-request timeout_ms). Zero selects 30s.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain on shutdown. Zero selects 10s.
	DrainTimeout time.Duration
	// SnapshotDir, when non-empty, persists converged scenarios as
	// snapshot files (one per scenario) and recovers them at warm-up, so
	// a restarted or newly added worker skips SPF and the BGP fixpoint.
	// Empty disables persistence.
	SnapshotDir string
	// Telemetry receives the server, queue and pipeline metrics; nil
	// disables them (and never changes results).
	Telemetry *telemetry.Registry
	// Logger receives structured request/lifecycle records; nil logs
	// nothing.
	Logger *slog.Logger
	// SlowThreshold promotes requests at least this slow to an extra
	// access-log line carrying the per-phase span breakdown. Zero
	// disables promotion.
	SlowThreshold time.Duration
	// TraceBuffer sizes the /debug/traces ring of completed request
	// traces. Zero selects 64.
	TraceBuffer int
	// Ingest enables the streaming diagnosis plane: the POST
	// /v1/ingest/* endpoints, the per-scenario delta mesh processors and
	// the GET /v1/events surface.
	Ingest bool
	// EventWindow is the streaming correlation window in record time
	// (an observation joins an event when it lands within this span of
	// the event's last observation and shares a suspect link or AS).
	// Zero selects 2s.
	EventWindow time.Duration
	// EventIdleClose closes a streaming event once record time advances
	// this far past its last observation. Zero selects 5s.
	EventIdleClose time.Duration
}

// Server is the long-running diagnosis service behind ndserve. It owns
// the warm snapshot store, the coalescing group and the bounded admission
// queue; Handler exposes the HTTP API and Serve runs the full lifecycle
// including graceful drain.
type Server struct {
	reg            *Registry
	store          *Store
	queue          *pool.Queue
	flights        *flightGroup
	par            int
	requestTimeout time.Duration
	drainTimeout   time.Duration
	tele           *telemetry.Registry
	log            *slog.Logger
	traces         *telemetry.TraceRing
	slowNs         int64
	mux            *http.ServeMux

	// Streaming plane (nil unless Config.Ingest).
	streamSvc        *stream.Service
	eventWindowMS    int64
	eventIdleCloseMS int64

	// lifeCtx scopes every computation to the server's lifetime, so an
	// individual client disconnect never cancels a coalesced computation
	// other clients are waiting on. It is cancelled at the end of drain.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	draining   atomic.Bool
	ready      atomic.Bool

	requests *telemetry.Counter
	shed     *telemetry.Counter
	latency  *telemetry.Histogram

	// testJobStart, when set by tests, runs at the start of every queued
	// job — the seam deterministic coalescing/shedding/drain tests use to
	// hold a worker busy.
	testJobStart func()
}

// New builds a server from cfg. The scenario snapshots are converged
// lazily (or eagerly via WarmAll / Serve); New itself is cheap.
func New(cfg Config) *Server {
	if cfg.Scenarios == nil {
		cfg.Scenarios = BuiltinRegistry()
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	} else if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	s := &Server{
		reg:            cfg.Scenarios,
		store:          NewStore(cfg.Scenarios, cfg.Parallelism, cfg.SnapshotDir, cfg.Telemetry),
		queue:          pool.NewQueue(cfg.Workers, cfg.QueueDepth, cfg.Telemetry),
		flights:        newFlightGroup(cfg.Telemetry),
		par:            cfg.Parallelism,
		requestTimeout: cfg.RequestTimeout,
		drainTimeout:   cfg.DrainTimeout,
		tele:           cfg.Telemetry,
		log:            cfg.Logger,
		traces:         telemetry.NewTraceRing(cfg.TraceBuffer),
		slowNs:         cfg.SlowThreshold.Nanoseconds(),
		requests:       cfg.Telemetry.Counter("server.requests_total"),
		shed:           cfg.Telemetry.Counter("server.requests_shed"),
		latency:        cfg.Telemetry.Histogram("server.request_ns", telemetry.DurationBuckets),
	}
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	cfg.Telemetry.Derive("server.coalesce_hit_ratio", func(snap telemetry.Snapshot) float64 {
		return telemetry.Ratio(snap.Counters["server.coalesce_hits"], snap.Counters["server.coalesce_misses"])
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /v1/scenarios", s.observe("scenarios", false, s.handleScenarios))
	mux.Handle("POST /v1/diagnose", s.observe("diagnose", true, s.handleDiagnose))
	mux.Handle("POST /v1/diagnose/batch", s.observe("batch", true, s.handleDiagnoseBatch))
	mux.Handle("GET /metrics", telemetry.PromHandler(cfg.Telemetry))
	mux.Handle("GET /debug/traces", s.traces)
	if cfg.Ingest {
		s.eventWindowMS = cfg.EventWindow.Milliseconds()
		s.eventIdleCloseMS = cfg.EventIdleClose.Milliseconds()
		s.streamSvc = s.newStreamService()
		mux.Handle("POST /v1/ingest/traceroute", s.observe("ingest_traceroute", false, s.streamSvc.HandleIngestTraceroute))
		mux.Handle("POST /v1/ingest/bgp", s.observe("ingest_bgp", false, s.streamSvc.HandleIngestBGP))
		mux.Handle("GET /v1/events", s.observe("events", false, s.streamSvc.HandleEvents))
		mux.Handle("GET /v1/events/{id}", s.observe("event", false, s.streamSvc.HandleEvent))
	}
	s.mux = mux
	return s
}

// Handler returns the HTTP API. Lifecycle (warm-up, drain) is the
// caller's concern when serving this directly; Serve handles both.
func (s *Server) Handler() http.Handler { return s.mux }

// WarmAll eagerly converges every registered scenario (see Store.WarmAll)
// and marks the server ready.
func (s *Server) WarmAll(ctx context.Context) error {
	if err := s.store.WarmAll(ctx); err != nil {
		return err
	}
	s.ready.Store(true)
	return nil
}

// Serve runs the server on ln until ctx is cancelled, then drains
// gracefully: new and queued requests get 503, in-flight diagnoses run to
// completion, and the whole drain is bounded by Config.DrainTimeout —
// when it expires, remaining computations are cancelled. Scenario warm-up
// runs in the background; /readyz flips to 200 when it finishes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		if err := s.WarmAll(ctx); err != nil && s.log != nil {
			s.log.Warn("scenario warm-up failed", "err", err)
		}
	}()
	srv := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.drainTimeout)
	defer cancel()
	err := s.drain(dctx, srv)
	<-serveErr // always http.ErrServerClosed after Shutdown
	if err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	return nil
}

// drain performs the graceful shutdown sequence: stop admitting work,
// close the listener, wait (bounded by ctx) for in-flight handlers, then
// cancel whatever is still computing and retire the queue workers.
func (s *Server) drain(ctx context.Context, srv *http.Server) error {
	s.draining.Store(true)
	s.ready.Store(false)
	err := srv.Shutdown(ctx)
	s.lifeCancel()
	// Close drains jobs already accepted by the queue; they observe
	// draining (or the cancelled lifeCtx) and finish immediately. Run it
	// off this goroutine so a job stuck past lifeCancel cannot wedge the
	// drain itself.
	go s.queue.Close()
	return err
}

// MeshScenario measures the scenario's current full mesh off the warm
// snapshot — the measurement source for ndserve's -watch loop, standing
// in for a real sensor overlay's periodic round.
func (s *Server) MeshScenario(ctx context.Context, name string) (*probe.Mesh, error) {
	snap, err := s.store.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	return snap.Net.MeshCtx(ctx, snap.Scenario.Sensors)
}

// Close force-stops the server's computations without the graceful
// sequence; it is the test/teardown counterpart of Serve's drain.
func (s *Server) Close() {
	s.draining.Store(true)
	s.lifeCancel()
	go s.queue.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		//ndlint:ignore envelope /readyz is a plain-text probe endpoint for load balancers, not part of the v1 JSON surface; the envelope seam does not apply
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.ready.Load():
		//ndlint:ignore envelope /readyz is a plain-text probe endpoint for load balancers, not part of the v1 JSON surface; the envelope seam does not apply
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "warming")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// ScenarioInfo is one row of the GET /v1/scenarios listing.
type ScenarioInfo struct {
	Name    string       `json:"name"`
	Sensors int          `json:"sensors"`
	Routers int          `json:"routers"`
	ASes    int          `json:"ases"`
	ASX     topology.ASN `json:"asx"`
	Warm    bool         `json:"warm"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var infos []ScenarioInfo
	for _, name := range s.reg.Names() {
		scn, err := s.reg.Get(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, core.ErrInternal, err.Error())
			return
		}
		infos = append(infos, ScenarioInfo{
			Name:    name,
			Sensors: len(scn.Sensors),
			Routers: scn.Topo.NumRouters(),
			ASes:    len(scn.Topo.ASNumbers()),
			ASX:     scn.ASX,
			Warm:    s.store.IsWarm(name),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(infos); err != nil && s.log != nil {
		s.log.Warn("encoding scenario listing", "err", err)
	}
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, core.ErrDraining, "draining")
		return
	}
	var req DiagnoseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "invalid request body: "+err.Error())
		return
	}
	algo, err := parseAlgo(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, err.Error())
		return
	}
	if !s.reg.Has(req.Scenario) {
		writeError(w, http.StatusNotFound, core.ErrNotFound, fmt.Sprintf("unknown scenario %q", req.Scenario))
		return
	}
	timeout := s.requestTimeout
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	acc := accessFrom(r.Context())
	acc.scenario, acc.algo = req.Scenario, algo.Slug()

	key := canonicalKey(req.Scenario, algo, req.FailLinks, req.FailRouters)
	tr := acc.tr
	endWait := tr.StartSpan("admission_wait")
	f, leader, ok := s.flights.do(key, acc.id, s.queue.TrySubmit, func() ([]byte, error) {
		endWait()
		// A job that reaches a worker only after the drain began is
		// "queued work" in the shutdown contract: reject it. The hook
		// below stands in for a long computation in tests.
		if s.draining.Load() {
			return nil, errDraining
		}
		if s.testJobStart != nil {
			s.testJobStart()
		}
		// The computation runs under the server's lifetime context plus
		// the (leader's) timeout, never an individual request context:
		// coalesced followers must not lose the result because the leader
		// disconnected. The leader's trace rides along so pipeline spans
		// land on it.
		ctx, cancel := context.WithTimeout(s.lifeCtx, timeout)
		defer cancel()
		return s.compute(telemetry.ContextWithTrace(ctx, tr), &req, algo)
	})
	if !ok {
		s.shed.Inc()
		writeError(w, http.StatusTooManyRequests, core.ErrQueueFull, "diagnosis queue full")
		return
	}
	acc.coalesced, acc.leaderTrace = !leader, f.leaderTrace
	endAttach := noSpan
	if !leader {
		endAttach = tr.StartSpan("coalesce_wait")
	}
	select {
	case <-f.done:
		endAttach()
	case <-r.Context().Done():
		endAttach()
		writeError(w, http.StatusGatewayTimeout, core.ErrTimeout, "request context ended while waiting for diagnosis")
		return
	}
	acc.queueWait = f.queueWaitNs
	if f.err != nil {
		status, code := statusFor(f.err)
		writeError(w, status, code, f.err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(f.body); err != nil && s.log != nil {
		s.log.Warn("writing diagnosis response", "err", err)
	}
}

// statusFor maps computation errors to an HTTP status and wire error code.
func statusFor(err error) (int, string) {
	var re *requestError
	switch {
	case errors.As(err, &re):
		if re.status == http.StatusNotFound {
			return re.status, core.ErrNotFound
		}
		return re.status, core.ErrBadRequest
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, core.ErrDraining
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests, core.ErrQueueFull
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, core.ErrTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, core.ErrCanceled
	default:
		return http.StatusInternalServerError, core.ErrInternal
	}
}

// noSpan is the no-op span end for paths that conditionally open one.
var noSpan = func() {}

// errorEnvelope builds the WireError a status/code/message triple puts on
// the wire. Retryable statuses — shed (429), draining (503) and a shard
// the front could not reach (502, typically a restarting worker) — carry
// retry_after_s so the body alone tells a client what the Retry-After
// header would.
func errorEnvelope(status int, code, msg string) *core.WireError {
	we := &core.WireError{Code: code, Message: msg}
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway:
		we.RetryAfterS = 1
	}
	return we
}

// writeError emits the v1 error envelope. The retryable statuses get a
// Retry-After header matching the envelope's retry_after_s.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	we := errorEnvelope(status, code, msg)
	if we.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(we.RetryAfterS))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(we.Envelope())
}

// decodeWire parses the wire JSON back into its struct form (the alarm
// sink consumes results in process rather than over HTTP).
func decodeWire(body []byte) (*core.WireResult, error) {
	var res core.WireResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
