package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"netdiag"
	"netdiag/internal/core"
	"netdiag/internal/telemetry"
)

// maxBatchItems bounds one batch request; it exists so a single POST
// cannot monopolize a worker for arbitrarily long. The value is part of
// the v1 wire contract, so it lives in core next to the other wire
// constants.
const maxBatchItems = core.MaxBatchItems

// BatchRequest is the POST /v1/diagnose/batch body: one scenario and
// algorithm, many failure sets. The whole batch runs as a single queued
// job over one fork of the scenario's warm snapshot — the fork is
// checkpointed once and restored between items, so N diagnoses cost one
// admission and zero re-convergences of the healthy state.
type BatchRequest struct {
	Scenario string `json:"scenario"`
	// Algorithm applies to every item; empty means "tomo".
	Algorithm string `json:"algorithm,omitempty"`
	// Items are the failure sets to diagnose, answered in order.
	Items []BatchItem `json:"items"`
	// TimeoutMS caps the whole batch computation, like the single
	// endpoint's field caps one diagnosis.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchItem is one failure set within a batch.
type BatchItem struct {
	FailLinks   [][2]string `json:"fail_links,omitempty"`
	FailRouters []string    `json:"fail_routers,omitempty"`
}

// BatchResponse mirrors the response wire shape for decoding; the server
// itself assembles the response by byte concatenation (see computeBatch)
// so each slot's Body is bit-identical to the standalone response.
type BatchResponse struct {
	Scenario string      `json:"scenario"`
	Results  []BatchSlot `json:"results"`
}

// BatchSlot is one item's outcome: the HTTP status the single endpoint
// would have answered, and its exact body (minus the trailing newline).
type BatchSlot struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

func (s *Server) handleDiagnoseBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, core.ErrDraining, "draining")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "invalid request body: "+err.Error())
		return
	}
	algo, err := parseAlgo(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, err.Error())
		return
	}
	if !s.reg.Has(req.Scenario) {
		writeError(w, http.StatusNotFound, core.ErrNotFound, fmt.Sprintf("unknown scenario %q", req.Scenario))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest,
			fmt.Sprintf("batch has %d items, limit is %d", len(req.Items), maxBatchItems))
		return
	}
	timeout := s.requestTimeout
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}

	acc := accessFrom(r.Context())
	acc.scenario, acc.algo = req.Scenario, algo.Slug()

	// The flight key is the ordered item identity: two batches asking the
	// same items in the same order coalesce into one computation.
	keys := make([]string, len(req.Items))
	for i, it := range req.Items {
		keys[i] = canonicalKey(req.Scenario, algo, it.FailLinks, it.FailRouters)
	}
	key := "batch|" + strings.Join(keys, "||")
	tr := acc.tr
	endWait := tr.StartSpan("admission_wait")
	f, leader, ok := s.flights.do(key, acc.id, s.queue.TrySubmit, func() ([]byte, error) {
		endWait()
		if s.draining.Load() {
			return nil, errDraining
		}
		if s.testJobStart != nil {
			s.testJobStart()
		}
		ctx, cancel := context.WithTimeout(s.lifeCtx, timeout)
		defer cancel()
		return s.computeBatch(telemetry.ContextWithTrace(ctx, tr), &req, algo)
	})
	if !ok {
		s.shed.Inc()
		writeError(w, http.StatusTooManyRequests, core.ErrQueueFull, "diagnosis queue full")
		return
	}
	acc.coalesced, acc.leaderTrace = !leader, f.leaderTrace
	endAttach := noSpan
	if !leader {
		endAttach = tr.StartSpan("coalesce_wait")
	}
	select {
	case <-f.done:
		endAttach()
	case <-r.Context().Done():
		endAttach()
		writeError(w, http.StatusGatewayTimeout, core.ErrTimeout, "request context ended while waiting for diagnosis")
		return
	}
	acc.queueWait = f.queueWaitNs
	if f.err != nil {
		status, code := statusFor(f.err)
		writeError(w, status, code, f.err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(f.body); err != nil && s.log != nil {
		s.log.Warn("writing batch response", "err", err)
	}
}

// computeBatch diagnoses every item over one fork: checkpoint the healthy
// fork once, and per item apply faults, diagnose, restore. The response is
// assembled by raw concatenation so each slot's body bytes are exactly
// what the single endpoint would have sent (sans trailing newline) — a
// failed item occupies its slot with the single endpoint's error envelope
// and status instead of failing the batch.
func (s *Server) computeBatch(ctx context.Context, req *BatchRequest, algo netdiag.Algorithm) ([]byte, error) {
	snap, err := s.store.Get(ctx, req.Scenario)
	if err != nil {
		return nil, err
	}
	fork := snap.Net.Fork()
	cp := fork.Checkpoint()

	var buf bytes.Buffer
	buf.WriteString(`{"scenario":`)
	name, err := json.Marshal(req.Scenario)
	if err != nil {
		return nil, err
	}
	buf.Write(name)
	buf.WriteString(`,"results":[`)
	tr := telemetry.TraceFromContext(ctx)
	for i := range req.Items {
		if i > 0 {
			buf.WriteByte(',')
		}
		item := &req.Items[i]
		endItem := tr.StartIteration("item", i+1)
		body, err := func() ([]byte, error) {
			if err := applyFaults(snap, fork, item.FailLinks, item.FailRouters); err != nil {
				return nil, err
			}
			return s.diagnoseFork(ctx, snap, fork, algo)
		}()
		fork.Restore(cp)
		endItem()
		status := http.StatusOK
		if err != nil {
			var code string
			status, code = statusFor(err)
			body = errorEnvelope(status, code, err.Error()).Envelope()
		}
		fmt.Fprintf(&buf, `{"status":%d,"body":`, status)
		buf.Write(bytes.TrimSuffix(body, []byte("\n")))
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")
	return buf.Bytes(), nil
}
