package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netdiag/internal/telemetry"
)

func TestShardIndex(t *testing.T) {
	if got := ShardIndex("fig1", 1); got != 0 {
		t.Errorf("ShardIndex(fig1, 1) = %d, want 0", got)
	}
	if got := ShardIndex("fig1", 0); got != 0 {
		t.Errorf("ShardIndex(fig1, 0) = %d, want 0", got)
	}
	names := []string{"fig1", "fig2"}
	for i := 0; i < 100; i++ {
		names = append(names, "research-"+strings.Repeat("7", i%5+1)+string(rune('a'+i%26)))
	}
	const n = 4
	hits := make([]int, n)
	for _, name := range names {
		got := ShardIndex(name, n)
		if got < 0 || got >= n {
			t.Fatalf("ShardIndex(%q, %d) = %d, out of range", name, n, got)
		}
		if again := ShardIndex(name, n); again != got {
			t.Fatalf("ShardIndex(%q, %d) unstable: %d then %d", name, n, got, again)
		}
		hits[got]++
	}
	for i, c := range hits {
		if c == 0 {
			t.Errorf("shard %d got none of %d scenarios: %v", i, len(names), hits)
		}
	}
	// Rendezvous hashing's point: adding a shard must not reshuffle the
	// scenarios that stay. Everything not claimed by the new shard keeps
	// its old assignment.
	for _, name := range names {
		before, after := ShardIndex(name, n), ShardIndex(name, n+1)
		if after != n && after != before {
			t.Errorf("ShardIndex(%q): %d -> %d when growing %d -> %d shards (only moves to the new shard are allowed)",
				name, before, after, n, n+1)
		}
	}
}

// fleet starts a two-shard fleet over fig1+fig2: each worker registers
// only the scenarios ShardIndex assigns it, and the front routes across
// both. Returns the front plus the per-shard workers (index = shard id).
func fleet(t *testing.T) (*Front, [2]*Server) {
	t.Helper()
	builders := map[string]Builder{"fig1": Fig1Scenario, "fig2": Fig2Scenario}
	var workers [2]*Server
	var backends []string
	for i := range workers {
		reg := NewRegistry()
		for _, name := range []string{"fig1", "fig2"} {
			if ShardIndex(name, len(workers)) == i {
				if err := reg.Register(name, builders[name]); err != nil {
					t.Fatal(err)
				}
			}
		}
		w := New(Config{Scenarios: reg})
		t.Cleanup(w.Close)
		if err := w.WarmAll(context.Background()); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		workers[i] = w
		backends = append(backends, ts.URL)
	}
	return NewFront(FrontConfig{Backends: backends, Telemetry: telemetry.New()}), workers
}

// TestFrontRoutesByShard pins the fleet contract: the front serves the
// same v1 surface as one big worker — a diagnosis routed to the owning
// shard answers byte-identically to asking that worker directly, the
// scenario listings merge sorted, and readiness aggregates.
func TestFrontRoutesByShard(t *testing.T) {
	front, workers := fleet(t)

	for _, scenario := range []string{"fig1", "fig2"} {
		body := `{"scenario":"` + scenario + `","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`
		if scenario == "fig1" {
			body = `{"scenario":"fig1","fail_links":[["r9","r11"]]}`
		}
		got := post(t, front.Handler(), body)
		owner := workers[ShardIndex(scenario, len(workers))]
		want := post(t, owner.Handler(), body)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Errorf("%s via front = %d %q, direct shard = %d %q",
				scenario, got.Code, got.Body.String(), want.Code, want.Body.String())
		}
		if got.Code != http.StatusOK {
			t.Errorf("%s via front = %d, want 200: %s", scenario, got.Code, got.Body.String())
		}
	}

	// Batch rides the same proxy path.
	w := postBatch(t, front.Handler(), `{"scenario":"fig2","items":[{"fail_links":[["b1","b2"]]},{"fail_routers":["y1"]}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch via front = %d: %s", w.Code, w.Body.String())
	}
	var batch BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &batch); err != nil || len(batch.Results) != 2 {
		t.Fatalf("batch via front decoded %d results (%v): %s", len(batch.Results), err, w.Body.String())
	}

	// Unknown scenarios hash somewhere; the owning shard answers 404 and
	// the front passes it through untouched.
	w = post(t, front.Handler(), `{"scenario":"nope"}`)
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown scenario via front = %d, want 404: %s", w.Code, w.Body.String())
	}

	w = get(t, front.Handler(), "/v1/scenarios")
	var infos []ScenarioInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatalf("decoding merged listing: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "fig1" || infos[1].Name != "fig2" || !infos[0].Warm || !infos[1].Warm {
		t.Errorf("merged listing = %+v, want warm fig1, fig2", infos)
	}

	w = get(t, front.Handler(), "/readyz")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ready") {
		t.Errorf("fleet readyz = %d %q, want 200 ready", w.Code, w.Body.String())
	}
	w = get(t, front.Handler(), "/healthz")
	if w.Code != http.StatusOK {
		t.Errorf("front healthz = %d, want 200", w.Code)
	}
}

// TestFrontShardDown pins the failure surface: a dead shard turns into
// 502 bad_gateway envelopes for its scenarios and flips fleet readiness,
// while the surviving shard's scenarios keep working through the front.
func TestFrontShardDown(t *testing.T) {
	front, workers := fleet(t)
	dead := ShardIndex("fig1", len(workers))
	// Point the dead shard's slot at a closed listener.
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	front.backends[dead] = ts.URL

	w := post(t, front.Handler(), `{"scenario":"fig1"}`)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("diagnose on dead shard = %d, want 502: %s", w.Code, w.Body.String())
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Code != "bad_gateway" {
		t.Errorf("dead shard envelope code = %q (%s), want bad_gateway", e.Error.Code, w.Body.String())
	}

	if live := ShardIndex("fig2", len(workers)); live != dead {
		w = post(t, front.Handler(), `{"scenario":"fig2","fail_links":[["b1","b2"]]}`)
		if w.Code != http.StatusOK {
			t.Errorf("diagnose on live shard = %d, want 200: %s", w.Code, w.Body.String())
		}
	}

	w = get(t, front.Handler(), "/readyz")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "unreachable") {
		t.Errorf("readyz with dead shard = %d %q, want 503 naming it unreachable", w.Code, w.Body.String())
	}
	w = get(t, front.Handler(), "/v1/scenarios")
	if w.Code != http.StatusBadGateway {
		t.Errorf("scenario listing with dead shard = %d, want 502", w.Code)
	}
}

// TestFrontPropagatesRetryAfter pins pass-through of the retry contract:
// a draining worker's 503 (status, Retry-After header and envelope)
// reaches the client unchanged through the routing tier.
func TestFrontPropagatesRetryAfter(t *testing.T) {
	front, workers := fleet(t)
	workers[ShardIndex("fig2", len(workers))].draining.Store(true)

	w := post(t, front.Handler(), `{"scenario":"fig2"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining shard via front = %d, want 503: %s", w.Code, w.Body.String())
	}
	if ra := w.Result().Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After via front = %q, want \"1\"", ra)
	}
	var e struct {
		Error struct {
			Code        string `json:"code"`
			RetryAfterS int    `json:"retry_after_s"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Code != "draining" || e.Error.RetryAfterS != 1 {
		t.Errorf("draining envelope via front = %+v (%s), want code draining retry_after_s 1", e.Error, w.Body.String())
	}

	w = get(t, front.Handler(), "/readyz")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Errorf("readyz with draining shard = %d %q, want 503 draining", w.Code, w.Body.String())
	}
}
