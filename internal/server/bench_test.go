package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"netdiag/internal/telemetry"
)

const benchBody = `{"scenario":"fig2","algorithm":"nd-edge","fail_links":[["b1","b2"]]}`

func benchPost(h http.Handler) int {
	req := httptest.NewRequest(http.MethodPost, "/v1/diagnose", strings.NewReader(benchBody))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code
}

// BenchmarkServerDiagnoseCold measures a request against a freshly built
// server: the price includes the scenario's BGP/SPF convergence. The
// warm/cold pair is what BENCH_pipeline.json's "server" section reports.
func BenchmarkServerDiagnoseCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(Config{})
		if code := benchPost(s.Handler()); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
		s.Close()
	}
}

// BenchmarkServerDiagnoseWarm measures a request served off the warm
// snapshot: only the fork's reconvergence, meshing and diagnosis remain.
func BenchmarkServerDiagnoseWarm(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	if err := s.WarmAll(context.Background()); err != nil {
		b.Fatal(err)
	}
	if code := benchPost(s.Handler()); code != http.StatusOK {
		b.Fatalf("status %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(s.Handler()); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServerCoalesce fires a fan-out of identical concurrent
// requests per iteration at a single worker and reports the realized
// coalesce hit ratio as a custom metric (picked up by cmd/benchjson).
// The leader's computation is held on the test hook until the whole
// fan-out has attached, so the overlap — and therefore the ratio — is
// deterministic rather than at the mercy of goroutine scheduling.
func BenchmarkServerCoalesce(b *testing.B) {
	reg := telemetry.New()
	s := New(Config{Workers: 1, QueueDepth: 64, Telemetry: reg})
	defer s.Close()
	if err := s.WarmAll(context.Background()); err != nil {
		b.Fatal(err)
	}
	const fanout = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gate := make(chan struct{})
		started := make(chan struct{}, 1)
		s.testJobStart = func() {
			select {
			case started <- struct{}{}:
				<-gate
			default:
			}
		}
		var wg sync.WaitGroup
		post := func() {
			defer wg.Done()
			if code := benchPost(s.Handler()); code != http.StatusOK {
				b.Errorf("status %d", code)
			}
		}
		wg.Add(1)
		go post()
		<-started
		for j := 1; j < fanout; j++ {
			wg.Add(1)
			go post()
		}
		waitCounter(b, reg, "server.coalesce_hits", int64(i+1)*(fanout-1))
		close(gate)
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(reg.Snapshot().Derived["server.coalesce_hit_ratio"], "coalesce-hit-ratio")
}
