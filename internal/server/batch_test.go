package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netdiag/internal/telemetry"
)

// postBatch runs one POST /v1/diagnose/batch against the handler.
func postBatch(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/diagnose/batch", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestBatchMatchesSequential pins the batch contract: every slot carries
// the status and the exact bytes the single endpoint answers for the same
// failure set — including an invalid item, which fills its slot with the
// single endpoint's error envelope instead of failing the batch.
func TestBatchMatchesSequential(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg})
	defer s.Close()
	if err := s.WarmAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	items := []string{
		`{"fail_links":[["b1","b2"]]}`,
		`{"fail_routers":["y1"]}`,
		`{"fail_routers":["zz9"]}`, // invalid: error slot, not batch failure
		`{"fail_links":[["x2","y1"]]}`,
	}
	body := fmt.Sprintf(`{"scenario":"fig2","algorithm":"nd-bgpigp","items":[%s]}`, strings.Join(items, ","))
	w := postBatch(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d, want 200: %s", w.Code, w.Body.String())
	}

	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if resp.Scenario != "fig2" {
		t.Errorf("scenario = %q, want fig2", resp.Scenario)
	}
	if len(resp.Results) != len(items) {
		t.Fatalf("got %d results for %d items", len(resp.Results), len(items))
	}
	for i, item := range items {
		single := post(t, s.Handler(),
			fmt.Sprintf(`{"scenario":"fig2","algorithm":"nd-bgpigp",%s}`, strings.TrimPrefix(strings.TrimSuffix(item, "}"), "{")))
		slot := resp.Results[i]
		if slot.Status != single.Code {
			t.Errorf("item %d: slot status %d, single endpoint %d", i, slot.Status, single.Code)
		}
		want := single.Body.Bytes()
		got := append([]byte(nil), slot.Body...)
		got = append(got, '\n')
		if string(got) != string(want) {
			t.Errorf("item %d: slot bytes differ from single response\nslot:   %s\nsingle: %s", i, got, want)
		}
	}
	// The whole batch costs one queued job; each distinct single request
	// (the invalid one included — it fails inside its job) costs its own.
	if got := reg.Snapshot().Counters["pool.queue_executed"]; got != 1+4 {
		t.Errorf("queue executed %d jobs, want 5 (1 batch + 4 singles)", got)
	}
}

func TestBatchRequestValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	cases := []struct {
		name, body string
		want       int
		wantCode   string
	}{
		{"no items", `{"scenario":"fig2","items":[]}`, http.StatusBadRequest, "bad_request"},
		{"missing items", `{"scenario":"fig2"}`, http.StatusBadRequest, "bad_request"},
		{"unknown scenario", `{"scenario":"nope","items":[{}]}`, http.StatusNotFound, "not_found"},
		{"bad algorithm", `{"scenario":"fig2","algorithm":"magic","items":[{}]}`, http.StatusBadRequest, "bad_request"},
		{"bad json", `{"scenario":`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		w := postBatch(t, s.Handler(), c.body)
		if w.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.want, w.Body.String())
		}
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Code != c.wantCode {
			t.Errorf("%s: error code %q (body %q), want %q", c.name, e.Error.Code, w.Body.String(), c.wantCode)
		}
	}

	over := make([]string, maxBatchItems+1)
	for i := range over {
		over[i] = "{}"
	}
	w := postBatch(t, s.Handler(), fmt.Sprintf(`{"scenario":"fig2","items":[%s]}`, strings.Join(over, ",")))
	if w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", w.Code)
	}
}

// TestRetryAfterEnvelope pins the unified retry contract: both shed (429)
// and draining (503) responses carry a Retry-After header and the matching
// retry_after_s field inside the envelope, on the single and batch
// endpoints alike.
func TestRetryAfterEnvelope(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.draining.Store(true)

	for _, post := range []func(*testing.T, http.Handler, string) *httptest.ResponseRecorder{post, postBatch} {
		w := post(t, s.Handler(), `{"scenario":"fig2","items":[{}]}`)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining status = %d, want 503", w.Code)
		}
		if ra := w.Result().Header.Get("Retry-After"); ra != "1" {
			t.Errorf("draining Retry-After = %q, want \"1\"", ra)
		}
		var e struct {
			Error struct {
				Code        string `json:"code"`
				RetryAfterS int    `json:"retry_after_s"`
			} `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatalf("decoding envelope: %v (%s)", err, w.Body.String())
		}
		if e.Error.Code != "draining" || e.Error.RetryAfterS != 1 {
			t.Errorf("draining envelope = %+v, want code draining, retry_after_s 1", e.Error)
		}
	}
}
