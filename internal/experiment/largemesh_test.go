package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"netdiag/internal/core"
	"netdiag/internal/telemetry"
)

func TestGenerateLargeMeshShape(t *testing.T) {
	cfg := DefaultLargeMesh(600, 7)
	m := GenerateLargeMesh(cfg)
	if m.NumSensors != 600 {
		t.Fatalf("NumSensors = %d", m.NumSensors)
	}
	if len(m.Before) != 600*cfg.DestsPerSensor || len(m.After) != len(m.Before) {
		t.Fatalf("paths: %d before, %d after", len(m.Before), len(m.After))
	}
	var failures, reroutes int
	for i, p := range m.After {
		if !p.OK {
			failures++
		} else if len(p.Hops) != len(m.Before[i].Hops) || p.Hops[2] != m.Before[i].Hops[2] {
			reroutes++
		}
	}
	if failures == 0 || reroutes == 0 {
		t.Fatalf("mesh has %d failures, %d reroutes; want both non-zero", failures, reroutes)
	}
	// Deterministic in the config.
	again := GenerateLargeMesh(cfg)
	if len(again.After) != len(m.After) {
		t.Fatal("regeneration diverged")
	}
	for i := range m.After {
		if m.After[i].OK != again.After[i].OK || len(m.After[i].Hops) != len(again.After[i].Hops) {
			t.Fatalf("regeneration diverged at path %d", i)
		}
	}
}

// TestLargeMeshEngineEquivalence extends the differential net to the
// benchmark generator's mesh shape (hub-concentrated overlapping sets) at a
// size where the map engine is still cheap to run.
func TestLargeMeshEngineEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 19} {
		m := GenerateLargeMesh(DefaultLargeMesh(300, seed))
		opts := edgeOpts()
		res, err := core.Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = core.EngineMap
		ref, err := core.Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		var bb, mb bytes.Buffer
		if err := res.Wire("nd-edge").Encode(&bb); err != nil {
			t.Fatal(err)
		}
		if err := ref.Wire("nd-edge").Encode(&mb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bb.Bytes(), mb.Bytes()) {
			t.Fatalf("seed %d: engines diverge on large mesh\nbitset:\n%s\nmap:\n%s",
				seed, bb.String(), mb.String())
		}
	}
}

// benchDiagnose runs a full ND-edge diagnosis of a hub-failure event on an
// n-sensor mesh. Beyond the standard ns/op it reports the greedy-phase time
// (from the run's telemetry spans — the phase the bitset engine vectorizes)
// and a sensors-per-second throughput figure for the scalability curve.
// benchjson's diagnose section pairs the Map and Bitset series into
// speedup ratios.
func benchDiagnose(b *testing.B, n int, engine core.EngineKind) {
	m := GenerateLargeMesh(DefaultLargeMesh(n, 7))
	opts := edgeOpts()
	opts.Engine = engine
	opts.Telemetry = telemetry.New()
	var greedyNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(m, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations == 0 || len(res.Hypothesis) == 0 {
			b.Fatalf("degenerate diagnosis: %d iterations, %d hypothesis links",
				res.Iterations, len(res.Hypothesis))
		}
		for _, sp := range res.Telemetry {
			if sp.Name == "greedy" {
				greedyNs += int64(sp.Duration)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(greedyNs)/float64(b.N), "greedy-ns/op")
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sensors/s")
}

// BenchmarkDiagnoseBitset is the scalability series of the bitset engine;
// 10000 sensors is the headline point — the map engine has no 10k entry
// because full per-iteration rescoring makes it impractical there (see the
// README performance table), and `make bench` runs every benchmark.
func BenchmarkDiagnoseBitset(b *testing.B) {
	for _, n := range []int{600, 2000, 10000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) { benchDiagnose(b, n, core.EngineBitset) })
	}
}

// BenchmarkDiagnoseMap is the reference series for the speedup ratios.
func BenchmarkDiagnoseMap(b *testing.B) {
	for _, n := range []int{600, 2000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) { benchDiagnose(b, n, core.EngineMap) })
	}
}
