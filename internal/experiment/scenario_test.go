package experiment

import (
	"math/rand"
	"testing"

	"netdiag/internal/core"
	"netdiag/internal/metrics"
	"netdiag/internal/topology"
)

func testEnv(t *testing.T, seed int64, n int, kind Placement) *Env {
	t.Helper()
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	sensors, _, err := PlaceSensors(res, kind, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(res, sensors)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvSetup(t *testing.T) {
	env := testEnv(t, 1, 10, PlaceRandomStubs)
	if len(env.Sensors) != 10 {
		t.Fatalf("sensors = %d", len(env.Sensors))
	}
	if len(env.E) == 0 || len(env.PhysProbed) == 0 {
		t.Fatal("no probed links")
	}
	// Paper: diagnosability with 10 random sensors lands in 0.25–0.6.
	d := core.Diagnosability(env.Measurements().Before)
	if d < 0.15 || d > 0.75 {
		t.Fatalf("diagnosability %v far outside the paper's band", d)
	}
}

func TestSingleLinkFailureTrialAllAlgorithms(t *testing.T) {
	env := testEnv(t, 2, 10, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(7))
	asx := env.Res.Cores[0]

	ran := 0
	for attempt := 0; attempt < 50 && ran < 3; attempt++ {
		f, ok := env.SampleLinkFault(rng, 1)
		if !ok {
			t.Fatal("cannot sample link fault")
		}
		td, err := env.RunTrial(f, asx, nil, nil)
		if err == ErrNoImpact {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ran++
		if len(td.FailedLinks) == 0 {
			t.Fatal("ground truth empty for impactful fault")
		}

		tomo, err := core.Tomo(td.Meas)
		if err != nil {
			t.Fatal(err)
		}
		edge, err := core.NDEdge(td.Meas)
		if err != nil {
			t.Fatal(err)
		}
		bgpigp, err := core.NDBgpIgp(td.Meas, td.Routing)
		if err != nil {
			t.Fatal(err)
		}

		// Paper §5.1: single non-recoverable link failures are found by
		// Tomo; ND-edge must never be worse.
		seTomo := metrics.Sensitivity(td.FailedLinks, tomo.PhysLinks())
		seEdge := metrics.Sensitivity(td.FailedLinks, edge.PhysLinks())
		if seEdge < seTomo {
			t.Fatalf("ND-edge sensitivity %v < Tomo %v", seEdge, seTomo)
		}
		if seEdge < 1 {
			t.Fatalf("ND-edge must find a single link failure, got %v (F=%v H=%v)",
				seEdge, td.FailedLinks, edge.PhysLinks())
		}
		spEdge := metrics.Specificity(env.E, td.FailedLinks, edge.PhysLinks())
		spBgp := metrics.Specificity(env.E, td.FailedLinks, bgpigp.PhysLinks())
		if spBgp < spEdge {
			t.Fatalf("ND-bgpigp specificity %v < ND-edge %v", spBgp, spEdge)
		}
	}
	if ran == 0 {
		t.Fatal("no impactful single-link trial in 50 attempts")
	}
}

func TestMisconfigTrial(t *testing.T) {
	env := testEnv(t, 3, 10, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(9))
	asx := env.Res.Cores[0]

	ran := false
	for attempt := 0; attempt < 80 && !ran; attempt++ {
		f, ok := env.SampleMisconfig(rng)
		if !ok {
			t.Skip("no misconfigurable links for this placement")
		}
		td, err := env.RunTrial(f, asx, nil, nil)
		if err == ErrNoImpact {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ran = true
		edge, err := core.NDEdge(td.Meas)
		if err != nil {
			t.Fatal(err)
		}
		se := metrics.Sensitivity(td.FailedLinks, edge.PhysLinks())
		if se < 1 {
			t.Fatalf("ND-edge should localize the misconfiguration; F=%v H=%v",
				td.FailedLinks, edge.PhysLinks())
		}
	}
	if !ran {
		t.Skip("no impactful misconfiguration found (placement-dependent)")
	}
}

func TestRouterFailureTrial(t *testing.T) {
	env := testEnv(t, 4, 8, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(11))
	for attempt := 0; attempt < 50; attempt++ {
		f, ok := env.SampleRouterFault(rng)
		if !ok {
			t.Fatal("no router candidates")
		}
		td, err := env.RunTrial(f, env.Res.Cores[0], nil, nil)
		if err == ErrNoImpact {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		edge, err := core.NDEdge(td.Meas)
		if err != nil {
			t.Fatal(err)
		}
		// Paper §5.2: ND-edge identifies the failed router in every run —
		// H contains at least one link attached to it.
		se := metrics.Sensitivity(td.FailedLinks, edge.PhysLinks())
		if se == 0 {
			t.Fatalf("ND-edge found no link of the failed router; F=%v H=%v",
				td.FailedLinks, edge.PhysLinks())
		}
		return
	}
	t.Fatal("no impactful router failure in 50 attempts")
}

func TestBlockedTracerouteTrial(t *testing.T) {
	env := testEnv(t, 5, 10, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(13))
	asx := env.Res.Cores[0]

	// Block half the covered transit ASes.
	covered := env.BeforeMesh.CoveredASes()
	sensorAS := map[topology.ASN]bool{}
	for _, a := range env.SensorASes {
		sensorAS[a] = true
	}
	blocked := map[topology.ASN]bool{}
	i := 0
	for as := range covered {
		if sensorAS[as] || as == asx {
			continue
		}
		if i%2 == 0 {
			blocked[as] = true
		}
		i++
	}

	for attempt := 0; attempt < 60; attempt++ {
		f, ok := env.SampleLinkFault(rng, 1)
		if !ok {
			t.Fatal("sample failed")
		}
		td, err := env.RunTrial(f, asx, blocked, nil)
		if err == ErrNoImpact {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lgRes, err := core.NDLG(td.Meas, td.Routing, td.LG)
		if err != nil {
			t.Fatal(err)
		}
		if len(lgRes.Hypothesis) == 0 && lgRes.UnexplainedFailures == 0 {
			t.Fatal("empty hypothesis with no unexplained failures")
		}
		// AS-level metrics must be computable.
		s := metrics.ASSensitivity(td.FailedASes, lgRes.ASes())
		sp := metrics.ASSpecificity(td.CoveredASes, td.FailedASes, lgRes.ASes())
		if s < 0 || s > 1 || sp < 0 || sp > 1 {
			t.Fatalf("AS metrics out of range: %v %v", s, sp)
		}
		return
	}
	t.Fatal("no impactful trial")
}

func TestPlacementsProduceExpectedDiagnosabilityOrder(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	diag := func(kind Placement) float64 {
		rng := rand.New(rand.NewSource(77))
		sensors, _, err := PlaceSensors(res, kind, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		env, err := NewEnv(res, sensors)
		if err != nil {
			t.Fatal(err)
		}
		return core.Diagnosability(env.Measurements().Before)
	}
	same := diag(PlaceSameAS)
	distant := diag(PlaceDistantAS)
	if same <= distant {
		t.Fatalf("same-AS diagnosability %v should exceed distant-AS %v (paper Fig 5)", same, distant)
	}
}

func TestIP2ASMappingMatchesGroundTruth(t *testing.T) {
	// The troubleshooter's IP-to-AS mapping must reproduce the mesh's own
	// AS attribution exactly: mapped and unmapped measurements coincide.
	env := testEnv(t, 14, 6, PlaceRandomStubs)
	plain := ToMeasurements(env.BeforeMesh, env.BeforeMesh)
	mapped := ToMeasurementsMapped(env.BeforeMesh, env.BeforeMesh, env.IP2AS.Lookup)
	if len(plain.Before) != len(mapped.Before) {
		t.Fatal("path counts differ")
	}
	for i := range plain.Before {
		a, b := plain.Before[i], mapped.Before[i]
		if len(a.Hops) != len(b.Hops) {
			t.Fatalf("path %d hop counts differ", i)
		}
		for k := range a.Hops {
			if a.Hops[k] != b.Hops[k] {
				t.Fatalf("hop %d of path %d differs: %+v vs %+v", k, i, a.Hops[k], b.Hops[k])
			}
		}
	}
}
