package experiment

import (
	"testing"
)

// quickCfg is a reduced-scale config for shape tests.
func quickCfg(seed int64) Config {
	c := DefaultConfig(seed)
	c.Placements = 3
	c.FailuresPerPlacement = 12
	return c
}

func TestFigure5Shapes(t *testing.T) {
	fig, err := Figure5(quickCfg(41))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 placement series, got %d", len(fig.Series))
	}
	bySeries := map[string]Series{}
	for _, s := range fig.Series {
		bySeries[s.Name] = s
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("series %s malformed", s.Name)
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("diagnosability %v out of range in %s", y, s.Name)
			}
		}
	}
	// Paper Fig 5: same-AS dominates distant-AS on average.
	same, distant := bySeries["same AS"], bySeries["distant AS"]
	avg := func(s Series) float64 {
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		return sum / float64(len(s.Y))
	}
	if avg(same) <= avg(distant) {
		t.Fatalf("same-AS avg D %.3f should exceed distant-AS %.3f", avg(same), avg(distant))
	}
}

func TestFigure7Shapes(t *testing.T) {
	fig, err := Figure7(quickCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	tomo3 := fig.CDFs["tomo 3-link"]
	edge3 := fig.CDFs["nd-edge 3-link"]
	if tomo3.N() == 0 || edge3.N() == 0 {
		t.Fatal("no samples collected")
	}
	// Paper Fig 7: ND-edge sensitivity ~1 almost always, Tomo clearly
	// lower under 3 simultaneous failures.
	if edge3.Mean() < 0.9 {
		t.Fatalf("ND-edge 3-link mean sensitivity %.3f, want >= 0.9 (%s)", edge3.Mean(), edge3)
	}
	if edge3.Mean() <= tomo3.Mean() {
		t.Fatalf("ND-edge (%.3f) should beat Tomo (%.3f)", edge3.Mean(), tomo3.Mean())
	}
	tomoMC := fig.CDFs["tomo misconfig+1link"]
	edgeMC := fig.CDFs["nd-edge misconfig+1link"]
	if edgeMC.Mean() <= tomoMC.Mean() {
		t.Fatalf("misconfig: ND-edge (%.3f) should beat Tomo (%.3f)", edgeMC.Mean(), tomoMC.Mean())
	}
}

func TestFigure8Shapes(t *testing.T) {
	fig, err := Figure8(quickCfg(43))
	if err != nil {
		t.Fatal(err)
	}
	oneLink := fig.CDFs["nd-edge 1-link"]
	mc := fig.CDFs["nd-edge misconfig"]
	if oneLink.N() == 0 || mc.N() == 0 {
		t.Fatal("no samples")
	}
	// Paper Fig 8: specificity > 0.9 for single link failures; the
	// misconfiguration case is even more specific.
	if oneLink.Quantile(0.10) < 0.85 {
		t.Fatalf("1-link specificity p10 = %.3f, want >= 0.85 (%s)", oneLink.Quantile(0.10), oneLink)
	}
	if mc.Mean() < oneLink.Mean() {
		t.Fatalf("misconfig specificity (%.3f) should be >= link-failure specificity (%.3f)",
			mc.Mean(), oneLink.Mean())
	}
}

func TestFigure10Shapes(t *testing.T) {
	fig, err := Figure10(quickCfg(44))
	if err != nil {
		t.Fatal(err)
	}
	es, bs := fig.CDFs["nd-edge specificity"], fig.CDFs["nd-bgpigp specificity"]
	if bs.Mean() < es.Mean() {
		t.Fatalf("ND-bgpigp specificity (%.4f) must be >= ND-edge (%.4f)", bs.Mean(), es.Mean())
	}
	esn, bsn := fig.CDFs["nd-edge sensitivity"], fig.CDFs["nd-bgpigp sensitivity"]
	if bsn.Mean() < esn.Mean()-1e-9 {
		t.Fatalf("ND-bgpigp sensitivity (%.4f) must not drop below ND-edge (%.4f)", bsn.Mean(), esn.Mean())
	}
}

func TestFigure11Shapes(t *testing.T) {
	cfg := quickCfg(45)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 10
	fig, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lg, bg Series
	for _, s := range fig.Series {
		switch s.Name {
		case "nd-lg AS-sensitivity":
			lg = s
		case "nd-bgpigp AS-sensitivity":
			bg = s
		}
	}
	if len(lg.Y) == 0 || len(bg.Y) == 0 {
		t.Fatal("missing series")
	}
	// At high f_b ND-LG must dominate ND-bgpigp (paper Fig 11).
	last := len(lg.Y) - 1
	if lg.Y[last] <= bg.Y[last] {
		t.Fatalf("at f_b=%.1f, ND-LG AS-sens %.3f should exceed ND-bgpigp %.3f",
			lg.X[last], lg.Y[last], bg.Y[last])
	}
	// ND-bgpigp AS-sensitivity should fall substantially from f_b=0 to 0.8.
	if bg.Y[last] > bg.Y[0]-0.2 {
		t.Fatalf("ND-bgpigp AS-sens should degrade with blocking: %.3f -> %.3f", bg.Y[0], bg.Y[last])
	}
}

func TestRouterFailureStudy(t *testing.T) {
	fig, err := RouterFailureStudy(quickCfg(46))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 || len(fig.Series[0].Y) == 0 {
		t.Fatal("no detection-rate series")
	}
	if rate := fig.Series[0].Y[0]; rate < 0.9 {
		t.Fatalf("router detection rate %.2f, paper reports every run detected", rate)
	}
}

func TestScalabilityStudy(t *testing.T) {
	cfg := quickCfg(47)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 6
	fig, err := ScalabilityStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]float64{}
	for _, s := range fig.Series {
		sizes[s.Name] = s.Y[0]
	}
	phys := sizes["graph links (physical)"]
	neigh := sizes["graph links (per-neighbor)"]
	pref := sizes["graph links (per-prefix)"]
	if !(phys < neigh && neigh < pref) {
		t.Fatalf("graph sizes should grow with granularity: %v < %v < %v", phys, neigh, pref)
	}
	// Per-prefix must not lose sensitivity relative to per-neighbor.
	if fig.CDFs["per-prefix sens"].Mean() < fig.CDFs["per-neighbor sens"].Mean()-0.05 {
		t.Fatalf("per-prefix sensitivity dropped: %.3f vs %.3f",
			fig.CDFs["per-prefix sens"].Mean(), fig.CDFs["per-neighbor sens"].Mean())
	}
}

func TestParisStudy(t *testing.T) {
	cfg := quickCfg(48)
	fig, err := ParisStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range fig.Series {
		series[s.Name] = s
	}
	single := series["probed links (single path)"]
	multi := series["probed links (all ECMP paths)"]
	if len(single.Y) == 0 || len(single.Y) != len(multi.Y) {
		t.Fatal("malformed series")
	}
	grew := false
	for i := range single.Y {
		if multi.Y[i] < single.Y[i] {
			t.Fatalf("multipath discovery shrank the universe: %v -> %v", single.Y[i], multi.Y[i])
		}
		if multi.Y[i] > single.Y[i] {
			grew = true
		}
	}
	if !grew {
		t.Log("no ECMP encountered for any placement (topology-dependent); universe unchanged")
	}
}

func TestFigure6Shapes(t *testing.T) {
	cfg := quickCfg(51)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 10
	fig, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := fig.CDFs["tomo 1-link"]
	three := fig.CDFs["tomo 3-link"]
	mc := fig.CDFs["tomo misconfig"]
	if one.N() == 0 || three.N() == 0 || mc.N() == 0 {
		t.Fatal("missing samples")
	}
	// Paper Fig 6: single failures nearly always found; multiple failures
	// much worse; misconfigurations essentially invisible.
	if one.Mean() <= three.Mean() {
		t.Fatalf("1-link Tomo sensitivity (%.3f) should beat 3-link (%.3f)", one.Mean(), three.Mean())
	}
	if mc.CDFAt(0) < 0.5 {
		t.Fatalf("Tomo should have zero sensitivity in most misconfig instances, got %.0f%%", 100*mc.CDFAt(0))
	}
}

func TestFigure9Shapes(t *testing.T) {
	cfg := quickCfg(52)
	fig, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) == 0 {
		t.Fatal("no scatter points")
	}
	for _, p := range fig.Points {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point out of range: %+v", p)
		}
		if p.Y < 0.5 {
			t.Fatalf("ND-edge specificity %v far below the paper's 0.75 floor", p.Y)
		}
	}
}

func TestASLevelStudyShapes(t *testing.T) {
	cfg := quickCfg(53)
	fig, err := ASLevelStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.CDFs["AS-sensitivity"]
	if s.N() == 0 {
		t.Fatal("no samples")
	}
	// Paper §5.2: no AS false negatives in >90% of instances.
	if s.Mean() < 0.8 {
		t.Fatalf("ND-edge AS-sensitivity mean %.3f too low", s.Mean())
	}
	if len(fig.Notes) == 0 {
		t.Fatal("study should report its headline note")
	}
}

func TestASXPositionShapes(t *testing.T) {
	cfg := quickCfg(54)
	cfg.FailuresPerPlacement = 8
	fig, err := ASXPositionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	core := fig.CDFs["core AS-X specificity"]
	stub := fig.CDFs["stub AS-X specificity"]
	if core.N() == 0 || stub.N() == 0 {
		t.Fatal("missing samples")
	}
	// Paper §5.3: core placement gives the same or higher specificity.
	if core.Mean() < stub.Mean()-0.02 {
		t.Fatalf("core AS-X specificity %.4f should not trail stub %.4f", core.Mean(), stub.Mean())
	}
}

func TestAblationShapes(t *testing.T) {
	cfg := quickCfg(55)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 8
	fig, err := AblationStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tomo := fig.CDFs["tomo (no features) sens"]
	reroutes := fig.CDFs["+reroutes only sens"]
	edge := fig.CDFs["nd-edge (both) sens"]
	partial := fig.CDFs["nd-bgpigp+partial spec"]
	bgpigp := fig.CDFs["nd-bgpigp spec"]
	if reroutes.Mean() <= tomo.Mean() {
		t.Fatalf("reroute sets must drive sensitivity: %.3f vs tomo %.3f", reroutes.Mean(), tomo.Mean())
	}
	if edge.Mean() < reroutes.Mean()-1e-9 {
		t.Fatalf("full ND-edge (%.3f) should not trail reroutes-only (%.3f)", edge.Mean(), reroutes.Mean())
	}
	if partial.Mean() < bgpigp.Mean()-1e-9 {
		t.Fatalf("partial traces must not hurt specificity: %.4f vs %.4f", partial.Mean(), bgpigp.Mean())
	}
}

func TestSCFSStudy(t *testing.T) {
	cfg := quickCfg(56)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 8
	fig, err := SCFSStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tomoSens := fig.CDFs["tomo sensitivity"]
	scfsSens := fig.CDFs["scfs-union sensitivity"]
	if tomoSens.N() == 0 || scfsSens.N() == 0 {
		t.Fatal("missing samples")
	}
	// Tomo must not be worse than per-source SCFS union on the mesh.
	if tomoSens.Mean() < scfsSens.Mean()-0.05 {
		t.Fatalf("Tomo sensitivity %.3f unexpectedly below SCFS union %.3f",
			tomoSens.Mean(), scfsSens.Mean())
	}
	if len(fig.Series) == 0 {
		t.Fatal("tree-assumption series missing")
	}
	frac := fig.Series[0].Y[0]
	if frac < 0 || frac > 1 {
		t.Fatalf("tree fraction %v out of range", frac)
	}
}

func TestPlacementOptStudy(t *testing.T) {
	cfg := quickCfg(57)
	cfg.Placements = 3 // one rep
	fig, err := PlacementOptStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var greedy, random Series
	for _, s := range fig.Series {
		switch s.Name {
		case "greedy placement D":
			greedy = s
		case "random placement D":
			random = s
		}
	}
	if len(greedy.Y) == 0 || len(greedy.Y) != len(random.Y) {
		t.Fatal("malformed series")
	}
	gAvg, rAvg := 0.0, 0.0
	for i := range greedy.Y {
		gAvg += greedy.Y[i]
		rAvg += random.Y[i]
	}
	if gAvg < rAvg {
		t.Fatalf("greedy placement average D %.3f should beat random %.3f", gAvg, rAvg)
	}
}

func TestSkewStudy(t *testing.T) {
	cfg := quickCfg(58)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 8
	fig, err := SkewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sens Series
	for _, s := range fig.Series {
		if s.Name == "nd-edge sensitivity" {
			sens = s
		}
	}
	if len(sens.Y) != 4 {
		t.Fatalf("want 4 skew levels, got %d", len(sens.Y))
	}
	// Zero skew must be at least as good as 50% skew.
	if sens.Y[0] < sens.Y[len(sens.Y)-1]-1e-9 {
		t.Fatalf("skew should not improve sensitivity: %.3f at 0 vs %.3f at 0.5",
			sens.Y[0], sens.Y[len(sens.Y)-1])
	}
}
