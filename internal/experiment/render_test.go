package experiment

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdiag/internal/metrics"
)

func sampleFigure() *Figure {
	fig := newFigure("t1", "test figure")
	d := fig.dist("alpha")
	d.Add(0.5)
	d.Add(1.0)
	fig.Series = append(fig.Series, Series{Name: "line", X: []float64{1, 2}, Y: []float64{0.1, 0.2}})
	fig.Points = append(fig.Points, Point{X: 0.4, Y: 0.9})
	fig.Notes = append(fig.Notes, "a note")
	return fig
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	fig := sampleFigure()
	if err := fig.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"t1_cdf.csv", "t1_series.csv", "t1_points.csv"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		rows, err := csv.NewReader(bytes.NewReader(raw)).ReadAll()
		if err != nil {
			t.Fatalf("%s is not valid CSV: %v", name, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
	}
	// CDF file carries both samples.
	raw, _ := os.ReadFile(filepath.Join(dir, "t1_cdf.csv"))
	if !strings.Contains(string(raw), "alpha,0.5,0.5") {
		t.Fatalf("cdf content wrong:\n%s", raw)
	}
}

func TestRenderIncludesEverything(t *testing.T) {
	var buf bytes.Buffer
	sampleFigure().Render(&buf)
	out := buf.String()
	for _, want := range []string{"t1: test figure", "alpha", "series line", "1 scatter points", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConfigScaled(t *testing.T) {
	cfg := DefaultConfig(1)
	s := cfg.Scaled(5)
	if s.Placements != 2 || s.FailuresPerPlacement != 20 {
		t.Fatalf("Scaled(5) = %d x %d", s.Placements, s.FailuresPerPlacement)
	}
	if same := cfg.Scaled(1); same.Placements != cfg.Placements {
		t.Fatal("Scaled(1) must be identity")
	}
	tiny := cfg.Scaled(1000)
	if tiny.Placements < 1 || tiny.FailuresPerPlacement < 1 {
		t.Fatal("Scaled must clamp at 1")
	}
}

func TestSkewMeasurementsFractions(t *testing.T) {
	env := testEnv(t, 23, 5, PlaceRandomStubs)
	m := env.Measurements()
	// Mark every after path failed so staleness is observable.
	for _, p := range m.After {
		p.OK = false
	}
	out := skewMeasurements(m, 0.5)
	stale := 0
	for _, p := range out.After {
		if p.OK {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("half skew should make some paths stale")
	}
	if stale == len(out.After) {
		t.Fatal("skew must not make everything stale")
	}
	if n := len(skewMeasurements(m, 0).After); n != len(m.After) {
		t.Fatalf("zero skew changed path count: %d", n)
	}
}

func TestDistHelpers(t *testing.T) {
	var d metrics.Dist
	for i := 0; i < 10; i++ {
		d.Add(float64(i) / 10)
	}
	if d.Quantile(0) > d.Quantile(1) {
		t.Fatal("quantiles must be monotone")
	}
}
