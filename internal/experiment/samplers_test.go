package experiment

import (
	"math/rand"
	"testing"

	"netdiag/internal/topology"
)

func TestGroundTruthRouterFault(t *testing.T) {
	env := testEnv(t, 15, 8, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(3))
	f, ok := env.SampleRouterFault(rng)
	if !ok {
		t.Fatal("no router fault")
	}
	links, ases := env.GroundTruth(f)
	if len(links) == 0 {
		t.Fatal("a probed-path router must contribute probed links")
	}
	topo := env.Res.Topo
	routerAS := topo.RouterAS(f.Routers[0])
	foundAS := false
	for _, a := range ases {
		if a == routerAS {
			foundAS = true
		}
	}
	if !foundAS {
		t.Fatalf("failed ASes %v must include the router's AS %d", ases, routerAS)
	}
	// Every ground-truth link must touch the failed router.
	for _, l := range links {
		ra, _ := topo.RouterByAddr(string(l.From))
		rb, _ := topo.RouterByAddr(string(l.To))
		if ra.ID != f.Routers[0] && rb.ID != f.Routers[0] {
			t.Fatalf("link %v does not touch failed router %d", l, f.Routers[0])
		}
	}
}

func TestSampleLinkFaultBounds(t *testing.T) {
	env := testEnv(t, 16, 5, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(4))
	if _, ok := env.SampleLinkFault(rng, len(env.PhysProbed)+1); ok {
		t.Fatal("sampling more links than probed must fail")
	}
	f, ok := env.SampleLinkFault(rng, 3)
	if !ok || len(f.Links) != 3 {
		t.Fatalf("3-link sample = %+v, %v", f, ok)
	}
	seen := map[topology.LinkID]bool{}
	for _, id := range f.Links {
		if seen[id] {
			t.Fatal("sampled links must be distinct")
		}
		seen[id] = true
	}
}

func TestSampleMisconfigPrefersSplitLinks(t *testing.T) {
	env := testEnv(t, 17, 10, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(5))
	splits := 0
	for trial := 0; trial < 10; trial++ {
		f, ok := env.SampleMisconfig(rng)
		if !ok {
			t.Skip("no misconfig candidates for this placement")
		}
		if len(f.Filters) == 0 {
			t.Fatal("misconfig without filters")
		}
		// All filters of one fault share the (router, peer) pair.
		for _, flt := range f.Filters[1:] {
			if flt.Router != f.Filters[0].Router || flt.Peer != f.Filters[0].Peer {
				t.Fatal("filter group must target a single session")
			}
		}
		groups := env.misconfigGroups(f.Filters[0].Router, f.Filters[0].Peer)
		if len(groups) >= 2 {
			splits++
		}
	}
	if splits == 0 {
		t.Log("no split-traffic sessions found with this placement (acceptable fallback)")
	}
}

func TestSampleMisconfigSinglePrefix(t *testing.T) {
	env := testEnv(t, 18, 10, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(6))
	f, ok := env.SampleMisconfigSinglePrefix(rng)
	if !ok {
		t.Skip("no misconfig candidates")
	}
	if len(f.Filters) != 1 {
		t.Fatalf("single-prefix variant must install exactly one filter, got %d", len(f.Filters))
	}
}

func TestPlaceSensorsDistantSplit(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sensors, ases, err := PlaceSensors(res, PlaceDistantSplit, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sensors) != 8 || len(ases) != 8 {
		t.Fatalf("placement sizes: %d sensors %d ases", len(sensors), len(ases))
	}
	// The split variant should place at least one sensor outside the two
	// tier-2 ASes (on the inter-AS path).
	asSet := map[topology.ASN]int{}
	for _, a := range ases {
		asSet[a]++
	}
	if len(asSet) < 2 {
		t.Fatalf("placement collapsed to one AS: %v", asSet)
	}
}

func TestPlaceSensorsErrors(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if _, _, err := PlaceSensors(res, PlaceRandomStubs, 10_000, rng); err == nil {
		t.Fatal("too many sensors must fail")
	}
	if _, _, err := PlaceSensors(res, Placement(99), 5, rng); err == nil {
		t.Fatal("unknown placement must fail")
	}
	if got := Placement(99).String(); got == "" {
		t.Fatal("unknown placement should still render")
	}
}

func TestRunTrialErrNoImpactRestoresNetwork(t *testing.T) {
	env := testEnv(t, 21, 6, PlaceRandomStubs)
	rng := rand.New(rand.NewSource(9))
	// Find a reroutable fault (no impact) and verify the env is healthy
	// afterwards.
	for trial := 0; trial < 100; trial++ {
		f, ok := env.SampleLinkFault(rng, 1)
		if !ok {
			t.Fatal("sample failed")
		}
		_, err := env.RunTrial(f, env.Res.Cores[0], nil, nil)
		if err == ErrNoImpact {
			if env.Net.Mesh(env.Sensors).AnyFailed() {
				t.Fatal("network not restored after no-impact trial")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if env.Net.Mesh(env.Sensors).AnyFailed() {
			t.Fatal("network not restored after impactful trial")
		}
	}
	t.Skip("every sampled failure was impactful (unusual but possible)")
}

func TestGreedyPlacementRejectsTinyN(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GreedyPlacement(res, 1, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("n=1 must be rejected")
	}
}
