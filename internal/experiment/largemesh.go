package experiment

import (
	"fmt"
	"math/rand"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

// This file holds the synthetic large-mesh generator of the scalability
// study. The paper's own evaluation (§4, figs 11–12) stops at 600 sensors
// because the greedy minimum-hitting-set was the bottleneck; the bitset
// engine's diagnose benchmarks extend the curve to 10k sensors, and this
// generator supplies the measurement meshes. It builds core.Measurements
// directly — no simulated network, no convergence — so the benchmark
// exercises exactly the diagnosis engine, not netsim.
//
// Topology shape: sensors are partitioned into groups, each group fronted
// by an access router, with traffic between groups relayed over a small
// shared pool of hub routers (two hub hops per path, picked by a group-pair
// hash). Hubs concentrate many sensor pairs onto few links, the regime
// where diagnosis is interesting: failing a handful of hubs breaks a large
// fraction of the mesh, the failure sets heavily overlap, and the greedy
// cover has real work to do. At 10k sensors the mesh carries tens of
// thousands of constraint sets over a ~10⁴-link universe — roughly the
// set-matrix shape Boolean-tomography identifiability analyses work with.

// LargeMeshConfig parameterizes GenerateLargeMesh. DefaultLargeMesh gives
// the benchmark shape; the zero value is not valid.
type LargeMeshConfig struct {
	// Sensors is the sensor count n.
	Sensors int
	// Groups is the number of sensor groups (each with one access router).
	Groups int
	// Hubs is the size of the shared middle-hub pool.
	Hubs int
	// DestsPerSensor is how many destinations each sensor probes — the mesh
	// is k-regular rather than full (a full 10k² mesh is 10⁸ paths; real
	// deployments at this scale probe a bounded target set per sensor).
	DestsPerSensor int
	// FailedHubs is how many hub routers the injected event takes down.
	FailedHubs int
	// RerouteFrac is the fraction of impacted pairs that find an alternate
	// hub route (producing reroute sets) instead of going unreachable
	// (producing failure sets).
	RerouteFrac float64
	// Seed drives all sampling.
	Seed int64
}

// DefaultLargeMesh returns the scalability-benchmark configuration for n
// sensors.
func DefaultLargeMesh(n int, seed int64) LargeMeshConfig {
	g := n / 50
	if g < 8 {
		g = 8
	}
	if g > 96 {
		g = 96
	}
	return LargeMeshConfig{
		Sensors:        n,
		Groups:         g,
		Hubs:           16,
		DestsPerSensor: 8,
		FailedHubs:     3,
		RerouteFrac:    0.35,
		Seed:           seed,
	}
}

// GenerateLargeMesh builds the before/after measurement mesh for a hub
// failure event under cfg. Deterministic in cfg.
func GenerateLargeMesh(cfg LargeMeshConfig) *core.Measurements {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, g, h := cfg.Sensors, cfg.Groups, cfg.Hubs

	sensorHop := make([]core.Hop, n)
	for i := 0; i < n; i++ {
		sensorHop[i] = core.Hop{Node: core.Node(fmt.Sprintf("s%d", i)), AS: topology.ASN(1 + i%g)}
	}
	accHop := make([]core.Hop, g)
	for i := 0; i < g; i++ {
		accHop[i] = core.Hop{Node: core.Node(fmt.Sprintf("acc%d", i)), AS: topology.ASN(1 + i)}
	}
	hubHop := make([]core.Hop, h)
	for i := 0; i < h; i++ {
		hubHop[i] = core.Hop{Node: core.Node(fmt.Sprintf("hub%d", i)), AS: topology.ASN(1000 + i)}
	}

	failed := make([]bool, h)
	for _, idx := range rng.Perm(h)[:cfg.FailedHubs] {
		failed[idx] = true
	}

	// hubPair picks the two middle hubs of a group pair; salt derives the
	// detour route for rerouted pairs (salt 0 is the primary route).
	hubPair := func(gi, gj, salt int) (int, int) {
		a := (gi*7 + gj*13 + salt*29) % h
		b := (a + 1 + (gi+gj+salt)%(h-1)) % h
		return a, b
	}
	route := func(i, j, salt int) []core.Hop {
		gi, gj := i%g, j%g
		a, b := hubPair(gi, gj, salt)
		return []core.Hop{sensorHop[i], accHop[gi], hubHop[a], hubHop[b], accHop[gj], sensorHop[j]}
	}

	m := &core.Measurements{NumSensors: n}
	for i := 0; i < n; i++ {
		for d := 0; d < cfg.DestsPerSensor; d++ {
			j := rng.Intn(n)
			if j == i {
				j = (j + 1) % n
			}
			hops := route(i, j, 0)
			m.Before = append(m.Before, &core.TracePath{SrcSensor: i, DstSensor: j, OK: true, Hops: hops})

			gi, gj := i%g, j%g
			a, b := hubPair(gi, gj, 0)
			after := &core.TracePath{SrcSensor: i, DstSensor: j, OK: true, Hops: hops}
			if failed[a] || failed[b] {
				rerouted := false
				if rng.Float64() < cfg.RerouteFrac {
					// Try a few detours; take the first over healthy hubs.
					for salt := 1; salt <= 3; salt++ {
						da, db := hubPair(gi, gj, salt)
						if !failed[da] && !failed[db] {
							after = &core.TracePath{SrcSensor: i, DstSensor: j, OK: true, Hops: route(i, j, salt)}
							rerouted = true
							break
						}
					}
				}
				if !rerouted {
					// Truncate at the last hop before the first failed hub.
					cut := 2 // hops[2] is the first hub
					if !failed[a] {
						cut = 3
					}
					after = &core.TracePath{SrcSensor: i, DstSensor: j, OK: false, Hops: hops[:cut]}
				}
			}
			m.After = append(m.After, after)
		}
	}
	return m
}
