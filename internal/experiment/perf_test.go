package experiment

import (
	"math/rand"
	"testing"
	"time"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

func TestTrialThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("perf probe")
	}
	res, _ := topology.GenerateResearch(topology.DefaultResearchConfig(42))
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	sensors, _, _ := PlaceSensors(res, PlaceRandomStubs, 10, rng)
	env, err := NewEnv(res, sensors)
	if err != nil {
		t.Fatal(err)
	}
	envTime := time.Since(start)
	start = time.Now()
	n := 0
	for i := 0; i < 60; i++ {
		f, _ := env.SampleLinkFault(rng, 1)
		td, err := env.RunTrial(f, env.Res.Cores[0], nil, nil)
		if err != nil {
			continue
		}
		n++
		if _, err := core.NDEdge(td.Meas); err != nil {
			t.Fatal(err)
		}
		if _, err := core.Tomo(td.Meas); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("env setup: %v; 60 trials (%d impactful, with Tomo+NDEdge): %v (%.1fms/trial)",
		envTime, n, time.Since(start), float64(time.Since(start).Milliseconds())/60)
}
