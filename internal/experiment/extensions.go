package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"netdiag/internal/core"
	"netdiag/internal/metrics"
	"netdiag/internal/topology"
)

// This file holds the studies that go beyond the paper's figures: the
// §3.1 logical-link granularity (scalability) comparison and the §2.2
// Paris-traceroute multipath-discovery study.

// ScalabilityStudy quantifies the §3.1 trade-off between per-neighbor and
// per-prefix logical links: the size of the expanded diagnosis graph and
// the accuracy of ND-edge under single-prefix misconfigurations — the
// failure mode where granularity matters, since a filter on one prefix is
// invisible at per-neighbor granularity whenever another prefix towards
// the same out-neighbor keeps working.
func ScalabilityStudy(cfg Config) (*Figure, error) {
	fig := newFigure("scalability", "Logical-link granularity: per-neighbor vs per-prefix")
	var physLinks, perNeighbor, perPrefix metrics.Dist
	err := runScenario(cfg, hooks{
		sample: func(env *Env, rng *rand.Rand) (Fault, bool) {
			return env.SampleMisconfigSinglePrefix(rng)
		},
	}, func(_ int, env *Env, td *TrialData) {
		_, physN := core.ExpandedSize(td.Meas, false)
		// Count the unexpanded graph via the raw measurement links.
		raw := map[core.Link]bool{}
		for _, p := range td.Meas.Before {
			for _, l := range p.Links() {
				raw[l] = true
			}
		}
		for _, p := range td.Meas.After {
			for _, l := range p.Links() {
				raw[l] = true
			}
		}
		_, prefN := core.ExpandedSize(td.Meas, true)
		physLinks.Add(float64(len(raw)))
		perNeighbor.Add(float64(physN))
		perPrefix.Add(float64(prefN))

		neigh := mustRun(td.Meas, edgeOpts())
		prefOpts := edgeOpts()
		prefOpts.PerPrefixLogical = true
		pref := mustRun(td.Meas, prefOpts)
		fig.dist("per-neighbor sens").Add(linkSensitivity(td, neigh))
		fig.dist("per-prefix sens").Add(linkSensitivity(td, pref))
		fig.dist("per-neighbor spec").Add(linkSpecificity(env, td, neigh))
		fig.dist("per-prefix spec").Add(linkSpecificity(env, td, pref))
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series,
		Series{Name: "graph links (physical)", X: []float64{0}, Y: []float64{physLinks.Mean()}},
		Series{Name: "graph links (per-neighbor)", X: []float64{0}, Y: []float64{perNeighbor.Mean()}},
		Series{Name: "graph links (per-prefix)", X: []float64{0}, Y: []float64{perPrefix.Mean()}},
	)
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"mean graph size: %.0f physical -> %.0f per-neighbor -> %.0f per-prefix links; accuracy comparable (the paper's argument for per-neighbor granularity)",
		physLinks.Mean(), perNeighbor.Mean(), perPrefix.Mean()))
	return fig, nil
}

// ParisStudy measures what Paris-traceroute-style multipath discovery
// (§2.2) adds to the inferred graph: the probed-link universe and the
// diagnosability with and without enumerating equal-cost paths. It runs on
// the dual-hub tier-2 topology variant, where ECMP actually occurs, with
// tier-2 (distant-AS) and random stub placements.
func ParisStudy(cfg Config) (*Figure, error) {
	fig := newFigure("paris", "Multipath (Paris traceroute) topology discovery")
	// Use the dual-hub tier-2 variant: the paper's single-hub topology has
	// no equal-cost paths, so multipath discovery would be a no-op.
	tcfg := topology.DefaultResearchConfig(cfg.Seed)
	tcfg.DualHubTier2 = true
	res, err := topology.GenerateResearch(tcfg)
	if err != nil {
		return nil, err
	}
	singleE := Series{Name: "probed links (single path)"}
	multiE := Series{Name: "probed links (all ECMP paths)"}
	singleD := Series{Name: "diagnosability (single path)"}
	multiD := Series{Name: "diagnosability (all ECMP paths)"}

	for rep := 0; rep < max(2, cfg.Placements/2); rep++ {
		for _, kind := range []Placement{PlaceDistantAS, PlaceRandomStubs} {
			rng := rand.New(rand.NewSource(cfg.Seed*97 + int64(rep)))
			sensors, _, err := PlaceSensors(res, kind, cfg.NumSensors, rng)
			if err != nil {
				return nil, err
			}
			env, err := NewEnv(res, sensors)
			if err != nil {
				return nil, err
			}
			single := env.Measurements().Before
			multi := env.MultiPathTracePaths(16)
			x := float64(len(env.Sensors))
			if kind == PlaceDistantAS {
				x = -x // mark the distant-AS placement by sign in the CSV
			}
			singleE.X = append(singleE.X, x)
			singleE.Y = append(singleE.Y, float64(countLinks(single)))
			multiE.X = append(multiE.X, x)
			multiE.Y = append(multiE.Y, float64(countLinks(multi)))
			singleD.X = append(singleD.X, x)
			singleD.Y = append(singleD.Y, core.Diagnosability(single))
			multiD.X = append(multiD.X, x)
			multiD.Y = append(multiD.Y, core.Diagnosability(multi))
		}
	}
	fig.Series = append(fig.Series, singleE, multiE, singleD, multiD)
	fig.Notes = append(fig.Notes,
		"negative x marks the distant-AS placement (sensors inside dual-hub tier-2s, dense ECMP); multipath discovery can only grow the probed universe")
	return fig, nil
}

func countLinks(paths []*core.TracePath) int {
	set := map[core.Link]bool{}
	for _, p := range paths {
		for _, l := range p.Links() {
			set[l] = true
		}
	}
	return len(set)
}

// MultiPathTracePaths enumerates every ECMP forwarding path between each
// sensor pair on the healthy network, as a Paris-traceroute measurement
// campaign would discover them.
func (e *Env) MultiPathTracePaths(limitPerPair int) []*core.TracePath {
	var out []*core.TracePath
	for i, a := range e.Sensors {
		for j, b := range e.Sensors {
			if i == j {
				continue
			}
			for _, p := range e.Net.AllPaths(a, b, limitPerPair) {
				tp := &core.TracePath{SrcSensor: i, DstSensor: j, OK: p.OK}
				for _, h := range p.Hops {
					tp.Hops = append(tp.Hops, core.Hop{Node: core.Node(h.Addr), AS: h.AS})
				}
				out = append(out, tp)
			}
		}
	}
	return out
}

// SCFSStudy quantifies §2.2's argument for the multi-source formulation:
// Duffield's SCFS assumes the paths from each source form a tree, which
// per-destination interdomain routing does not guarantee, and even where
// it holds, per-source diagnosis misses failures that only cross-source
// evidence pins down. For single link failures the study reports how often
// the tree assumption holds, and the accuracy of the union of per-source
// SCFS hypotheses versus Tomo on the same measurements.
func SCFSStudy(cfg Config) (*Figure, error) {
	fig := newFigure("scfs", "SCFS (single-source trees) vs Tomo")
	treeOK, treeTotal := 0, 0
	err := runScenario(cfg, hooks{sample: linkSample(1)}, func(_ int, env *Env, td *TrialData) {
		// Group before/after paths by source sensor.
		bySource := map[int][]*core.TracePath{}
		afterOK := map[[2]int]bool{}
		for _, p := range td.Meas.After {
			afterOK[[2]int{p.SrcSensor, p.DstSensor}] = p.OK
		}
		for _, p := range td.Meas.Before {
			// SCFS sees the pre-failure tree with post-failure status.
			cp := *p
			cp.OK = afterOK[[2]int{p.SrcSensor, p.DstSensor}]
			bySource[p.SrcSensor] = append(bySource[p.SrcSensor], &cp)
		}
		union := map[core.Link]bool{}
		for src := 0; src < td.Meas.NumSensors; src++ {
			treeTotal++
			links, err := core.SCFS(bySource[src])
			if err != nil {
				continue // tree assumption violated for this source
			}
			treeOK++
			for _, l := range links {
				union[l] = true
			}
		}
		var scfsHyp []core.Link
		for l := range union {
			scfsHyp = append(scfsHyp, l)
		}
		sort.Slice(scfsHyp, func(i, j int) bool {
			if scfsHyp[i].From != scfsHyp[j].From {
				return scfsHyp[i].From < scfsHyp[j].From
			}
			return scfsHyp[i].To < scfsHyp[j].To
		})
		fig.dist("scfs-union sensitivity").Add(metrics.Sensitivity(td.FailedLinks, scfsHyp))
		fig.dist("scfs-union specificity").Add(metrics.Specificity(env.E, td.FailedLinks, scfsHyp))
		tomo := mustRun(td.Meas, tomoOpts())
		fig.dist("tomo sensitivity").Add(linkSensitivity(td, tomo))
		fig.dist("tomo specificity").Add(linkSpecificity(env, td, tomo))
	})
	if err != nil {
		return nil, err
	}
	if treeTotal > 0 {
		fig.Series = append(fig.Series, Series{
			Name: "tree assumption holds",
			X:    []float64{0},
			Y:    []float64{float64(treeOK) / float64(treeTotal)},
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"single-source paths formed a valid tree in %.0f%% of (trial, source) cases; SCFS is undefined elsewhere (the paper's reason for the multi-source formulation)",
			100*float64(treeOK)/float64(treeTotal)))
	}
	return fig, nil
}

// SkewStudy probes the §6 deployment assumption that all sensors measure
// "at approximately the same time": it re-runs single-link-failure trials
// with a fraction of the post-failure mesh replaced by stale pre-failure
// measurements (sensors whose probes raced the event), and reports how
// ND-edge degrades as the skewed fraction grows.
func SkewStudy(cfg Config) (*Figure, error) {
	fig := newFigure("skew", "Measurement skew robustness (extension)")
	fracs := []float64{0, 0.1, 0.25, 0.5}
	sens := Series{Name: "nd-edge sensitivity"}
	unexplained := Series{Name: "mean unexplained failures"}
	for _, f := range fracs {
		var s, u metrics.Dist
		frac := f
		err := runScenario(cfg, hooks{sample: linkSample(1)}, func(_ int, env *Env, td *TrialData) {
			meas := skewMeasurements(td.Meas, frac)
			r := mustRun(meas, edgeOpts())
			s.Add(metrics.Sensitivity(td.FailedLinks, r.PhysLinks()))
			u.Add(float64(r.UnexplainedFailures))
		})
		if err != nil {
			return nil, err
		}
		sens.X = append(sens.X, f)
		sens.Y = append(sens.Y, s.Mean())
		unexplained.X = append(unexplained.X, f)
		unexplained.Y = append(unexplained.Y, u.Mean())
	}
	fig.Series = append(fig.Series, sens, unexplained)
	fig.Notes = append(fig.Notes,
		"stale probes hide failures (a raced pair looks healthy on its old route, wrongly exonerating links); sensitivity decays as skew grows — the reason §6 requires approximately synchronized rounds")
	return fig, nil
}

// skewMeasurements replaces a deterministic fraction of the after paths
// with their pre-failure measurements, emulating sensors whose probes
// completed before the event.
func skewMeasurements(m *core.Measurements, frac float64) *core.Measurements {
	before := map[[2]int]*core.TracePath{}
	for _, p := range m.Before {
		before[[2]int{p.SrcSensor, p.DstSensor}] = p
	}
	out := &core.Measurements{NumSensors: m.NumSensors, Before: m.Before}
	k := int(frac * float64(len(m.After)))
	for i, p := range m.After {
		// Deterministic spread: every len/k-th path is stale.
		stale := k > 0 && i%max(1, len(m.After)/max(1, k)) == 0 && k > 0
		if stale {
			if bp := before[[2]int{p.SrcSensor, p.DstSensor}]; bp != nil {
				cp := *bp
				out.After = append(out.After, &cp)
				continue
			}
		}
		out.After = append(out.After, p)
	}
	return out
}
