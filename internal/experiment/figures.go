package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"netdiag/internal/core"
	"netdiag/internal/metrics"
	"netdiag/internal/netsim"
	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Config parameterizes one figure reproduction. The defaults mirror the
// paper: 10 sensors at random stubs, 10 placements with 100 impactful
// failures each (1000 runs).
type Config struct {
	Seed                 int64
	NumSensors           int
	Placements           int
	FailuresPerPlacement int
	// MaxTriesFactor bounds fault resampling: a placement gives up after
	// FailuresPerPlacement*MaxTriesFactor non-impactful samples.
	MaxTriesFactor int
	// Parallelism bounds the worker pool shared by environment setup,
	// simulated trials and network convergence. 1 runs everything
	// sequentially; 0 (with Parallel set) picks runtime.GOMAXPROCS(0).
	// Figure output is byte-identical at every parallelism level: faults
	// are sampled from seeded per-placement RNGs independent of
	// scheduling, and results are collected in deterministic
	// (placement, trial) order.
	Parallelism int
	// Parallel is the legacy switch: when Parallelism is 0, Parallel
	// selects between GOMAXPROCS workers (true) and sequential (false).
	Parallel bool
	// Telemetry, when non-nil, receives the whole pipeline's metrics:
	// per-trial latency ("experiment.trial_ns") and trial counters here,
	// plus the netsim/igp/bgp/probe/pool metrics of every environment the
	// run converges. Telemetry never changes figure output — the
	// determinism tests pin CSV byte-identity with and without it.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the paper's experiment scale.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                 seed,
		NumSensors:           10,
		Placements:           10,
		FailuresPerPlacement: 100,
		MaxTriesFactor:       12,
		Parallel:             true,
	}
}

// parallelism resolves the configured worker count.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	if c.Parallel {
		return pool.Size(0)
	}
	return 1
}

// Scaled returns a copy with placements and failures scaled down by
// 1/factor (at least 1 each), for quick runs and benchmarks.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	c.Placements = max(1, c.Placements/factor)
	c.FailuresPerPlacement = max(1, c.FailuresPerPlacement/factor)
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Series is one line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Point is one scatter point.
type Point struct {
	X, Y float64
}

// Figure is the reproduced data behind one of the paper's figures.
type Figure struct {
	ID     string
	Title  string
	CDFs   map[string]*metrics.Dist
	Series []Series
	Points []Point
	Notes  []string
}

func newFigure(id, title string) *Figure {
	return &Figure{ID: id, Title: title, CDFs: map[string]*metrics.Dist{}}
}

func (f *Figure) dist(name string) *metrics.Dist {
	d := f.CDFs[name]
	if d == nil {
		d = &metrics.Dist{}
		f.CDFs[name] = d
	}
	return d
}

// hooks configures the per-placement setup of a scenario run.
type hooks struct {
	// placement defaults to PlaceRandomStubs.
	placement Placement
	// asx picks the troubleshooter AS (default: first core).
	asx func(env *Env) topology.ASN
	// blocked picks traceroute-blocking ASes per placement (default none).
	blocked func(env *Env, asx topology.ASN, rng *rand.Rand) map[topology.ASN]bool
	// lgAvail picks Looking-Glass-operating ASes (nil = all).
	lgAvail func(env *Env, asx topology.ASN, rng *rand.Rand) map[topology.ASN]bool
	// sample draws a fault.
	sample func(env *Env, rng *rand.Rand) (Fault, bool)
}

// visit receives every impactful trial. The runner always invokes it from
// a single goroutine, in deterministic (placement, trial) order —
// implementations need no synchronization at any parallelism level.
type visit func(placement int, env *Env, td *TrialData)

// placementRun is one placement's prepared state: the converged
// environment plus the RNG that continues driving its fault sampling.
type placementRun struct {
	env              *Env
	asx              topology.ASN
	blocked, lgAvail map[topology.ASN]bool
	rng              *rand.Rand
}

// scenarioMetrics carries the harness-level telemetry of one runScenario
// call; nil disables everything, including the per-trial clock reads.
type scenarioMetrics struct {
	trialNS         *telemetry.Histogram
	trialsRun       *telemetry.Counter
	trialsImpactful *telemetry.Counter
	pool            *pool.Metrics
}

func newScenarioMetrics(r *telemetry.Registry) *scenarioMetrics {
	if r == nil {
		return nil
	}
	return &scenarioMetrics{
		trialNS:         r.Histogram("experiment.trial_ns", telemetry.DurationBuckets),
		trialsRun:       r.Counter("experiment.trials_run"),
		trialsImpactful: r.Counter("experiment.trials_impactful"),
		pool:            pool.NewMetrics(r),
	}
}

func (m *scenarioMetrics) poolMetrics() *pool.Metrics {
	if m == nil {
		return nil
	}
	return m.pool
}

// trial times and counts one RunTrial invocation.
func (m *scenarioMetrics) trial(run func() (*TrialData, error)) (*TrialData, error) {
	if m == nil {
		return run()
	}
	start := telemetry.Now()
	td, err := run()
	m.trialNS.Observe(int64(telemetry.Since(start)))
	m.trialsRun.Inc()
	if err == nil {
		m.trialsImpactful.Inc()
	}
	return td, err
}

// runScenario executes cfg.Placements placements of the hooks' scenario on
// one generated research topology, delivering impactful trials to v.
//
// Parallel execution is deterministic by construction: each placement's
// faults are drawn sequentially from its own seeded RNG (scheduling never
// touches an RNG), the trials of a placement run concurrently on the
// worker pool as pure functions of their fault, and v receives the first
// FailuresPerPlacement impactful trials of each placement in sampling
// order. The visit sequence — and therefore every figure and CSV — is
// byte-identical from parallelism 1 to N.
func runScenario(cfg Config, h hooks, v visit) error {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(cfg.Seed))
	if err != nil {
		return err
	}
	if h.asx == nil {
		h.asx = func(env *Env) topology.ASN { return env.Res.Cores[0] }
	}
	workers := cfg.parallelism()
	sm := newScenarioMetrics(cfg.Telemetry)

	// Phase 1: build every placement's environment (the expensive
	// full-network convergence + pre-failure mesh) on the pool.
	runs := make([]*placementRun, cfg.Placements)
	err = pool.ForEachM(nil, workers, cfg.Placements, func(p int) error {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(p)*7919))
		sensors, _, err := PlaceSensors(res, h.placement, cfg.NumSensors, rng)
		if err != nil {
			return err
		}
		env, err := NewEnv(res, sensors,
			netsim.WithParallelism(workers), netsim.WithTelemetry(cfg.Telemetry))
		if err != nil {
			return err
		}
		asx := h.asx(env)
		pr := &placementRun{env: env, asx: asx, rng: rng}
		if h.blocked != nil {
			pr.blocked = h.blocked(env, asx, rng)
		}
		if h.lgAvail != nil {
			pr.lgAvail = h.lgAvail(env, asx, rng)
		}
		runs[p] = pr
		return nil
	}, sm.poolMetrics())
	if err != nil {
		return err
	}

	// Phase 2: per placement, sample faults in waves and run the wave's
	// trials concurrently. Sampling stays sequential on the placement RNG;
	// results are scanned in sampling order, so the selected trials are
	// exactly the ones a sequential run would have kept.
	maxTries := cfg.FailuresPerPlacement * cfg.MaxTriesFactor
	waveSize := workers * 2
	if waveSize < 1 {
		waveSize = 1
	}
	for p := 0; p < cfg.Placements; p++ {
		pr := runs[p]
		got, tries := 0, 0
		exhausted := false
		for got < cfg.FailuresPerPlacement && tries < maxTries && !exhausted {
			var wave []Fault
			for len(wave) < waveSize && tries+len(wave) < maxTries {
				f, ok := h.sample(pr.env, pr.rng)
				if !ok {
					exhausted = true
					break
				}
				wave = append(wave, f)
			}
			results := make([]*TrialData, len(wave))
			err := pool.ForEachM(nil, workers, len(wave), func(i int) error {
				td, err := sm.trial(func() (*TrialData, error) {
					return pr.env.RunTrial(wave[i], pr.asx, pr.blocked, pr.lgAvail)
				})
				if err == ErrNoImpact {
					return nil
				}
				if err != nil {
					return err
				}
				results[i] = td
				return nil
			}, sm.poolMetrics())
			if err != nil {
				return err
			}
			tries += len(wave)
			for _, td := range results {
				if td == nil {
					continue
				}
				if got >= cfg.FailuresPerPlacement {
					break // speculative extra beyond the quota
				}
				got++
				v(p, pr.env, td)
			}
		}
	}
	return nil
}

// linkSample returns a sampler for x simultaneous link failures.
func linkSample(x int) func(*Env, *rand.Rand) (Fault, bool) {
	return func(env *Env, rng *rand.Rand) (Fault, bool) { return env.SampleLinkFault(rng, x) }
}

// misconfigSample draws one export-filter misconfiguration.
func misconfigSample(env *Env, rng *rand.Rand) (Fault, bool) { return env.SampleMisconfig(rng) }

// misconfigPlusLinkSample draws a misconfiguration plus one link failure.
func misconfigPlusLinkSample(env *Env, rng *rand.Rand) (Fault, bool) {
	mc, ok := env.SampleMisconfig(rng)
	if !ok {
		return Fault{}, false
	}
	lf, ok := env.SampleLinkFault(rng, 1)
	if !ok {
		return Fault{}, false
	}
	mc.Links = lf.Links
	return mc, true
}

// linkSensitivity computes link-level sensitivity of a result.
func linkSensitivity(td *TrialData, r *core.Result) float64 {
	return metrics.Sensitivity(td.FailedLinks, r.PhysLinks())
}

func linkSpecificity(env *Env, td *TrialData, r *core.Result) float64 {
	return metrics.Specificity(env.E, td.FailedLinks, r.PhysLinks())
}

func mustRun(m *core.Measurements, opts core.Options) *core.Result {
	r, err := core.Run(m, opts)
	if err != nil {
		panic(fmt.Sprintf("experiment: diagnosis failed on valid measurements: %v", err))
	}
	return r
}

func tomoOpts() core.Options { return core.Options{} }
func edgeOpts() core.Options { return core.Options{LogicalLinks: true, UseReroutes: true} }
func bgpigpOpts(td *TrialData) core.Options {
	return core.Options{LogicalLinks: true, UseReroutes: true, Routing: td.Routing}
}
func ndlgOpts(td *TrialData) core.Options {
	return core.Options{
		LogicalLinks: true, UseReroutes: true,
		Routing: td.Routing, LG: td.LG, KeepUnidentified: true,
	}
}

// Figure5 reproduces the diagnosability-vs-placement study: D(G) as a
// function of the number of sensors for the four placement strategies.
func Figure5(cfg Config) (*Figure, error) {
	fig := newFigure("fig5", "Sensor placement and diagnosability")
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(cfg.Seed))
	if err != nil {
		return nil, err
	}
	ns := []int{4, 6, 8, 10, 14, 18, 24, 30, 40, 50}
	reps := max(1, cfg.Placements/3)
	kinds := []Placement{PlaceSameAS, PlaceDistantAS, PlaceDistantSplit, PlaceRandomStubs}
	// Every (kind, n, rep) cell is an independent environment build; fan
	// them out and accumulate in index order so the averages (and their
	// floating-point rounding) match the sequential run exactly.
	diag := make([]float64, len(kinds)*len(ns)*reps)
	err = pool.ForEachM(nil, cfg.parallelism(), len(diag), func(t int) error {
		rep := t % reps
		n := ns[(t/reps)%len(ns)]
		kind := kinds[t/(reps*len(ns))]
		rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(rep)*17 + int64(n)))
		sensors, _, err := PlaceSensors(res, kind, n, rng)
		if err != nil {
			return err
		}
		env, err := NewEnv(res, sensors, netsim.WithTelemetry(cfg.Telemetry))
		if err != nil {
			return err
		}
		diag[t] = core.Diagnosability(env.Measurements().Before)
		return nil
	}, pool.NewMetrics(cfg.Telemetry))
	if err != nil {
		return nil, err
	}
	for ki, kind := range kinds {
		s := Series{Name: kind.String()}
		for ni, n := range ns {
			sum := 0.0
			for rep := 0; rep < reps; rep++ {
				sum += diag[(ki*len(ns)+ni)*reps+rep]
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, sum/float64(reps))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"expected shape (paper Fig 5): same AS highest, then distant-AS-split, distant AS, random lowest")
	return fig, nil
}

// Figure6 reproduces the Tomo evaluation: CDFs of sensitivity under 1/2/3
// link failures (top) and under misconfigurations (bottom).
func Figure6(cfg Config) (*Figure, error) {
	fig := newFigure("fig6", "Tomo under different failure scenarios")
	for x := 1; x <= 3; x++ {
		name := fmt.Sprintf("tomo %d-link", x)
		err := runScenario(cfg, hooks{sample: linkSample(x)}, func(_ int, env *Env, td *TrialData) {
			fig.dist(name).Add(linkSensitivity(td, mustRun(td.Meas, tomoOpts())))
		})
		if err != nil {
			return nil, err
		}
	}
	if err := runScenario(cfg, hooks{sample: misconfigSample}, func(_ int, env *Env, td *TrialData) {
		fig.dist("tomo misconfig").Add(linkSensitivity(td, mustRun(td.Meas, tomoOpts())))
	}); err != nil {
		return nil, err
	}
	if err := runScenario(cfg, hooks{sample: misconfigPlusLinkSample}, func(_ int, env *Env, td *TrialData) {
		fig.dist("tomo misconfig+1link").Add(linkSensitivity(td, mustRun(td.Meas, tomoOpts())))
	}); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"expected shape: sensitivity ~1 for single link failures; much lower for 2-3 failures; ~0 in most misconfiguration instances")
	return fig, nil
}

// Figure7 compares Tomo with ND-edge: sensitivity CDFs under three link
// failures and under a misconfiguration combined with a link failure.
func Figure7(cfg Config) (*Figure, error) {
	fig := newFigure("fig7", "Sensitivity of Tomo and ND-edge")
	if err := runScenario(cfg, hooks{sample: linkSample(3)}, func(_ int, env *Env, td *TrialData) {
		fig.dist("tomo 3-link").Add(linkSensitivity(td, mustRun(td.Meas, tomoOpts())))
		fig.dist("nd-edge 3-link").Add(linkSensitivity(td, mustRun(td.Meas, edgeOpts())))
	}); err != nil {
		return nil, err
	}
	if err := runScenario(cfg, hooks{sample: misconfigPlusLinkSample}, func(_ int, env *Env, td *TrialData) {
		fig.dist("tomo misconfig+1link").Add(linkSensitivity(td, mustRun(td.Meas, tomoOpts())))
		fig.dist("nd-edge misconfig+1link").Add(linkSensitivity(td, mustRun(td.Meas, edgeOpts())))
	}); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"expected shape: ND-edge sensitivity ~1 almost always; Tomo low under both scenarios")
	return fig, nil
}

// Figure8 reproduces the ND-edge specificity CDFs for a single link
// failure and a single misconfiguration.
func Figure8(cfg Config) (*Figure, error) {
	fig := newFigure("fig8", "Specificity of ND-edge")
	var hsize metrics.Dist
	if err := runScenario(cfg, hooks{sample: linkSample(1)}, func(_ int, env *Env, td *TrialData) {
		r := mustRun(td.Meas, edgeOpts())
		fig.dist("nd-edge 1-link").Add(linkSpecificity(env, td, r))
		hsize.Add(float64(len(r.PhysLinks())))
	}); err != nil {
		return nil, err
	}
	if err := runScenario(cfg, hooks{sample: misconfigSample}, func(_ int, env *Env, td *TrialData) {
		fig.dist("nd-edge misconfig").Add(linkSpecificity(env, td, mustRun(td.Meas, edgeOpts())))
	}); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"expected shape: specificity > 0.9 for link failures; even higher for misconfigurations",
		fmt.Sprintf("hypothesis size for single link failures: mean %.1f, p90 %.0f, max %.0f links (paper: up to 12)",
			hsize.Mean(), hsize.Quantile(0.90), hsize.Quantile(1.0)))
	return fig, nil
}

// Figure9 reproduces the diagnosability-vs-specificity scatter: the number
// of probing sources varies, and each impactful single-link-failure trial
// contributes one (D, specificity) point for ND-edge.
func Figure9(cfg Config) (*Figure, error) {
	fig := newFigure("fig9", "Diagnosability vs specificity")
	type bucket struct {
		pts []Point
	}
	counts := []int{5, 10, 20, 35, 55, 80}
	buckets := make([]bucket, len(counts))
	for i, n := range counts {
		sub := cfg
		sub.NumSensors = n
		sub.Placements = max(1, cfg.Placements/3)
		sub.FailuresPerPlacement = max(1, cfg.FailuresPerPlacement/10)
		err := runScenario(sub, hooks{sample: linkSample(1)}, func(_ int, env *Env, td *TrialData) {
			d := core.Diagnosability(env.Measurements().Before)
			sp := linkSpecificity(env, td, mustRun(td.Meas, edgeOpts()))
			buckets[i].pts = append(buckets[i].pts, Point{X: d, Y: sp})
		})
		if err != nil {
			return nil, err
		}
	}
	for _, b := range buckets {
		fig.Points = append(fig.Points, b.pts...)
	}
	fig.Notes = append(fig.Notes,
		"expected shape: specificity grows with diagnosability; always above ~0.75")
	return fig, nil
}

// Figure10 compares ND-edge and ND-bgpigp under three link failures, with
// the troubleshooter at a core AS.
func Figure10(cfg Config) (*Figure, error) {
	fig := newFigure("fig10", "ND-edge vs ND-bgpigp (three link failures)")
	if err := runScenario(cfg, hooks{sample: linkSample(3)}, func(_ int, env *Env, td *TrialData) {
		edge := mustRun(td.Meas, edgeOpts())
		bgpigp := mustRun(td.Meas, bgpigpOpts(td))
		fig.dist("nd-edge sensitivity").Add(linkSensitivity(td, edge))
		fig.dist("nd-bgpigp sensitivity").Add(linkSensitivity(td, bgpigp))
		fig.dist("nd-edge specificity").Add(linkSpecificity(env, td, edge))
		fig.dist("nd-bgpigp specificity").Add(linkSpecificity(env, td, bgpigp))
	}); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"expected shape: equal sensitivity (~1); ND-bgpigp specificity >= ND-edge")
	return fig, nil
}

// sampleBlocked picks the traceroute-blocking ASes: a fraction fb of the
// probed-path ASes, never blocking sensor stubs or the troubleshooter.
func sampleBlocked(fb float64) func(*Env, topology.ASN, *rand.Rand) map[topology.ASN]bool {
	return func(env *Env, asx topology.ASN, rng *rand.Rand) map[topology.ASN]bool {
		sensorAS := map[topology.ASN]bool{}
		for _, a := range env.SensorASes {
			sensorAS[a] = true
		}
		var cands []topology.ASN
		for as := range env.BeforeMesh.CoveredASes() {
			if !sensorAS[as] && as != asx {
				cands = append(cands, as)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		k := int(fb*float64(len(cands)) + 0.5)
		blocked := map[topology.ASN]bool{}
		for _, idx := range rng.Perm(len(cands))[:k] {
			blocked[cands[idx]] = true
		}
		return blocked
	}
}

// sampleLGAvail picks the fraction of covered ASes operating Looking
// Glasses (the troubleshooter's AS is implicitly always available).
func sampleLGAvail(frac float64) func(*Env, topology.ASN, *rand.Rand) map[topology.ASN]bool {
	return func(env *Env, _ topology.ASN, rng *rand.Rand) map[topology.ASN]bool {
		var cands []topology.ASN
		for as := range env.BeforeMesh.CoveredASes() {
			cands = append(cands, as)
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		k := int(frac*float64(len(cands)) + 0.5)
		avail := map[topology.ASN]bool{}
		for _, idx := range rng.Perm(len(cands))[:k] {
			avail[cands[idx]] = true
		}
		return avail
	}
}

// Figure11 reproduces the blocked-traceroute study: average AS-sensitivity
// and AS-specificity of ND-LG and ND-bgpigp as the fraction of blocking
// ASes grows, with every AS operating a Looking Glass.
func Figure11(cfg Config) (*Figure, error) {
	fig := newFigure("fig11", "The effect of blocked traceroutes")
	fbs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	lgSens := Series{Name: "nd-lg AS-sensitivity"}
	lgSpec := Series{Name: "nd-lg AS-specificity"}
	bgSens := Series{Name: "nd-bgpigp AS-sensitivity"}
	bgSpec := Series{Name: "nd-bgpigp AS-specificity"}
	for _, fb := range fbs {
		var sLG, pLG, sBG, pBG metrics.Dist
		err := runScenario(cfg, hooks{
			blocked: sampleBlocked(fb),
			sample:  linkSample(1),
		}, func(_ int, env *Env, td *TrialData) {
			lg := mustRun(td.Meas, ndlgOpts(td))
			bg := mustRun(td.Meas, bgpigpOpts(td))
			sLG.Add(metrics.ASSensitivity(td.FailedASes, lg.ASes()))
			pLG.Add(metrics.ASSpecificity(td.CoveredASes, td.FailedASes, lg.ASes()))
			sBG.Add(metrics.ASSensitivity(td.FailedASes, bg.ASes()))
			pBG.Add(metrics.ASSpecificity(td.CoveredASes, td.FailedASes, bg.ASes()))
		})
		if err != nil {
			return nil, err
		}
		lgSens.X = append(lgSens.X, fb)
		lgSens.Y = append(lgSens.Y, sLG.Mean())
		lgSpec.X = append(lgSpec.X, fb)
		lgSpec.Y = append(lgSpec.Y, pLG.Mean())
		bgSens.X = append(bgSens.X, fb)
		bgSens.Y = append(bgSens.Y, sBG.Mean())
		bgSpec.X = append(bgSpec.X, fb)
		bgSpec.Y = append(bgSpec.Y, pBG.Mean())
	}
	fig.Series = append(fig.Series, lgSens, lgSpec, bgSens, bgSpec)
	fig.Notes = append(fig.Notes,
		"expected shape: ND-LG AS-sensitivity stays ~0.8 across f_b; ND-bgpigp AS-sensitivity tracks ~1-f_b")
	return fig, nil
}

// Figure12 reproduces the Looking-Glass availability study: average
// AS-sensitivity of ND-LG as the fraction of ASes with Looking Glasses
// varies, for three blocking levels; ND-bgpigp gives the horizontal
// baselines.
func Figure12(cfg Config) (*Figure, error) {
	fig := newFigure("fig12", "The effect of Looking Glass servers")
	fracs := []float64{0.05, 0.15, 0.25, 0.5, 0.75, 1.0}
	for _, fb := range []float64{0.25, 0.5, 0.75} {
		lgSeries := Series{Name: fmt.Sprintf("nd-lg fb=%.2f", fb)}
		var baseline metrics.Dist
		for _, frac := range fracs {
			var s metrics.Dist
			err := runScenario(cfg, hooks{
				blocked: sampleBlocked(fb),
				lgAvail: sampleLGAvail(frac),
				sample:  linkSample(1),
			}, func(_ int, env *Env, td *TrialData) {
				lg := mustRun(td.Meas, ndlgOpts(td))
				s.Add(metrics.ASSensitivity(td.FailedASes, lg.ASes()))
				if frac == fracs[0] {
					bg := mustRun(td.Meas, bgpigpOpts(td))
					baseline.Add(metrics.ASSensitivity(td.FailedASes, bg.ASes()))
				}
			})
			if err != nil {
				return nil, err
			}
			lgSeries.X = append(lgSeries.X, frac)
			lgSeries.Y = append(lgSeries.Y, s.Mean())
		}
		fig.Series = append(fig.Series, lgSeries)
		fig.Series = append(fig.Series, Series{
			Name: fmt.Sprintf("nd-bgpigp fb=%.2f", fb),
			X:    []float64{fracs[0], fracs[len(fracs)-1]},
			Y:    []float64{baseline.Mean(), baseline.Mean()},
		})
	}
	fig.Notes = append(fig.Notes,
		"expected shape: steep gain at small LG fractions, diminishing returns past ~50%")
	return fig, nil
}

// RouterFailureStudy reproduces the §5.2 router-failure result: ND-edge
// detects the failed router in every run (H contains at least one of its
// links), with link-level metrics similar to the 3-link-failure case.
func RouterFailureStudy(cfg Config) (*Figure, error) {
	fig := newFigure("router", "ND-edge under router failures")
	detected, total := 0, 0
	err := runScenario(cfg, hooks{
		sample: func(env *Env, rng *rand.Rand) (Fault, bool) { return env.SampleRouterFault(rng) },
	}, func(_ int, env *Env, td *TrialData) {
		edge := mustRun(td.Meas, edgeOpts())
		se := linkSensitivity(td, edge)
		fig.dist("nd-edge sensitivity").Add(se)
		fig.dist("nd-edge specificity").Add(linkSpecificity(env, td, edge))
		total++
		if se > 0 {
			detected++
		}
	})
	if err != nil {
		return nil, err
	}
	rate := 0.0
	if total > 0 {
		rate = float64(detected) / float64(total)
	}
	fig.Series = append(fig.Series, Series{Name: "detection rate", X: []float64{0}, Y: []float64{rate}})
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("detected failed router in %d/%d runs (paper: every run)", detected, total))
	return fig, nil
}

// ASLevelStudy reproduces the §5.2 in-text AS-granularity results for
// ND-edge under single link failures.
func ASLevelStudy(cfg Config) (*Figure, error) {
	fig := newFigure("aslevel", "AS-level accuracy of ND-edge")
	exactAS, fpLE1, fnZero, total := 0, 0, 0, 0
	err := runScenario(cfg, hooks{sample: linkSample(1)}, func(_ int, env *Env, td *TrialData) {
		edge := mustRun(td.Meas, edgeOpts())
		hyp := edge.ASes()
		fig.dist("AS-sensitivity").Add(metrics.ASSensitivity(td.FailedASes, hyp))
		fig.dist("AS-specificity").Add(metrics.ASSpecificity(td.CoveredASes, td.FailedASes, hyp))
		failed := map[topology.ASN]bool{}
		for _, a := range td.FailedASes {
			failed[a] = true
		}
		fp, fn := 0, len(td.FailedASes)
		for _, a := range hyp {
			if failed[a] {
				fn--
			} else {
				fp++
			}
		}
		total++
		if fp == 0 && fn == 0 {
			exactAS++
		}
		if fp <= 1 {
			fpLE1++
		}
		if fn == 0 {
			fnZero++
		}
	})
	if err != nil {
		return nil, err
	}
	if total > 0 {
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("exact AS set: %.0f%% (paper: >50%%); <=1 AS false positive: %.0f%% (paper: >90%%); 0 AS false negatives: %.0f%% (paper: >90%%)",
				100*float64(exactAS)/float64(total), 100*float64(fpLE1)/float64(total), 100*float64(fnZero)/float64(total)))
	}
	return fig, nil
}

// ASXPositionStudy reproduces the §5.3 in-text result: ND-bgpigp
// specificity with the troubleshooter at a core AS vs at a stub AS.
func ASXPositionStudy(cfg Config) (*Figure, error) {
	fig := newFigure("asxpos", "Effect of AS-X position on ND-bgpigp")
	run := func(label string, pick func(env *Env) topology.ASN) error {
		return runScenario(cfg, hooks{
			asx:    pick,
			sample: linkSample(3),
		}, func(_ int, env *Env, td *TrialData) {
			r := mustRun(td.Meas, bgpigpOpts(td))
			fig.dist(label + " specificity").Add(linkSpecificity(env, td, r))
			fig.dist(label + " sensitivity").Add(linkSensitivity(td, r))
		})
	}
	if err := run("core AS-X", func(env *Env) topology.ASN { return env.Res.Cores[0] }); err != nil {
		return nil, err
	}
	if err := run("stub AS-X", func(env *Env) topology.ASN { return env.SensorASes[0] }); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"expected shape: same sensitivity; specificity same or higher for a core AS-X")
	return fig, nil
}

// AblationStudy measures the contribution of each NetDiagnoser feature on
// the 3-link-failure workload: logical links, reroute sets, routing data,
// and the beyond-paper partial-traceroute extension.
func AblationStudy(cfg Config) (*Figure, error) {
	fig := newFigure("ablation", "Feature ablation (three link failures)")
	variants := []struct {
		name string
		opts func(td *TrialData) core.Options
	}{
		{"tomo (no features)", func(*TrialData) core.Options { return core.Options{} }},
		{"+logical only", func(*TrialData) core.Options { return core.Options{LogicalLinks: true} }},
		{"+reroutes only", func(*TrialData) core.Options { return core.Options{UseReroutes: true} }},
		{"nd-edge (both)", func(*TrialData) core.Options { return edgeOpts() }},
		{"nd-bgpigp", bgpigpOpts},
		{"nd-bgpigp+partial", func(td *TrialData) core.Options {
			o := bgpigpOpts(td)
			o.UsePartialTraces = true
			return o
		}},
	}
	err := runScenario(cfg, hooks{sample: linkSample(3)}, func(_ int, env *Env, td *TrialData) {
		for _, v := range variants {
			r := mustRun(td.Meas, v.opts(td))
			fig.dist(v.name + " sens").Add(linkSensitivity(td, r))
			fig.dist(v.name + " spec").Add(linkSpecificity(env, td, r))
		}
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "reroute information drives sensitivity; routing data and partial traces drive specificity")
	return fig, nil
}
