package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netdiag/internal/metrics"
)

// WriteCSV writes the figure's data as CSV files under dir:
// <id>_cdf.csv (name,x,p), <id>_series.csv (name,x,y) and
// <id>_points.csv (x,y), creating only the files with data.
func (f *Figure) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if len(f.CDFs) > 0 {
		if err := writeCSVFile(filepath.Join(dir, f.ID+"_cdf.csv"),
			[]string{"series", "value", "cdf"}, func(w *csv.Writer) error {
				for _, name := range sortedKeys(f.CDFs) {
					for _, pt := range f.CDFs[name].CDF() {
						if err := w.Write([]string{name, ftoa(pt.X), ftoa(pt.P)}); err != nil {
							return err
						}
					}
				}
				return nil
			}); err != nil {
			return err
		}
	}
	if len(f.Series) > 0 {
		if err := writeCSVFile(filepath.Join(dir, f.ID+"_series.csv"),
			[]string{"series", "x", "y"}, func(w *csv.Writer) error {
				for _, s := range f.Series {
					for i := range s.X {
						if err := w.Write([]string{s.Name, ftoa(s.X[i]), ftoa(s.Y[i])}); err != nil {
							return err
						}
					}
				}
				return nil
			}); err != nil {
			return err
		}
	}
	if len(f.Points) > 0 {
		if err := writeCSVFile(filepath.Join(dir, f.ID+"_points.csv"),
			[]string{"x", "y"}, func(w *csv.Writer) error {
				for _, p := range f.Points {
					if err := w.Write([]string{ftoa(p.X), ftoa(p.Y)}); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVFile(path string, header []string, body func(*csv.Writer) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	w := csv.NewWriter(fh)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := body(w); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func sortedKeys(m map[string]*metrics.Dist) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render writes a human-readable summary of the figure to w.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title)
	if len(f.CDFs) > 0 {
		for _, name := range sortedKeys(f.CDFs) {
			fmt.Fprintf(w, "  %-34s %s\n", name, f.CDFs[name].String())
		}
		fmt.Fprint(w, indent(metrics.AsciiCDF("  CDF grid:", f.CDFs, 11), "  "))
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, "  series %-30s", s.Name)
		for i := range s.X {
			fmt.Fprintf(w, " (%.2g, %.3f)", s.X[i], s.Y[i])
		}
		fmt.Fprintln(w)
	}
	if len(f.Points) > 0 {
		fmt.Fprintf(w, "  %d scatter points; ", len(f.Points))
		var d metrics.Dist
		for _, p := range f.Points {
			d.Add(p.Y)
		}
		fmt.Fprintf(w, "y-dist: %s\n", d.String())
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
