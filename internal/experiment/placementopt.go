package experiment

import (
	"fmt"
	"math/rand"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

// This file implements a sensor-placement optimization study, an extension
// the paper explicitly leaves open ("We do not specifically study sensor
// placement in this work", §4): greedily choose sensor stubs to maximize
// the diagnosability D(G) of the resulting traceroute graph, and compare
// against random placement at equal sensor counts.

// GreedyPlacement selects n sensor stubs by greedy diagnosability
// maximization: starting from a random seed pair, each step adds the
// candidate stub (from a random sample of size candidates) whose addition
// yields the highest D(G). It returns the chosen sensor routers.
func GreedyPlacement(res *topology.Research, n, candidates int, rng *rand.Rand) ([]topology.RouterID, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiment: greedy placement needs n >= 2, got %d", n)
	}
	chosen := map[topology.ASN]bool{}
	var sensors []topology.RouterID
	// Seed with two random stubs.
	perm := rng.Perm(len(res.Stubs))
	for _, idx := range perm[:2] {
		as := res.Stubs[idx]
		chosen[as] = true
		sensors = append(sensors, res.Topo.AS(as).Routers[0])
	}
	for len(sensors) < n {
		var bestSensor topology.RouterID
		var bestAS topology.ASN
		bestD := -1.0
		tried := 0
		for _, idx := range rng.Perm(len(res.Stubs)) {
			if tried >= candidates {
				break
			}
			as := res.Stubs[idx]
			if chosen[as] {
				continue
			}
			tried++
			cand := append(append([]topology.RouterID{}, sensors...), res.Topo.AS(as).Routers[0])
			env, err := NewEnv(res, cand)
			if err != nil {
				continue // placement made some pair unreachable: skip
			}
			if d := core.Diagnosability(env.Measurements().Before); d > bestD {
				bestD = d
				bestSensor = res.Topo.AS(as).Routers[0]
				bestAS = as
			}
		}
		if bestD < 0 {
			return nil, fmt.Errorf("experiment: no viable candidate at %d sensors", len(sensors))
		}
		chosen[bestAS] = true
		sensors = append(sensors, bestSensor)
	}
	return sensors, nil
}

// PlacementOptStudy compares greedy diagnosability-maximizing placement
// against random placement across sensor counts.
func PlacementOptStudy(cfg Config) (*Figure, error) {
	fig := newFigure("placement", "Greedy vs random sensor placement (extension)")
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(cfg.Seed))
	if err != nil {
		return nil, err
	}
	greedySeries := Series{Name: "greedy placement D"}
	randomSeries := Series{Name: "random placement D"}
	counts := []int{4, 6, 8, 10}
	reps := max(1, cfg.Placements/3)
	for _, n := range counts {
		gSum, rSum := 0.0, 0.0
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed*131 + int64(rep)*7 + int64(n)))
			gs, err := GreedyPlacement(res, n, 8, rng)
			if err != nil {
				return nil, err
			}
			genv, err := NewEnv(res, gs)
			if err != nil {
				return nil, err
			}
			gSum += core.Diagnosability(genv.Measurements().Before)

			rs, _, err := PlaceSensors(res, PlaceRandomStubs, n, rng)
			if err != nil {
				return nil, err
			}
			renv, err := NewEnv(res, rs)
			if err != nil {
				return nil, err
			}
			rSum += core.Diagnosability(renv.Measurements().Before)
		}
		greedySeries.X = append(greedySeries.X, float64(n))
		greedySeries.Y = append(greedySeries.Y, gSum/float64(reps))
		randomSeries.X = append(randomSeries.X, float64(n))
		randomSeries.Y = append(randomSeries.Y, rSum/float64(reps))
	}
	fig.Series = append(fig.Series, greedySeries, randomSeries)
	fig.Notes = append(fig.Notes,
		"greedy placement should dominate random at every sensor count; higher D means smaller hypothesis sets (paper Fig 9)")
	return fig, nil
}
