package experiment

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"netdiag/internal/bgp"
	"netdiag/internal/core"
	"netdiag/internal/igp"
	"netdiag/internal/ip2as"
	"netdiag/internal/lookingglass"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// Placement selects a sensor placement strategy (§4, Figure 5).
type Placement int

const (
	// PlaceRandomStubs places sensors at randomly chosen stub ASes — the
	// paper's worst-case default for all §5 results.
	PlaceRandomStubs Placement = iota
	// PlaceSameAS places every sensor inside one core AS.
	PlaceSameAS
	// PlaceDistantAS splits the sensors between two tier-2 ASes.
	PlaceDistantAS
	// PlaceDistantSplit is DistantAS with some sensors moved onto the
	// inter-AS path between the two networks.
	PlaceDistantSplit
)

// String names the placement for figure labels.
func (p Placement) String() string {
	switch p {
	case PlaceRandomStubs:
		return "random"
	case PlaceSameAS:
		return "same AS"
	case PlaceDistantAS:
		return "distant AS"
	case PlaceDistantSplit:
		return "distant AS, split path"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Env is one placed experiment environment: a converged network with a
// sensor overlay and its pre-failure measurements. After NewEnv returns,
// an Env is never mutated: RunTrial injects faults into a private Fork of
// the network, so concurrent RunTrial calls on one Env are safe.
type Env struct {
	Res        *topology.Research
	Net        *netsim.Network
	Sensors    []topology.RouterID
	SensorASes []topology.ASN
	Prefixes   []bgp.Prefix
	BeforeMesh *probe.Mesh
	BeforeBGP  *bgp.State
	// E is the probed directed physical link universe.
	E []core.Link
	// PhysProbed is the deduplicated set of probed physical links.
	PhysProbed []topology.LinkID
	// IP2AS is the troubleshooter's IP-to-AS table built from the
	// announced address space (§3.1).
	IP2AS *ip2as.Table
}

// PlaceSensors picks sensor routers for a placement strategy. It returns
// the sensor routers and their (per-sensor) ASes.
func PlaceSensors(res *topology.Research, kind Placement, n int, rng *rand.Rand) ([]topology.RouterID, []topology.ASN, error) {
	topo := res.Topo
	var sensors []topology.RouterID
	switch kind {
	case PlaceRandomStubs:
		if n > len(res.Stubs) {
			return nil, nil, fmt.Errorf("experiment: %d sensors exceed %d stubs", n, len(res.Stubs))
		}
		for _, idx := range rng.Perm(len(res.Stubs))[:n] {
			sensors = append(sensors, topo.AS(res.Stubs[idx]).Routers[0])
		}
	case PlaceSameAS:
		as := res.Cores[rng.Intn(len(res.Cores))]
		routers := topo.AS(as).Routers
		perm := rng.Perm(len(routers))
		for i := 0; i < n; i++ {
			sensors = append(sensors, routers[perm[i%len(routers)]])
		}
	case PlaceDistantAS, PlaceDistantSplit:
		perm := rng.Perm(len(res.Tier2))
		a, b := res.Tier2[perm[0]], res.Tier2[perm[1]]
		ra, rb := topo.AS(a).Routers, topo.AS(b).Routers
		pa, pb := rng.Perm(len(ra)), rng.Perm(len(rb))
		for i := 0; i < n/2; i++ {
			sensors = append(sensors, ra[pa[i%len(ra)]])
		}
		for i := 0; i < n-n/2; i++ {
			sensors = append(sensors, rb[pb[i%len(rb)]])
		}
		if kind == PlaceDistantSplit && n >= 4 {
			mid, err := interASPathRouters(res, a, b)
			if err != nil {
				return nil, nil, err
			}
			if len(mid) > 0 {
				// Replace up to a quarter of the sensors with routers on
				// the inter-AS path.
				k := n / 4
				for i := 0; i < k && i < len(mid); i++ {
					sensors[len(sensors)-1-i] = mid[i%len(mid)]
				}
			}
		}
	default:
		return nil, nil, fmt.Errorf("experiment: unknown placement %v", kind)
	}
	ases := make([]topology.ASN, len(sensors))
	for i, s := range sensors {
		ases[i] = topo.RouterAS(s)
	}
	return sensors, ases, nil
}

// interASPathRouters returns the routers strictly between ASes a and b on
// the forwarding path between their hubs, using a throwaway network.
func interASPathRouters(res *topology.Research, a, b topology.ASN) ([]topology.RouterID, error) {
	n, err := netsim.New(res.Topo, []topology.ASN{a, b})
	if err != nil {
		return nil, err
	}
	src := res.Topo.AS(a).Routers[0]
	dst := res.Topo.AS(b).Routers[0]
	p := n.Traceroute(src, dst)
	var mid []topology.RouterID
	for _, h := range p.Hops {
		if h.AS != a && h.AS != b {
			mid = append(mid, h.Router)
		}
	}
	return mid, nil
}

// NewEnv converges the network for a sensor set and takes the pre-failure
// measurements. Optional netsim options (e.g. netsim.WithParallelism)
// configure the environment's network; a shared SPF cache is always
// installed so the fault trials reuse unchanged per-AS routing tables.
func NewEnv(res *topology.Research, sensors []topology.RouterID, netOpts ...netsim.Option) (*Env, error) {
	topo := res.Topo
	asSet := map[topology.ASN]bool{}
	var origins []topology.ASN
	sensorASes := make([]topology.ASN, len(sensors))
	for i, s := range sensors {
		as := topo.RouterAS(s)
		sensorASes[i] = as
		if !asSet[as] {
			asSet[as] = true
			origins = append(origins, as)
		}
	}
	opts := append([]netsim.Option{netsim.WithSPFCache(igp.NewCache())}, netOpts...)
	net, err := netsim.New(topo, origins, opts...)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Res:        res,
		Net:        net,
		Sensors:    sensors,
		SensorASes: sensorASes,
		BeforeMesh: net.Mesh(sensors),
		BeforeBGP:  net.BGP(),
	}
	if env.BeforeMesh.AnyFailed() {
		return nil, errors.New("experiment: pre-failure mesh has unreachable pairs")
	}
	env.Prefixes = make([]bgp.Prefix, len(sensors))
	for i, as := range sensorASes {
		env.Prefixes[i] = bgp.PrefixFor(as)
	}
	env.E = ProbedLinks(topo, env.BeforeMesh)
	seen := map[topology.LinkID]bool{}
	for _, l := range env.E {
		ra, okA := topo.RouterByAddr(string(l.From))
		rb, okB := topo.RouterByAddr(string(l.To))
		if !okA || !okB {
			continue
		}
		if pl, ok := topo.LinkBetween(ra.ID, rb.ID); ok && !seen[pl.ID] {
			seen[pl.ID] = true
			env.PhysProbed = append(env.PhysProbed, pl.ID)
		}
	}
	sort.Slice(env.PhysProbed, func(i, j int) bool { return env.PhysProbed[i] < env.PhysProbed[j] })
	env.IP2AS, err = ip2as.FromTopology(topo)
	if err != nil {
		return nil, err
	}
	return env, nil
}

// Measurements returns the healthy-network measurements (the pre-failure
// mesh serving as both T- and T+), used for diagnosability computation.
func (e *Env) Measurements() *core.Measurements {
	return ToMeasurements(e.BeforeMesh, e.BeforeMesh)
}

// Fault is one injected failure scenario.
type Fault struct {
	Links   []topology.LinkID
	Routers []topology.RouterID
	Filters []bgp.ExportFilter
}

// GroundTruth computes the directed failed links (restricted to the probed
// universe E) and the failed ASes for a fault.
func (e *Env) GroundTruth(f Fault) (links []core.Link, ases []topology.ASN) {
	topo := e.Res.Topo
	inE := map[core.Link]bool{}
	for _, l := range e.E {
		inE[l] = true
	}
	asSet := map[topology.ASN]bool{}
	addLink := func(a, b topology.RouterID) {
		hit := false
		if l := directedLink(topo, a, b); inE[l] {
			links = append(links, l)
			hit = true
		}
		if l := directedLink(topo, b, a); inE[l] {
			links = append(links, l)
			hit = true
		}
		if hit {
			asSet[topo.RouterAS(a)] = true
			asSet[topo.RouterAS(b)] = true
		}
	}
	for _, id := range f.Links {
		pl := topo.Link(id)
		addLink(pl.A, pl.B)
	}
	for _, r := range f.Routers {
		for _, id := range topo.Router(r).Links {
			pl := topo.Link(id)
			addLink(pl.A, pl.B)
		}
		asSet[topo.RouterAS(r)] = true
	}
	filterLinks := map[core.Link]bool{}
	for _, flt := range f.Filters {
		// The broken traffic direction is peer -> misconfigured router.
		if l := directedLink(topo, flt.Peer, flt.Router); inE[l] && !filterLinks[l] {
			filterLinks[l] = true
			links = append(links, l)
		}
		asSet[topo.RouterAS(flt.Router)] = true
	}
	for a := range asSet {
		ases = append(ases, a)
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
	return links, ases
}

// TrialData is everything one fault trial produces for the algorithms.
type TrialData struct {
	Meas        *core.Measurements
	Routing     *core.RoutingInfo
	LG          core.LookingGlass
	FailedLinks []core.Link
	FailedASes  []topology.ASN
	CoveredASes []topology.ASN
	AfterMesh   *probe.Mesh
}

// ErrNoImpact reports a fault that broke no sensor pair; the
// troubleshooter would never be invoked (§4).
var ErrNoImpact = errors.New("experiment: fault caused no unreachability")

// RunTrial injects a fault into a private fork of the healthy network,
// gathers the post-failure measurements and control-plane observations for
// troubleshooter asx, and discards the fork — the Env's own network stays
// untouched and healthy, which makes concurrent RunTrial calls on one Env
// safe. blocked masks traceroute hops; lgAvail limits Looking Glasses
// (nil = all ASes have one).
func (e *Env) RunTrial(f Fault, asx topology.ASN, blocked map[topology.ASN]bool, lgAvail map[topology.ASN]bool) (*TrialData, error) {
	net := e.Net.Fork()
	for _, id := range f.Links {
		net.FailLink(id)
	}
	for _, r := range f.Routers {
		net.FailRouter(r)
	}
	for _, flt := range f.Filters {
		net.AddExportFilter(flt)
	}
	if err := net.Reconverge(); err != nil {
		return nil, err
	}
	afterMesh := net.Mesh(e.Sensors)
	if !afterMesh.AnyFailed() {
		return nil, ErrNoImpact
	}
	topo := e.Res.Topo

	bm, am := e.BeforeMesh, afterMesh
	if len(blocked) > 0 {
		bm, am = bm.Mask(blocked), am.Mask(blocked)
	}
	td := &TrialData{
		Meas:      ToMeasurementsMapped(bm, am, e.IP2AS.Lookup),
		AfterMesh: afterMesh,
	}
	td.Routing = &core.RoutingInfo{
		ASX:          asx,
		IGPDownLinks: AdaptIGPDowns(net, asx),
		Withdrawals: AdaptWithdrawals(topo,
			net.ObserveWithdrawals(e.BeforeBGP, asx), e.SensorASes),
	}
	td.LG = lookingglass.New(net.BGP(), e.BeforeBGP, lgAvail, asx, e.Prefixes)
	td.FailedLinks, td.FailedASes = e.GroundTruth(f)
	for as := range e.BeforeMesh.CoveredASes() {
		td.CoveredASes = append(td.CoveredASes, as)
	}
	sort.Slice(td.CoveredASes, func(i, j int) bool { return td.CoveredASes[i] < td.CoveredASes[j] })
	return td, nil
}

// SampleLinkFault draws x distinct probed physical links.
func (e *Env) SampleLinkFault(rng *rand.Rand, x int) (Fault, bool) {
	if x > len(e.PhysProbed) {
		return Fault{}, false
	}
	perm := rng.Perm(len(e.PhysProbed))
	f := Fault{}
	for i := 0; i < x; i++ {
		f.Links = append(f.Links, e.PhysProbed[perm[i]])
	}
	return f, true
}

// SampleRouterFault draws a non-sensor router that appears as an
// intermediate hop on some probed path.
func (e *Env) SampleRouterFault(rng *rand.Rand) (Fault, bool) {
	sensorSet := map[topology.RouterID]bool{}
	for _, s := range e.Sensors {
		sensorSet[s] = true
	}
	candSet := map[topology.RouterID]bool{}
	for i := range e.BeforeMesh.Paths {
		for _, p := range e.BeforeMesh.Paths[i] {
			if p == nil {
				continue
			}
			for _, h := range p.Hops {
				if !sensorSet[h.Router] {
					candSet[h.Router] = true
				}
			}
		}
	}
	if len(candSet) == 0 {
		return Fault{}, false
	}
	cands := make([]topology.RouterID, 0, len(candSet))
	for r := range candSet {
		cands = append(cands, r)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return Fault{Routers: []topology.RouterID{cands[rng.Intn(len(cands))]}}, true
}

// SampleMisconfig draws a BGP export-filter misconfiguration on a probed
// interdomain link (§4): the target router stops announcing, to the peer
// at the other end, the routes it forwards via one of its out-neighbor
// ASes. The per-out-neighbor grouping reflects the paper's observation
// that BGP policies are set on a per-neighbor basis (§3.1) — and it is the
// granularity ND-edge's logical links can localize.
func (e *Env) SampleMisconfig(rng *rand.Rand) (Fault, bool) {
	return e.sampleMisconfig(rng, false)
}

// SampleMisconfigSinglePrefix filters exactly one in-use prefix — the
// finer-grained misconfiguration that only per-prefix logical links can
// localize, used by the scalability study.
func (e *Env) SampleMisconfigSinglePrefix(rng *rand.Rand) (Fault, bool) {
	return e.sampleMisconfig(rng, true)
}

func (e *Env) sampleMisconfig(rng *rand.Rand, singlePrefix bool) (Fault, bool) {
	topo := e.Res.Topo
	var inter []topology.LinkID
	for _, id := range e.PhysProbed {
		if topo.Link(id).Kind == topology.Inter {
			inter = append(inter, id)
		}
	}
	if len(inter) == 0 {
		return Fault{}, false
	}
	// Prefer links whose traffic splits across at least two out-neighbor
	// groups: filtering one group then leaves the other flowing, producing
	// the paper's "partial" link failure that plain tomography cannot see.
	for _, requireSplit := range []bool{true, false} {
		for _, idx := range rng.Perm(len(inter)) {
			pl := topo.Link(inter[idx])
			orients := [][2]topology.RouterID{{pl.A, pl.B}, {pl.B, pl.A}}
			if rng.Intn(2) == 1 {
				orients[0], orients[1] = orients[1], orients[0]
			}
			for _, o := range orients {
				target, peer := o[0], o[1]
				groups := e.misconfigGroups(target, peer)
				if len(groups) == 0 || (requireSplit && len(groups) < 2) {
					continue
				}
				keys := make([]topology.ASN, 0, len(groups))
				for k := range groups {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				chosen := groups[keys[rng.Intn(len(keys))]]
				if singlePrefix {
					chosen = chosen[rng.Intn(len(chosen)):][:1]
				}
				f := Fault{}
				for _, p := range chosen {
					f.Filters = append(f.Filters, bgp.ExportFilter{
						Router: target, Peer: peer, Prefix: p,
					})
				}
				return f, true
			}
		}
	}
	return Fault{}, false
}

// misconfigGroups returns the prefixes the peer routes through the target,
// grouped by the target's out-neighbor AS for the prefix (the first AS of
// its best route's AS path; its own AS for locally originated prefixes).
func (e *Env) misconfigGroups(target, peer topology.RouterID) map[topology.ASN][]bgp.Prefix {
	topo := e.Res.Topo
	groups := map[topology.ASN][]bgp.Prefix{}
	for _, p := range e.BeforeBGP.Prefixes() {
		rt, ok := e.BeforeBGP.Best(peer, p)
		if !ok || rt.Local || rt.Egress != peer || rt.PeerRouter != target {
			continue
		}
		out := topo.RouterAS(target)
		if trt, ok := e.BeforeBGP.Best(target, p); ok && len(trt.ASPath) > 0 {
			out = trt.ASPath[0]
		}
		groups[out] = append(groups[out], p)
	}
	return groups
}
