package experiment

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"netdiag/internal/core"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// csvBytes runs the figure at the given parallelism and returns every CSV
// file it writes, keyed by file name.
func csvBytes(t *testing.T, fn func(Config) (*Figure, error), seed int64, par int) map[string][]byte {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 6
	cfg.Parallelism = par
	return csvBytesCfg(t, fn, cfg)
}

// csvBytesCfg runs the figure under an explicit config and returns every
// CSV file it writes, keyed by file name.
func csvBytesCfg(t *testing.T, fn func(Config) (*Figure, error), cfg Config) map[string][]byte {
	t.Helper()
	fig, err := fn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := fig.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	if len(out) == 0 {
		t.Fatal("figure wrote no CSV files")
	}
	return out
}

// TestParallelismCSVDeterminism is the acceptance check for the parallel
// engine: for a fixed seed the figure CSVs must be byte-identical between
// sequential execution (parallelism 1) and a heavily parallel run
// (parallelism 8), for both the diagnosability study (Figure 5, parallel
// over placement×size×rep tasks) and a trial-driven scenario figure
// (Figure 7, parallel envs + speculative trial waves).
func TestParallelismCSVDeterminism(t *testing.T) {
	figs := []struct {
		name string
		fn   func(Config) (*Figure, error)
	}{
		{"fig5", Figure5},
		{"fig7", Figure7},
	}
	for _, f := range figs {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			seq := csvBytes(t, f.fn, 7707, 1)
			par := csvBytes(t, f.fn, 7707, 8)
			if len(seq) != len(par) {
				t.Fatalf("file sets differ: sequential %d files, parallel %d", len(seq), len(par))
			}
			for name, want := range seq {
				got, ok := par[name]
				if !ok {
					t.Fatalf("parallel run missing %s", name)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s differs between parallelism 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
						name, want, got)
				}
			}
		})
	}
}

// TestTelemetryCSVDeterminism is the no-perturbation acceptance check for
// the telemetry layer: attaching a registry to an experiment run must leave
// every figure CSV byte-identical, while the registry itself records the
// pipeline's activity.
func TestTelemetryCSVDeterminism(t *testing.T) {
	figs := []struct {
		name string
		fn   func(Config) (*Figure, error)
	}{
		{"fig5", Figure5},
		{"fig7", Figure7},
	}
	for _, f := range figs {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(7707)
			cfg.Placements = 2
			cfg.FailuresPerPlacement = 6
			cfg.Parallelism = 4
			plain := csvBytesCfg(t, f.fn, cfg)

			cfg.Telemetry = telemetry.New()
			observed := csvBytesCfg(t, f.fn, cfg)

			if len(plain) != len(observed) {
				t.Fatalf("file sets differ: %d files without telemetry, %d with", len(plain), len(observed))
			}
			for name, want := range plain {
				got, ok := observed[name]
				if !ok {
					t.Fatalf("telemetry run missing %s", name)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s differs with telemetry attached:\n--- without ---\n%s\n--- with ---\n%s",
						name, want, got)
				}
			}
			snap := cfg.Telemetry.Snapshot()
			if snap.Counters["netsim.reconverges"] == 0 {
				t.Error("telemetry run recorded no netsim.reconverges")
			}
			if snap.Counters["pool.tasks_started"] == 0 {
				t.Error("telemetry run recorded no pool.tasks_started")
			}
			if f.name == "fig7" && snap.Counters["experiment.trials_run"] == 0 {
				t.Error("telemetry run recorded no experiment.trials_run")
			}
		})
	}
}

// TestTelemetryHypothesisDeterminism asserts the rendered hypothesis of a
// diagnosis is byte-identical with and without telemetry and debug logging
// attached — observation must never steer the greedy cover.
func TestTelemetryHypothesisDeterminism(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(7707))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sensors, _, err := PlaceSensors(res, PlaceRandomStubs, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(res, sensors)
	if err != nil {
		t.Fatal(err)
	}
	asx := res.Cores[0]
	var td *TrialData
	for td == nil {
		f, ok := env.SampleLinkFault(rng, 3)
		if !ok {
			t.Fatal("no faults to sample")
		}
		var err error
		td, err = env.RunTrial(f, asx, nil, nil)
		if err != nil && err != ErrNoImpact {
			t.Fatal(err)
		}
	}

	plain, err := core.Run(td.Meas, bgpigpOpts(td))
	if err != nil {
		t.Fatal(err)
	}
	opts := bgpigpOpts(td)
	opts.Telemetry = telemetry.New()
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	observed, err := core.Run(td.Meas, opts)
	if err != nil {
		t.Fatal(err)
	}

	want := []byte(fmt.Sprintf("%v %d %d", plain.Hypothesis, plain.Iterations, plain.UnexplainedFailures))
	got := []byte(fmt.Sprintf("%v %d %d", observed.Hypothesis, observed.Iterations, observed.UnexplainedFailures))
	if !bytes.Equal(want, got) {
		t.Fatalf("hypothesis differs with telemetry attached:\nwithout %s\nwith    %s", want, got)
	}
	if len(observed.Telemetry) == 0 {
		t.Error("observed run returned no phase spans")
	}
	if len(plain.Telemetry) != 0 {
		t.Error("unobserved run returned phase spans")
	}
}
