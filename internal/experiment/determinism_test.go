package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// csvBytes runs the figure at the given parallelism and returns every CSV
// file it writes, keyed by file name.
func csvBytes(t *testing.T, fn func(Config) (*Figure, error), seed int64, par int) map[string][]byte {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Placements = 2
	cfg.FailuresPerPlacement = 6
	cfg.Parallelism = par
	fig, err := fn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := fig.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	if len(out) == 0 {
		t.Fatal("figure wrote no CSV files")
	}
	return out
}

// TestParallelismCSVDeterminism is the acceptance check for the parallel
// engine: for a fixed seed the figure CSVs must be byte-identical between
// sequential execution (parallelism 1) and a heavily parallel run
// (parallelism 8), for both the diagnosability study (Figure 5, parallel
// over placement×size×rep tasks) and a trial-driven scenario figure
// (Figure 7, parallel envs + speculative trial waves).
func TestParallelismCSVDeterminism(t *testing.T) {
	figs := []struct {
		name string
		fn   func(Config) (*Figure, error)
	}{
		{"fig5", Figure5},
		{"fig7", Figure7},
	}
	for _, f := range figs {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			seq := csvBytes(t, f.fn, 7707, 1)
			par := csvBytes(t, f.fn, 7707, 8)
			if len(seq) != len(par) {
				t.Fatalf("file sets differ: sequential %d files, parallel %d", len(seq), len(par))
			}
			for name, want := range seq {
				got, ok := par[name]
				if !ok {
					t.Fatalf("parallel run missing %s", name)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s differs between parallelism 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
						name, want, got)
				}
			}
		})
	}
}
