package experiment

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

// The tests in this file pin the central contract of the bitset diagnosis
// engine: on every algorithm variant (Tomo, ND-edge, ND-bgpigp, ND-LG), at
// any scoring parallelism, the packed-bitset engine and the map-based
// reference engine render byte-identical wire output. Each randomized
// trial injects a fault (link, multi-link, router, or misconfiguration)
// into a simulated network — optionally with traceroute-blocking ASes and
// partial Looking-Glass coverage, so UH mapping and link clustering are on
// the hot path — and diffs the engines on the resulting measurements.

// equivEnv builds an experiment Env over an arbitrary topology (the paper's
// figure examples are not research-shaped; NewEnv only needs the Topo).
func equivEnv(t *testing.T, topo *topology.Topology, sensors []topology.RouterID) *Env {
	t.Helper()
	env, err := NewEnv(&topology.Research{Topo: topo}, sensors)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// sampleEquivFault draws one fault, mixing every injectable kind and
// falling back to a single link failure when a kind is unavailable on the
// topology (e.g. no interdomain links to misconfigure on fig1).
func sampleEquivFault(env *Env, rng *rand.Rand) (Fault, bool) {
	switch rng.Intn(4) {
	case 0:
		return env.SampleLinkFault(rng, 1)
	case 1:
		if f, ok := env.SampleLinkFault(rng, 2); ok {
			return f, true
		}
		return env.SampleLinkFault(rng, 1)
	case 2:
		if f, ok := env.SampleRouterFault(rng); ok {
			return f, true
		}
		return env.SampleLinkFault(rng, 1)
	default:
		if f, ok := env.SampleMisconfig(rng); ok {
			return f, true
		}
		return env.SampleLinkFault(rng, 1)
	}
}

// engineDiffTrial diffs the engines over all four variants × parallelism
// 1 and 8 on one trial's measurements.
func engineDiffTrial(t *testing.T, td *TrialData, label string) {
	t.Helper()
	variants := []struct {
		name string
		opts core.Options
	}{
		{"tomo", tomoOpts()},
		{"nd-edge", edgeOpts()},
		{"nd-bgpigp", bgpigpOpts(td)},
		{"nd-lg", ndlgOpts(td)},
	}
	for _, v := range variants {
		for _, par := range []int{1, 8} {
			opts := v.opts
			opts.Parallelism = par
			opts.Engine = core.EngineBitset
			bitRes, err := core.Run(td.Meas, opts)
			if err != nil {
				t.Fatalf("%s %s par=%d: bitset engine: %v", label, v.name, par, err)
			}
			opts.Engine = core.EngineMap
			mapRes, err := core.Run(td.Meas, opts)
			if err != nil {
				t.Fatalf("%s %s par=%d: map engine: %v", label, v.name, par, err)
			}
			var bb, mb bytes.Buffer
			if err := bitRes.Wire(v.name).Encode(&bb); err != nil {
				t.Fatal(err)
			}
			if err := mapRes.Wire(v.name).Encode(&mb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bb.Bytes(), mb.Bytes()) {
				t.Fatalf("%s %s par=%d: engines diverge\nbitset:\n%s\nmap:\n%s",
					label, v.name, par, bb.String(), mb.String())
			}
		}
	}
}

// runEngineEquivTrials drives `trials` impactful randomized fault trials
// through the engine diff. withBlocked additionally exercises masked
// traceroutes and partial LG coverage on half the trials.
func runEngineEquivTrials(t *testing.T, env *Env, asx topology.ASN, seed int64, trials int, withBlocked bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	done, tries := 0, 0
	maxTries := trials * 20
	for done < trials && tries < maxTries {
		tries++
		f, ok := sampleEquivFault(env, rng)
		if !ok {
			t.Fatal("no injectable fault on this topology")
		}
		var blocked, lgAvail map[topology.ASN]bool
		if withBlocked && rng.Intn(2) == 0 {
			blocked = sampleBlocked(0.34)(env, asx, rng)
			lgAvail = sampleLGAvail(0.8)(env, asx, rng)
		}
		td, err := env.RunTrial(f, asx, blocked, lgAvail)
		if err == ErrNoImpact {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		done++
		engineDiffTrial(t, td, fmt.Sprintf("seed %d trial %d", seed, done))
	}
	if done < trials {
		t.Fatalf("only %d/%d impactful trials in %d tries", done, trials, tries)
	}
}

func TestEngineEquivalenceFig2(t *testing.T) {
	f := topology.BuildFig2()
	env := equivEnv(t, f.Topo, []topology.RouterID{f.S1, f.S2, f.S3})
	runEngineEquivTrials(t, env, f.ASX, 42, 100, true)
}

func TestEngineEquivalenceFig1(t *testing.T) {
	f := topology.BuildFig1()
	env := equivEnv(t, f.Topo, []topology.RouterID{f.S1, f.S2, f.S3})
	runEngineEquivTrials(t, env, 1, 7, 60, false)
}

func TestEngineEquivalenceResearch(t *testing.T) {
	if testing.Short() {
		t.Skip("research-topology trials in -short mode")
	}
	cfg := topology.ResearchConfig{
		NumTier2:            4,
		NumStubs:            12,
		Tier2Routers:        5,
		Tier2MultihomedFrac: 0.5,
		StubMultihomedFrac:  0.25,
		StubsOnCoreFrac:     0.2,
		Seed:                3,
	}
	res, err := topology.GenerateResearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sensors := []topology.RouterID{
		res.Topo.AS(res.Stubs[0]).Routers[0],
		res.Topo.AS(res.Stubs[1]).Routers[0],
		res.Topo.AS(res.Stubs[2]).Routers[0],
		res.Topo.AS(res.Stubs[3]).Routers[0],
	}
	env, err := NewEnv(res, sensors)
	if err != nil {
		t.Fatal(err)
	}
	runEngineEquivTrials(t, env, res.Cores[0], 99, 48, true)
}
