// Package experiment reproduces the paper's evaluation (§4–§5): it places
// sensors on generated research-Internet topologies, injects link failures,
// router failures and BGP misconfigurations, adapts the simulator's
// measurements into the diagnosis types, runs the algorithm variants and
// collects the figures' metrics.
package experiment

import (
	"fmt"
	"sort"

	"netdiag/internal/bgp"
	"netdiag/internal/core"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// ToMeasurements converts the pre- and post-failure meshes into the
// diagnosis input. Unidentified hops get globally unique placeholder node
// names (two stars on different paths can never be assumed identical).
// Hop ASes are taken from the mesh (the simulator's ground truth, which in
// this simulation coincides with what IP-to-AS mapping yields — see
// ToMeasurementsMapped and internal/ip2as).
func ToMeasurements(before, after *probe.Mesh) *core.Measurements {
	return ToMeasurementsMapped(before, after, nil)
}

// ToMeasurementsMapped is ToMeasurements with an explicit IP-to-AS mapper:
// identified hop ASes are derived by looking the hop address up, the way a
// real troubleshooter maps traceroute output to ASes (§3.1). Hops whose
// address the mapper cannot resolve become unidentified. A nil mapper uses
// the mesh's own AS fields.
func ToMeasurementsMapped(before, after *probe.Mesh, lookup func(addr string) (topology.ASN, bool)) *core.Measurements {
	m := &core.Measurements{NumSensors: len(before.Sensors)}
	m.Before = meshPaths(before, "b", lookup)
	m.After = meshPaths(after, "a", lookup)
	return m
}

func meshPaths(mesh *probe.Mesh, tag string, lookup func(string) (topology.ASN, bool)) []*core.TracePath {
	var out []*core.TracePath
	for i := range mesh.Paths {
		for j, p := range mesh.Paths[i] {
			if p == nil {
				continue
			}
			tp := &core.TracePath{SrcSensor: i, DstSensor: j, OK: p.OK}
			for k, h := range p.Hops {
				as, known := h.AS, true
				if lookup != nil && !h.Unidentified {
					as, known = lookup(h.Addr)
				}
				if h.Unidentified || !known {
					tp.Hops = append(tp.Hops, core.Hop{
						Node:         core.Node(fmt.Sprintf("*%s:%d:%d:%d", tag, i, j, k)),
						Unidentified: true,
					})
					continue
				}
				tp.Hops = append(tp.Hops, core.Hop{Node: core.Node(h.Addr), AS: as})
			}
			out = append(out, tp)
		}
	}
	return out
}

// ProbedLinks extracts the directed physical probed-link universe E from
// the unmasked pre-failure mesh.
func ProbedLinks(topo *topology.Topology, mesh *probe.Mesh) []core.Link {
	set := map[core.Link]bool{}
	for i := range mesh.Paths {
		for _, p := range mesh.Paths[i] {
			if p == nil {
				continue
			}
			for k := 0; k+1 < len(p.Hops); k++ {
				a, b := p.Hops[k], p.Hops[k+1]
				set[core.Link{From: core.Node(a.Addr), To: core.Node(b.Addr)}] = true
			}
		}
	}
	out := make([]core.Link, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// directedLink renders a physical link as a core.Link in a direction.
func directedLink(topo *topology.Topology, from, to topology.RouterID) core.Link {
	return core.Link{
		From: core.Node(topo.Router(from).Addr),
		To:   core.Node(topo.Router(to).Addr),
	}
}

// AdaptWithdrawals converts simulator withdrawals into diagnosis
// withdrawals, resolving each withdrawn prefix to the sensors it covers.
func AdaptWithdrawals(topo *topology.Topology, ws []netsim.Withdrawal,
	sensorASes []topology.ASN) []core.Withdrawal {
	byPrefix := map[bgp.Prefix][]int{}
	for i, as := range sensorASes {
		byPrefix[bgp.PrefixFor(as)] = append(byPrefix[bgp.PrefixFor(as)], i)
	}
	var out []core.Withdrawal
	for _, w := range ws {
		dsts := byPrefix[w.Prefix]
		if len(dsts) == 0 {
			continue
		}
		out = append(out, core.Withdrawal{
			At:         core.Node(topo.Router(w.At).Addr),
			From:       core.Node(topo.Router(w.From).Addr),
			DstSensors: dsts,
		})
	}
	return out
}

// AdaptIGPDowns renders AS-X's failed intra-AS links as directed diagnosis
// links (both directions).
func AdaptIGPDowns(n *netsim.Network, asx topology.ASN) []core.Link {
	var out []core.Link
	topo := n.Topology()
	for _, d := range n.IGPLinkDowns(asx) {
		l := topo.Link(d.Link)
		out = append(out,
			directedLink(topo, l.A, l.B),
			directedLink(topo, l.B, l.A),
		)
	}
	return out
}
