package lookingglass

import (
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/igp"
	"netdiag/internal/topology"
)

func converge(t *testing.T, f *topology.Fig2, isUp func(topology.LinkID) bool) *bgp.State {
	t.Helper()
	if isUp == nil {
		isUp = func(topology.LinkID) bool { return true }
	}
	st, err := bgp.Compute(bgp.Config{
		Topo:     f.Topo,
		IGP:      igp.New(f.Topo, isUp),
		IsLinkUp: isUp,
		Origins: map[bgp.Prefix]topology.ASN{
			bgp.PrefixFor(f.ASA): f.ASA,
			bgp.PrefixFor(f.ASB): f.ASB,
			bgp.PrefixFor(f.ASC): f.ASC,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRegistryASPath(t *testing.T) {
	f := topology.BuildFig2()
	st := converge(t, f, nil)
	prefixes := []bgp.Prefix{bgp.PrefixFor(f.ASA), bgp.PrefixFor(f.ASB), bgp.PrefixFor(f.ASC)}
	reg := New(st, nil, nil, f.ASX, prefixes)

	// AS-A's Looking Glass reports A X Y B towards sensor 1 (in B).
	path, ok := reg.ASPath(f.ASA, 1)
	if !ok {
		t.Fatal("no path from A to sensor 1")
	}
	want := []topology.ASN{f.ASA, f.ASX, f.ASY, f.ASB}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestRegistryAvailability(t *testing.T) {
	f := topology.BuildFig2()
	st := converge(t, f, nil)
	prefixes := []bgp.Prefix{bgp.PrefixFor(f.ASA)}

	// nil availability = everyone available.
	reg := New(st, nil, nil, f.ASX, prefixes)
	if !reg.Available(f.ASY) {
		t.Fatal("nil availability should mean all ASes available")
	}

	// Restricted availability: only AS-B; AS-X remains implicitly
	// available (its own BGP tables).
	reg = New(st, nil, map[topology.ASN]bool{f.ASB: true}, f.ASX, prefixes)
	if reg.Available(f.ASY) {
		t.Fatal("AS-Y should be unavailable")
	}
	if !reg.Available(f.ASB) {
		t.Fatal("AS-B should be available")
	}
	if !reg.Available(f.ASX) {
		t.Fatal("the troubleshooter's own AS must always be available")
	}
	if _, ok := reg.ASPath(f.ASY, 0); ok {
		t.Fatal("unavailable LG must refuse queries")
	}
}

func TestRegistryFallback(t *testing.T) {
	f := topology.BuildFig2()
	before := converge(t, f, nil)
	// Fail the only Y-B link: post-failure, nobody outside B has a route
	// to B's prefix.
	l, _ := f.Topo.LinkBetween(f.R["y4"], f.R["b1"])
	after := converge(t, f, func(id topology.LinkID) bool { return id != l.ID })
	prefixes := []bgp.Prefix{bgp.PrefixFor(f.ASA), bgp.PrefixFor(f.ASB)}

	noFallback := New(after, nil, nil, f.ASX, prefixes)
	if _, ok := noFallback.ASPath(f.ASA, 1); ok {
		t.Fatal("post-failure state has no route to B; query should fail without fallback")
	}
	withFallback := New(after, before, nil, f.ASX, prefixes)
	path, ok := withFallback.ASPath(f.ASA, 1)
	if !ok || len(path) == 0 {
		t.Fatal("fallback state should answer the query")
	}
}

func TestRegistryBadSensorIndex(t *testing.T) {
	f := topology.BuildFig2()
	st := converge(t, f, nil)
	reg := New(st, nil, nil, f.ASX, []bgp.Prefix{bgp.PrefixFor(f.ASA)})
	if _, ok := reg.ASPath(f.ASA, 5); ok {
		t.Fatal("out-of-range sensor index must fail")
	}
	if _, ok := reg.ASPath(f.ASA, -1); ok {
		t.Fatal("negative sensor index must fail")
	}
}
