// Package lookingglass simulates the Looking Glass servers of §3.4: per-AS
// query endpoints that report the AS path from their AS towards a prefix,
// answered from the simulated BGP routing state. The troubleshooter's own
// AS is always queryable — it consults its own BGP tables, which the paper
// uses for mapping downstream unidentified hops.
package lookingglass

import (
	"netdiag/internal/bgp"
	"netdiag/internal/core"
	"netdiag/internal/topology"
)

// Registry implements core.LookingGlass over converged BGP states. Queries
// are served from the post-failure state when it still has a route and fall
// back to the pre-failure state otherwise (a real operator would similarly
// consult a route collector's recent history when the live LG has lost the
// route; only the AS-level alignment matters to the algorithm).
type Registry struct {
	primary   *bgp.State
	fallback  *bgp.State
	available map[topology.ASN]bool
	asx       topology.ASN
	// sensorPrefix[i] is the prefix covering sensor i.
	sensorPrefix []bgp.Prefix
}

var _ core.LookingGlass = (*Registry)(nil)

// New builds a registry. available lists the ASes operating Looking
// Glasses (nil means every AS does); asx is always treated as available.
// primary is the current (post-failure) state; fallback may be nil.
func New(primary, fallback *bgp.State, available map[topology.ASN]bool, asx topology.ASN, sensorPrefixes []bgp.Prefix) *Registry {
	return &Registry{
		primary:      primary,
		fallback:     fallback,
		available:    available,
		asx:          asx,
		sensorPrefix: sensorPrefixes,
	}
}

// Available reports whether the AS can be queried.
func (r *Registry) Available(as topology.ASN) bool {
	if as == r.asx {
		return true
	}
	if r.available == nil {
		return true
	}
	return r.available[as]
}

// ASPath returns the AS path from an AS towards the prefix of a sensor.
func (r *Registry) ASPath(from topology.ASN, dstSensor int) ([]topology.ASN, bool) {
	if !r.Available(from) || dstSensor < 0 || dstSensor >= len(r.sensorPrefix) {
		return nil, false
	}
	p := r.sensorPrefix[dstSensor]
	if path, ok := r.primary.ASPathFrom(from, p); ok {
		return path, true
	}
	if r.fallback != nil {
		if path, ok := r.fallback.ASPathFrom(from, p); ok {
			return path, true
		}
	}
	return nil, false
}
