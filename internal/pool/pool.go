// Package pool provides the bounded worker pool used by the parallel
// simulation and diagnosis pipeline. It is a small errgroup-style helper
// over the standard library only: tasks are identified by index, results
// are written to index-addressed slots by the callers, and the first error
// (in index order, so runs are deterministic) cancels the remaining work.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Size resolves a requested parallelism level: n > 0 is taken as-is, and
// anything else defaults to runtime.GOMAXPROCS(0).
func Size(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// and waits for completion. With workers <= 1 it degrades to a plain
// sequential loop, reproducing exactly the single-threaded behavior.
//
// Error handling is deterministic: every task's error is recorded in its
// slot, and the lowest-index error is returned — regardless of which
// worker hit it first. After any task fails, or ctx is cancelled, no new
// tasks are started (in-flight ones run to completion). A nil ctx is
// treated as context.Background().
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
