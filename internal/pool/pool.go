// Package pool provides the bounded worker pool used by the parallel
// simulation and diagnosis pipeline. It is a small errgroup-style helper
// over the standard library only: tasks are identified by index, results
// are written to index-addressed slots by the callers, and the first error
// (in index order, so runs are deterministic) cancels the remaining work.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netdiag/internal/telemetry"
)

// Size resolves a requested parallelism level: n > 0 is taken as-is, and
// anything else defaults to runtime.GOMAXPROCS(0).
func Size(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Metrics instruments the pool layer: how many tasks were started and
// completed, and how long each task waited between submission (the
// ForEachM call) and the moment a worker picked it up. A nil *Metrics
// disables instrumentation entirely — no clock reads, no atomics.
type Metrics struct {
	Started   *telemetry.Counter
	Completed *telemetry.Counter
	QueueWait *telemetry.Histogram
}

// NewMetrics returns the pool metrics of a registry (get-or-create under
// the canonical "pool.*" names, so every pool user of one registry shares
// the same counters). Returns nil on a nil registry.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Started:   r.Counter("pool.tasks_started"),
		Completed: r.Counter("pool.tasks_completed"),
		QueueWait: r.Histogram("pool.queue_wait_ns", telemetry.DurationBuckets),
	}
}

// taskStarted records a pickup; enqueued is the ForEachM submission time.
func (m *Metrics) taskStarted(enqueued time.Time) {
	if m == nil {
		return
	}
	m.Started.Inc()
	m.QueueWait.Observe(int64(telemetry.Since(enqueued)))
}

func (m *Metrics) taskCompleted() {
	if m == nil {
		return
	}
	m.Completed.Inc()
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// and waits for completion. With workers <= 1 it degrades to a plain
// sequential loop, reproducing exactly the single-threaded behavior.
//
// Error handling is deterministic: every task's error is recorded in its
// slot, and the lowest-index error is returned — regardless of which
// worker hit it first. After any task fails, or ctx is cancelled, no new
// tasks are started (in-flight ones run to completion). A nil ctx is
// treated as context.Background().
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachM(ctx, workers, n, fn, nil)
}

// ForEachM is ForEach with pool telemetry: each task pickup bumps
// m.Started and observes its queue wait, each finished task bumps
// m.Completed. A nil m reproduces ForEach exactly, with zero overhead.
func ForEachM(ctx context.Context, workers, n int, fn func(i int) error, m *Metrics) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var enqueued time.Time
	if m != nil {
		enqueued = telemetry.Now()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			m.taskStarted(enqueued)
			if err := fn(i); err != nil {
				return err
			}
			m.taskCompleted()
		}
		return nil
	}
	return forEachParallel(ctx, workers, n, fn, m, enqueued)
}

// forEachParallel is the workers > 1 body of ForEachM. It lives in its own
// function so the goroutine closure's captures don't force the sequential
// fast path's locals onto the heap (the disabled sequential path is
// allocation-free, and pool_test pins that).
func forEachParallel(ctx context.Context, workers, n int, fn func(i int) error, m *Metrics, enqueued time.Time) error {
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				m.taskStarted(enqueued)
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					m.taskCompleted()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
