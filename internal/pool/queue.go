package pool

import (
	"sync"

	"netdiag/internal/telemetry"
)

// Queue is the long-running counterpart of ForEach: a bounded admission
// queue drained by a fixed set of worker goroutines. It is what a serving
// process puts in front of the simulate→probe→diagnose pipeline — the
// queue capacity bounds memory and tail latency, and an over-capacity
// submission is refused immediately (load shedding) instead of piling up.
//
// A Queue is safe for concurrent TrySubmit calls. Close stops admission,
// lets the already-queued jobs drain, and waits for the workers to exit.
type Queue struct {
	mu     sync.RWMutex
	jobs   chan func()
	closed bool
	wg     sync.WaitGroup

	depth     *telemetry.Gauge
	submitted *telemetry.Counter
	executed  *telemetry.Counter
	shed      *telemetry.Counter
	waitNs    *telemetry.Histogram
}

// NewQueue starts a queue with the given worker count (<= 0 selects
// runtime.GOMAXPROCS(0)) and queue capacity (jobs waiting beyond the ones
// executing; < 0 is treated as 0, meaning a submission only succeeds when
// a worker is free to take it promptly). A non-nil registry receives the
// queue metrics: the "pool.queue_depth" gauge and the
// "pool.queue_{submitted,executed,shed}" counters.
func NewQueue(workers, capacity int, r *telemetry.Registry) *Queue {
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{jobs: make(chan func(), capacity)}
	if r != nil {
		q.depth = r.Gauge("pool.queue_depth")
		q.submitted = r.Counter("pool.queue_submitted")
		q.executed = r.Counter("pool.queue_executed")
		q.shed = r.Counter("pool.queue_shed")
		q.waitNs = r.Histogram("pool.queue_wait_ns", telemetry.DurationBuckets)
	}
	for w := 0; w < Size(workers); w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for fn := range q.jobs {
		q.depth.Add(-1)
		fn()
		q.executed.Inc()
	}
}

// TrySubmit offers fn to the queue. It returns false — without blocking —
// when the queue is at capacity or closed; the caller sheds the request
// (HTTP 429 in ndserve). On true, fn will run on a worker goroutine.
func (q *Queue) TrySubmit(fn func()) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.shed.Inc()
		return false
	}
	if q.waitNs != nil {
		// Wrap only when instrumented: the uninstrumented queue keeps its
		// closure-free admission path. The observed wait is admission to
		// job start — the "pool.queue_wait_ns" histogram (exposed in
		// seconds, see telemetry/units.go).
		inner := fn
		t0 := telemetry.Now()
		fn = func() {
			q.waitNs.Observe(telemetry.Since(t0).Nanoseconds())
			inner()
		}
	}
	select {
	case q.jobs <- fn:
		q.depth.Add(1)
		q.submitted.Inc()
		return true
	default:
		q.shed.Inc()
		return false
	}
}

// Depth returns the number of jobs currently waiting in the queue (not
// counting jobs already executing on workers).
func (q *Queue) Depth() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.jobs)
}

// Close stops admission (subsequent TrySubmit returns false), drains the
// already-accepted jobs and waits for every worker to finish. It is
// idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
