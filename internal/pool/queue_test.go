package pool

import (
	"sync"
	"sync/atomic"
	"testing"

	"netdiag/internal/telemetry"
)

func TestQueueRunsJobs(t *testing.T) {
	q := NewQueue(2, 8, nil)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		for !q.TrySubmit(func() { ran.Add(1); wg.Done() }) {
			// Capacity 8 with 2 workers: spin until a slot frees up.
		}
	}
	wg.Wait()
	q.Close()
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d jobs, want 20", got)
	}
}

func TestQueueShedsWhenFull(t *testing.T) {
	reg := telemetry.New()
	q := NewQueue(1, 1, reg)
	gate := make(chan struct{})
	done := make(chan struct{})
	// Occupy the single worker...
	if !q.TrySubmit(func() { <-gate; close(done) }) {
		t.Fatal("first submit refused")
	}
	// ...and fill the single queue slot. The worker may not have picked the
	// first job up yet, so allow one retry round for the handoff.
	var queued bool
	for i := 0; i < 1_000_000 && !queued; i++ {
		queued = q.TrySubmit(func() {})
	}
	if !queued {
		t.Fatal("could not fill the queue slot")
	}
	// Worker busy + queue full: the next submission must shed.
	shedBefore := reg.Snapshot().Counters["pool.queue_shed"]
	if q.TrySubmit(func() {}) {
		t.Fatal("submit succeeded on a full queue")
	}
	if got := reg.Snapshot().Counters["pool.queue_shed"]; got <= shedBefore {
		t.Fatalf("pool.queue_shed = %d, want > %d", got, shedBefore)
	}
	close(gate)
	<-done
	q.Close()
}

func TestQueueCloseStopsAdmissionAndDrains(t *testing.T) {
	reg := telemetry.New()
	q := NewQueue(2, 4, reg)
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		if !q.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("submit %d refused", i)
		}
	}
	q.Close()
	if got := ran.Load(); got != 4 {
		t.Fatalf("accepted jobs ran %d times after Close, want 4 (drain)", got)
	}
	if q.TrySubmit(func() {}) {
		t.Fatal("submit succeeded after Close")
	}
	q.Close() // idempotent
	snap := reg.Snapshot()
	if snap.Counters["pool.queue_submitted"] != 4 || snap.Counters["pool.queue_executed"] != 4 {
		t.Fatalf("counters = %v, want submitted=executed=4", snap.Counters)
	}
	if snap.Gauges["pool.queue_depth"] != 0 {
		t.Fatalf("queue depth gauge = %d after drain, want 0", snap.Gauges["pool.queue_depth"])
	}
}
