package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netdiag/internal/telemetry"
)

func TestForEachRunsAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Run many times: whichever worker hits its error first, the reported
	// error must always be the lowest-index one actually reached. Task 3
	// always fails, so an error is guaranteed; any later failure (17) must
	// never win over it.
	for rep := 0; rep < 50; rep++ {
		err := ForEach(context.Background(), 4, 8, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("got %v", err)
		}
		if errors.Is(err, errB) {
			// Only acceptable if task 3 never ran... but task 3 always
			// runs before the pool drains with 4 workers over 8 tasks
			// unless a failure stopped scheduling first. Task 7 failing
			// can stop task 3 from being scheduled, so errB is legal only
			// when task 3 did not run. We can't observe that here without
			// extra state, so just accept both; the deterministic
			// guarantee is exercised below with a single worker.
			continue
		}
	}
	// Sequential: strictly the first error in index order.
	err := ForEach(context.Background(), 1, 8, func(i int) error {
		if i == 3 {
			return errA
		}
		if i == 7 {
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("sequential: got %v, want %v", err, errA)
	}
}

func TestForEachStopsSchedulingAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	_ = ForEach(context.Background(), 2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if got := ran.Load(); got == 10_000 {
		t.Fatal("pool kept scheduling after a failure")
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 100, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSize(t *testing.T) {
	if Size(4) != 4 {
		t.Fatal("Size(4)")
	}
	if Size(0) < 1 || Size(-3) < 1 {
		t.Fatal("Size must default to at least 1")
	}
}

// TestForEachCancelMidWave cancels the context while a wave is in flight:
// ForEach must return ctx.Err(), in-flight tasks run to completion, and no
// new tasks start after the cancellation is observed.
func TestForEachCancelMidWave(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	release := make(chan struct{})
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 4, n, func(i int) error {
			started.Add(1)
			<-release // block the first wave until the test cancels
			return nil
		})
	}()

	// Wait until some tasks are in flight, then cancel and release them.
	for started.Load() == 0 {
	}
	cancel()
	close(release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return promptly after cancellation")
	}
	if got := started.Load(); got == n {
		t.Fatal("pool kept scheduling every task after cancellation")
	}
}

// TestSizeDefault pins the documented contract: any non-positive request
// resolves to runtime.GOMAXPROCS(0).
func TestSizeDefault(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Size(n); got != want {
			t.Fatalf("Size(%d) = %d, want GOMAXPROCS(0) = %d", n, got, want)
		}
	}
	if got := Size(7); got != 7 {
		t.Fatalf("Size(7) = %d, want 7", got)
	}
}

// TestForEachMMetrics checks the instrumented pool counts every task once
// at each parallelism level, and that queue waits are observed.
func TestForEachMMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := telemetry.New()
		m := NewMetrics(r)
		const n = 37
		if err := ForEachM(context.Background(), workers, n, func(i int) error { return nil }, m); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := m.Started.Value(); got != n {
			t.Fatalf("workers=%d: started = %d, want %d", workers, got, n)
		}
		if got := m.Completed.Value(); got != n {
			t.Fatalf("workers=%d: completed = %d, want %d", workers, got, n)
		}
		if got := m.QueueWait.Count(); got != n {
			t.Fatalf("workers=%d: queue-wait observations = %d, want %d", workers, got, n)
		}
	}
	if NewMetrics(nil) != nil {
		t.Fatal("NewMetrics(nil) must be nil")
	}
}

// TestForEachMSequentialDisabledAllocs guards the no-op path of the
// instrumented pool: sequential execution without metrics must not
// allocate at all.
func TestForEachMSequentialDisabledAllocs(t *testing.T) {
	fn := func(i int) error { return nil }
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(100, func() {
		if err := ForEachM(ctx, 1, 64, fn, nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("disabled sequential ForEachM allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkForEachMDisabled(b *testing.B) {
	fn := func(i int) error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ForEachM(context.Background(), 1, 1024, fn, nil)
	}
}

func BenchmarkForEachMInstrumented(b *testing.B) {
	m := NewMetrics(telemetry.New())
	fn := func(i int) error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ForEachM(context.Background(), 1, 1024, fn, m)
	}
}
