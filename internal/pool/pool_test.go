package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Run many times: whichever worker hits its error first, the reported
	// error must always be the lowest-index one actually reached. Task 3
	// always fails, so an error is guaranteed; any later failure (17) must
	// never win over it.
	for rep := 0; rep < 50; rep++ {
		err := ForEach(context.Background(), 4, 8, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("got %v", err)
		}
		if errors.Is(err, errB) {
			// Only acceptable if task 3 never ran... but task 3 always
			// runs before the pool drains with 4 workers over 8 tasks
			// unless a failure stopped scheduling first. Task 7 failing
			// can stop task 3 from being scheduled, so errB is legal only
			// when task 3 did not run. We can't observe that here without
			// extra state, so just accept both; the deterministic
			// guarantee is exercised below with a single worker.
			continue
		}
	}
	// Sequential: strictly the first error in index order.
	err := ForEach(context.Background(), 1, 8, func(i int) error {
		if i == 3 {
			return errA
		}
		if i == 7 {
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("sequential: got %v, want %v", err, errA)
	}
}

func TestForEachStopsSchedulingAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	_ = ForEach(context.Background(), 2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if got := ran.Load(); got == 10_000 {
		t.Fatal("pool kept scheduling after a failure")
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 100, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSize(t *testing.T) {
	if Size(4) != 4 {
		t.Fatal("Size(4)")
	}
	if Size(0) < 1 || Size(-3) < 1 {
		t.Fatal("Size must default to at least 1")
	}
}
