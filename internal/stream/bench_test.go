package stream

import (
	"strings"
	"testing"

	"netdiag/internal/telemetry"
)

// The stream benchmarks feed the benchjson "stream" section: NDJSON
// ingest throughput for both endpoints (records/s), the full
// event-loop cost of one withdrawal -> correlation -> diagnosis cycle,
// and the event-close-to-diagnosis latency plus dirty-pair fraction as
// custom metrics.

// benchProcessor builds a fresh fig2 processor over its own registry.
func benchProcessor(b *testing.B, reg *telemetry.Registry) *Processor {
	b.Helper()
	view, _ := fig2View(b, 1)
	return NewProcessor(Config{
		View:      view,
		Diagnose:  stubDiagnoser(),
		Telemetry: reg,
	})
}

// benchTraceBody renders nProbes successful probes (the steady-state
// fast path: hop lines accumulate, the done line lands a watermark).
func benchTraceBody(b *testing.B, nProbes int) (body string, records int) {
	b.Helper()
	view, f2 := fig2View(b, 1)
	var lines []string
	for i := 0; i < nProbes; i++ {
		id := "p" + string(rune('a'+i%26)) + "-" + itoa(i)
		ts := int64(1000 + i)
		lines = append(lines, traceLines(f2.Topo, view.Router, id, ts, "s1", "s2", true, "a1", "a2", "x1")...)
	}
	return strings.Join(lines, "\n") + "\n", len(lines)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// BenchmarkIngestTraceroute measures NDJSON ingest throughput of the
// traceroute endpoint on successful probes.
func BenchmarkIngestTraceroute(b *testing.B) {
	body, records := benchTraceBody(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchProcessor(b, telemetry.New())
		b.StartTimer()
		if _, rejected, firstErr, ioErr := p.IngestTraceroute(strings.NewReader(body)); rejected != 0 || ioErr != nil {
			b.Fatalf("rejected=%d firstErr=%v ioErr=%v", rejected, firstErr, ioErr)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkIngestBGP measures the BGP endpoint with real routing churn:
// each withdrawal/announcement toggles the fig2 backup link, forcing a
// delta reconvergence and a dirty-pair re-probe per record.
func BenchmarkIngestBGP(b *testing.B) {
	const toggles = 32
	var lines []string
	for i := 0; i < toggles; i++ {
		typ := BGPWithdrawal
		if i%2 == 1 {
			typ = BGPAnnouncement
		}
		lines = append(lines, bgpLine(int64(1000+i*10000), typ, "y3", "y4"))
	}
	body := strings.Join(lines, "\n") + "\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchProcessor(b, telemetry.New())
		b.StartTimer()
		if _, rejected, firstErr, ioErr := p.IngestBGP(strings.NewReader(body)); rejected != 0 || ioErr != nil {
			b.Fatalf("rejected=%d firstErr=%v ioErr=%v", rejected, firstErr, ioErr)
		}
	}
	b.ReportMetric(float64(toggles)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkEventLoop runs one full streaming cycle — withdrawal,
// correlated failing trace, keepalive closing the event, stub
// diagnosis — and reports the event-close-to-diagnosis latency and
// dirty-pair fraction the cycle produced.
func BenchmarkEventLoop(b *testing.B) {
	reg := telemetry.New()
	view, f2 := fig2View(b, 1)
	failing := traceLines(f2.Topo, view.Router, "bench", 2000, "s1", "s2", false, "a1", "a2", "x1", "x2", "y1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchProcessor(b, reg)
		b.StartTimer()
		ingestBGP(b, p, bgpLine(1000, BGPWithdrawal, "y3", "y4"))
		ingestTrace(b, p, failing...)
		ingestBGP(b, p, bgpLine(20000, BGPKeepalive, "", ""))
		if evs := quiesce(b, p); len(evs) == 0 {
			b.Fatal("no event produced")
		}
	}
	lag := reg.Histogram("stream.event_lag_ns", telemetry.DurationBuckets)
	if n := lag.Count(); n > 0 {
		b.ReportMetric(float64(lag.Sum())/float64(n), "event-lag-ns")
	}
	reprobed := reg.Counter("stream.pairs_reprobed").Value()
	skipped := reg.Counter("stream.pairs_skipped").Value()
	if total := reprobed + skipped; total > 0 {
		b.ReportMetric(float64(reprobed)/float64(total), "dirty-pair-fraction")
	}
}
