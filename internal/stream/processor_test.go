package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"netdiag/internal/bgp"
	"netdiag/internal/core"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// fig2View converges the Figure 2 scenario into a processor view,
// mirroring the server snapshot setup.
func fig2View(t testing.TB, workers int) (View, *topology.Fig2) {
	t.Helper()
	f2 := topology.BuildFig2()
	sensors := []topology.RouterID{f2.S1, f2.S2, f2.S3}
	seen := map[topology.ASN]bool{}
	var origins []topology.ASN
	prefixes := make([]bgp.Prefix, len(sensors))
	for i, s := range sensors {
		as := f2.Topo.RouterAS(s)
		prefixes[i] = bgp.PrefixFor(as)
		if !seen[as] {
			seen[as] = true
			origins = append(origins, as)
		}
	}
	n, err := netsim.New(f2.Topo, origins)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]topology.RouterID{}
	for i := 0; i < f2.Topo.NumRouters(); i++ {
		id := topology.RouterID(i)
		byName[f2.Topo.Router(id).Name] = id
	}
	return View{
		Scenario: "fig2",
		Topo:     f2.Topo,
		Sensors:  sensors,
		Prefixes: prefixes,
		Baseline: n.Mesh(sensors),
		Net:      n.Fork(),
		Router: func(ref string) (topology.RouterID, bool) {
			id, ok := byName[ref]
			return id, ok
		},
		Workers: workers,
	}, f2
}

// stubDiagnoser returns a deterministic body derived from the T+ mesh,
// so the test can tell which mesh snapshot a diagnosis saw.
func stubDiagnoser() Diagnoser {
	return func(id string, tminus, tplus *probe.Mesh) ([]byte, bool, error) {
		failed := 0
		for i := range tplus.Paths {
			for j, p := range tplus.Paths[i] {
				if i != j && p != nil && !p.OK {
					failed++
				}
			}
		}
		res := &core.WireResult{Algorithm: "stub", Unexplained: failed, Hypothesis: []core.WireHyp{}}
		var buf bytes.Buffer
		if err := res.Encode(&buf); err != nil {
			return nil, false, err
		}
		return buf.Bytes(), false, nil
	}
}

// ingest feeds one NDJSON body to the endpoint and fails the test on
// any rejected line.
func ingest(t testing.TB, fn func(r *strings.Reader) (int, int, error, error), lines ...string) {
	t.Helper()
	_, rejected, firstErr, ioErr := fn(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if ioErr != nil {
		t.Fatal(ioErr)
	}
	if rejected != 0 {
		t.Fatalf("%d lines rejected: %v", rejected, firstErr)
	}
}

func ingestTrace(t testing.TB, p *Processor, lines ...string) {
	t.Helper()
	ingest(t, func(r *strings.Reader) (int, int, error, error) { return p.IngestTraceroute(r) }, lines...)
}

func ingestBGP(t testing.TB, p *Processor, lines ...string) {
	t.Helper()
	ingest(t, func(r *strings.Reader) (int, int, error, error) { return p.IngestBGP(r) }, lines...)
}

// quiesce polls until no event is open, diagnosing or pending.
func quiesce(t testing.TB, p *Processor) []*core.WireEvent {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		evs := p.Events()
		settled := true
		for _, ev := range evs {
			if ev.Status != core.EventDiagnosed && ev.Status != core.EventFailed {
				settled = false
			}
		}
		if settled {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("events did not settle: %+v", evs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func renderEvents(t *testing.T, evs []*core.WireEvent) string {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeWireEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// traceLines renders the NDJSON lines of one streamed probe over the
// given hop router names (resolved to their topology addresses).
func traceLines(topo *topology.Topology, byName func(string) (topology.RouterID, bool), probeID string, ts int64, src, dst string, ok bool, hops ...string) []string {
	var lines []string
	for i, h := range hops {
		addr := h
		if id, found := byName(h); found {
			addr = topo.Router(id).Addr
		}
		lines = append(lines, fmt.Sprintf(`{"probe":%q,"ts":%d,"src":%q,"dst":%q,"hop":{"ttl":%d,"addr":%q,"rtt_ms":%d.5}}`,
			probeID, ts, src, dst, i+1, addr, (i+1)*10))
	}
	lines = append(lines, fmt.Sprintf(`{"probe":%q,"ts":%d,"src":%q,"dst":%q,"done":true,"ok":%v}`,
		probeID, ts, src, dst, ok))
	return lines
}

func bgpLine(ts int64, typ, a, b string) string {
	if typ == BGPKeepalive {
		return fmt.Sprintf(`{"ts":%d,"type":"keepalive"}`, ts)
	}
	return fmt.Sprintf(`{"ts":%d,"type":%q,"a":%q,"b":%q}`, ts, typ, a, b)
}

// TestWithdrawalEvent walks the happy path: a backup-link withdrawal
// dirties a minority of pairs, a correlated failing traceroute joins the
// same event, a keepalive closes it, and the diagnosis lands.
func TestWithdrawalEvent(t *testing.T) {
	reg := telemetry.New()
	view, _ := fig2View(t, 2)
	p := NewProcessor(Config{View: view, Diagnose: stubDiagnoser(), Telemetry: reg})

	ingestBGP(t, p, bgpLine(1000, BGPWithdrawal, "y3", "y4"))
	// A failing external probe whose last hop is in AS-Y correlates via
	// the shared suspect AS.
	ingestTrace(t, p, traceLines(view.Topo, view.Router, "pr-1", 1500, "s1", "s3", false, "a1", "a2", "x1", "x2", "y1", "y2")...)
	ingestBGP(t, p, bgpLine(20000, BGPKeepalive, "", ""))

	evs := quiesce(t, p)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1: %s", len(evs), renderEvents(t, evs))
	}
	ev := evs[0]
	if ev.Status != core.EventDiagnosed {
		t.Fatalf("event status %q, want diagnosed", ev.Status)
	}
	if len(ev.Observations) != 2 {
		t.Fatalf("got %d observations, want 2", len(ev.Observations))
	}
	if ev.Observations[0].Kind != "bgp" || ev.Observations[1].Kind != "traceroute" {
		t.Fatalf("observation kinds = %q, %q", ev.Observations[0].Kind, ev.Observations[1].Kind)
	}
	if ev.TraceID != ev.ID || !telemetry.ValidTraceID(ev.TraceID) {
		t.Fatalf("trace id %q does not mirror a valid event id %q", ev.TraceID, ev.ID)
	}
	if ev.Hypothesis == nil || ev.Hypothesis.Algorithm != "stub" {
		t.Fatalf("hypothesis not adopted: %+v", ev.Hypothesis)
	}

	// Dirty-pair pruning: the y3-y4 withdrawal must re-probe under half
	// of the 6 ordered pairs.
	re := reg.Counter("stream.pairs_reprobed").Value()
	sk := reg.Counter("stream.pairs_skipped").Value()
	if re+sk == 0 || 2*re >= re+sk {
		t.Fatalf("withdrawal re-probed %d/%d pairs, want < 50%%", re, re+sk)
	}
}

// TestSeparateEvents pins the correlation rule's negative side: trouble
// with disjoint suspect sets lands in separate events.
func TestSeparateEvents(t *testing.T) {
	view, _ := fig2View(t, 1)
	p := NewProcessor(Config{View: view, Diagnose: stubDiagnoser(), Telemetry: telemetry.New()})

	ingestBGP(t, p, bgpLine(1000, BGPWithdrawal, "y3", "y4"))
	// Last hop b1 is in AS-B: no shared suspect with the AS-Y withdrawal.
	ingestTrace(t, p, traceLines(view.Topo, view.Router, "pr-2", 1500, "s2", "s1", false, "b2", "b1")...)
	ingestBGP(t, p, bgpLine(20000, BGPKeepalive, "", ""))

	evs := quiesce(t, p)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %s", len(evs), renderEvents(t, evs))
	}
	if evs[0].ID == evs[1].ID {
		t.Fatal("distinct events share an ID")
	}
}

// TestNoopRecords pins the zero-work guarantees: a repeated withdrawal
// and a successful probe neither re-probe nor observe.
func TestNoopRecords(t *testing.T) {
	reg := telemetry.New()
	view, _ := fig2View(t, 1)
	p := NewProcessor(Config{View: view, Diagnose: stubDiagnoser(), Telemetry: reg})

	ingestBGP(t, p, bgpLine(1000, BGPWithdrawal, "y3", "y4"))
	reprobed := reg.Counter("stream.pairs_reprobed").Value()
	obs := reg.Counter("stream.observations").Value()

	// Same link withdrawn again: the fork already knows, so nothing
	// re-probes and no new observation joins the event.
	ingestBGP(t, p, bgpLine(1200, BGPWithdrawal, "y3", "y4"))
	// A successful probe is a watermark, not trouble.
	ingestTrace(t, p, traceLines(view.Topo, view.Router, "pr-3", 1300, "s1", "s2", true, "a1", "a2")...)

	if got := reg.Counter("stream.pairs_reprobed").Value(); got != reprobed {
		t.Fatalf("no-op records re-probed %d pairs", got-reprobed)
	}
	if got := reg.Counter("stream.observations").Value(); got != obs {
		t.Fatalf("no-op records produced %d observations", got-obs)
	}
	if got := reg.Counter("stream.noop_records").Value(); got != 1 {
		t.Fatalf("noop_records = %d, want 1", got)
	}
}

// TestAnnouncementRestores pins the restoration path: after a
// withdrawal, the matching announcement force-re-probes everything and
// the overlay returns to the baseline.
func TestAnnouncementRestores(t *testing.T) {
	reg := telemetry.New()
	view, _ := fig2View(t, 1)
	p := NewProcessor(Config{View: view, Diagnose: stubDiagnoser(), Telemetry: reg})

	ingestBGP(t, p,
		bgpLine(1000, BGPWithdrawal, "y4", "b1"),
		bgpLine(10000, BGPAnnouncement, "y4", "b1"),
		bgpLine(30000, BGPKeepalive, "", ""))

	cur := p.CurrentMesh()
	for i := range cur.Paths {
		for j, path := range cur.Paths[i] {
			if i == j {
				continue
			}
			base := view.Baseline.Paths[i][j]
			if path.OK != base.OK || len(path.Hops) != len(base.Hops) {
				t.Fatalf("pair %d->%d did not return to baseline after announcement", i, j)
			}
		}
	}
}

// TestDeterministicReplay is the tentpole contract at the processor
// level: the same records ingested in order, in reversed chunks (forcing
// reset-and-replay), and in random interleavings render byte-identical
// event listings after quiescence.
func TestDeterministicReplay(t *testing.T) {
	type chunk struct {
		bgp   bool
		lines []string
	}
	build := func(view View) []chunk {
		return []chunk{
			{bgp: true, lines: []string{bgpLine(1000, BGPWithdrawal, "y3", "y4")}},
			{bgp: false, lines: traceLines(view.Topo, view.Router, "pr-a", 1500, "s1", "s3", false, "a1", "a2", "x1", "x2", "y1", "y2")},
			{bgp: false, lines: traceLines(view.Topo, view.Router, "pr-b", 2500, "s2", "s1", false, "b2", "b1")},
			{bgp: true, lines: []string{bgpLine(9000, BGPAnnouncement, "y3", "y4")}},
			{bgp: true, lines: []string{bgpLine(40000, BGPKeepalive, "", "")}},
		}
	}
	run := func(t *testing.T, workers int, order []int) (string, *telemetry.Registry) {
		reg := telemetry.New()
		view, _ := fig2View(t, workers)
		p := NewProcessor(Config{View: view, Diagnose: stubDiagnoser(), Telemetry: reg})
		chunks := build(view)
		for _, i := range order {
			c := chunks[i]
			if c.bgp {
				ingestBGP(t, p, c.lines...)
			} else {
				ingestTrace(t, p, c.lines...)
			}
		}
		return renderEvents(t, quiesce(t, p)), reg
	}

	want, _ := run(t, 1, []int{0, 1, 2, 3, 4})
	reversed, reg := run(t, 2, []int{4, 3, 2, 1, 0})
	if reversed != want {
		t.Fatalf("reversed replay diverged:\n--- in-order ---\n%s--- reversed ---\n%s", want, reversed)
	}
	if reg.Counter("stream.sweep_resets").Value() == 0 {
		t.Fatal("reversed replay triggered no sweep resets")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		order := rng.Perm(5)
		got, _ := run(t, 1+trial%2, order)
		if got != want {
			t.Fatalf("replay order %v diverged:\n--- want ---\n%s--- got ---\n%s", order, want, got)
		}
	}
}

// TestPendingRetry pins the shed path: a diagnoser that sheds the first
// attempt parks the event pending, and a later listing retries it to
// completion.
func TestPendingRetry(t *testing.T) {
	view, _ := fig2View(t, 1)
	attempts := 0
	inner := stubDiagnoser()
	var p *Processor
	p = NewProcessor(Config{View: view, Telemetry: telemetry.New(),
		Diagnose: func(id string, tminus, tplus *probe.Mesh) ([]byte, bool, error) {
			attempts++
			if attempts == 1 {
				return nil, true, nil
			}
			return inner(id, tminus, tplus)
		}})

	ingestBGP(t, p, bgpLine(1000, BGPWithdrawal, "y3", "y4"), bgpLine(20000, BGPKeepalive, "", ""))
	evs := quiesce(t, p)
	if len(evs) != 1 || evs[0].Status != core.EventDiagnosed {
		t.Fatalf("shed event did not recover: %s", renderEvents(t, evs))
	}
	if attempts < 2 {
		t.Fatalf("diagnoser attempts = %d, want >= 2", attempts)
	}
}

// TestEventByID pins single-event lookup, including the miss.
func TestEventByID(t *testing.T) {
	view, _ := fig2View(t, 1)
	p := NewProcessor(Config{View: view, Diagnose: stubDiagnoser(), Telemetry: telemetry.New()})
	ingestBGP(t, p, bgpLine(1000, BGPWithdrawal, "y3", "y4"), bgpLine(20000, BGPKeepalive, "", ""))
	evs := quiesce(t, p)
	got := p.EventByID(evs[0].ID)
	if got == nil || got.ID != evs[0].ID {
		t.Fatalf("EventByID(%q) = %+v", evs[0].ID, got)
	}
	if p.EventByID("ev-nope") != nil {
		t.Fatal("EventByID of unknown id returned an event")
	}
}

// TestIngestRejects pins per-line rejection accounting: bad lines are
// counted and reported without poisoning the valid ones around them.
func TestIngestRejects(t *testing.T) {
	view, _ := fig2View(t, 1)
	p := NewProcessor(Config{View: view, Telemetry: telemetry.New()})
	body := strings.Join([]string{
		bgpLine(1000, BGPWithdrawal, "y3", "y4"),
		`{"ts":2000,"type":"withdrawal","a":"nope","b":"y4"}`,
		`not json`,
		bgpLine(3000, BGPKeepalive, "", ""),
	}, "\n")
	accepted, rejected, firstErr, ioErr := p.IngestBGP(strings.NewReader(body))
	if ioErr != nil {
		t.Fatal(ioErr)
	}
	if accepted != 2 || rejected != 2 {
		t.Fatalf("accepted=%d rejected=%d, want 2/2", accepted, rejected)
	}
	if firstErr == nil || !strings.Contains(firstErr.Error(), "unknown router") {
		t.Fatalf("firstErr = %v", firstErr)
	}
}
