// Package stream is the streaming diagnosis plane: live traceroute and
// BGP feed ingestion over NDJSON, a per-scenario delta mesh store that
// re-probes only the pairs a routing event could have touched, an event
// correlator bucketing temporally/topologically related observations,
// and an event-driven diagnosis loop feeding the server's queue/flight
// path. Determinism is the contract throughout: the processor state is a
// pure function of the sorted record journal, so a recorded feed
// replayed at any ingest parallelism yields byte-identical event sets
// and hypotheses.
package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Feed record kinds of the BGP ingestion endpoint.
const (
	BGPWithdrawal   = "withdrawal"   // link withdrawn: the named link goes down
	BGPAnnouncement = "announcement" // link (re)announced: the named link comes up
	BGPKeepalive    = "keepalive"    // no routing change; advances the record-time watermark
)

// maxLineBytes bounds one NDJSON line; longer lines are rejected without
// buffering them whole.
const maxLineBytes = 1 << 16

// HopRecord is one streamed traceroute hop: TTL-indexed, with the
// responding address and the per-hop RTT/AS annotations the sensor adds.
type HopRecord struct {
	TTL   int     `json:"ttl"`
	Addr  string  `json:"addr"`
	RTTMS float64 `json:"rtt_ms,omitempty"`
	AS    int     `json:"as,omitempty"`
}

// TraceRecord is one NDJSON line of POST /v1/ingest/traceroute. Hops of
// one probe arrive one line at a time, keyed by the sensor-chosen Probe
// ID; the line carrying Done closes the probe (OK tells whether the
// destination answered) and turns the accumulated hops into an
// observation stamped with the Done line's TS.
type TraceRecord struct {
	Probe string     `json:"probe"`
	TS    int64      `json:"ts"`
	Src   string     `json:"src"`
	Dst   string     `json:"dst"`
	Hop   *HopRecord `json:"hop,omitempty"`
	Done  bool       `json:"done,omitempty"`
	OK    bool       `json:"ok,omitempty"`
}

// BGPRecord is one NDJSON line of POST /v1/ingest/bgp: a withdrawal or
// announcement of the link between routers A and B (router names or
// numeric IDs), or a keepalive that only advances the watermark.
type BGPRecord struct {
	TS     int64  `json:"ts"`
	Type   string `json:"type"`
	A      string `json:"a,omitempty"`
	B      string `json:"b,omitempty"`
	Prefix string `json:"prefix,omitempty"`
}

// DecodeTraceLine parses and validates one traceroute NDJSON line.
// Validation is purely syntactic and deterministic: the same bytes are
// always accepted or rejected the same way, independent of any state.
func DecodeTraceLine(line []byte) (*TraceRecord, error) {
	var rec TraceRecord
	if err := strictUnmarshal(line, &rec); err != nil {
		return nil, err
	}
	if rec.Probe == "" {
		return nil, fmt.Errorf("stream: trace record missing probe id")
	}
	if rec.TS < 0 {
		return nil, fmt.Errorf("stream: trace record has negative ts %d", rec.TS)
	}
	if rec.Src == "" || rec.Dst == "" {
		return nil, fmt.Errorf("stream: trace record missing src/dst")
	}
	if rec.Src == rec.Dst {
		return nil, fmt.Errorf("stream: trace record src == dst %q", rec.Src)
	}
	if rec.Hop == nil && !rec.Done {
		return nil, fmt.Errorf("stream: trace record carries neither hop nor done")
	}
	if rec.Hop != nil {
		if rec.Hop.TTL < 1 || rec.Hop.TTL > 255 {
			return nil, fmt.Errorf("stream: hop ttl %d out of range [1,255]", rec.Hop.TTL)
		}
		if rec.Hop.Addr == "" {
			return nil, fmt.Errorf("stream: hop missing addr")
		}
		if rec.Hop.RTTMS < 0 {
			return nil, fmt.Errorf("stream: hop has negative rtt_ms")
		}
		if rec.Hop.AS < 0 {
			return nil, fmt.Errorf("stream: hop has negative as")
		}
	}
	return &rec, nil
}

// DecodeBGPLine parses and validates one BGP feed NDJSON line, with the
// same deterministic accept/reject contract as DecodeTraceLine.
func DecodeBGPLine(line []byte) (*BGPRecord, error) {
	var rec BGPRecord
	if err := strictUnmarshal(line, &rec); err != nil {
		return nil, err
	}
	if rec.TS < 0 {
		return nil, fmt.Errorf("stream: bgp record has negative ts %d", rec.TS)
	}
	switch rec.Type {
	case BGPWithdrawal, BGPAnnouncement:
		if rec.A == "" || rec.B == "" {
			return nil, fmt.Errorf("stream: bgp %s missing link endpoints a/b", rec.Type)
		}
		if rec.A == rec.B {
			return nil, fmt.Errorf("stream: bgp %s has a == b %q", rec.Type, rec.A)
		}
	case BGPKeepalive:
		if rec.A != "" || rec.B != "" {
			return nil, fmt.Errorf("stream: bgp keepalive must not name a link")
		}
	case "":
		return nil, fmt.Errorf("stream: bgp record missing type")
	default:
		return nil, fmt.Errorf("stream: unknown bgp record type %q", rec.Type)
	}
	return &rec, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing garbage on the line.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("stream: bad record: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("stream: trailing data after record")
	}
	return nil
}

// forEachLine streams r line by line (NDJSON over a chunked body),
// invoking fn for every non-blank line. fn's error is sticky per line —
// it is reported to the caller via the returned reject count and first
// error, not by aborting the stream — so one bad line never discards the
// valid records around it. An I/O or line-length error does abort: the
// rest of the body cannot be trusted to be line-aligned.
func forEachLine(r io.Reader, fn func(line []byte) error) (accepted, rejected int, firstErr error, ioErr error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			rejected++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
	}
	return accepted, rejected, firstErr, sc.Err()
}
