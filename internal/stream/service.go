package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"netdiag/internal/core"
)

// maxIngestBytes bounds one ingest request body.
const maxIngestBytes = 32 << 20

// ServiceConfig wires a Service into its host server.
type ServiceConfig struct {
	// Open builds the processor for a scenario on first use (converging
	// the snapshot if needed). Required.
	Open func(ctx context.Context, scenario string) (*Processor, error)
	// Known reports whether the scenario name is registered, so an
	// unknown name 404s without converging anything. Nil means "all
	// names are known".
	Known func(scenario string) bool
	// Draining reports whether the host is shutting down; ingest is
	// then refused with 503. Nil means "never draining".
	Draining func() bool
	Logger   *slog.Logger
}

// procEntry tracks one scenario's processor construction; ready closes
// when p and err are final (the singleflight pattern the snapshot store
// uses).
type procEntry struct {
	ready chan struct{}
	p     *Processor
	err   error
}

// Service is the multi-scenario HTTP face of the streaming plane: it
// owns one lazily built Processor per scenario and implements the
// /v1/ingest/* and /v1/events handlers the host server mounts.
type Service struct {
	cfg ServiceConfig

	mu    sync.Mutex
	procs map[string]*procEntry
}

// NewService builds a service; processors are created lazily per
// scenario via cfg.Open.
func NewService(cfg ServiceConfig) *Service {
	return &Service{cfg: cfg, procs: map[string]*procEntry{}}
}

// Processor returns (building if needed) the named scenario's
// processor. Concurrent calls for the same scenario share one build; a
// failed build is cleared so the next call retries.
func (s *Service) Processor(ctx context.Context, scenario string) (*Processor, error) {
	s.mu.Lock()
	e := s.procs[scenario]
	if e == nil {
		e = &procEntry{ready: make(chan struct{})}
		s.procs[scenario] = e
		go func() {
			// The build runs detached from the requesting context: a
			// processor is shared state, and a client disconnect must
			// not abort the convergence other requests will reuse.
			e.p, e.err = s.cfg.Open(context.WithoutCancel(ctx), scenario)
			if e.err != nil {
				s.mu.Lock()
				delete(s.procs, scenario)
				s.mu.Unlock()
			}
			close(e.ready)
		}()
	}
	s.mu.Unlock()
	select {
	case <-e.ready:
		return e.p, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// peek returns the processor only if it already exists and is ready.
func (s *Service) peek(scenario string) *Processor {
	s.mu.Lock()
	e := s.procs[scenario]
	s.mu.Unlock()
	if e == nil {
		return nil
	}
	select {
	case <-e.ready:
		if e.err == nil {
			return e.p
		}
	default:
	}
	return nil
}

// readyScenarios lists the names with a ready processor, sorted.
func (s *Service) readyScenarios() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.procs))
	for name := range s.procs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

func (s *Service) draining() bool { return s.cfg.Draining != nil && s.cfg.Draining() }

func (s *Service) known(name string) bool { return s.cfg.Known == nil || s.cfg.Known(name) }

// ingestResponse is the body of a successful ingest POST: per-line
// accounting, so a sensor learns how much of its chunk survived
// validation without the stream aborting at the first bad line.
type ingestResponse struct {
	Accepted   int    `json:"accepted"`
	Rejected   int    `json:"rejected"`
	FirstError string `json:"first_error,omitempty"`
}

// HandleIngestTraceroute serves POST /v1/ingest/traceroute?scenario=.
func (s *Service) HandleIngestTraceroute(w http.ResponseWriter, r *http.Request) {
	s.handleIngest(w, r, (*Processor).IngestTraceroute)
}

// HandleIngestBGP serves POST /v1/ingest/bgp?scenario=.
func (s *Service) HandleIngestBGP(w http.ResponseWriter, r *http.Request) {
	s.handleIngest(w, r, (*Processor).IngestBGP)
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request,
	ingest func(p *Processor, body io.Reader) (int, int, error, error)) {
	if s.draining() {
		writeError(w, http.StatusServiceUnavailable, core.ErrDraining, "draining")
		return
	}
	p, ok := s.resolve(w, r)
	if !ok {
		return
	}
	accepted, rejected, firstErr, ioErr := ingest(p, http.MaxBytesReader(w, r.Body, maxIngestBytes))
	if ioErr != nil {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "reading body: "+ioErr.Error())
		return
	}
	resp := ingestResponse{Accepted: accepted, Rejected: rejected}
	if firstErr != nil {
		resp.FirstError = firstErr.Error()
	}
	writeJSON(w, resp, s.cfg.Logger)
}

// resolve maps the request's scenario query parameter to its processor,
// writing the error response itself when it cannot.
func (s *Service) resolve(w http.ResponseWriter, r *http.Request) (*Processor, bool) {
	name := r.URL.Query().Get("scenario")
	if name == "" {
		writeError(w, http.StatusBadRequest, core.ErrBadRequest, "missing scenario query parameter")
		return nil, false
	}
	if !s.known(name) {
		writeError(w, http.StatusNotFound, core.ErrNotFound, fmt.Sprintf("unknown scenario %q", name))
		return nil, false
	}
	p, err := s.Processor(r.Context(), name)
	if err != nil {
		if r.Context().Err() != nil {
			writeError(w, http.StatusGatewayTimeout, core.ErrTimeout, "request context ended while the scenario warmed")
			return nil, false
		}
		writeError(w, http.StatusInternalServerError, core.ErrInternal, err.Error())
		return nil, false
	}
	return p, true
}

// HandleEvents serves GET /v1/events. With ?scenario= it lists that
// scenario's events; without, it merges the events of every scenario
// that has received any stream, still sorted by (first_ts, id).
func (s *Service) HandleEvents(w http.ResponseWriter, r *http.Request) {
	var evs []*core.WireEvent
	if name := r.URL.Query().Get("scenario"); name != "" {
		if !s.known(name) {
			writeError(w, http.StatusNotFound, core.ErrNotFound, fmt.Sprintf("unknown scenario %q", name))
			return
		}
		if p := s.peek(name); p != nil {
			evs = p.Events()
		}
	} else {
		for _, name := range s.readyScenarios() {
			if p := s.peek(name); p != nil {
				evs = append(evs, p.Events()...)
			}
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].FirstTS != evs[j].FirstTS {
				return evs[i].FirstTS < evs[j].FirstTS
			}
			return evs[i].ID < evs[j].ID
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := core.EncodeWireEvents(w, evs); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("encoding event listing", "err", err)
	}
}

// HandleEvent serves GET /v1/events/{id}: the single event in the same
// rendering as one listing element.
func (s *Service) HandleEvent(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, name := range s.readyScenarios() {
		p := s.peek(name)
		if p == nil {
			continue
		}
		if ev := p.EventByID(id); ev != nil {
			w.Header().Set("Content-Type", "application/json")
			if err := ev.Encode(w); err != nil && s.cfg.Logger != nil {
				s.cfg.Logger.Warn("encoding event", "err", err)
			}
			return
		}
	}
	writeError(w, http.StatusNotFound, core.ErrNotFound, fmt.Sprintf("unknown event %q", id))
}

func writeJSON(w http.ResponseWriter, v any, log *slog.Logger) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && log != nil {
		log.Warn("encoding stream response", "err", err)
	}
}

// writeError emits the v1 error envelope — the stream package's leg of
// the same seam the server package guards: every error response on the
// streaming surface flows through here, carrying the stable code and
// the Retry-After header on retryable statuses.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	we := &core.WireError{Code: code, Message: msg}
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway:
		we.RetryAfterS = 1
	}
	if we.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(we.RetryAfterS))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(we.Envelope())
}
