package stream

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzIngestDecode drives both NDJSON line decoders with arbitrary
// bytes. Three properties are enforced: no input may panic (malformed
// lines must surface as errors), accept/reject is deterministic
// (decoding the same bytes twice agrees, records included), and any
// accepted record survives a marshal/decode round trip — the decoders
// define a canonical wire form, not a lossy one.
func FuzzIngestDecode(f *testing.F) {
	f.Add([]byte(`{"probe":"p1","ts":1000,"src":"s1","dst":"s2","hop":{"ttl":1,"addr":"10.0.0.1","rtt_ms":1.5,"as":65001}}`))
	f.Add([]byte(`{"probe":"p1","ts":1000,"src":"s1","dst":"s2","done":true,"ok":false}`))
	f.Add([]byte(`{"ts":2000,"type":"withdrawal","a":"r1","b":"r2"}`))
	f.Add([]byte(`{"ts":2000,"type":"announcement","a":"r1","b":"r2","prefix":"10.0.0.0/8"}`))
	f.Add([]byte(`{"ts":3000,"type":"keepalive"}`))
	f.Add([]byte(`{"probe":"","ts":-5}`))
	f.Add([]byte(`{"ts":1,"type":"withdrawal","a":"r1","b":"r2"} trailing`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr1, terr1 := DecodeTraceLine(data)
		tr2, terr2 := DecodeTraceLine(data)
		if (terr1 == nil) != (terr2 == nil) || !reflect.DeepEqual(tr1, tr2) {
			t.Fatalf("DecodeTraceLine not deterministic on %q: (%v,%v) vs (%v,%v)", data, tr1, terr1, tr2, terr2)
		}
		if terr1 == nil {
			roundTrip(t, "trace", tr1, func(b []byte) (any, error) { return DecodeTraceLine(b) })
		}

		br1, berr1 := DecodeBGPLine(data)
		br2, berr2 := DecodeBGPLine(data)
		if (berr1 == nil) != (berr2 == nil) || !reflect.DeepEqual(br1, br2) {
			t.Fatalf("DecodeBGPLine not deterministic on %q: (%v,%v) vs (%v,%v)", data, br1, berr1, br2, berr2)
		}
		if berr1 == nil {
			roundTrip(t, "bgp", br1, func(b []byte) (any, error) { return DecodeBGPLine(b) })
		}
	})
}

// roundTrip re-marshals an accepted record and decodes it again; the
// result must be accepted and equal to the original.
func roundTrip(t *testing.T, kind string, rec any, decode func([]byte) (any, error)) {
	t.Helper()
	enc, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("%s: re-marshal of accepted record failed: %v", kind, err)
	}
	back, err := decode(enc)
	if err != nil {
		t.Fatalf("%s: canonical form %s rejected: %v", kind, enc, err)
	}
	if !reflect.DeepEqual(back, rec) {
		t.Fatalf("%s: round trip drifted: %#v -> %s -> %#v", kind, rec, enc, back)
	}
}

// TestForEachLineAccounting pins the per-line accounting contract the
// ingest handlers report: bad lines are counted and the first error
// kept, blank lines are skipped, and a reader failure aborts.
func TestForEachLineAccounting(t *testing.T) {
	body := "{\"ts\":1,\"type\":\"keepalive\"}\n\nbogus\n{\"ts\":2,\"type\":\"keepalive\"}\n"
	accepted, rejected, firstErr, ioErr := forEachLine(bytes.NewReader([]byte(body)), func(line []byte) error {
		_, err := DecodeBGPLine(line)
		return err
	})
	if ioErr != nil {
		t.Fatal(ioErr)
	}
	if accepted != 2 || rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 2/1", accepted, rejected)
	}
	if firstErr == nil {
		t.Fatal("first error not captured")
	}
}
