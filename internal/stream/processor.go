package stream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"netdiag/internal/bgp"
	"netdiag/internal/core"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// View is everything the processor needs from one warm scenario
// snapshot. Net is a private fork owned by the processor; Baseline is
// the healthy T− mesh and is never mutated (the overlay clones it).
type View struct {
	Scenario string
	Topo     *topology.Topology
	Sensors  []topology.RouterID
	// Prefixes holds the destination prefix per sensor index, for the
	// dirty-scope prefix check.
	Prefixes []bgp.Prefix
	Baseline *probe.Mesh
	Net      *netsim.Network
	// Router resolves a router reference (name or numeric ID) from the
	// feed against the scenario topology.
	Router func(ref string) (topology.RouterID, bool)
	// Workers bounds the re-probe fan-out (<= 0 means 1).
	Workers int
}

// Diagnoser diagnoses one closed event given its T−/T+ meshes and
// returns the wire-encoded result body. retry reports a transient
// refusal (admission queue full): the event parks as "pending" and is
// retried on the next sweep or listing. A non-nil err is terminal for
// this event (status "failed") but cached like a success, so replays
// render it identically.
type Diagnoser func(eventID string, tminus, tplus *probe.Mesh) (body []byte, retry bool, err error)

// Config parameterizes a Processor.
type Config struct {
	View View
	// WindowMS is the correlation window in record time: an observation
	// joins an open event when its ts is within this many milliseconds
	// of the event's last observation and they share a suspect link or
	// AS. Zero selects 2000.
	WindowMS int64
	// IdleCloseMS closes an open event once record time has advanced
	// this far past its last observation. Zero selects 5000; values
	// below the window are raised to it, so the closure check subsumes
	// the window check.
	IdleCloseMS int64
	// Diagnose runs the diagnosis of a closed event; nil leaves closed
	// events "pending" forever (tests).
	Diagnose Diagnoser
	// Life scopes re-probes and sweeps to the owning server's lifetime;
	// nil means no cancellation.
	Life      context.Context
	Telemetry *telemetry.Registry
	Logger    *slog.Logger
}

// entry kinds in the record journal.
const (
	entryMark  = iota // advances record time only (keepalive, successful probe)
	entryTrace        // a failing completed traceroute: observation only
	entryBGP          // withdrawal/announcement: mutates the fork, then observes
)

// entry is one journal record. The journal is the processor's source of
// truth: sorted by (ts, key), swept by a cursor, and replayable — every
// piece of derived state (overlay mesh, events) is a pure function of
// the sorted journal, which is what makes ingest order irrelevant.
type entry struct {
	ts   int64
	key  string
	kind int
	// BGP apply info (entryBGP only).
	bgpType string
	link    topology.LinkID
	// obs is the trouble observation this record contributes, nil for
	// entryMark.
	obs *observation
}

// observation is one trouble-indicating record, fully resolved at
// ingest time so applying it is pure.
type observation struct {
	key          string
	ts           int64
	kind         string // "traceroute" | "bgp"
	pair         string
	detail       string
	suspectLinks []string // canonical "a~b", sorted
	suspectASes  []int    // sorted
}

// event is one correlated bucket of observations. Identity (id) is
// assigned at closure as a digest of the observation keys, so a replay
// that reproduces the same buckets reproduces the same IDs.
type event struct {
	firstTS, lastTS int64
	obs             []*observation
	links           map[string]bool
	ases            map[int]bool

	// Set at closure.
	id       string
	status   string
	tplus    *probe.Mesh
	closedAt time.Time

	// Diagnosis outcome.
	result *core.WireResult
	errMsg string
}

// diagOutcome is a finished diagnosis, cached by event ID so it
// survives journal resets (a reset recreates the event; the cached
// outcome re-attaches without recomputing).
type diagOutcome struct {
	result *core.WireResult
	errMsg string
}

// probeBuild accumulates the hops of one in-flight streamed probe
// before its done line journals it.
type probeBuild struct {
	src, dst       string
	srcIdx, dstIdx int
	hops           map[int]HopRecord
}

type metrics struct {
	ingested, rejected            *telemetry.Counter
	observations                  *telemetry.Counter
	eventsOpened, eventsClosed    *telemetry.Counter
	eventsDiagnosed, eventsFailed *telemetry.Counter
	pairsReprobed, pairsSkipped   *telemetry.Counter
	noopRecords, sweepResets      *telemetry.Counter
	eventLag                      *telemetry.Histogram
	probeM                        *probe.Metrics
}

func newMetrics(r *telemetry.Registry) *metrics {
	r.Derive("stream.dirty_pair_fraction", func(snap telemetry.Snapshot) float64 {
		return telemetry.Ratio(snap.Counters["stream.pairs_reprobed"], snap.Counters["stream.pairs_skipped"])
	})
	return &metrics{
		ingested:        r.Counter("stream.records_ingested"),
		rejected:        r.Counter("stream.records_rejected"),
		observations:    r.Counter("stream.observations"),
		eventsOpened:    r.Counter("stream.events_opened"),
		eventsClosed:    r.Counter("stream.events_closed"),
		eventsDiagnosed: r.Counter("stream.events_diagnosed"),
		eventsFailed:    r.Counter("stream.events_failed"),
		pairsReprobed:   r.Counter("stream.pairs_reprobed"),
		pairsSkipped:    r.Counter("stream.pairs_skipped"),
		noopRecords:     r.Counter("stream.noop_records"),
		sweepResets:     r.Counter("stream.sweep_resets"),
		eventLag:        r.Histogram("stream.event_lag_ns", telemetry.DurationBuckets),
		probeM:          probe.NewMetrics(r),
	}
}

// Processor is the per-scenario streaming state machine: it journals
// ingested records, maintains the T− mesh as a delta overlay (re-probing
// only dirty pairs after each applied routing event), correlates trouble
// observations into events, and hands closed events to the Diagnoser.
//
// Determinism contract: after ingesting the same set of records — in any
// order, across any number of concurrent requests — and reaching
// quiescence, Events() renders byte-identical JSON. Out-of-order
// arrivals are handled by reset-and-replay: the journal is re-swept from
// the baseline checkpoint, and cached diagnosis outcomes re-attach by
// event ID.
type Processor struct {
	view      View
	window    int64
	idleClose int64
	diagnose  Diagnoser
	life      context.Context
	log       *slog.Logger
	met       *metrics

	mu        sync.Mutex
	fork      *netsim.Network
	baseCP    netsim.Checkpoint
	overlay   *probe.Mesh
	journal   []*entry
	keys      map[string]bool
	cursor    int
	watermark int64
	pending   map[string]*probeBuild
	open      []*event
	closed    []*event
	results   map[string]*diagOutcome
	inflight  map[string]bool
	sensorIdx map[topology.RouterID]int
	stopped   error
}

// NewProcessor builds a processor over one scenario view. It
// checkpoints the fork's healthy state once; every journal reset
// restores it.
func NewProcessor(cfg Config) *Processor {
	if cfg.WindowMS <= 0 {
		cfg.WindowMS = 2000
	}
	if cfg.IdleCloseMS <= 0 {
		cfg.IdleCloseMS = 5000
	}
	if cfg.IdleCloseMS < cfg.WindowMS {
		cfg.IdleCloseMS = cfg.WindowMS
	}
	if cfg.Life == nil {
		cfg.Life = context.Background()
	}
	if cfg.View.Workers <= 0 {
		cfg.View.Workers = 1
	}
	p := &Processor{
		view:      cfg.View,
		window:    cfg.WindowMS,
		idleClose: cfg.IdleCloseMS,
		diagnose:  cfg.Diagnose,
		life:      cfg.Life,
		log:       cfg.Logger,
		met:       newMetrics(cfg.Telemetry),
		fork:      cfg.View.Net,
		overlay:   cfg.View.Baseline.Clone(),
		keys:      map[string]bool{},
		pending:   map[string]*probeBuild{},
		results:   map[string]*diagOutcome{},
		inflight:  map[string]bool{},
		sensorIdx: map[topology.RouterID]int{},
		watermark: -1,
	}
	p.baseCP = p.fork.Checkpoint()
	for i, s := range cfg.View.Sensors {
		p.sensorIdx[s] = i
	}
	return p
}

// IngestTraceroute consumes one NDJSON traceroute body. The whole body
// is one atomic unit: records of one probe must arrive within one body
// (hops keyed by TTL make the assembly order-independent for well-formed
// feeds, but a probe split across concurrent bodies races its done
// line). Returns per-line accept/reject counts, the first per-line
// error, and any I/O error that aborted the scan.
func (p *Processor) IngestTraceroute(r io.Reader) (accepted, rejected int, firstErr, ioErr error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	accepted, rejected, firstErr, ioErr = forEachLine(r, p.ingestTraceLine)
	p.met.ingested.Add(int64(accepted))
	p.met.rejected.Add(int64(rejected))
	p.sweep()
	return accepted, rejected, firstErr, ioErr
}

// IngestBGP consumes one NDJSON BGP feed body, with the same contract
// as IngestTraceroute.
func (p *Processor) IngestBGP(r io.Reader) (accepted, rejected int, firstErr, ioErr error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	accepted, rejected, firstErr, ioErr = forEachLine(r, p.ingestBGPLine)
	p.met.ingested.Add(int64(accepted))
	p.met.rejected.Add(int64(rejected))
	p.sweep()
	return accepted, rejected, firstErr, ioErr
}

// sensorRef resolves a feed router reference to a sensor index.
func (p *Processor) sensorRef(ref string) (int, error) {
	id, ok := p.view.Router(ref)
	if !ok {
		return 0, fmt.Errorf("stream: unknown router %q", ref)
	}
	idx, ok := p.sensorIdx[id]
	if !ok {
		return 0, fmt.Errorf("stream: router %q is not a sensor", ref)
	}
	return idx, nil
}

func (p *Processor) ingestTraceLine(line []byte) error {
	rec, err := DecodeTraceLine(line)
	if err != nil {
		return err
	}
	pb := p.pending[rec.Probe]
	if pb == nil {
		srcIdx, err := p.sensorRef(rec.Src)
		if err != nil {
			return err
		}
		dstIdx, err := p.sensorRef(rec.Dst)
		if err != nil {
			return err
		}
		pb = &probeBuild{src: rec.Src, dst: rec.Dst, srcIdx: srcIdx, dstIdx: dstIdx, hops: map[int]HopRecord{}}
		p.pending[rec.Probe] = pb
	} else if pb.src != rec.Src || pb.dst != rec.Dst {
		return fmt.Errorf("stream: probe %q changed endpoints mid-flight", rec.Probe)
	}
	if rec.Hop != nil {
		if _, dup := pb.hops[rec.Hop.TTL]; dup {
			return fmt.Errorf("stream: probe %q repeats ttl %d", rec.Probe, rec.Hop.TTL)
		}
		pb.hops[rec.Hop.TTL] = *rec.Hop
	}
	if !rec.Done {
		return nil
	}
	delete(p.pending, rec.Probe)
	e := &entry{
		ts:   rec.TS,
		key:  fmt.Sprintf("t:%012d:%s", rec.TS, rec.Probe),
		kind: entryMark,
	}
	if !rec.OK {
		e.kind = entryTrace
		e.obs = p.traceObservation(e.key, rec, pb)
	}
	p.insert(e)
	return nil
}

// traceObservation turns a failing completed probe into an observation:
// the suspect is where the probe died — the last responding hop's
// router/AS and the final observed link.
func (p *Processor) traceObservation(key string, rec *TraceRecord, pb *probeBuild) *observation {
	ttls := make([]int, 0, len(pb.hops))
	for ttl := range pb.hops {
		ttls = append(ttls, ttl)
	}
	sort.Ints(ttls)
	names := make([]string, len(ttls))
	ases := map[int]bool{}
	for i, ttl := range ttls {
		h := pb.hops[ttl]
		names[i] = h.Addr
		if rtr, ok := p.view.Topo.RouterByAddr(h.Addr); ok {
			names[i] = rtr.Name
			if h.AS == 0 {
				ases[int(rtr.AS)] = true
				continue
			}
		}
		if h.AS > 0 {
			ases[h.AS] = true
		}
	}
	obs := &observation{
		key:  key,
		ts:   rec.TS,
		kind: "traceroute",
		pair: rec.Src + "->" + rec.Dst,
	}
	switch {
	case len(ttls) == 0:
		// Died before the first hop: suspect the source's own AS.
		obs.detail = "probe lost before first hop"
		obs.suspectASes = []int{int(p.view.Topo.RouterAS(p.view.Sensors[pb.srcIdx]))}
	default:
		last := names[len(names)-1]
		obs.detail = fmt.Sprintf("traceroute stopped after %d hops at %s", len(ttls), last)
		// Only the ASes of the failure frontier — the last responding
		// hop — are suspects, not every AS the probe crossed.
		lastHop := pb.hops[ttls[len(ttls)-1]]
		frontier := map[int]bool{}
		if rtr, ok := p.view.Topo.RouterByAddr(lastHop.Addr); ok && lastHop.AS == 0 {
			frontier[int(rtr.AS)] = true
		} else if lastHop.AS > 0 {
			frontier[lastHop.AS] = true
		}
		for as := range frontier {
			obs.suspectASes = append(obs.suspectASes, as)
		}
		sort.Ints(obs.suspectASes)
		if len(ttls) >= 2 {
			obs.suspectLinks = []string{linkKey(names[len(names)-2], last)}
		}
	}
	return obs
}

func (p *Processor) ingestBGPLine(line []byte) error {
	rec, err := DecodeBGPLine(line)
	if err != nil {
		return err
	}
	if rec.Type == BGPKeepalive {
		p.insert(&entry{
			ts:   rec.TS,
			key:  fmt.Sprintf("b:%012d:keepalive", rec.TS),
			kind: entryMark,
		})
		return nil
	}
	aID, ok := p.view.Router(rec.A)
	if !ok {
		return fmt.Errorf("stream: unknown router %q", rec.A)
	}
	bID, ok := p.view.Router(rec.B)
	if !ok {
		return fmt.Errorf("stream: unknown router %q", rec.B)
	}
	link, ok := p.view.Topo.LinkBetween(aID, bID)
	if !ok {
		return fmt.Errorf("stream: no link between %q and %q", rec.A, rec.B)
	}
	na, nb := p.view.Topo.Router(aID).Name, p.view.Topo.Router(bID).Name
	if nb < na {
		na, nb = nb, na
	}
	key := fmt.Sprintf("b:%012d:%s:%s~%s", rec.TS, rec.Type, na, nb)
	ases := []int{int(p.view.Topo.RouterAS(aID))}
	if as := int(p.view.Topo.RouterAS(bID)); as != ases[0] {
		ases = append(ases, as)
	}
	sort.Ints(ases)
	p.insert(&entry{
		ts:      rec.TS,
		key:     key,
		kind:    entryBGP,
		bgpType: rec.Type,
		link:    link.ID,
		obs: &observation{
			key:          key,
			ts:           rec.TS,
			kind:         "bgp",
			detail:       fmt.Sprintf("%s of link %s~%s", rec.Type, na, nb),
			suspectLinks: []string{na + "~" + nb},
			suspectASes:  ases,
		},
	})
	return nil
}

func linkKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "~" + b
}

// insert places an entry at its sorted (ts, key) position. A duplicate
// key is an idempotent replay of a record already journaled and is
// dropped. An insertion behind the sweep cursor triggers
// reset-and-replay: the sweep restarts from the baseline checkpoint so
// the applied order always equals the sorted order.
func (p *Processor) insert(e *entry) {
	if p.keys[e.key] {
		return
	}
	p.keys[e.key] = true
	idx := sort.Search(len(p.journal), func(i int) bool {
		j := p.journal[i]
		return j.ts > e.ts || (j.ts == e.ts && j.key > e.key)
	})
	p.journal = append(p.journal, nil)
	copy(p.journal[idx+1:], p.journal[idx:])
	p.journal[idx] = e
	if idx < p.cursor {
		p.reset()
	}
}

// reset rewinds derived state to the healthy baseline for a full
// journal replay. The diagnosis cache and in-flight set survive: events
// re-closed with the same observation set get the same ID and re-attach
// their cached outcome.
func (p *Processor) reset() {
	p.fork.Restore(p.baseCP)
	p.overlay = p.view.Baseline.Clone()
	p.cursor = 0
	p.watermark = -1
	p.open = nil
	p.closed = nil
	p.met.sweepResets.Inc()
}

// sweep applies journal entries from the cursor to the end. Record time
// (the watermark) advances entry by entry; events idle past their
// closure deadline close before the entry that proves the idleness
// applies.
func (p *Processor) sweep() {
	for p.stopped == nil && p.cursor < len(p.journal) {
		e := p.journal[p.cursor]
		p.closeIdleBefore(e.ts)
		p.apply(e)
		p.watermark = e.ts
		p.cursor++
	}
	p.retryPending()
}

// apply executes one journal entry against the fork and overlay.
func (p *Processor) apply(e *entry) {
	switch e.kind {
	case entryMark:
		// Watermark only.
	case entryTrace:
		p.correlate(e.obs)
	case entryBGP:
		up := p.fork.LinkIsUp(e.link)
		if (e.bgpType == BGPWithdrawal && !up) || (e.bgpType == BGPAnnouncement && up) {
			// The feed repeated what the fork already knows: nothing to
			// re-probe, no new trouble to correlate.
			p.met.noopRecords.Inc()
			return
		}
		if e.bgpType == BGPWithdrawal {
			p.fork.FailLink(e.link)
		} else {
			p.fork.RestoreLink(e.link)
		}
		p.reprobe()
		if p.stopped == nil {
			p.correlate(e.obs)
		}
	}
}

// reprobe reconverges the fork and refreshes exactly the overlay pairs
// the delta could have moved (see netsim.DirtyScope). This is where the
// streaming plane earns its keep: a scoped withdrawal re-traces a
// fraction of the mesh, and a no-op delta re-traces nothing.
func (p *Processor) reprobe() {
	scope, err := p.fork.ReconvergeDirtyCtx(p.life)
	if err != nil {
		p.stop(err)
		return
	}
	var pairs [][2]int
	skipped := 0
	for i := range p.view.Sensors {
		for j := range p.view.Sensors {
			if i == j {
				continue
			}
			if scope.AffectsPath(p.overlay.Paths[i][j], p.view.Prefixes[j]) {
				pairs = append(pairs, [2]int{i, j})
			} else {
				skipped++
			}
		}
	}
	p.met.pairsReprobed.Add(int64(len(pairs)))
	p.met.pairsSkipped.Add(int64(skipped))
	if len(pairs) == 0 {
		return
	}
	err = probe.FillPairsCtx(p.life, p.overlay, pairs, p.view.Workers, func(i, j int) *probe.Path {
		return p.fork.Traceroute(p.view.Sensors[i], p.view.Sensors[j])
	}, p.met.probeM)
	if err != nil {
		p.stop(err)
	}
}

// stop marks the processor wedged (only lifetime-context cancellation
// gets here); further sweeping halts but listing keeps working.
func (p *Processor) stop(err error) {
	p.stopped = err
	if p.log != nil {
		p.log.Warn("stream sweep stopped", "scenario", p.view.Scenario, "err", err)
	}
}

// correlate buckets an observation into the open events: it joins every
// open event within the window that shares a suspect link or AS
// (merging them if there are several), or opens a new one.
func (p *Processor) correlate(o *observation) {
	p.met.observations.Inc()
	var matches []int
	for i, ev := range p.open {
		if o.ts-ev.lastTS > p.window {
			continue
		}
		if eventShares(ev, o) {
			matches = append(matches, i)
		}
	}
	if len(matches) == 0 {
		ev := &event{firstTS: o.ts, lastTS: o.ts, links: map[string]bool{}, ases: map[int]bool{}}
		eventAdd(ev, o)
		p.open = append(p.open, ev)
		p.met.eventsOpened.Inc()
		return
	}
	dst := p.open[matches[0]]
	for _, i := range matches[1:] {
		src := p.open[i]
		dst.obs = append(dst.obs, src.obs...)
		if src.firstTS < dst.firstTS {
			dst.firstTS = src.firstTS
		}
		if src.lastTS > dst.lastTS {
			dst.lastTS = src.lastTS
		}
		for l := range src.links {
			dst.links[l] = true
		}
		for a := range src.ases {
			dst.ases[a] = true
		}
	}
	if len(matches) > 1 {
		kept := p.open[:0]
		drop := map[int]bool{}
		for _, i := range matches[1:] {
			drop[i] = true
		}
		for i, ev := range p.open {
			if !drop[i] {
				kept = append(kept, ev)
			}
		}
		p.open = kept
	}
	eventAdd(dst, o)
}

func eventShares(ev *event, o *observation) bool {
	for _, l := range o.suspectLinks {
		if ev.links[l] {
			return true
		}
	}
	for _, a := range o.suspectASes {
		if ev.ases[a] {
			return true
		}
	}
	return false
}

func eventAdd(ev *event, o *observation) {
	ev.obs = append(ev.obs, o)
	if o.ts < ev.firstTS {
		ev.firstTS = o.ts
	}
	if o.ts > ev.lastTS {
		ev.lastTS = o.ts
	}
	for _, l := range o.suspectLinks {
		ev.links[l] = true
	}
	for _, a := range o.suspectASes {
		ev.ases[a] = true
	}
}

// closeIdleBefore closes every open event whose idle deadline passed
// before record time ts.
func (p *Processor) closeIdleBefore(ts int64) {
	kept := p.open[:0]
	for _, ev := range p.open {
		if ev.lastTS+p.idleClose < ts {
			p.closeEvent(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	p.open = kept
}

// closeEvent seals an event: assign its digest ID, snapshot the overlay
// as the T+ mesh, and start (or re-attach) its diagnosis.
func (p *Processor) closeEvent(ev *event) {
	ev.id = p.digest(ev)
	ev.tplus = p.overlay.Clone()
	ev.closedAt = telemetry.Now()
	p.closed = append(p.closed, ev)
	p.met.eventsClosed.Inc()
	p.startDiagnosis(ev)
}

// startDiagnosis resolves a closed event's outcome: adopt the cached
// one, piggyback on an in-flight run for the same ID, or spawn a new
// run. Called with mu held.
func (p *Processor) startDiagnosis(ev *event) {
	if out, ok := p.results[ev.id]; ok {
		p.adopt(ev, out)
		return
	}
	if p.diagnose == nil {
		ev.status = core.EventPending
		return
	}
	ev.status = core.EventDiagnosing
	if p.inflight[ev.id] {
		return
	}
	p.inflight[ev.id] = true
	go p.runDiagnosis(ev.id, ev.tplus, ev.closedAt)
}

// runDiagnosis executes the Diagnoser off the processor lock and
// records the outcome. A retryable refusal parks the event as pending;
// anything else is cached by event ID.
func (p *Processor) runDiagnosis(id string, tplus *probe.Mesh, closedAt time.Time) {
	var (
		body  []byte
		retry bool
		err   error
	)
	if p.life.Err() != nil {
		// The processor's life context ended: don't start new work,
		// park the event as pending instead (the terminal state a
		// restarted processor would retry from).
		retry = true
	} else {
		body, retry, err = p.diagnose(id, p.view.Baseline, tplus)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.inflight, id)
	if retry {
		if ev := p.findClosed(id); ev != nil && ev.status == core.EventDiagnosing {
			ev.status = core.EventPending
		}
		return
	}
	out := &diagOutcome{}
	if err != nil {
		out.errMsg = err.Error()
	} else {
		var res core.WireResult
		if jerr := json.Unmarshal(body, &res); jerr != nil {
			out.errMsg = "decoding diagnosis: " + jerr.Error()
		} else {
			out.result = &res
		}
	}
	p.results[id] = out
	p.met.eventLag.Observe(telemetry.Since(closedAt).Nanoseconds())
	if ev := p.findClosed(id); ev != nil {
		p.adopt(ev, out)
	}
}

func (p *Processor) adopt(ev *event, out *diagOutcome) {
	if out.errMsg != "" {
		ev.status = core.EventFailed
		ev.errMsg = out.errMsg
		p.met.eventsFailed.Inc()
		return
	}
	ev.status = core.EventDiagnosed
	ev.result = out.result
	p.met.eventsDiagnosed.Inc()
}

func (p *Processor) findClosed(id string) *event {
	for _, ev := range p.closed {
		if ev.id == id {
			return ev
		}
	}
	return nil
}

// retryPending re-launches diagnosis for events parked by a shed. Called
// with mu held, from sweeps and listings.
func (p *Processor) retryPending() {
	if p.diagnose == nil {
		return
	}
	for _, ev := range p.closed {
		if ev.status == core.EventPending {
			p.startDiagnosis(ev)
		}
	}
}

// digest derives the event's stable identity from its observation keys.
// It doubles as the event's trace ID ([0-9a-z-] only), which keeps
// /v1/events bodies byte-identical with tracing on or off.
func (p *Processor) digest(ev *event) string {
	ks := make([]string, len(ev.obs))
	for i, o := range ev.obs {
		ks[i] = o.key
	}
	sort.Strings(ks)
	h := sha256.New()
	io.WriteString(h, p.view.Scenario)
	for _, k := range ks {
		io.WriteString(h, "\n"+k)
	}
	return "ev-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// CurrentMesh returns a snapshot of the live T− overlay — the
// measurement source the event-driven watch loop reads instead of
// re-probing the full mesh on a timer.
func (p *Processor) CurrentMesh() *probe.Mesh {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.overlay.Clone()
}

// Watermark returns the record time of the last swept entry (-1 before
// any).
func (p *Processor) Watermark() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.watermark
}

// Events renders every event, closed and open, sorted by (first_ts,
// id). Listing also retries pending diagnoses, so a client polling the
// endpoint drives shed events to completion.
func (p *Processor) Events() []*core.WireEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retryPending()
	evs := make([]*core.WireEvent, 0, len(p.closed)+len(p.open))
	for _, ev := range p.closed {
		evs = append(evs, p.wireEvent(ev))
	}
	for _, ev := range p.open {
		evs = append(evs, p.wireEvent(ev))
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].FirstTS != evs[j].FirstTS {
			return evs[i].FirstTS < evs[j].FirstTS
		}
		return evs[i].ID < evs[j].ID
	})
	return evs
}

// EventByID returns one event's wire form, or nil if no event (closed
// or open) has that ID right now.
func (p *Processor) EventByID(id string) *core.WireEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retryPending()
	for _, ev := range p.closed {
		if ev.id == id {
			return p.wireEvent(ev)
		}
	}
	for _, ev := range p.open {
		if p.digest(ev) == id {
			return p.wireEvent(ev)
		}
	}
	return nil
}

// wireEvent renders one event. Open events carry their digest-so-far as
// a provisional ID and the "open" status.
func (p *Processor) wireEvent(ev *event) *core.WireEvent {
	id, status := ev.id, ev.status
	if id == "" {
		id, status = p.digest(ev), core.EventOpen
	}
	obs := append([]*observation(nil), ev.obs...)
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].ts != obs[j].ts {
			return obs[i].ts < obs[j].ts
		}
		return obs[i].key < obs[j].key
	})
	w := &core.WireEvent{
		ID:           id,
		Scenario:     p.view.Scenario,
		Status:       status,
		FirstTS:      ev.firstTS,
		LastTS:       ev.lastTS,
		TraceID:      id,
		Observations: make([]core.WireObservation, 0, len(obs)),
		Hypothesis:   ev.result,
		Error:        ev.errMsg,
	}
	for _, o := range obs {
		w.Observations = append(w.Observations, core.WireObservation{
			Key:          o.key,
			TS:           o.ts,
			Kind:         o.kind,
			Pair:         o.pair,
			Detail:       o.detail,
			SuspectLinks: o.suspectLinks,
			SuspectASes:  o.suspectASes,
		})
	}
	return w
}
