// Package binpack implements the primitive binary layer the snapshot
// codecs share: an append-only writer and a sticky-error reader over
// varint-packed integers, booleans, strings and bit sets. It depends on
// nothing, so the igp, bgp, netsim and snapshot packages can all encode
// through it without import cycles.
//
// The format is positional — there are no field tags — so reader and
// writer must agree on the sequence of calls. Every multi-byte integer is
// an unsigned LEB128 varint (signed values go through zig-zag), strings
// and byte blocks are length-prefixed, and bool slices are bit-packed
// eight to a byte. Truncated or over-long input never panics: the reader
// latches io.ErrUnexpectedEOF (or a bounds error) and every later read
// returns zero values, so codecs check Err once at the end.
package binpack

import (
	"encoding/binary"
	"errors"
	"io"
)

// ErrTooLarge is latched by the reader when a length prefix exceeds the
// remaining input — the signature of corrupt or truncated data, caught
// before any oversized allocation happens.
var ErrTooLarge = errors.New("binpack: length prefix exceeds remaining input")

// Writer accumulates an encoded byte stream. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded stream. The slice aliases the writer's
// buffer; encode everything before handing it out.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint appends an unsigned varint.
func (w *Writer) Uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a signed varint (zig-zag encoded).
func (w *Writer) Int(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a single boolean byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bits appends a bool slice bit-packed eight to a byte, length first.
func (w *Writer) Bits(bs []bool) {
	w.Uint(uint64(len(bs)))
	var cur byte
	for i, b := range bs {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			w.buf = append(w.buf, cur)
			cur = 0
		}
	}
	if len(bs)%8 != 0 {
		w.buf = append(w.buf, cur)
	}
}

// Reader consumes a stream produced by Writer. The first decoding error
// sticks: every later read returns zero values and Err reports it.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first error the reader hit, or nil.
func (r *Reader) Err() error { return r.err }

// Fail latches err as the reader's error unless one is already set —
// for codecs that discover semantic corruption (e.g. an element count
// larger than the remaining input) before the positional reads would.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = io.ErrUnexpectedEOF
	}
}

// Uint reads an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	// Fast path: almost every value in the snapshot streams (router IDs,
	// distances, counts) fits one varint byte.
	if r.off < len(r.buf) {
		if b := r.buf[r.off]; b < 0x80 {
			r.off++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed (zig-zag) varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail()
		return false
	}
	b := r.buf[r.off]
	r.off++
	return b != 0
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.err = ErrTooLarge
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bits reads a bit-packed bool slice.
func (r *Reader) Bits() []bool {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	nbytes := (n + 7) / 8
	if nbytes > uint64(r.Remaining()) {
		r.err = ErrTooLarge
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.buf[r.off+i/8]&(1<<(i%8)) != 0
	}
	r.off += int(nbytes)
	return out
}
