package binpack

import (
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Uint(0)
	w.Uint(300)
	w.Uint(1 << 40)
	w.Int(-7)
	w.Int(0)
	w.Int(1 << 33)
	w.Bool(true)
	w.Bool(false)
	w.String("")
	w.String("hello, 世界")
	w.Bits(nil)
	w.Bits([]bool{true})
	w.Bits([]bool{true, false, true, true, false, false, true, false, true})

	r := NewReader(w.Bytes())
	if got := r.Uint(); got != 0 {
		t.Errorf("Uint = %d, want 0", got)
	}
	if got := r.Uint(); got != 300 {
		t.Errorf("Uint = %d, want 300", got)
	}
	if got := r.Uint(); got != 1<<40 {
		t.Errorf("Uint = %d, want 2^40", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d, want -7", got)
	}
	if got := r.Int(); got != 0 {
		t.Errorf("Int = %d, want 0", got)
	}
	if got := r.Int(); got != 1<<33 {
		t.Errorf("Int = %d, want 2^33", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bits(); len(got) != 0 {
		t.Errorf("Bits = %v, want empty", got)
	}
	if got := r.Bits(); len(got) != 1 || !got[0] {
		t.Errorf("Bits = %v, want [true]", got)
	}
	want := []bool{true, false, true, true, false, false, true, false, true}
	got := r.Bits()
	if len(got) != len(want) {
		t.Fatalf("Bits len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Bits[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	var w Writer
	w.String("abcdef")
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Errorf("cut at %d: no error", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uint()
	if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("Err = %v, want unexpected EOF", r.Err())
	}
	// Every later read keeps returning zero values without panicking.
	if r.Bool() || r.String() != "" || r.Bits() != nil || r.Int() != 0 {
		t.Error("reads after error returned non-zero values")
	}
}

func TestOversizedLengthPrefix(t *testing.T) {
	var w Writer
	w.Uint(1 << 30) // claims a gigabyte follows
	r := NewReader(w.Bytes())
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("Err = %v, want ErrTooLarge", r.Err())
	}
	r2 := NewReader(w.Bytes())
	if got := r2.Bits(); got != nil {
		t.Errorf("Bits = %v, want nil", got)
	}
	if !errors.Is(r2.Err(), ErrTooLarge) {
		t.Fatalf("Err = %v, want ErrTooLarge", r2.Err())
	}
}
