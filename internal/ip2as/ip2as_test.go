package ip2as

import (
	"testing"
	"testing/quick"

	"netdiag/internal/topology"
)

func TestLongestPrefixMatch(t *testing.T) {
	tb := New()
	mustInsert := func(cidr string, as topology.ASN) {
		t.Helper()
		if err := tb.Insert(cidr, as); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert("10.0.0.0/8", 100)
	mustInsert("10.1.0.0/16", 200)
	mustInsert("10.1.2.0/24", 300)
	mustInsert("0.0.0.0/0", 1) // default route

	cases := []struct {
		addr string
		want topology.ASN
	}{
		{"10.1.2.3", 300}, // most specific
		{"10.1.9.1", 200}, // /16
		{"10.9.9.9", 100}, // /8
		{"192.0.2.1", 1},  // default
		{"10.1.2.255", 300},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(c.addr)
		if !ok || got != c.want {
			t.Fatalf("Lookup(%s) = %d,%v want %d", c.addr, got, ok, c.want)
		}
	}
	if tb.Len() != 4 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestLookupMissAndErrors(t *testing.T) {
	tb := New()
	if err := tb.Insert("10.0.0.0/24", 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Lookup("11.0.0.1"); ok {
		t.Fatal("address outside all prefixes must miss")
	}
	if _, ok := tb.Lookup("not-an-ip"); ok {
		t.Fatal("junk address must miss")
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0/24", "10.0.0.300/24"} {
		if err := tb.Insert(bad, 1); err == nil {
			t.Fatalf("Insert(%q) should fail", bad)
		}
	}
	// Overwrite does not grow the table.
	if err := tb.Insert("10.0.0.0/24", 6); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", tb.Len())
	}
	if got, _ := tb.Lookup("10.0.0.1"); got != 6 {
		t.Fatalf("overwrite not applied: %d", got)
	}
}

func TestHostRoute(t *testing.T) {
	tb := New()
	if err := tb.Insert("10.0.0.7/32", 9); err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.Lookup("10.0.0.7"); !ok || got != 9 {
		t.Fatalf("host route lookup = %d,%v", got, ok)
	}
	if _, ok := tb.Lookup("10.0.0.8"); ok {
		t.Fatal("neighboring address must miss a /32")
	}
}

func TestFromTopologyMatchesGroundTruth(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := FromTopology(res.Topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Topo.NumRouters(); i++ {
		r := res.Topo.Router(topology.RouterID(i))
		got, ok := tb.Lookup(r.Addr)
		if !ok || got != r.AS {
			t.Fatalf("Lookup(%s) = AS%d,%v; router belongs to AS%d", r.Addr, got, ok, r.AS)
		}
	}
}

func TestParseRoundtripProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		addr := itoa(int(a)) + "." + itoa(int(b)) + "." + itoa(int(c)) + "." + itoa(int(d))
		ip, err := parseIPv4(addr)
		if err != nil {
			return false
		}
		return ip == uint32(a)<<24|uint32(b)<<16|uint32(c)<<8|uint32(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [3]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
