// Package ip2as implements the IP-to-AS mapping the troubleshooter uses to
// derive hop ASes from traceroute addresses (paper §3.1, citing Mao et
// al.'s AS-level traceroute work): a binary trie over announced prefixes
// with longest-prefix-match lookup.
//
// In the simulation every AS owns the /24s covering its routers, so the
// mapping is exact; the package still implements the general mechanism —
// arbitrary prefix lengths, overlaps resolved by longest match — so it
// would work with a real routing table dump.
package ip2as

import (
	"fmt"
	"strconv"
	"strings"

	"netdiag/internal/topology"
)

// Table maps IPv4 addresses to origin ASes by longest-prefix match.
// The zero value is not usable; call New.
type Table struct {
	root *node
	size int
}

type node struct {
	child [2]*node
	as    topology.ASN
	set   bool
}

// New returns an empty table.
func New() *Table { return &Table{root: &node{}} }

// Len returns the number of inserted prefixes.
func (t *Table) Len() int { return t.size }

// Insert adds a CIDR prefix ("10.1.2.0/24") mapping to an AS. Inserting
// the same prefix twice overwrites the mapping.
func (t *Table) Insert(cidr string, as topology.ASN) error {
	ipStr, lenStr, found := strings.Cut(cidr, "/")
	if !found {
		return fmt.Errorf("ip2as: %q is not CIDR notation", cidr)
	}
	bits, err := strconv.Atoi(lenStr)
	if err != nil || bits < 0 || bits > 32 {
		return fmt.Errorf("ip2as: bad prefix length in %q", cidr)
	}
	ip, err := parseIPv4(ipStr)
	if err != nil {
		return err
	}
	cur := t.root
	for i := 0; i < bits; i++ {
		b := (ip >> (31 - i)) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.size++
	}
	cur.as = as
	cur.set = true
	return nil
}

// Lookup returns the AS owning the longest matching prefix for addr.
func (t *Table) Lookup(addr string) (topology.ASN, bool) {
	ip, err := parseIPv4(addr)
	if err != nil {
		return 0, false
	}
	var best topology.ASN
	found := false
	cur := t.root
	for i := 0; i < 32 && cur != nil; i++ {
		if cur.set {
			best, found = cur.as, true
		}
		cur = cur.child[(ip>>(31-i))&1]
	}
	if cur != nil && cur.set {
		best, found = cur.as, true
	}
	return best, found
}

// parseIPv4 converts dotted-quad notation to a uint32.
func parseIPv4(s string) (uint32, error) {
	var ip uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ip2as: %q is not an IPv4 address", s)
	}
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("ip2as: %q is not an IPv4 address", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// FromTopology builds the table a troubleshooter would assemble from the
// announced routes: every AS owns the /24 networks its router addresses
// fall in.
func FromTopology(topo *topology.Topology) (*Table, error) {
	t := New()
	seen := map[string]topology.ASN{}
	for i := 0; i < topo.NumRouters(); i++ {
		r := topo.Router(topology.RouterID(i))
		dot := strings.LastIndexByte(r.Addr, '.')
		if dot < 0 {
			return nil, fmt.Errorf("ip2as: router %d has malformed address %q", r.ID, r.Addr)
		}
		cidr := r.Addr[:dot] + ".0/24"
		if prev, dup := seen[cidr]; dup {
			if prev != r.AS {
				return nil, fmt.Errorf("ip2as: prefix %s claimed by AS%d and AS%d", cidr, prev, r.AS)
			}
			continue
		}
		seen[cidr] = r.AS
		if err := t.Insert(cidr, r.AS); err != nil {
			return nil, err
		}
	}
	return t, nil
}
