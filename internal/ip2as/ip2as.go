// Package ip2as implements the IP-to-AS mapping the troubleshooter uses to
// derive hop ASes from traceroute addresses (paper §3.1, citing Mao et
// al.'s AS-level traceroute work): a binary trie over announced prefixes
// with longest-prefix-match lookup.
//
// In the simulation every AS owns the /24s covering its routers, so the
// mapping is exact; the package still implements the general mechanism —
// arbitrary prefix lengths, overlaps resolved by longest match — so it
// would work with a real routing table dump.
package ip2as

import (
	"fmt"
	"strconv"
	"strings"

	"netdiag/internal/topology"
)

// Table maps IPv4 addresses to origin ASes by longest-prefix match.
// The zero value is not usable; call New.
type Table struct {
	root *node
	size int
}

type node struct {
	child [2]*node
	as    topology.ASN
	set   bool
}

// New returns an empty table.
func New() *Table { return &Table{root: &node{}} }

// Len returns the number of inserted prefixes.
func (t *Table) Len() int { return t.size }

// Insert adds a CIDR prefix ("10.1.2.0/24") mapping to an AS. Inserting
// the same prefix twice overwrites the mapping.
func (t *Table) Insert(cidr string, as topology.ASN) error {
	ipStr, lenStr, found := strings.Cut(cidr, "/")
	if !found {
		return fmt.Errorf("ip2as: %q is not CIDR notation", cidr)
	}
	bits, err := strconv.Atoi(lenStr)
	if err != nil || bits < 0 || bits > 32 {
		return fmt.Errorf("ip2as: bad prefix length in %q", cidr)
	}
	ip, err := parseIPv4(ipStr)
	if err != nil {
		return err
	}
	t.insert(ip, bits, as)
	return nil
}

func (t *Table) insert(ip uint32, bits int, as topology.ASN) {
	cur := t.root
	for i := 0; i < bits; i++ {
		b := (ip >> (31 - i)) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.size++
	}
	cur.as = as
	cur.set = true
}

// Lookup returns the AS owning the longest matching prefix for addr.
func (t *Table) Lookup(addr string) (topology.ASN, bool) {
	ip, err := parseIPv4(addr)
	if err != nil {
		return 0, false
	}
	var best topology.ASN
	found := false
	cur := t.root
	for i := 0; i < 32 && cur != nil; i++ {
		if cur.set {
			best, found = cur.as, true
		}
		cur = cur.child[(ip>>(31-i))&1]
	}
	if cur != nil && cur.set {
		best, found = cur.as, true
	}
	return best, found
}

// parseIPv4 converts dotted-quad notation to a uint32.
func parseIPv4(s string) (uint32, error) {
	var ip uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ip2as: %q is not an IPv4 address", s)
	}
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("ip2as: %q is not an IPv4 address", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// Entry is one prefix-to-AS mapping of a Table in numeric form: the
// prefix's network bits left-aligned in IP, its length in Bits. The
// snapshot codec persists tables this way — no string parsing or
// formatting on the load path.
type Entry struct {
	IP   uint32
	Bits int
	AS   topology.ASN
}

// CIDR renders the entry in the notation Insert accepts.
func (e Entry) CIDR() string { return formatCIDR(e.IP, e.Bits) }

// Entries returns every inserted mapping in deterministic order (a
// depth-first walk of the trie, i.e. sorted by prefix bits, shorter
// prefixes before their longer refinements). Entries and FromEntries
// round-trip a Table exactly; the snapshot codec persists tables this way.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, t.size)
	var walk func(n *node, ip uint32, depth int)
	walk = func(n *node, ip uint32, depth int) {
		if n == nil {
			return
		}
		if n.set {
			out = append(out, Entry{IP: ip, Bits: depth, AS: n.as})
		}
		if depth < 32 {
			walk(n.child[0], ip, depth+1)
			walk(n.child[1], ip|1<<(31-depth), depth+1)
		}
	}
	walk(t.root, 0, 0)
	return out
}

// FromEntries rebuilds a table from an Entries listing. All trie nodes
// come out of one block sized by the worst case (no shared prefixes), so
// the rebuild is a single allocation however many prefixes there are; the
// capacity is exact, so append never moves nodes already pointed to.
func FromEntries(entries []Entry) (*Table, error) {
	worst := 1
	for _, e := range entries {
		if e.Bits < 0 || e.Bits > 32 {
			return nil, fmt.Errorf("ip2as: entry has bad prefix length %d", e.Bits)
		}
		worst += e.Bits
	}
	arena := make([]node, 1, worst)
	t := &Table{root: &arena[0]}
	for _, e := range entries {
		cur := t.root
		for i := 0; i < e.Bits; i++ {
			b := (e.IP >> (31 - i)) & 1
			if cur.child[b] == nil {
				arena = append(arena, node{})
				cur.child[b] = &arena[len(arena)-1]
			}
			cur = cur.child[b]
		}
		if !cur.set {
			t.size++
		}
		cur.as = e.AS
		cur.set = true
	}
	return t, nil
}

func formatCIDR(ip uint32, bits int) string {
	return fmt.Sprintf("%d.%d.%d.%d/%d", ip>>24, ip>>16&0xff, ip>>8&0xff, ip&0xff, bits)
}

// FromTopology builds the table a troubleshooter would assemble from the
// announced routes: every AS owns the /24 networks its router addresses
// fall in.
func FromTopology(topo *topology.Topology) (*Table, error) {
	t := New()
	seen := map[string]topology.ASN{}
	for i := 0; i < topo.NumRouters(); i++ {
		r := topo.Router(topology.RouterID(i))
		dot := strings.LastIndexByte(r.Addr, '.')
		if dot < 0 {
			return nil, fmt.Errorf("ip2as: router %d has malformed address %q", r.ID, r.Addr)
		}
		cidr := r.Addr[:dot] + ".0/24"
		if prev, dup := seen[cidr]; dup {
			if prev != r.AS {
				return nil, fmt.Errorf("ip2as: prefix %s claimed by AS%d and AS%d", cidr, prev, r.AS)
			}
			continue
		}
		seen[cidr] = r.AS
		if err := t.Insert(cidr, r.AS); err != nil {
			return nil, err
		}
	}
	return t, nil
}
