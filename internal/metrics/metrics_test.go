package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

func l(a, b string) core.Link { return core.Link{From: core.Node(a), To: core.Node(b)} }

func TestSensitivity(t *testing.T) {
	f := []core.Link{l("a", "b"), l("c", "d")}
	h := []core.Link{l("a", "b"), l("x", "y")}
	if got := Sensitivity(f, h); got != 0.5 {
		t.Fatalf("sensitivity = %v, want 0.5", got)
	}
	if got := Sensitivity(nil, h); got != 1 {
		t.Fatalf("empty F should give 1, got %v", got)
	}
	if got := Sensitivity(f, nil); got != 0 {
		t.Fatalf("empty H should give 0, got %v", got)
	}
}

func TestSpecificityPaperExample(t *testing.T) {
	// §4: |E|=150, |F|=1, |H|=10 (F ⊂ H) gives 140/149 ≈ 0.939.
	var universe []core.Link
	for i := 0; i < 150; i++ {
		universe = append(universe, core.Link{From: core.Node(rune('A' + i/26)), To: core.Node(string(rune('a'+i%26)) + string(rune('0'+i/26)))})
	}
	failed := universe[:1]
	hyp := universe[:10]
	got := Specificity(universe, failed, hyp)
	want := 140.0 / 149.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("specificity = %v, want %v", got, want)
	}
}

func TestASMetrics(t *testing.T) {
	cov := []topology.ASN{1, 2, 3, 4, 5}
	failed := []topology.ASN{2}
	hyp := []topology.ASN{2, 3}
	if got := ASSensitivity(failed, hyp); got != 1 {
		t.Fatalf("AS-sensitivity = %v", got)
	}
	if got := ASSpecificity(cov, failed, hyp); got != 0.75 {
		t.Fatalf("AS-specificity = %v, want 0.75 (3 of 4 non-failed left out)", got)
	}
	if got := ASSensitivity([]topology.ASN{9}, hyp); got != 0 {
		t.Fatalf("missing AS should give 0, got %v", got)
	}
}

func TestDistBasics(t *testing.T) {
	d := &Dist{}
	for _, v := range []float64{0.2, 0.4, 0.4, 1.0} {
		d.Add(v)
	}
	if d.N() != 4 {
		t.Fatal("N")
	}
	if got := d.Mean(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if got := d.Quantile(0.5); got != 0.4 {
		t.Fatalf("median = %v", got)
	}
	if got := d.CDFAt(0.4); got != 0.75 {
		t.Fatalf("CDF(0.4) = %v, want 0.75", got)
	}
	if got := d.CDFAt(0.39); got != 0.25 {
		t.Fatalf("CDF(0.39) = %v, want 0.25", got)
	}
	if got := d.FracAtLeast(0.4); got != 0.75 {
		t.Fatalf("FracAtLeast(0.4) = %v", got)
	}
	pts := d.CDF()
	if len(pts) != 3 || pts[len(pts)-1].P != 1.0 {
		t.Fatalf("CDF points = %v", pts)
	}
}

func TestDistCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := &Dist{}
		for i := 0; i < 50; i++ {
			d.Add(rng.Float64())
		}
		pts := d.CDF()
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P < pts[i-1].P {
				return false
			}
		}
		return pts[len(pts)-1].P == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecificityBoundsProperty(t *testing.T) {
	// Specificity and sensitivity always land in [0,1] for arbitrary
	// subsets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var universe []core.Link
		for i := 0; i < 30; i++ {
			universe = append(universe, core.Link{
				From: core.Node(rune('a' + rng.Intn(10))),
				To:   core.Node(rune('A' + i)),
			})
		}
		pick := func() []core.Link {
			var out []core.Link
			for _, l := range universe {
				if rng.Intn(3) == 0 {
					out = append(out, l)
				}
			}
			return out
		}
		fl, h := pick(), pick()
		se := Sensitivity(fl, h)
		sp := Specificity(universe, fl, h)
		return se >= 0 && se <= 1 && sp >= 0 && sp <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAsciiCDF(t *testing.T) {
	d := &Dist{}
	d.Add(0.5)
	out := AsciiCDF("demo", map[string]*Dist{"one": d}, 5)
	if out == "" || len(out) < 10 {
		t.Fatalf("AsciiCDF output too short: %q", out)
	}
}

func TestEmptyDistSafe(t *testing.T) {
	d := &Dist{}
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.CDFAt(1) != 0 || d.FracAtLeast(0) != 0 {
		t.Fatal("empty Dist should return zeros")
	}
	if d.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}
