// Package metrics implements the evaluation metrics of the paper (§4):
// sensitivity and specificity over links, their AS-level variants, and the
// distribution helpers (CDFs, means) used to reproduce the figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

// Sensitivity is |F ∩ H| / |F|: the fraction of actually failed links the
// hypothesis recovers. It returns 1 for an empty F (nothing to find).
func Sensitivity(failed, hypothesis []core.Link) float64 {
	if len(failed) == 0 {
		return 1
	}
	h := toSet(hypothesis)
	tp := 0
	for _, f := range failed {
		if h[f] {
			tp++
		}
	}
	return float64(tp) / float64(len(failed))
}

// Specificity is |(E\F) ∩ (E\H)| / |E\F|: the fraction of non-failed
// probed links the hypothesis correctly leaves out. It returns 1 when
// every probed link failed.
func Specificity(universe, failed, hypothesis []core.Link) float64 {
	f := toSet(failed)
	h := toSet(hypothesis)
	nonFailed, trueNeg := 0, 0
	for _, l := range universe {
		if f[l] {
			continue
		}
		nonFailed++
		if !h[l] {
			trueNeg++
		}
	}
	if nonFailed == 0 {
		return 1
	}
	return float64(trueNeg) / float64(nonFailed)
}

// ASSensitivity is the AS-granularity sensitivity: the fraction of ASes
// containing failed links that appear in the hypothesis AS set.
func ASSensitivity(failedASes, hypASes []topology.ASN) float64 {
	if len(failedASes) == 0 {
		return 1
	}
	h := toASSet(hypASes)
	tp := 0
	for _, a := range failedASes {
		if h[a] {
			tp++
		}
	}
	return float64(tp) / float64(len(failedASes))
}

// ASSpecificity is the AS-granularity specificity over the ASes covered by
// the probes.
func ASSpecificity(coveredASes, failedASes, hypASes []topology.ASN) float64 {
	f := toASSet(failedASes)
	h := toASSet(hypASes)
	nonFailed, trueNeg := 0, 0
	for _, a := range coveredASes {
		if f[a] {
			continue
		}
		nonFailed++
		if !h[a] {
			trueNeg++
		}
	}
	if nonFailed == 0 {
		return 1
	}
	return float64(trueNeg) / float64(nonFailed)
}

func toSet(ls []core.Link) map[core.Link]bool {
	m := make(map[core.Link]bool, len(ls))
	for _, l := range ls {
		m[l] = true
	}
	return m
}

func toASSet(as []topology.ASN) map[topology.ASN]bool {
	m := make(map[topology.ASN]bool, len(as))
	for _, a := range as {
		m[a] = true
	}
	return m
}

// Dist is a collection of metric samples with distribution helpers.
type Dist struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.vals) }

// Mean returns the sample mean (0 for an empty distribution).
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.vals {
		s += v
	}
	return s / float64(len(d.vals))
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.ensureSorted()
	idx := int(math.Ceil(q*float64(len(d.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d.vals) {
		idx = len(d.vals) - 1
	}
	return d.vals[idx]
}

// FracAtLeast returns the fraction of samples >= x.
func (d *Dist) FracAtLeast(x float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	n := 0
	for _, v := range d.vals {
		if v >= x {
			n++
		}
	}
	return float64(n) / float64(len(d.vals))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples <= X
}

// CDF returns the empirical CDF evaluated at each distinct sample value.
func (d *Dist) CDF() []CDFPoint {
	if len(d.vals) == 0 {
		return nil
	}
	d.ensureSorted()
	var out []CDFPoint
	n := float64(len(d.vals))
	for i := 0; i < len(d.vals); i++ {
		if i+1 < len(d.vals) && d.vals[i+1] == d.vals[i] {
			continue
		}
		out = append(out, CDFPoint{X: d.vals[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt returns P(sample <= x).
func (d *Dist) CDFAt(x float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.ensureSorted()
	i := sort.SearchFloat64s(d.vals, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(d.vals))
}

// String summarizes the distribution for logs.
func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p10=%.3f p50=%.3f p90=%.3f",
		d.N(), d.Mean(), d.Quantile(0.10), d.Quantile(0.50), d.Quantile(0.90))
}

// AsciiCDF renders a compact terminal plot of one or more CDFs over [0,1]
// values, sampling P(value <= x) on a fixed grid. Used by cmd/ndsim to
// show the reproduced figures without a plotting stack.
func AsciiCDF(title string, series map[string]*Dist, width int) string {
	if width <= 0 {
		width = 11
	}
	var names []string
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s", "x:")
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, " %5.2f", float64(i)/float64(width-1))
	}
	b.WriteByte('\n')
	for _, n := range names {
		d := series[n]
		fmt.Fprintf(&b, "%-28s", "CDF "+n+":")
		for i := 0; i < width; i++ {
			x := float64(i) / float64(width-1)
			fmt.Fprintf(&b, " %5.2f", d.CDFAt(x))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
