package snapshot

import (
	"testing"

	"netdiag/internal/ip2as"
	"netdiag/internal/netsim"
	"netdiag/internal/topology"
)

// The worker-start pair below is what cmd/benchjson derives the
// BENCH_pipeline.json "snapshot" section from: cold is the full
// SPF+BGP+mesh convergence a fresh worker pays without a snapshot dir,
// load is the decode path that replaces it.

func BenchmarkSnapshotEncode(b *testing.B) {
	for _, name := range []string{"fig1", "fig2"} {
		b.Run(name, func(b *testing.B) {
			w := buildWorld(b, name)
			s := &Snapshot{Scenario: name, Sensors: w.sensors, Net: w.net, Mesh: w.mesh, IP2AS: w.table}
			data, err := Encode(s)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	for _, name := range []string{"fig1", "fig2"} {
		b.Run(name, func(b *testing.B) {
			w := buildWorld(b, name)
			data := encodeWorld(b, name, w)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data, w.topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkerStartCold measures what a snapshot-less worker pays per
// scenario: converge the network (SPF + BGP fixpoint) and measure the
// healthy mesh plus the ip2as table.
func BenchmarkWorkerStartCold(b *testing.B) {
	for _, name := range []string{"fig1", "fig2"} {
		b.Run(name, func(b *testing.B) {
			topo, sensors := scenarioTopo(b, name)
			var origins []topology.ASN
			seen := map[topology.ASN]bool{}
			for _, s := range sensors {
				if as := topo.RouterAS(s); !seen[as] {
					seen[as] = true
					origins = append(origins, as)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := netsim.New(topo, origins)
				if err != nil {
					b.Fatal(err)
				}
				_ = net.Mesh(sensors)
				if _, err := ip2as.FromTopology(topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkerStartLoad measures the snapshot path replacing the cold
// start: one Decode rebuilds the converged network, the mesh and the
// ip2as table from bytes.
func BenchmarkWorkerStartLoad(b *testing.B) {
	for _, name := range []string{"fig1", "fig2"} {
		b.Run(name, func(b *testing.B) {
			w := buildWorld(b, name)
			data := encodeWorld(b, name, w)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data, w.topo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
