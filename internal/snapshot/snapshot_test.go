package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"netdiag/internal/ip2as"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// scenarioWorld mirrors what the serving layer converges per scenario:
// the network announcing one prefix per sensor AS, the healthy mesh, and
// the IP-to-AS table.
type scenarioWorld struct {
	topo    *topology.Topology
	sensors []topology.RouterID
	net     *netsim.Network
	mesh    *probe.Mesh
	table   *ip2as.Table
}

func buildWorld(tb testing.TB, name string) *scenarioWorld {
	tb.Helper()
	topo, sensors := scenarioTopo(tb, name)
	var origins []topology.ASN
	seen := map[topology.ASN]bool{}
	for _, s := range sensors {
		if as := topo.RouterAS(s); !seen[as] {
			seen[as] = true
			origins = append(origins, as)
		}
	}
	net, err := netsim.New(topo, origins)
	if err != nil {
		tb.Fatal(err)
	}
	mesh := net.Mesh(sensors)
	table, err := ip2as.FromTopology(topo)
	if err != nil {
		tb.Fatal(err)
	}
	return &scenarioWorld{topo: topo, sensors: sensors, net: net, mesh: mesh, table: table}
}

// scenarioTopo builds a scenario's topology from scratch, as a separate
// worker process would — decode must accept a structurally identical
// topology, not just the identical pointer.
func scenarioTopo(tb testing.TB, name string) (*topology.Topology, []topology.RouterID) {
	tb.Helper()
	switch name {
	case "fig1":
		fig := topology.BuildFig1()
		return fig.Topo, []topology.RouterID{fig.S1, fig.S2, fig.S3}
	case "fig2":
		fig := topology.BuildFig2()
		return fig.Topo, []topology.RouterID{fig.S1, fig.S2, fig.S3}
	}
	tb.Fatalf("unknown scenario %q", name)
	return nil, nil
}

func encodeWorld(tb testing.TB, name string, w *scenarioWorld) []byte {
	tb.Helper()
	data, err := Encode(&Snapshot{
		Scenario: name,
		Sensors:  w.sensors,
		Net:      w.net,
		Mesh:     w.mesh,
		IP2AS:    w.table,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func meshesEqual(tb testing.TB, a, b *probe.Mesh) {
	tb.Helper()
	if len(a.Sensors) != len(b.Sensors) {
		tb.Fatalf("sensor count %d vs %d", len(a.Sensors), len(b.Sensors))
	}
	for i := range a.Sensors {
		for j := range a.Sensors {
			if i == j {
				continue
			}
			pa, pb := a.Paths[i][j], b.Paths[i][j]
			if pa.OK != pb.OK || pa.Src != pb.Src || pa.Dst != pb.Dst || len(pa.Hops) != len(pb.Hops) {
				tb.Fatalf("pair (%d,%d): path shape differs: %+v vs %+v", i, j, pa, pb)
			}
			for k := range pa.Hops {
				if pa.Hops[k] != pb.Hops[k] {
					tb.Fatalf("pair (%d,%d) hop %d: %+v vs %+v", i, j, k, pa.Hops[k], pb.Hops[k])
				}
			}
		}
	}
}

// TestGoldenRoundTrip pins the codec's core contract: encode a converged
// scenario, decode it against a freshly rebuilt topology, and get back
// IGP tables, BGP routes, mesh and ip2as mappings identical to the live
// network's — then verify the decoded network reconverges a failure to
// the same routing state a live fork does.
func TestGoldenRoundTrip(t *testing.T) {
	for _, name := range []string{"fig1", "fig2"} {
		t.Run(name, func(t *testing.T) {
			w := buildWorld(t, name)
			data := encodeWorld(t, name, w)

			freshTopo, _ := scenarioTopo(t, name)
			if TopoDigest(freshTopo) != TopoDigest(w.topo) {
				t.Fatal("rebuilt topology digests differently")
			}
			got, err := Decode(data, freshTopo)
			if err != nil {
				t.Fatal(err)
			}
			if got.Scenario != name {
				t.Errorf("Scenario = %q, want %q", got.Scenario, name)
			}
			if len(got.Sensors) != len(w.sensors) {
				t.Fatalf("sensor count %d, want %d", len(got.Sensors), len(w.sensors))
			}
			if !got.Net.IGP().TablesEqual(w.net.IGP()) {
				t.Error("decoded IGP tables differ from live ones")
			}
			if diffs := got.Net.BGP().DiffRoutes(w.net.BGP(), 5); len(diffs) > 0 {
				t.Errorf("decoded BGP routes differ: %v", diffs)
			}
			meshesEqual(t, got.Mesh, w.mesh)
			for i := 0; i < w.topo.NumRouters(); i++ {
				addr := w.topo.Router(topology.RouterID(i)).Addr
				wantAS, wantOK := w.table.Lookup(addr)
				gotAS, gotOK := got.IP2AS.Lookup(addr)
				if wantAS != gotAS || wantOK != gotOK {
					t.Errorf("ip2as lookup %q: (%d,%v) vs (%d,%v)", addr, gotAS, gotOK, wantAS, wantOK)
				}
			}

			// The decoded network must behave like the live one under a
			// later failure: fail the same intra-AS link on forks of both
			// and compare the reconverged state and measurements.
			var link topology.LinkID = -1
			for _, l := range w.topo.Links() {
				if l.Kind == topology.Intra {
					link = l.ID
					break
				}
			}
			if link < 0 {
				t.Fatal("scenario has no intra-AS link")
			}
			liveFork, decFork := w.net.Fork(), got.Net.Fork()
			liveFork.FailLink(link)
			decFork.FailLink(link)
			if err := liveFork.Reconverge(); err != nil {
				t.Fatal(err)
			}
			if err := decFork.Reconverge(); err != nil {
				t.Fatal(err)
			}
			if !decFork.IGP().TablesEqual(liveFork.IGP()) {
				t.Error("post-failure IGP tables diverge")
			}
			if diffs := decFork.BGP().DiffRoutes(liveFork.BGP(), 5); len(diffs) > 0 {
				t.Errorf("post-failure BGP routes diverge: %v", diffs)
			}
			meshesEqual(t, decFork.Mesh(got.Sensors), liveFork.Mesh(w.sensors))
		})
	}
}

// resign recomputes the trailing digest after a deliberate mutation, so
// tests can reach the checks behind the integrity layer.
func resign(data []byte) {
	sum := crc32.Checksum(data[:len(data)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	w := buildWorld(t, "fig1")
	data := encodeWorld(t, "fig1", w)
	data[0] ^= 0xff
	resign(data)
	if _, err := Decode(data, w.topo); !errors.Is(err, ErrMagic) {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
	if _, err := Decode([]byte("nd"), w.topo); !errors.Is(err, ErrMagic) {
		t.Fatalf("tiny input: err = %v, want ErrMagic", err)
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	w := buildWorld(t, "fig1")
	data := encodeWorld(t, "fig1", w)
	// The version is the first payload varint after the 4-byte magic.
	if data[4] != Version {
		t.Fatalf("unexpected version byte %d", data[4])
	}
	data[4] = Version + 1
	resign(data)
	if _, err := Decode(data, w.topo); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsCorruptAndTruncated(t *testing.T) {
	w := buildWorld(t, "fig2")
	data := encodeWorld(t, "fig2", w)
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(flipped, w.topo); !errors.Is(err, ErrDigest) {
		t.Fatalf("corrupt byte: err = %v, want ErrDigest", err)
	}
	for _, cut := range []int{0, 3, 11, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut], w.topo); err == nil {
			t.Errorf("truncated at %d: decode succeeded", cut)
		}
	}
}

func TestDecodeRejectsTopologyMismatch(t *testing.T) {
	w := buildWorld(t, "fig1")
	data := encodeWorld(t, "fig1", w)
	other, _ := scenarioTopo(t, "fig2")
	if _, err := Decode(data, other); !errors.Is(err, ErrTopology) {
		t.Fatalf("err = %v, want ErrTopology", err)
	}
}
