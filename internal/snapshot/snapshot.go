// Package snapshot implements the persistent form of a converged
// scenario: a compact, versioned binary encoding of a netsim.Network
// together with the derived artifacts a diagnosis service needs (the
// pre-failure traceroute mesh and the IP-to-AS table). ndserve writes one
// at first convergence and later workers Decode it to skip SPF and the
// BGP fixpoint entirely — the fleet's near-zero cold start.
//
// The wire layout is:
//
//	magic "NDSN" | payload (binpack) | crc32c digest of everything before
//
// and the payload opens with the format version and a digest of the
// topology it was encoded against, so a reader can reject foreign files,
// future versions, corrupt bytes and topology mismatches before touching
// any state. Everything inside is positional binpack — see the igp, bgp
// and netsim codecs for the per-layer formats.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"sync"

	"netdiag/internal/binpack"
	"netdiag/internal/ip2as"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// Version is the snapshot format version this package reads and writes.
// Any layout change to the payload or the per-layer codecs must bump it.
const Version = 1

var magic = [4]byte{'N', 'D', 'S', 'N'}

// castagnoli is the CRC-32C table the envelope digest uses; the
// polynomial has hardware support on both amd64 and arm64, so integrity
// checking costs almost nothing on the load path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrMagic means the input is not a snapshot file at all.
	ErrMagic = errors.New("snapshot: bad magic")
	// ErrVersion means the snapshot was written by a different format
	// version; the caller should fall back to cold convergence.
	ErrVersion = errors.New("snapshot: format version mismatch")
	// ErrDigest means the bytes are corrupt or truncated.
	ErrDigest = errors.New("snapshot: digest mismatch")
	// ErrTopology means the snapshot was encoded against a different
	// topology than the one offered at decode time.
	ErrTopology = errors.New("snapshot: topology mismatch")
)

// Snapshot is the unit of persistence: one converged scenario.
type Snapshot struct {
	// Scenario names the scenario the snapshot belongs to.
	Scenario string
	// Sensors is the sensor set the mesh was measured over.
	Sensors []topology.RouterID
	// Net is the converged network.
	Net *netsim.Network
	// Mesh is the healthy (T-) full mesh among Sensors.
	Mesh *probe.Mesh
	// IP2AS maps hop addresses to ASes.
	IP2AS *ip2as.Table
}

// Encode renders the snapshot into its versioned binary form.
func Encode(s *Snapshot) ([]byte, error) {
	var w binpack.Writer
	w.Uint(Version)
	w.Uint(TopoDigest(s.Net.Topology()))
	w.String(s.Scenario)
	w.Uint(uint64(len(s.Sensors)))
	for _, r := range s.Sensors {
		w.Uint(uint64(r))
	}
	if err := s.Net.AppendState(&w); err != nil {
		return nil, err
	}
	if err := appendMesh(&w, s.Mesh); err != nil {
		return nil, err
	}
	entries := s.IP2AS.Entries()
	w.Uint(uint64(len(entries)))
	for _, e := range entries {
		w.Uint(uint64(e.IP))
		w.Uint(uint64(e.Bits))
		w.Uint(uint64(e.AS))
	}

	out := make([]byte, 0, 4+w.Len()+4)
	out = append(out, magic[:]...)
	out = append(out, w.Bytes()...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli)), nil
}

// Decode parses an Encode stream back into a live snapshot over the given
// topology. Options apply to the rebuilt network exactly as netsim.New
// would (parallelism, SPF cache, telemetry, incremental reconvergence).
// It fails with ErrMagic/ErrVersion/ErrDigest/ErrTopology on foreign,
// future, corrupt or mismatched input.
func Decode(data []byte, topo *topology.Topology, opts ...netsim.Option) (*Snapshot, error) {
	if len(data) < len(magic)+4 {
		return nil, ErrMagic
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, ErrMagic
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrDigest
	}
	r := binpack.NewReader(body[len(magic):])
	if v := r.Uint(); v != Version {
		return nil, fmt.Errorf("%w: file has v%d, reader has v%d", ErrVersion, v, Version)
	}
	if d := r.Uint(); d != TopoDigest(topo) {
		return nil, ErrTopology
	}
	s := &Snapshot{Scenario: r.String()}
	nsensors := r.Uint()
	if nsensors > uint64(r.Remaining()) {
		r.Fail(binpack.ErrTooLarge)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding header: %w", err)
	}
	s.Sensors = make([]topology.RouterID, nsensors)
	for i := range s.Sensors {
		id := r.Uint()
		if r.Err() == nil && id >= uint64(topo.NumRouters()) {
			return nil, fmt.Errorf("snapshot: sensor router %d not in topology", id)
		}
		s.Sensors[i] = topology.RouterID(id)
	}
	net, err := netsim.DecodeNetwork(r, topo, opts...)
	if err != nil {
		return nil, err
	}
	s.Net = net
	mesh, err := decodeMesh(r, topo, s.Sensors)
	if err != nil {
		return nil, err
	}
	s.Mesh = mesh
	nentries := r.Uint()
	if nentries > uint64(r.Remaining()) {
		r.Fail(binpack.ErrTooLarge)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding ip2as table: %w", err)
	}
	entries := make([]ip2as.Entry, nentries)
	for i := range entries {
		entries[i] = ip2as.Entry{IP: uint32(r.Uint()), Bits: int(r.Uint()), AS: topology.ASN(r.Uint())}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding ip2as table: %w", err)
	}
	table, err := ip2as.FromEntries(entries)
	if err != nil {
		return nil, err
	}
	s.IP2AS = table
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after payload", r.Remaining())
	}
	return s, nil
}

// appendMesh encodes the T- mesh: per ordered sensor pair, the path's OK
// flag and its hop router IDs. Addresses and hop ASes are reconstituted
// from the topology at decode time, which requires the mesh to be the
// simulator's ground-truth measurement (no unidentified hops — the T-
// mesh of a healthy network never has any).
func appendMesh(w *binpack.Writer, m *probe.Mesh) error {
	// The total hop count leads so the decoder can size its hop arena
	// exactly before walking the pairs.
	total := 0
	for i := range m.Sensors {
		for j := range m.Sensors {
			if i != j && m.Paths[i][j] != nil {
				total += len(m.Paths[i][j].Hops)
			}
		}
	}
	w.Uint(uint64(total))
	for i := range m.Sensors {
		for j := range m.Sensors {
			if i == j {
				continue
			}
			p := m.Paths[i][j]
			if p == nil {
				return fmt.Errorf("snapshot: mesh pair (%d,%d) has no path", i, j)
			}
			w.Bool(p.OK)
			w.Uint(uint64(len(p.Hops)))
			for _, h := range p.Hops {
				if h.Unidentified {
					return fmt.Errorf("snapshot: mesh pair (%d,%d) has unidentified hop", i, j)
				}
				w.Uint(uint64(h.Router))
			}
		}
	}
	return nil
}

func decodeMesh(r *binpack.Reader, topo *topology.Topology, sensors []topology.RouterID) (*probe.Mesh, error) {
	m := &probe.Mesh{
		Sensors: sensors,
		Paths:   make([][]*probe.Path, len(sensors)),
	}
	// One Path block for all ordered pairs, and one exactly-sized hop
	// arena the paths sub-slice — the leading total makes both single
	// allocations.
	total := r.Uint()
	if total > uint64(r.Remaining()) {
		r.Fail(binpack.ErrTooLarge)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding mesh: %w", err)
	}
	paths := make([]probe.Path, len(sensors)*len(sensors))
	hops := make([]probe.Hop, 0, total)
	prows := make([]*probe.Path, len(sensors)*len(sensors))
	for i := range m.Paths {
		m.Paths[i] = prows[i*len(sensors) : (i+1)*len(sensors)]
	}
	for i := range sensors {
		for j := range sensors {
			if i == j {
				continue
			}
			p := &paths[i*len(sensors)+j]
			*p = probe.Path{Src: sensors[i], Dst: sensors[j], OK: r.Bool()}
			nhops := r.Uint()
			if nhops > uint64(r.Remaining()) {
				r.Fail(binpack.ErrTooLarge)
			}
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("snapshot: decoding mesh: %w", err)
			}
			start := len(hops)
			for k := uint64(0); k < nhops; k++ {
				id := r.Uint()
				if r.Err() != nil {
					break
				}
				if id >= uint64(topo.NumRouters()) {
					return nil, fmt.Errorf("snapshot: mesh hop router %d not in topology", id)
				}
				rt := topo.Router(topology.RouterID(id))
				hops = append(hops, probe.Hop{Addr: rt.Addr, Router: rt.ID, AS: rt.AS})
			}
			p.Hops = hops[start:len(hops):len(hops)]
			m.Paths[i][j] = p
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding mesh: %w", err)
	}
	return m, nil
}

// topoDigests memoizes TopoDigest per topology value. Topologies are
// immutable after Build, so the digest of a given pointer never changes;
// a fleet worker decoding several scenario snapshots against one shared
// topology pays the canonical enumeration once.
var topoDigests sync.Map // *topology.Topology -> uint64

// TopoDigest hashes a topology's canonical enumeration — ASes, routers,
// links, costs and business relationships — into the fingerprint the
// snapshot header carries. Two topologies digest equal exactly when every
// structural attribute the routing layers read is identical.
func TopoDigest(t *topology.Topology) uint64 {
	if d, ok := topoDigests.Load(t); ok {
		return d.(uint64)
	}
	d := computeTopoDigest(t)
	topoDigests.Store(t, d)
	return d
}

func computeTopoDigest(t *topology.Topology) uint64 {
	var w binpack.Writer
	w.Uint(uint64(t.NumRouters()))
	w.Uint(uint64(t.NumLinks()))
	asns := t.ASNumbers()
	w.Uint(uint64(len(asns)))
	for _, asn := range asns {
		as := t.AS(asn)
		w.Uint(uint64(as.Num))
		w.Uint(uint64(as.Kind))
		w.String(as.Name)
		w.Uint(uint64(len(as.Routers)))
		for _, r := range as.Routers {
			w.Uint(uint64(r))
		}
	}
	for i := 0; i < t.NumRouters(); i++ {
		r := t.Router(topology.RouterID(i))
		w.Uint(uint64(r.AS))
		w.String(r.Name)
		w.String(r.Addr)
		w.Uint(uint64(len(r.Links)))
		for _, l := range r.Links {
			w.Uint(uint64(l))
		}
	}
	for i := 0; i < t.NumLinks(); i++ {
		l := t.Link(topology.LinkID(i))
		w.Uint(uint64(l.A))
		w.Uint(uint64(l.B))
		w.Int(int64(l.Cost))
		w.Uint(uint64(l.Kind))
		if l.Kind == topology.Inter {
			a, b := t.RouterAS(l.A), t.RouterAS(l.B)
			w.Uint(uint64(t.Rel(a, b)))
			w.Uint(uint64(t.Rel(b, a)))
		}
	}
	h := fnv.New64a()
	h.Write(w.Bytes())
	return h.Sum64()
}
