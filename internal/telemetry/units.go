package telemetry

import "strings"

// This file is the single place the pipeline's duration unit is
// normalized. Durations are RECORDED in nanoseconds — int64 histograms
// and spans keep the hot path a pair of atomic ops with no float math —
// and EXPOSED in seconds everywhere a human or a scraper reads them:
// the /metrics Prometheus exposition (prom.go), the /debug/vars
// histogram snapshots (sum_seconds / mean_seconds), the /debug/traces
// span views (start_s / duration_s) and the structured access logs.
// Nanosecond-valued metrics are marked by the "_ns" name suffix; every
// exposition surface renames them to "_seconds" via SecondsName and
// converts values via Seconds, so no reader ever sees a mixed-unit
// report.

// nsPerSecond converts recorded nanoseconds to exposed seconds.
const nsPerSecond = 1e9

// durationSuffix marks nanosecond-valued metric names.
const durationSuffix = "_ns"

// Seconds converts a recorded nanosecond value to exposition seconds.
func Seconds(ns int64) float64 { return float64(ns) / nsPerSecond }

// IsDurationMetric reports whether the metric name declares nanosecond
// values (the "_ns" suffix convention).
func IsDurationMetric(name string) bool { return strings.HasSuffix(name, durationSuffix) }

// SecondsName rewrites a nanosecond-valued metric name to its exposition
// name: "server.request_ns" becomes "server.request_seconds". Names
// without the "_ns" suffix are returned unchanged.
func SecondsName(name string) string {
	if IsDurationMetric(name) {
		return strings.TrimSuffix(name, durationSuffix) + "_seconds"
	}
	return name
}
