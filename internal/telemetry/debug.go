package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// published maps an expvar name to the registry pointer currently behind
// it. expvar.Publish panics on duplicate names, so the indirection makes
// PublishExpvar idempotent: republishing (tests, server restarts) swaps
// the pointer instead of registering a second var.
var published sync.Map // string -> *atomic.Pointer[Registry]

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (served at /debug/vars). Calling it again with the same name
// atomically redirects the var to the new registry. Publishing a nil
// registry is valid and serves empty snapshots.
//
//ndlint:ignore nilhandle nil-safe without a guard: r is only stored, and Snapshot nil-guards every read
func (r *Registry) PublishExpvar(name string) {
	p, loaded := published.LoadOrStore(name, &atomic.Pointer[Registry]{})
	ptr := p.(*atomic.Pointer[Registry])
	ptr.Store(r)
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			return ptr.Load().Snapshot()
		}))
	}
}

// DebugHandler returns the debug mux: expvar at /debug/vars (every
// published var, including the Go runtime's memstats) and the pprof
// endpoints under /debug/pprof/.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeDebug publishes the registry under the expvar name "netdiag" and
// starts the debug server on addr (":0" picks a free port), serving
// /debug/vars, /debug/pprof and a Prometheus /metrics exposition of the
// same registry. The server runs until Close.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	r.PublishExpvar("netdiag")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", DebugHandler())
	mux.Handle("GET /metrics", PromHandler(r))
	s := &DebugServer{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the listen address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }
