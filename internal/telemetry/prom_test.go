package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte on a small
// registry: sorted sections, sanitized names, cumulative buckets, and
// the ns→seconds unit normalization on "_ns" metrics.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("server.requests_total").Add(3)
	r.Counter("front.proxied").Add(1)
	r.Gauge("pool.queue_depth").Set(2)
	r.Gauge("front.shard0_probe_ns").Set(1_500_000_000) // 1.5s
	h := r.Histogram("server.request_ns", DurationBuckets)
	h.Observe(500)  // <= 1µs bucket
	h.Observe(1500) // <= 10µs bucket
	r.Histogram("bgp.rounds", []int64{1, 2, 4}).Observe(3)
	r.Derive("server.hit_ratio", func(Snapshot) float64 { return 0.5 })

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE front_proxied counter",
		"front_proxied 1",
		"# TYPE server_requests_total counter",
		"server_requests_total 3",
		"# TYPE front_shard0_probe_seconds gauge",
		"front_shard0_probe_seconds 1.5",
		"# TYPE pool_queue_depth gauge",
		"pool_queue_depth 2",
		"# TYPE bgp_rounds histogram",
		`bgp_rounds_bucket{le="1"} 0`,
		`bgp_rounds_bucket{le="2"} 0`,
		`bgp_rounds_bucket{le="4"} 1`,
		`bgp_rounds_bucket{le="+Inf"} 1`,
		"bgp_rounds_sum 3",
		"bgp_rounds_count 1",
		"# TYPE server_request_seconds histogram",
		`server_request_seconds_bucket{le="1e-06"} 1`,
		`server_request_seconds_bucket{le="1e-05"} 2`,
		`server_request_seconds_bucket{le="0.0001"} 2`,
		`server_request_seconds_bucket{le="0.001"} 2`,
		`server_request_seconds_bucket{le="0.01"} 2`,
		`server_request_seconds_bucket{le="0.1"} 2`,
		`server_request_seconds_bucket{le="1"} 2`,
		`server_request_seconds_bucket{le="10"} 2`,
		`server_request_seconds_bucket{le="+Inf"} 2`,
		"server_request_seconds_sum 2e-06",
		"server_request_seconds_count 2",
		"# TYPE server_hit_ratio gauge",
		"server_hit_ratio 0.5",
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromHandler covers the HTTP wrapper, including the nil-registry
// (empty but valid) exposition.
func TestPromHandler(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	w := httptest.NewRecorder()
	PromHandler(r).ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(w.Body.String(), "# TYPE c counter\nc 1\n") {
		t.Errorf("body missing counter family:\n%s", w.Body.String())
	}

	w = httptest.NewRecorder()
	PromHandler(nil).ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 || w.Body.Len() != 0 {
		t.Errorf("nil registry = %d %q, want 200 with empty exposition", w.Code, w.Body.String())
	}
}

// TestSecondsNormalization pins the single unit seam: names, values and
// the /debug/vars snapshot fields all agree on seconds.
func TestSecondsNormalization(t *testing.T) {
	if SecondsName("pool.queue_wait_ns") != "pool.queue_wait_seconds" {
		t.Errorf("SecondsName(pool.queue_wait_ns) = %q", SecondsName("pool.queue_wait_ns"))
	}
	if SecondsName("bgp.rounds") != "bgp.rounds" {
		t.Errorf("SecondsName must leave non-duration names alone")
	}
	if Seconds(2_500_000_000) != 2.5 {
		t.Errorf("Seconds(2.5e9 ns) = %v, want 2.5", Seconds(2_500_000_000))
	}
	r := New()
	r.Histogram("x.wait_ns", DurationBuckets).Observe(500_000_000)
	hs := r.Snapshot().Histograms["x.wait_ns"]
	if hs.SumSeconds != 0.5 || hs.MeanSeconds != 0.5 {
		t.Errorf("snapshot seconds view = sum %v mean %v, want 0.5/0.5", hs.SumSeconds, hs.MeanSeconds)
	}
	if r.Snapshot().Histograms["x.wait_ns"].Sum != 500_000_000 {
		t.Errorf("recorded unit must stay nanoseconds")
	}
}
