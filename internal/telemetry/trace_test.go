package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 || !ValidTraceID(id) {
			t.Fatalf("NewTraceID() = %q, want 16 valid hex chars", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "0123abcd", "A-Z_09", "deadbeefdeadbeef"} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", "q√", string(long)} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestContextTracePlumbing(t *testing.T) {
	ctx := context.Background()
	if got := TraceFromContext(ctx); got != nil {
		t.Fatalf("TraceFromContext(plain ctx) = %v, want nil", got)
	}
	if got := ContextWithTrace(ctx, nil); got != ctx {
		t.Fatal("ContextWithTrace(ctx, nil) must return ctx unchanged (zero-alloc disabled path)")
	}
	tr := NewRequestTrace("abc123")
	ctx2 := ContextWithTrace(ctx, tr)
	if got := TraceFromContext(ctx2); got != tr {
		t.Fatalf("TraceFromContext round-trip = %v, want the trace", got)
	}
	if tr.ID() != "abc123" {
		t.Errorf("trace ID = %q, want abc123", tr.ID())
	}
	var nilTr *Trace
	if nilTr.ID() != "" || nilTr.Views() != nil {
		t.Error("nil trace must answer empty ID and nil views")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(TraceRecord{TraceID: fmt.Sprintf("t%d", i), Status: 200})
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(recs))
	}
	for i, want := range []string{"t2", "t3", "t4"} {
		if recs[i].TraceID != want {
			t.Errorf("record %d = %q, want %q (oldest first)", i, recs[i].TraceID, want)
		}
	}

	w := httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var doc struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, w.Body.String())
	}
	if len(doc.Traces) != 3 || doc.Traces[2].TraceID != "t4" {
		t.Errorf("served traces = %+v, want 3 ending t4", doc.Traces)
	}

	var nilRing *TraceRing
	nilRing.Add(TraceRecord{}) // no-op, must not panic
	if nilRing.Records() != nil {
		t.Error("nil ring must answer nil records")
	}
	w = httptest.NewRecorder()
	nilRing.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil || len(doc.Traces) != 0 {
		t.Errorf("nil ring serves %q, want empty traces JSON", w.Body.String())
	}
}

// TestTraceViews pins the exposition form: spans sorted by start offset
// and converted to seconds.
func TestTraceViews(t *testing.T) {
	tr := NewRequestTrace(NewTraceID())
	endOuter := tr.StartSpan("outer")
	endInner := tr.StartIteration("inner", 1)
	time.Sleep(time.Millisecond)
	endInner() // completes before outer, so raw span order is inner, outer
	endOuter()
	views := tr.Views()
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2", len(views))
	}
	if views[0].Name != "outer" || views[1].Name != "inner" {
		t.Errorf("views not sorted by start: %+v", views)
	}
	if views[1].Iteration != 1 {
		t.Errorf("iteration lost: %+v", views[1])
	}
	if views[1].DurationS <= 0 || views[1].DurationS > 10 {
		t.Errorf("inner duration_s = %v, want seconds-scale positive value", views[1].DurationS)
	}
}
