package telemetry

import (
	"sync"
	"time"
)

// Span is one timed phase of a pipeline run. Start is the offset from the
// beginning of the trace, so spans order and nest naturally in a report.
// Iteration is >= 1 for per-iteration spans (e.g. each greedy round) and 0
// for plain phases.
type Span struct {
	Name      string        `json:"name"`
	Start     time.Duration `json:"start"`
	Duration  time.Duration `json:"duration"`
	Iteration int           `json:"iteration,omitempty"`
}

// Trace records the phase spans of one call (one Diagnose, one trial, or
// one served request). A nil *Trace is a no-op: StartSpan returns a func
// that does nothing and never reads the clock, so untraced calls pay
// nothing. Request traces additionally carry the trace ID propagated in
// the ND-Trace-Id header (see trace.go).
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	id    string
	spans []Span
}

// NewTrace starts an empty trace anchored at the current time.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// NewRequestTrace starts an empty trace anchored at the current time and
// carrying the given request trace ID.
func NewRequestTrace(id string) *Trace { return &Trace{t0: time.Now(), id: id} }

// ID returns the trace's request trace ID ("" for a nil or non-request
// trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

var noopEnd = func() {}

// StartSpan begins a phase and returns the func that ends it. Safe for
// concurrent use.
func (t *Trace) StartSpan(name string) func() { return t.StartIteration(name, 0) }

// StartIteration begins one iteration of a repeated phase (Iteration is
// recorded on the span) and returns the func that ends it.
func (t *Trace) StartIteration(name string, iter int) func() {
	if t == nil {
		return noopEnd
	}
	start := time.Since(t.t0)
	return func() {
		d := time.Since(t.t0) - start
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d, Iteration: iter})
		t.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans in completion order. Nil for
// a nil trace.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}
