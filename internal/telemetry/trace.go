package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Request tracing: every request entering the v1 surface is assigned a
// trace ID at the edge (the fleet front, or a worker for direct
// requests), carried end to end in the ND-Trace-Id header, and attached
// to a *Trace that collects the request's phase spans — admission wait,
// fork, per-batch-item work, encode — across goroutine hops. Completed
// traces are retained in a TraceRing and served as JSON at
// /debug/traces; the trace ID never enters a diagnosis response body, so
// wire bytes stay identical with tracing on or off.

// NewTraceID returns a fresh 16-hex-character trace ID. IDs are random
// (crypto/rand), not sequential: a fleet has several independent edges
// and IDs from different processes must not collide.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; degrade to a
		// fixed marker rather than panicking in a serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is acceptable as a propagated trace ID:
// 1–64 characters from [0-9A-Za-z_-]. Anything else (empty, oversized,
// control bytes) is discarded at the edge and replaced by NewTraceID, so
// logs and /debug/traces never carry attacker-shaped identifiers.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// traceKey is the context key under which a request's *Trace travels.
type traceKey struct{}

// ContextWithTrace returns a context carrying t, so code downstream of a
// handler (queue jobs, forked computations) can attach spans to the
// request's trace. A nil t returns ctx unchanged — the uninstrumented
// path stays allocation-free.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the trace carried by ctx, or nil (a no-op
// trace handle) when there is none.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanView is the exposition form of a Span: offsets and durations in
// seconds (see units.go), sorted by start offset so the nesting of
// phases reads as a tree.
type SpanView struct {
	Name      string  `json:"name"`
	StartS    float64 `json:"start_s"`
	DurationS float64 `json:"duration_s"`
	Iteration int     `json:"iteration,omitempty"`
}

// TraceRecord is one completed request trace: identity, outcome and the
// span tree. It is what /debug/traces serves.
type TraceRecord struct {
	TraceID   string     `json:"trace_id"`
	Op        string     `json:"op"`
	Scenario  string     `json:"scenario,omitempty"`
	Algorithm string     `json:"algorithm,omitempty"`
	Shard     string     `json:"shard,omitempty"`
	Status    int        `json:"status"`
	Coalesced bool       `json:"coalesced,omitempty"`
	DurationS float64    `json:"duration_s"`
	Spans     []SpanView `json:"spans,omitempty"`
}

// TraceRing retains the last N completed request traces in a fixed-size
// ring. A nil *TraceRing is a no-op, so untraced servers pay nothing.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

// NewTraceRing returns a ring retaining the last n completed traces
// (n <= 0 selects 64).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 64
	}
	return &TraceRing{buf: make([]TraceRecord, n)}
}

// Add retains one completed trace, evicting the oldest when full.
func (r *TraceRing) Add(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Records returns the retained traces, oldest first. Nil for a nil ring.
func (r *TraceRing) Records() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceRecord
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// ServeHTTP serves the retained traces as {"traces":[...]} — the
// /debug/traces endpoint. A nil ring serves an empty listing.
func (r *TraceRing) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\n  \"traces\": []\n}\n"))
		return
	}
	recs := r.Records()
	if recs == nil {
		recs = []TraceRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Traces []TraceRecord `json:"traces"`
	}{recs})
}

// Views returns the trace's spans as exposition views: seconds, sorted
// by start offset (ties by name) so nested phases group under their
// parents. Nil for a nil trace.
func (t *Trace) Views() []SpanView {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	out := make([]SpanView, len(spans))
	for i, s := range spans {
		out[i] = SpanView{
			Name:      s.Name,
			StartS:    Seconds(int64(s.Start)),
			DurationS: Seconds(int64(s.Duration)),
			Iteration: s.Iteration,
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartS != out[j].StartS {
			return out[i].StartS < out[j].StartS
		}
		return out[i].Name < out[j].Name
	})
	return out
}
