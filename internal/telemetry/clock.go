package telemetry

import "time"

// This file is the pipeline's only sanctioned wall-clock access outside
// cmd/ mains. Library code must not call time.Now/time.Since directly
// (the wallclock lint invariant): routing every clock read through here
// keeps the simulate→probe→diagnose path auditable for replay
// determinism — telemetry timing is observational and never feeds
// results, and a future replay/resume mode can interpose on this one
// seam instead of chasing clock reads across the tree.

// Now returns the current wall-clock time for telemetry timing.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since t, for telemetry
// timing.
func Since(t time.Time) time.Duration { return time.Since(t) }
