package telemetry

import (
	"context"
	"testing"
)

// hotLoop is the shape of an instrumented pipeline inner loop: one counter
// bump and one histogram observation per item. With nil handles it must
// compile down to two nil checks.
func hotLoop(n int, c *Counter, h *Histogram) {
	for i := 0; i < n; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}

// TestDisabledTelemetryZeroAllocs is the overhead guard for the no-op
// path: every handle operation on nil (disabled) telemetry must be
// allocation-free.
func TestDisabledTelemetryZeroAllocs(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var ring *TraceRing
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(-1)
		h.Observe(42)
		_ = c.Value()
		_ = g.Value()
		_ = h.Count()
		tr.StartSpan("x")()
		_ = tr.ID()
		_ = TraceFromContext(ContextWithTrace(ctx, tr)).Views()
		ring.Add(TraceRecord{})
		hotLoop(64, r.Counter("c"), r.Histogram("h", CountBuckets))
	}); allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f times per run, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAllocs pins the enabled hot path too: atomic
// updates on pre-created handles must not allocate either.
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(12345)
	}); allocs != 0 {
		t.Fatalf("enabled hot path allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkHotLoopDisabled(b *testing.B) {
	var r *Registry
	c, h := r.Counter("c"), r.Histogram("h", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hotLoop(1024, c, h)
	}
}

// BenchmarkHotLoopDisabledTraced is the alloc-guard gate for the
// uninstrumented-but-trace-plumbed path: a request flowing through the
// trace context helpers with tracing disabled (nil trace) must not
// allocate. cmd/benchjson -allocguard asserts 0 allocs/op on this.
func BenchmarkHotLoopDisabledTraced(b *testing.B) {
	var r *Registry
	var tr *Trace
	c, h := r.Counter("c"), r.Histogram("h", DurationBuckets)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jobCtx := ContextWithTrace(ctx, tr)
		end := TraceFromContext(jobCtx).StartSpan("diagnose")
		hotLoop(1024, c, h)
		end()
	}
}

func BenchmarkHotLoopEnabled(b *testing.B) {
	r := New()
	c, h := r.Counter("c"), r.Histogram("h", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hotLoop(1024, c, h)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("h", DurationBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := New()
	for i := 0; i < 32; i++ {
		r.Counter(string(rune('a' + i%26))).Inc()
	}
	r.Histogram("h", DurationBuckets).Observe(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
