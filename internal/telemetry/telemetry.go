// Package telemetry is the stdlib-only observability substrate of the
// pipeline: counters, gauges and fixed-bucket histograms with an atomic,
// allocation-free hot path, per-call phase span traces, and a debug HTTP
// server exposing everything over expvar and pprof.
//
// The package is designed around a no-op default: every handle type
// (*Counter, *Gauge, *Histogram, *Trace) treats a nil receiver as "do
// nothing", and a nil *Registry hands out nil handles. Instrumented code
// therefore never branches on an "enabled" flag — it just calls the
// handle — and a pipeline built without a registry pays nothing (no
// allocations, no atomic traffic, no time syscalls in the hot loops).
// bench_telemetry_test.go pins both properties.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a
// no-op; the zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined by inclusive
// upper bounds, plus an implicit overflow bucket. Observe is lock-free and
// allocation-free (a linear scan over the bounds, which are few). A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds     []int64
	counts     []atomic.Int64 // len(bounds)+1, last is overflow
	sum, count atomic.Int64
}

// NewHistogram builds a standalone histogram with the given ascending
// inclusive upper bounds. Most callers use Registry.Histogram instead.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DurationBuckets are the standard latency bounds in nanoseconds: 1µs to
// 10s, one decade apart. Suitable for queue waits and phase durations.
var DurationBuckets = []int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
	1_000_000_000, 10_000_000_000,
}

// CountBuckets are the standard bounds for small iteration counts
// (BGP fixpoint rounds, greedy iterations).
var CountBuckets = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128}

// Registry is a named collection of metrics. Handles are get-or-create by
// name, so independent subsystems asking for the same name share one
// metric. A nil *Registry hands out nil (no-op) handles, which is how
// telemetry is disabled. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	derived  map[string]func(Snapshot) float64
	order    []string // registration order of derived metrics
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		derived:  map[string]func(Snapshot) float64{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing buckets regardless of the
// bounds argument). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Derive registers a metric computed from a snapshot at read time (e.g. a
// cache hit ratio). Re-registering a name replaces the function. No-op on
// a nil registry.
func (r *Registry) Derive(name string, fn func(Snapshot) float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.derived[name]; !ok {
		r.order = append(r.order, name)
	}
	r.derived[name] = fn
}

// Bucket is one histogram bucket of a snapshot. UpperBound is
// math.MaxInt64 for the overflow bucket.
type Bucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram. Sum and the
// bucket bounds are in the histogram's recorded unit (nanoseconds for
// "_ns"-named duration histograms); SumSeconds/MeanSeconds carry the
// exposition-unit view for duration histograms so /debug/vars and
// /metrics agree on seconds (see units.go).
type HistogramSnapshot struct {
	Count       int64    `json:"count"`
	Sum         int64    `json:"sum"`
	Mean        float64  `json:"mean"`
	SumSeconds  float64  `json:"sum_seconds,omitempty"`
	MeanSeconds float64  `json:"mean_seconds,omitempty"`
	Buckets     []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time view of every metric in a registry. It is
// JSON-marshalable, which is how the debug server exposes it via expvar.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Derived    map[string]float64           `json:"derived,omitempty"`
}

// emptySnapshot is a snapshot with no metrics, maps ready.
func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
}

// Snapshot captures the current value of every metric, then evaluates the
// derived metrics against that base. A nil registry yields a zero
// Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return emptySnapshot()
	}
	s := emptySnapshot()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	order := append([]string(nil), r.order...)
	derived := make(map[string]func(Snapshot) float64, len(r.derived))
	for n, fn := range r.derived {
		derived[n] = fn
	}
	r.mu.Unlock()

	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		if IsDurationMetric(n) {
			hs.SumSeconds = Seconds(hs.Sum)
			hs.MeanSeconds = hs.Mean / nsPerSecond
		}
		for i := range h.counts {
			ub := int64(math.MaxInt64)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: ub, Count: h.counts[i].Load()})
		}
		s.Histograms[n] = hs
	}
	if len(derived) > 0 {
		s.Derived = map[string]float64{}
		for _, n := range order {
			s.Derived[n] = derived[n](s)
		}
	}
	return s
}

// Ratio is a snapshot helper: a/(a+b), or 0 when both are zero. The usual
// shape of hit-ratio derived metrics.
func Ratio(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}
