package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) over a Registry
// snapshot, stdlib only. Metric names are sanitized (dots become
// underscores), counters and gauges render as their scalar value,
// histograms render with CUMULATIVE bucket counts under ascending
// `le` labels plus `_sum` and `_count` series, and derived metrics
// render as gauges. Nanosecond-valued metrics (the "_ns" suffix) are
// exposed in seconds under the "_seconds" name — see units.go, the one
// place that unit conversion is defined. Output is deterministic: each
// section is sorted by metric name.

// promName sanitizes a registry metric name into a Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus text format expects.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in ascending order (map iteration
// must not feed the writer unsorted — exposition is byte-deterministic
// modulo values).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format: counters, then gauges, then histograms, then derived metrics
// (as gauges), each section sorted by name.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		n := promName(SecondsName(name))
		val := strconv.FormatInt(v, 10)
		if IsDurationMetric(name) {
			val = promFloat(Seconds(v))
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, val); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, name, s.Histograms[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Derived) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Derived[name])); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram family: cumulative buckets
// (the snapshot's are per-bucket), a terminal +Inf bucket, _sum and
// _count. Duration histograms convert to seconds.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	dur := IsDurationMetric(name)
	n := promName(SecondsName(name))
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
		return err
	}
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.UpperBound != math.MaxInt64 {
			if dur {
				le = promFloat(Seconds(b.UpperBound))
			} else {
				le = strconv.FormatInt(b.UpperBound, 10)
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
			return err
		}
	}
	// A histogram that never observed still needs its terminal bucket:
	// text-format parsers require le="+Inf" to equal _count.
	if len(h.Buckets) == 0 {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
	}
	sum := strconv.FormatInt(h.Sum, 10)
	if dur {
		sum = promFloat(Seconds(h.Sum))
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, sum, n, h.Count)
	return err
}

// PromHandler serves the registry's current snapshot in Prometheus text
// format — the /metrics endpoint. A nil registry serves an empty (still
// valid) exposition.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}
