package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1022 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	want := []Bucket{{10, 2}, {100, 1}, {math.MaxInt64, 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
	for i, b := range want {
		if hs.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, hs.Buckets[i], b)
		}
	}
	if s.Counters["c"] != 5 || s.Gauges["g"] != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestNilHandlesAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", CountBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	r.Derive("x", func(Snapshot) float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Derived) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}

	var tr *Trace
	end := tr.StartSpan("phase")
	end()
	if tr.Spans() != nil {
		t.Fatal("nil trace must record nothing")
	}
}

func TestDerivedMetrics(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	r.Counter("misses").Add(1)
	r.Derive("hit_ratio", func(s Snapshot) float64 {
		return Ratio(s.Counters["hits"], s.Counters["misses"])
	})
	// Re-registering must replace, not duplicate.
	r.Derive("hit_ratio", func(s Snapshot) float64 {
		return Ratio(s.Counters["hits"], s.Counters["misses"])
	})
	s := r.Snapshot()
	if got := s.Derived["hit_ratio"]; got != 0.75 {
		t.Fatalf("hit_ratio = %v, want 0.75", got)
	}
	if Ratio(0, 0) != 0 {
		t.Fatal("Ratio(0,0) must be 0")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Histogram("lat", DurationBuckets).Observe(int64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*500 {
		t.Fatalf("shared = %d, want %d", got, 8*500)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan("build")
	time.Sleep(time.Millisecond)
	end()
	endIter := tr.StartIteration("iter", 2)
	endIter()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Name != "build" || spans[0].Duration <= 0 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "iter" || spans[1].Iteration != 2 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if spans[1].Start < spans[0].Start {
		t.Fatal("span starts must be monotonic offsets")
	}
}

func TestDebugServer(t *testing.T) {
	r := New()
	r.Counter("igp.spf_cache_hits").Add(9)
	r.Derive("igp.spf_cache_hit_ratio", func(s Snapshot) float64 { return 0.9 })
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	body := get("/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["netdiag"], &snap); err != nil {
		t.Fatalf("netdiag var: %v", err)
	}
	if snap.Counters["igp.spf_cache_hits"] != 9 {
		t.Fatalf("snapshot over HTTP = %+v", snap)
	}
	if snap.Derived["igp.spf_cache_hit_ratio"] != 0.9 {
		t.Fatalf("derived over HTTP = %+v", snap.Derived)
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%s", idx)
	}

	// Republishing under the same name must not panic and must take over.
	r2 := New()
	r2.Counter("fresh").Inc()
	r2.PublishExpvar("netdiag")
	body = get("/debug/vars")
	if !strings.Contains(body, "fresh") {
		t.Fatal("republished registry not served")
	}
}
