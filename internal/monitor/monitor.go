// Package monitor implements the failure-detection front end the paper's
// deployment discussion calls for (§6): the sensors measure the full mesh
// periodically, and the troubleshooter raises an alarm only when an
// unreachability persists across several successive measurement rounds, so
// transient events (link flaps, routing convergence) are not diagnosed as
// failures. NetDiagnoser targets non-transient failures by design (§1).
package monitor

import (
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
)

// Config parameterizes the detector.
type Config struct {
	// Confirm is the number of consecutive rounds a pair must stay
	// unreachable before an alarm fires. Zero means 3, a conservative
	// default for the paper's "several successive measurements".
	Confirm int
	// Telemetry receives the detector counters ("monitor.rounds_observed",
	// "monitor.alarms_fired", "monitor.transients_suppressed"); nil (the
	// default) disables them. Telemetry never affects detection.
	Telemetry *telemetry.Registry
}

// Alarm reports a confirmed unreachability event, carrying the two meshes
// the diagnosis algorithms need: the last fully healthy measurement (T-)
// and the confirming measurement (T+).
type Alarm struct {
	// Round is the measurement round at which the alarm fired.
	Round int
	// Baseline is the most recent fully reachable mesh before the event.
	Baseline *probe.Mesh
	// Current is the mesh that confirmed the failure.
	Current *probe.Mesh
	// FailedPairs lists the (src,dst) sensor index pairs that confirmed.
	FailedPairs [][2]int
}

// Detector consumes a stream of periodic mesh measurements and emits an
// alarm when failures persist. It is not safe for concurrent use.
type Detector struct {
	cfg      Config
	round    int
	baseline *probe.Mesh
	streak   map[[2]int]int
	// alarmed suppresses repeated alarms for one ongoing event until the
	// mesh fully recovers.
	alarmed bool

	rounds     *telemetry.Counter
	alarms     *telemetry.Counter
	transients *telemetry.Counter
}

// New returns a detector.
func New(cfg Config) *Detector {
	if cfg.Confirm <= 0 {
		cfg.Confirm = 3
	}
	d := &Detector{cfg: cfg, streak: map[[2]int]int{}}
	if r := cfg.Telemetry; r != nil {
		d.rounds = r.Counter("monitor.rounds_observed")
		d.alarms = r.Counter("monitor.alarms_fired")
		d.transients = r.Counter("monitor.transients_suppressed")
	}
	return d
}

// Round returns the number of observed measurement rounds.
func (d *Detector) Round() int { return d.round }

// Baseline returns the most recent fully healthy mesh, or nil if none has
// been observed yet.
func (d *Detector) Baseline() *probe.Mesh { return d.baseline }

// Observe ingests one measurement round. It returns a non-nil alarm when
// at least one pair has been unreachable for cfg.Confirm consecutive
// rounds (including this one) and no alarm is already outstanding.
func (d *Detector) Observe(m *probe.Mesh) *Alarm {
	d.round++
	d.rounds.Inc()
	if !m.AnyFailed() {
		// Any streak that ends before confirming was a transient the
		// detector filtered out (link flap, routing convergence).
		if !d.alarmed {
			for _, n := range d.streak {
				if n < d.cfg.Confirm {
					d.transients.Inc()
				}
			}
		}
		d.baseline = m
		d.streak = map[[2]int]int{}
		d.alarmed = false
		return nil
	}

	var confirmed [][2]int
	seen := map[[2]int]bool{}
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if i == j {
				continue
			}
			key := [2]int{i, j}
			if p == nil || !p.OK {
				seen[key] = true
				d.streak[key]++
				if d.streak[key] >= d.cfg.Confirm {
					confirmed = append(confirmed, key)
				}
			}
		}
	}
	// Pairs that recovered this round lose their streak; one that never
	// reached the confirmation threshold was a suppressed transient.
	for key, n := range d.streak {
		if !seen[key] {
			if n < d.cfg.Confirm {
				d.transients.Inc()
			}
			delete(d.streak, key)
		}
	}

	if len(confirmed) == 0 || d.alarmed || d.baseline == nil {
		return nil
	}
	d.alarmed = true
	d.alarms.Inc()
	return &Alarm{
		Round:       d.round,
		Baseline:    d.baseline,
		Current:     m,
		FailedPairs: confirmed,
	}
}
