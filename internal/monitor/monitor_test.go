package monitor

import (
	"testing"

	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// mesh builds a 2-sensor mesh with the given pair statuses.
func mesh(ok01, ok10 bool) *probe.Mesh {
	m := probe.NewMesh([]topology.RouterID{1, 2})
	m.Paths[0][1] = &probe.Path{Src: 1, Dst: 2, OK: ok01, Hops: []probe.Hop{{Addr: "a", Router: 1}}}
	m.Paths[1][0] = &probe.Path{Src: 2, Dst: 1, OK: ok10, Hops: []probe.Hop{{Addr: "b", Router: 2}}}
	return m
}

func TestTransientFlapSuppressed(t *testing.T) {
	d := New(Config{Confirm: 3})
	if a := d.Observe(mesh(true, true)); a != nil {
		t.Fatal("healthy round must not alarm")
	}
	// Two failed rounds, then recovery: below the threshold.
	if a := d.Observe(mesh(false, true)); a != nil {
		t.Fatal("first failed round must not alarm")
	}
	if a := d.Observe(mesh(false, true)); a != nil {
		t.Fatal("second failed round must not alarm")
	}
	if a := d.Observe(mesh(true, true)); a != nil {
		t.Fatal("recovery must not alarm")
	}
	// The streak was reset: two more failed rounds still no alarm.
	d.Observe(mesh(false, true))
	if a := d.Observe(mesh(false, true)); a != nil {
		t.Fatal("streak must reset after recovery")
	}
}

func TestPersistentFailureAlarms(t *testing.T) {
	d := New(Config{Confirm: 3})
	healthy := mesh(true, true)
	d.Observe(healthy)
	d.Observe(mesh(false, true))
	d.Observe(mesh(false, true))
	a := d.Observe(mesh(false, true))
	if a == nil {
		t.Fatal("third consecutive failure must alarm")
	}
	if a.Round != 4 {
		t.Fatalf("alarm round = %d, want 4", a.Round)
	}
	if a.Baseline != healthy {
		t.Fatal("alarm must carry the last healthy mesh as baseline")
	}
	if len(a.FailedPairs) != 1 || a.FailedPairs[0] != [2]int{0, 1} {
		t.Fatalf("failed pairs = %v", a.FailedPairs)
	}
	// The ongoing event must not re-alarm.
	if again := d.Observe(mesh(false, true)); again != nil {
		t.Fatal("ongoing event must not alarm twice")
	}
	// After recovery, a new persistent event alarms again.
	d.Observe(mesh(true, true))
	d.Observe(mesh(true, false))
	d.Observe(mesh(true, false))
	if a := d.Observe(mesh(true, false)); a == nil {
		t.Fatal("new event after recovery must alarm")
	} else if a.FailedPairs[0] != [2]int{1, 0} {
		t.Fatalf("failed pairs = %v", a.FailedPairs)
	}
}

func TestNoBaselineNoAlarm(t *testing.T) {
	d := New(Config{Confirm: 1})
	// Failures from the very first round: there is no T- baseline, so the
	// diagnoser has nothing to compare against.
	if a := d.Observe(mesh(false, true)); a != nil {
		t.Fatal("no baseline yet: must not alarm")
	}
}

func TestDefaultConfirm(t *testing.T) {
	d := New(Config{})
	d.Observe(mesh(true, true))
	d.Observe(mesh(false, true))
	d.Observe(mesh(false, true))
	if a := d.Observe(mesh(false, true)); a == nil {
		t.Fatal("default Confirm should be 3")
	}
}

func TestDetectorWithSimulatedNetwork(t *testing.T) {
	f := topology.BuildFig2()
	net, err := netsim.New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}
	d := New(Config{Confirm: 2})

	// Two healthy rounds.
	d.Observe(net.Mesh(sensors))
	d.Observe(net.Mesh(sensors))

	// A flap: fail, measure once, restore.
	l, _ := f.Topo.LinkBetween(f.R["b1"], f.R["b2"])
	net.FailLink(l.ID)
	if err := net.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if a := d.Observe(net.Mesh(sensors)); a != nil {
		t.Fatal("single flap round must not alarm with Confirm=2")
	}
	net.RestoreLink(l.ID)
	if err := net.Reconverge(); err != nil {
		t.Fatal(err)
	}
	d.Observe(net.Mesh(sensors))

	// A persistent failure: two consecutive rounds.
	net.FailLink(l.ID)
	if err := net.Reconverge(); err != nil {
		t.Fatal(err)
	}
	d.Observe(net.Mesh(sensors))
	a := d.Observe(net.Mesh(sensors))
	if a == nil {
		t.Fatal("persistent failure must alarm")
	}
	if a.Baseline.AnyFailed() {
		t.Fatal("baseline must be healthy")
	}
	if !a.Current.AnyFailed() {
		t.Fatal("current mesh must show the failure")
	}
	// The alarm payload feeds straight into the diagnosis pipeline; check
	// the failed pairs involve sensor 1 (s2, inside AS-B).
	for _, p := range a.FailedPairs {
		if p[0] != 1 && p[1] != 1 {
			t.Fatalf("unexpected failed pair %v", p)
		}
	}
}

func TestAccessors(t *testing.T) {
	d := New(Config{Confirm: 2})
	if d.Round() != 0 || d.Baseline() != nil {
		t.Fatal("fresh detector state")
	}
	m := mesh(true, true)
	d.Observe(m)
	if d.Round() != 1 {
		t.Fatalf("round = %d", d.Round())
	}
	if d.Baseline() != m {
		t.Fatal("healthy mesh should become the baseline")
	}
	bad := mesh(false, true)
	d.Observe(bad)
	if d.Baseline() != m {
		t.Fatal("failed round must not replace the baseline")
	}
}

func TestPairRecoveryWhileOtherFails(t *testing.T) {
	// Pair A flaps while pair B persists: only B confirms.
	d := New(Config{Confirm: 2})
	d.Observe(mesh(true, true))
	d.Observe(mesh(false, false))
	a := d.Observe(mesh(true, false))
	if a == nil {
		t.Fatal("pair B persisted for 2 rounds")
	}
	if len(a.FailedPairs) != 1 || a.FailedPairs[0] != [2]int{1, 0} {
		t.Fatalf("confirmed pairs = %v, want only 1->0", a.FailedPairs)
	}
}
