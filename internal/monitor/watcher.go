package monitor

import (
	"context"

	"netdiag/internal/probe"
)

// Watcher is the continuous front end of the serving deployment (§2, §6):
// it consumes a stream of periodic full-mesh measurements, runs them
// through a transient-filtering Detector, and posts every confirmed alarm
// to a sink — in ndserve, the same admission queue the HTTP diagnosis
// requests go through, so monitoring-triggered and operator-triggered
// diagnoses share one bounded pipeline.
//
// The Watcher is deliberately clock-free: the caller owns the measurement
// cadence (a ticker in ndserve, a scripted timeline in tests) and feeds
// meshes over a channel, which keeps the loop deterministic and replayable.
type Watcher struct {
	det *Detector
}

// NewWatcher returns a watcher over a fresh Detector with the given config.
func NewWatcher(cfg Config) *Watcher {
	return &Watcher{det: New(cfg)}
}

// Detector exposes the underlying detector (round count, baseline).
func (w *Watcher) Detector() *Detector { return w.det }

// Observe ingests one measurement round (see Detector.Observe).
func (w *Watcher) Observe(m *probe.Mesh) *Alarm { return w.det.Observe(m) }

// Run consumes measurement rounds until ctx is done or rounds is closed,
// invoking sink synchronously for each confirmed alarm. A synchronous sink
// applies natural backpressure: a diagnosis still in flight delays the
// next round's observation rather than piling up alarms. Run returns nil
// when rounds closes and ctx.Err() when the context ends first.
func (w *Watcher) Run(ctx context.Context, rounds <-chan *probe.Mesh, sink func(context.Context, *Alarm)) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-rounds:
			if !ok {
				return nil
			}
			if a := w.det.Observe(m); a != nil && sink != nil {
				sink(ctx, a)
			}
		}
	}
}

// RunPull drives the detector from a pull source instead of pre-measured
// rounds: each tick reads the current mesh from source — in ndserve's
// ingest mode, the streaming plane's delta overlay, which costs zero
// probing on a quiet tick because the overlay only re-traces pairs that
// routing events dirtied. Same backpressure and termination contract as
// Run; a source error ends the loop.
func (w *Watcher) RunPull(ctx context.Context, ticks <-chan struct{}, source func(context.Context) (*probe.Mesh, error), sink func(context.Context, *Alarm)) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case _, ok := <-ticks:
			if !ok {
				return nil
			}
			m, err := source(ctx)
			if err != nil {
				return err
			}
			if a := w.det.Observe(m); a != nil && sink != nil {
				sink(ctx, a)
			}
		}
	}
}
