package monitor

import (
	"context"
	"errors"
	"testing"

	"netdiag/internal/probe"
)

func TestWatcherPostsConfirmedAlarms(t *testing.T) {
	w := NewWatcher(Config{Confirm: 2})
	rounds := make(chan *probe.Mesh, 8)
	// healthy, transient blip, recovery, then a confirmed 2-round failure.
	rounds <- mesh(true, true)
	rounds <- mesh(false, true)
	rounds <- mesh(true, true)
	rounds <- mesh(false, true)
	rounds <- mesh(false, true)
	close(rounds)

	var alarms []*Alarm
	err := w.Run(context.Background(), rounds, func(_ context.Context, a *Alarm) {
		alarms = append(alarms, a)
	})
	if err != nil {
		t.Fatalf("Run = %v, want nil on closed channel", err)
	}
	if len(alarms) != 1 {
		t.Fatalf("got %d alarms, want 1 (transient suppressed, failure confirmed)", len(alarms))
	}
	if alarms[0].Round != 5 {
		t.Fatalf("alarm round = %d, want 5", alarms[0].Round)
	}
	if w.Detector().Round() != 5 {
		t.Fatalf("observed rounds = %d, want 5", w.Detector().Round())
	}
}

func TestWatcherStopsOnContext(t *testing.T) {
	w := NewWatcher(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	rounds := make(chan *probe.Mesh) // never fed, never closed
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx, rounds, nil) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

func TestWatcherNilSink(t *testing.T) {
	w := NewWatcher(Config{Confirm: 1})
	rounds := make(chan *probe.Mesh, 2)
	rounds <- mesh(true, true)
	rounds <- mesh(false, true)
	close(rounds)
	// A confirmed alarm with no sink must not panic.
	if err := w.Run(context.Background(), rounds, nil); err != nil {
		t.Fatalf("Run = %v", err)
	}
}
