package bgp

import (
	"testing"

	"netdiag/internal/igp"
	"netdiag/internal/topology"
)

// fig2State converges Fig2 with the given link-up predicate and filters.
func fig2State(t *testing.T, f *topology.Fig2, isUp func(topology.LinkID) bool, filters []ExportFilter) *State {
	t.Helper()
	if isUp == nil {
		isUp = func(topology.LinkID) bool { return true }
	}
	st, err := Compute(Config{
		Topo:     f.Topo,
		IGP:      igp.New(f.Topo, isUp),
		IsLinkUp: isUp,
		Origins: map[Prefix]topology.ASN{
			PrefixFor(f.ASA): f.ASA,
			PrefixFor(f.ASB): f.ASB,
			PrefixFor(f.ASC): f.ASC,
		},
		Filters: filters,
	})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return st
}

func TestFig2Convergence(t *testing.T) {
	f := topology.BuildFig2()
	st := fig2State(t, f, nil, nil)

	// Every router must have a route to every prefix.
	for id := 0; id < f.Topo.NumRouters(); id++ {
		for _, p := range st.Prefixes() {
			if _, ok := st.Best(topology.RouterID(id), p); !ok {
				t.Fatalf("router %s has no route to %s",
					f.Topo.Router(topology.RouterID(id)).Name, p)
			}
		}
	}

	// x1's route to B must go X->Y->B.
	b, _ := st.Best(f.R["x1"], PrefixFor(f.ASB))
	want := []topology.ASN{f.ASY, f.ASB}
	if len(b.ASPath) != 2 || b.ASPath[0] != want[0] || b.ASPath[1] != want[1] {
		t.Fatalf("x1 path to B = %v, want %v", b.ASPath, want)
	}
	// y1's route to A is via the peer X (local-pref peer tier).
	a, _ := st.Best(f.R["y1"], PrefixFor(f.ASA))
	if a.LocalPref != prefPeer {
		t.Fatalf("y1 route to A localpref = %d, want peer tier %d", a.LocalPref, prefPeer)
	}
}

func TestASPathFrom(t *testing.T) {
	f := topology.BuildFig2()
	st := fig2State(t, f, nil, nil)
	path, ok := st.ASPathFrom(f.ASA, PrefixFor(f.ASB))
	if !ok {
		t.Fatal("AS-A has no path to B")
	}
	want := []topology.ASN{f.ASA, f.ASX, f.ASY, f.ASB}
	if len(path) != len(want) {
		t.Fatalf("ASPathFrom(A,B) = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("ASPathFrom(A,B) = %v, want %v", path, want)
		}
	}
	if self, ok := st.ASPathFrom(f.ASB, PrefixFor(f.ASB)); !ok || len(self) != 1 || self[0] != f.ASB {
		t.Fatalf("origin AS path = %v, %v", self, ok)
	}
}

func TestGaoRexfordValleyFree(t *testing.T) {
	// A peer route must never be exported to another peer or provider:
	// AS-A's prefix (learned by Y over the X-Y peering) must not be
	// re-exported by Y to... Y has only customers B, C besides X, so
	// instead check the AS paths everywhere are valley-free.
	f := topology.BuildFig2()
	st := fig2State(t, f, nil, nil)
	for id := 0; id < f.Topo.NumRouters(); id++ {
		r := topology.RouterID(id)
		for _, p := range st.Prefixes() {
			b, ok := st.Best(r, p)
			if !ok || b.Local {
				continue
			}
			full := append([]topology.ASN{f.Topo.RouterAS(r)}, b.ASPath...)
			if !valleyFree(f.Topo, full) {
				t.Fatalf("router %d uses non-valley-free path %v to %s", r, full, p)
			}
		}
	}
}

// valleyFree checks the Gao–Rexford pattern: a sequence of customer->provider
// ("up") hops, at most one peer hop, then provider->customer ("down") hops.
func valleyFree(topo *topology.Topology, path []topology.ASN) bool {
	const (
		up = iota
		peered
		down
	)
	phase := up
	for i := 0; i+1 < len(path); i++ {
		rel := topo.Rel(path[i], path[i+1]) // my view of next hop
		switch rel {
		case topology.Provider: // going up
			if phase != up {
				return false
			}
		case topology.Peer:
			if phase != up {
				return false
			}
			phase = peered
		case topology.Customer: // going down
			phase = down
		default:
			return false
		}
	}
	return true
}

func TestLinkFailureReroutesOrWithdraws(t *testing.T) {
	f := topology.BuildFig2()
	// Fail the single Y-B link (y4-b1): prefix B must disappear from
	// everyone outside B.
	l, ok := f.Topo.LinkBetween(f.R["y4"], f.R["b1"])
	if !ok {
		t.Fatal("y4-b1 missing")
	}
	st := fig2State(t, f, func(id topology.LinkID) bool { return id != l.ID }, nil)
	if _, ok := st.Best(f.R["x1"], PrefixFor(f.ASB)); ok {
		t.Fatal("x1 should have lost its route to B")
	}
	if _, ok := st.Best(f.R["y1"], PrefixFor(f.ASB)); ok {
		t.Fatal("y1 should have lost its route to B")
	}
	// Other prefixes survive.
	if _, ok := st.Best(f.R["x1"], PrefixFor(f.ASC)); !ok {
		t.Fatal("x1 lost unrelated route to C")
	}
}

func TestWithdrawalDiff(t *testing.T) {
	f := topology.BuildFig2()
	before := fig2State(t, f, nil, nil)
	l, _ := f.Topo.LinkBetween(f.R["y4"], f.R["b1"])
	after := fig2State(t, f, func(id topology.LinkID) bool { return id != l.ID }, nil)

	// x2 received B's prefix from y1 before, not after: a withdrawal.
	pb := PrefixFor(f.ASB)
	if !before.AdjInPrefixes(f.R["x2"], f.R["y1"])[pb] {
		t.Fatal("x2 should have received B from y1 before the failure")
	}
	if after.AdjInPrefixes(f.R["x2"], f.R["y1"])[pb] {
		t.Fatal("x2 should no longer receive B from y1 after the failure")
	}
}

func TestExportFilterMisconfiguration(t *testing.T) {
	// The paper's §3.1 example: y1 stops announcing C's route to x2 while
	// still announcing B's. Path s1->s3 must lose routing through X while
	// s1->s2 still works.
	f := topology.BuildFig2()
	pc := PrefixFor(f.ASC)
	st := fig2State(t, f, nil, []ExportFilter{{Router: f.R["y1"], Peer: f.R["x2"], Prefix: pc}})

	if _, ok := st.Best(f.R["x2"], pc); ok {
		t.Fatal("x2 should have no route to C under the export filter")
	}
	if _, ok := st.Best(f.R["x2"], PrefixFor(f.ASB)); !ok {
		t.Fatal("x2 must keep its route to B")
	}
	// a2 (in AS A) loses C too: its only provider is X.
	if _, ok := st.Best(f.R["a2"], pc); ok {
		t.Fatal("a2 should have no route to C")
	}
	// Y itself still routes to C fine.
	if _, ok := st.Best(f.R["y1"], pc); !ok {
		t.Fatal("y1 must keep its customer route to C")
	}
}

func TestMultihomedFailover(t *testing.T) {
	// In the research topology, a multihomed stub keeps connectivity when
	// one of its two access links fails.
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	topo := res.Topo
	var stub topology.ASN
	for _, s := range res.Stubs {
		if len(topo.Neighbors(s)) == 2 {
			stub = s
			break
		}
	}
	if stub == 0 {
		t.Skip("no multihomed stub with this seed")
	}
	r := topo.AS(stub).Routers[0]
	access := topo.Router(r).Links
	if len(access) != 2 {
		t.Fatalf("multihomed stub has %d access links", len(access))
	}
	origins := map[Prefix]topology.ASN{PrefixFor(stub): stub}
	up := func(id topology.LinkID) bool { return id != access[0] }
	st, err := Compute(Config{
		Topo: topo, IGP: igp.New(topo, up), IsLinkUp: up, Origins: origins,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A core router must still have a route to the stub via the backup.
	coreR := topo.AS(res.Cores[0]).Routers[0]
	if _, ok := st.Best(coreR, PrefixFor(stub)); !ok {
		t.Fatal("core lost route to multihomed stub despite backup link")
	}
}

func TestRouterFailure(t *testing.T) {
	f := topology.BuildFig2()
	// Fail y1: X loses its only peering point with Y, so prefixes B and C
	// vanish from X and A.
	downRouter := f.R["y1"]
	isRouterUp := func(r topology.RouterID) bool { return r != downRouter }
	isLinkUp := func(id topology.LinkID) bool {
		l := f.Topo.Link(id)
		return !l.Has(downRouter)
	}
	st, err := Compute(Config{
		Topo:       f.Topo,
		IGP:        igp.New(f.Topo, isLinkUp),
		IsLinkUp:   isLinkUp,
		IsRouterUp: isRouterUp,
		Origins: map[Prefix]topology.ASN{
			PrefixFor(f.ASB): f.ASB,
			PrefixFor(f.ASC): f.ASC,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Best(f.R["x1"], PrefixFor(f.ASB)); ok {
		t.Fatal("x1 should lose B when y1 dies")
	}
	// y2 must still route to C (y2-y3-c1 intact).
	if _, ok := st.Best(f.R["y2"], PrefixFor(f.ASC)); !ok {
		t.Fatal("y2 should keep C after y1 dies")
	}
}

func TestConvergenceOnResearchTopology(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	origins := map[Prefix]topology.ASN{}
	for i := 0; i < 10; i++ {
		s := res.Stubs[i*13%len(res.Stubs)]
		origins[PrefixFor(s)] = s
	}
	st, err := Compute(Config{
		Topo: res.Topo, IGP: igp.New(res.Topo, nil2up()), IsLinkUp: nil2up(), Origins: origins,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds() > 30 {
		t.Fatalf("convergence took %d rounds; policy iteration is misbehaving", st.Rounds())
	}
	// Every originated prefix must be reachable from every core router
	// (the research graph is fully connected).
	for p := range origins {
		for _, core := range res.Cores {
			for _, r := range res.Topo.AS(core).Routers {
				if _, ok := st.Best(r, p); !ok {
					t.Fatalf("core router %d missing route to %s", r, p)
				}
			}
		}
	}
}

func nil2up() func(topology.LinkID) bool {
	return func(topology.LinkID) bool { return true }
}

func TestRouteEqual(t *testing.T) {
	a := &Route{Prefix: "p", ASPath: []topology.ASN{1, 2}, LocalPref: 100, Egress: 3}
	b := &Route{Prefix: "p", ASPath: []topology.ASN{1, 2}, LocalPref: 100, Egress: 3}
	if !a.equal(b) {
		t.Fatal("identical routes must compare equal")
	}
	b.ASPath = []topology.ASN{1, 3}
	if a.equal(b) {
		t.Fatal("different AS paths must not compare equal")
	}
	if !(*Route)(nil).equal(nil) {
		t.Fatal("nil routes are equal")
	}
	if a.equal(nil) {
		t.Fatal("route != nil")
	}
}
