package bgp

import (
	"strings"
	"testing"

	"netdiag/internal/igp"
	"netdiag/internal/topology"
)

// build converges BGP over an arbitrary topology with every link up.
func build(t *testing.T, topo *topology.Topology, origins map[Prefix]topology.ASN) *State {
	t.Helper()
	up := func(topology.LinkID) bool { return true }
	st, err := Compute(Config{
		Topo: topo, IGP: igp.New(topo, up), IsLinkUp: up, Origins: origins,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCustomerBeatsShorterPeerPath checks the local-pref step dominates
// path length: a customer-learned route wins over a shorter peer route.
func TestCustomerBeatsShorterPeerPath(t *testing.T) {
	// dst is X's customer via transit T (path X-T-D, length 2) and X's
	// peer P announces a direct route (path X... P is dst's provider:
	// X-P-D would also be length 2; make the customer path longer by one
	// extra AS: X-T1-T2-D vs peer path X-P-D).
	b := topology.NewBuilder()
	b.AddAS(1, topology.Core, "X")
	b.AddAS(2, topology.Tier2, "T1")
	b.AddAS(3, topology.Tier2, "T2")
	b.AddAS(4, topology.Core, "P")
	b.AddAS(5, topology.Stub, "D")
	x := b.AddRouter(1, "x")
	t1 := b.AddRouter(2, "t1")
	t2 := b.AddRouter(3, "t2")
	p := b.AddRouter(4, "p")
	d := b.AddRouter(5, "d")
	b.Interconnect(x, t1, topology.Customer) // T1 is X's customer
	b.Interconnect(t1, t2, topology.Customer)
	b.Interconnect(t2, d, topology.Customer)
	b.Interconnect(x, p, topology.Peer)
	b.Interconnect(p, d, topology.Customer) // D is P's customer
	topo := b.MustBuild()

	st := build(t, topo, map[Prefix]topology.ASN{PrefixFor(5): 5})
	rt, ok := st.Best(x, PrefixFor(5))
	if !ok {
		t.Fatal("x has no route to D")
	}
	if rt.LocalPref != prefCustomer {
		t.Fatalf("x should prefer the customer route (localpref %d), got %d with path %v",
			prefCustomer, rt.LocalPref, rt.ASPath)
	}
	if len(rt.ASPath) != 3 {
		t.Fatalf("customer path should be X->T1->T2->D (3 AS hops), got %v", rt.ASPath)
	}
}

// TestShorterPathWinsWithinTier checks the AS-path-length step among
// routes of equal local preference.
func TestShorterPathWinsWithinTier(t *testing.T) {
	// D reachable via customer T (2 AS hops) and customer C directly
	// (1 hop): the shorter customer route wins.
	b := topology.NewBuilder()
	b.AddAS(1, topology.Core, "X")
	b.AddAS(2, topology.Tier2, "T")
	b.AddAS(3, topology.Tier2, "C")
	x := b.AddRouter(1, "x")
	x2 := b.AddRouter(1, "x2")
	b.Connect(x, x2, 1)
	tr := b.AddRouter(2, "t")
	cr := b.AddRouter(3, "c")
	b.Interconnect(x, tr, topology.Customer)
	b.Interconnect(tr, cr, topology.Customer)
	b.Interconnect(x2, cr, topology.Customer)
	topo := b.MustBuild()

	st := build(t, topo, map[Prefix]topology.ASN{PrefixFor(3): 3})
	rt, ok := st.Best(x2, PrefixFor(3))
	if !ok {
		t.Fatal("no route")
	}
	if len(rt.ASPath) != 1 || rt.ASPath[0] != 3 {
		t.Fatalf("x2 should use the direct customer route, got path %v", rt.ASPath)
	}
}

// TestHotPotatoPicksNearestEgress checks the IGP tie-break: with two equal
// routes via different border routers, each router exits at its closest
// egress.
func TestHotPotatoPicksNearestEgress(t *testing.T) {
	// AS 1 is a chain a-b-c; egresses a and c both reach D via
	// equal-length equal-pref routes.
	b := topology.NewBuilder()
	b.AddAS(1, topology.Core, "X")
	b.AddAS(2, topology.Tier2, "L")
	b.AddAS(3, topology.Tier2, "R")
	b.AddAS(4, topology.Stub, "D")
	a := b.AddRouter(1, "a")
	m := b.AddRouter(1, "m")
	c := b.AddRouter(1, "c")
	b.Connect(a, m, 1)
	b.Connect(m, c, 1)
	l := b.AddRouter(2, "l")
	r := b.AddRouter(3, "r")
	d := b.AddRouter(4, "d")
	d2 := b.AddRouter(4, "d2")
	b.Connect(d, d2, 1)
	b.Interconnect(a, l, topology.Customer)
	b.Interconnect(c, r, topology.Customer)
	b.Interconnect(l, d, topology.Customer)
	b.Interconnect(r, d2, topology.Customer)
	topo := b.MustBuild()

	st := build(t, topo, map[Prefix]topology.ASN{PrefixFor(4): 4})
	ra, _ := st.Best(a, PrefixFor(4))
	rc, _ := st.Best(c, PrefixFor(4))
	if ra.Egress != a {
		t.Fatalf("a should exit at itself (hot potato), egress = %d", ra.Egress)
	}
	if rc.Egress != c {
		t.Fatalf("c should exit at itself (hot potato), egress = %d", rc.Egress)
	}
}

// TestLoopPrevention checks that a router never accepts a route whose AS
// path already contains its own AS.
func TestLoopPrevention(t *testing.T) {
	f := topology.BuildFig2()
	st := fig2State(t, f, nil, nil)
	for id := 0; id < f.Topo.NumRouters(); id++ {
		r := topology.RouterID(id)
		own := f.Topo.RouterAS(r)
		for _, p := range st.Prefixes() {
			if rt, ok := st.Best(r, p); ok && rt.hasAS(own) {
				t.Fatalf("router %d (AS%d) accepted looped path %v", r, own, rt.ASPath)
			}
		}
	}
}

// TestPeerRouteNotExportedToPeer verifies the Gao–Rexford export rule
// directly: Y must not export the peer-learned route to A's prefix to
// another peer or provider.
func TestPeerRouteNotExportedToPeer(t *testing.T) {
	// Extend Fig2 with a second peer Z of Y. Y learns A's prefix from
	// peer X and must not hand it to peer Z.
	b := topology.NewBuilder()
	b.AddAS(1, topology.Stub, "A")
	b.AddAS(2, topology.Tier2, "X")
	b.AddAS(3, topology.Tier2, "Y")
	b.AddAS(4, topology.Tier2, "Z")
	a := b.AddRouter(1, "a")
	x := b.AddRouter(2, "x")
	y := b.AddRouter(3, "y")
	z := b.AddRouter(4, "z")
	b.Interconnect(x, a, topology.Customer)
	b.Interconnect(x, y, topology.Peer)
	b.Interconnect(y, z, topology.Peer)
	topo := b.MustBuild()

	st := build(t, topo, map[Prefix]topology.ASN{PrefixFor(1): 1})
	if _, ok := st.Best(y, PrefixFor(1)); !ok {
		t.Fatal("Y should learn A's prefix from its peer X")
	}
	if _, ok := st.Best(z, PrefixFor(1)); ok {
		t.Fatal("Z must NOT learn A's prefix: Y may not export peer routes to peers")
	}
	if st.AdjInPrefixes(z, y)[PrefixFor(1)] {
		t.Fatal("Y leaked a peer route to peer Z")
	}
}

// TestMaxRoundsError checks the convergence cap reports an error instead
// of spinning forever.
func TestMaxRoundsError(t *testing.T) {
	f := topology.BuildFig2()
	up := func(topology.LinkID) bool { return true }
	_, err := Compute(Config{
		Topo: f.Topo, IGP: igp.New(f.Topo, up), IsLinkUp: up,
		Origins:   map[Prefix]topology.ASN{PrefixFor(f.ASA): f.ASA},
		MaxRounds: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "no convergence") {
		t.Fatalf("MaxRounds=1 should fail to converge, got %v", err)
	}
}

// TestAccessors covers the remaining read-side API.
func TestAccessors(t *testing.T) {
	f := topology.BuildFig2()
	st := fig2State(t, f, nil, nil)
	if st.Rounds() < 2 {
		t.Fatalf("rounds = %d", st.Rounds())
	}
	if got := len(st.Prefixes()); got != 3 {
		t.Fatalf("prefixes = %d", got)
	}
	nbrs := st.EBGPNeighbors(f.R["y1"])
	if len(nbrs) != 1 || nbrs[0] != f.R["x2"] {
		t.Fatalf("y1 neighbors = %v", nbrs)
	}
	if _, ok := st.ASPathFrom(f.ASA, Prefix("nonexistent")); ok {
		t.Fatal("unknown prefix should have no AS path")
	}
}

// TestFilterAllPrefixes verifies filtering every prefix on a session is
// equivalent to withdrawing the session's announcements without dropping
// the session.
func TestFilterAllPrefixes(t *testing.T) {
	f := topology.BuildFig2()
	var filters []ExportFilter
	for _, as := range []topology.ASN{f.ASA, f.ASB, f.ASC} {
		filters = append(filters, ExportFilter{
			Router: f.R["y1"], Peer: f.R["x2"], Prefix: PrefixFor(as),
		})
	}
	st := fig2State(t, f, nil, filters)
	// x2 receives nothing from y1, but the session exists (x2 still
	// exports to y1, so y1 keeps routes learned from x2).
	if n := len(st.AdjInPrefixes(f.R["x2"], f.R["y1"])); n != 0 {
		t.Fatalf("x2 should receive nothing from y1, got %d prefixes", n)
	}
	if !st.AdjInPrefixes(f.R["y1"], f.R["x2"])[PrefixFor(f.ASA)] {
		t.Fatal("y1 should still receive A's prefix from x2")
	}
}
