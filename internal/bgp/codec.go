package bgp

import (
	"fmt"

	"netdiag/internal/binpack"
	"netdiag/internal/topology"
)

// AppendBinary encodes the converged routing state into w: the sorted
// prefix list, then for every prefix the per-router best routes and the
// slot-indexed Adj-RIB-Ins. The session layout itself is not serialized —
// it is a pure function of topology and liveness, so DecodeBinary
// re-derives it with buildLayout and only a slot-count check travels in
// the stream to catch mismatched inputs.
func (s *State) AppendBinary(w *binpack.Writer) {
	w.Uint(uint64(len(s.layout.flat)))
	w.Uint(uint64(s.rounds))
	w.Uint(uint64(len(s.prefixes)))
	for _, p := range s.prefixes {
		w.String(string(p))
		ps := s.per[p]
		w.Uint(uint64(ps.rounds))
		for _, rt := range ps.best {
			appendRoute(w, rt)
		}
		// States shared from a warm compute keep a prior (superset) layout;
		// resolving every slot of the current layout through adjAt writes
		// the stream in current-layout order regardless.
		for _, e := range s.layout.flat {
			appendRoute(w, ps.adjAt(e.Local, e.Remote))
		}
	}
}

// appendRoute encodes one RIB entry (nil means no route). The prefix is
// implied by the enclosing section.
func appendRoute(w *binpack.Writer, rt *Route) {
	if rt == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Uint(uint64(len(rt.ASPath)))
	for _, as := range rt.ASPath {
		w.Uint(uint64(as))
	}
	w.Uint(uint64(rt.LocalPref))
	w.Uint(uint64(rt.Egress))
	w.Uint(uint64(rt.PeerRouter))
	w.Bool(rt.Local)
	w.Bool(rt.viaIBGP)
}

// DecodeBinary rebuilds a converged State from an AppendBinary stream.
// cfg must describe the same topology, origins and liveness the state was
// encoded under (the snapshot layer guarantees this via its digest): the
// session layout is rebuilt from cfg, and the retained cfg is what later
// warm computes read. Nil liveness callbacks default to all-up, exactly
// as in ComputeCtx.
func DecodeBinary(r *binpack.Reader, cfg Config) (*State, error) {
	if cfg.IsLinkUp == nil {
		cfg.IsLinkUp = func(topology.LinkID) bool { return true }
	}
	if cfg.IsRouterUp == nil {
		cfg.IsRouterUp = func(topology.RouterID) bool { return true }
	}
	s := &State{
		cfg:    cfg,
		layout: buildLayout(&cfg),
		per:    make(map[Prefix]*prefixState, len(cfg.Origins)),
	}
	if slots := r.Uint(); slots != uint64(len(s.layout.flat)) {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("bgp: decoding state: %w", err)
		}
		return nil, fmt.Errorf("bgp: encoded session layout has %d slots, topology yields %d", slots, len(s.layout.flat))
	}
	s.rounds = int(r.Uint())
	nprefix := r.Uint()
	if nprefix != uint64(len(cfg.Origins)) {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("bgp: decoding state: %w", err)
		}
		return nil, fmt.Errorf("bgp: encoded state has %d prefixes, origins have %d", nprefix, len(cfg.Origins))
	}
	nr := cfg.Topo.NumRouters()
	s.prefixes = make([]Prefix, 0, nprefix)
	for i := uint64(0); i < nprefix; i++ {
		p := Prefix(r.String())
		if _, ok := cfg.Origins[p]; !ok && r.Err() == nil {
			return nil, fmt.Errorf("bgp: encoded prefix %q not in origins", p)
		}
		// best and adj split one pointer block; the route structs behind
		// them split one arena.
		blk := make([]*Route, nr+len(s.layout.flat))
		ps := &prefixState{
			best:   blk[:nr:nr],
			adj:    blk[nr:],
			layout: s.layout,
			rounds: int(r.Uint()),
		}
		// One backing block for every route of this prefix section. The
		// append below never exceeds the pre-sized capacity (at most one
		// route per best/adj slot), so the taken pointers stay valid.
		arena := make([]Route, 0, nr+len(s.layout.flat))
		for j := range ps.best {
			ps.best[j], arena = decodeRoute(r, p, arena)
		}
		for j := range ps.adj {
			ps.adj[j], arena = decodeRoute(r, p, arena)
		}
		s.prefixes = append(s.prefixes, p)
		s.per[p] = ps
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bgp: decoding state: %w", err)
	}
	return s, nil
}

func decodeRoute(r *binpack.Reader, p Prefix, arena []Route) (*Route, []Route) {
	if !r.Bool() {
		return nil, arena
	}
	arena = append(arena, Route{Prefix: p})
	rt := &arena[len(arena)-1]
	n := r.Uint()
	if n > uint64(r.Remaining()) {
		// A path longer than the remaining bytes is corrupt input; latch
		// the reader's error rather than allocating from a bogus length.
		r.Fail(binpack.ErrTooLarge)
		return nil, arena
	}
	if n > 0 {
		rt.ASPath = make([]topology.ASN, n)
		for i := range rt.ASPath {
			rt.ASPath[i] = topology.ASN(r.Uint())
		}
	}
	rt.LocalPref = int(r.Uint())
	rt.Egress = topology.RouterID(r.Uint())
	rt.PeerRouter = topology.RouterID(r.Uint())
	rt.Local = r.Bool()
	rt.viaIBGP = r.Bool()
	return rt, arena
}
