// Warm-started convergence: a Delta describes how a Config differs from a
// previously converged state of the same topology, and planWarm derives
// from it the set of prefixes whose converged routing can actually be
// affected (the "dirty set"). Clean prefixes share the prior prefixState by
// pointer and skip the fixpoint entirely; dirty prefixes seed their
// fixpoint from the prior routes, so an already-correct seed confirms in a
// single verification round instead of O(diameter) rounds.
//
// Soundness rests on the Gao–Rexford relationship consistency the topology
// package enforces: the decision process has a unique stable state per
// prefix (no dispute wheel), so any fixpoint the seeded iteration reaches
// — and any prior state proven to still be a fixpoint — is the same state
// a cold compute reaches. The netsim differential tests assert this
// route-for-route over randomized fault sets.
package bgp

import (
	"netdiag/internal/topology"
)

// Delta describes how a Config's fault set differs from the converged
// Prior state, as the netsim layer tracks it. The zero delta (no failed
// routers, no dirty ASes, ForceAll false) means "only link and filter
// changes, derivable from the configs themselves": removed sessions are
// found by diffing the session layouts and filter changes by diffing the
// Filters slices.
type Delta struct {
	// Prior is the converged state the new compute is a perturbation of.
	// It must have been computed over the same Topo and the same Origins.
	Prior *State
	// FailedRouters are routers that were up when Prior converged and are
	// down now. (The prior Config's IsRouterUp closure may read live state
	// that has since changed, so the caller must pass the delta
	// explicitly.)
	FailedRouters []topology.RouterID
	// DirtyASes are the ASes whose intra-domain IGP tables changed between
	// Prior's compute and this one (failed/restored intra-AS links, failed
	// routers). Hot-potato tie-breaks and iBGP reachability read IGP
	// distances, so prefix pruning must inspect these ASes.
	DirtyASes []topology.ASN
	// ForceAll marks deltas with restorations (links or routers back up,
	// filters removed): new routes can then appear anywhere, so every
	// prefix is treated as dirty. The fixpoints are still warm-seeded —
	// unaffected prefixes confirm in one verification round.
	ForceAll bool
	// SessionsUnchanged asserts no inter-AS link or router liveness changed
	// since Prior, so the live eBGP session set is exactly Prior's. The
	// compute then shares Prior's session layout by pointer instead of
	// rebuilding it — the dominant allocation on small all-clean deltas.
	SessionsUnchanged bool
}

// planWarm splits the prefixes into dirty (fixpoint re-runs, seeded) and
// clean (share Prior's prefixState). seeds[i] is the prior state of
// prefix i, nil for prefixes Prior did not carry.
//
// A prefix is dirty when the delta can reach its converged routing:
//   - an export filter for it was added (removed filters set ForceAll);
//   - a failed router held a best route for it (clearing that route can
//     cascade);
//   - a prior Adj-RIB-In entry for it rode a session that no longer exists
//     (the entry must be dropped, which can cascade);
//   - some router in a dirty AS held a best route whose egress the AS's
//     IGP distance change can re-rank (hot-potato tie-breaks and iBGP
//     egress reachability are the only IGP inputs to the decision
//     process).
//
// Everything else is provably untouched: its prior routes are a fixpoint
// under the new configuration, hence (by uniqueness) the cold result.
func (s *State) planWarm(w *Delta) (dirty []bool, seeds []*prefixState) {
	prior := w.Prior
	n := len(s.prefixes)
	dirty = make([]bool, n)
	seeds = make([]*prefixState, n)
	for i, p := range s.prefixes {
		seeds[i] = prior.per[p]
		// New prefixes, or prefixes whose origin moved, converge cold.
		if seeds[i] == nil || prior.cfg.Origins[p] != s.cfg.Origins[p] {
			dirty[i] = true
		}
	}

	forceAll := w.ForceAll
	added, removed := filterDelta(prior.cfg.Filters, s.cfg.Filters)
	if removed {
		forceAll = true
	}
	removedSessions, addedSessions := layoutDelta(prior.layout, s.layout)
	if addedSessions {
		// Restorations should have set ForceAll already; keep the pruning
		// sound even if a caller under-reported the delta.
		forceAll = true
	}
	if forceAll {
		for i := range dirty {
			dirty[i] = true
		}
		return dirty, seeds
	}

	if len(added) > 0 {
		idx := make(map[Prefix]int, n)
		for i, p := range s.prefixes {
			idx[p] = i
		}
		for _, f := range added {
			if i, ok := idx[f.Prefix]; ok {
				dirty[i] = true
			}
		}
	}

	for i := range s.prefixes {
		if dirty[i] {
			continue
		}
		ps := seeds[i]
		for _, r := range w.FailedRouters {
			if ps.best[r] != nil {
				dirty[i] = true
				break
			}
		}
		if dirty[i] {
			continue
		}
		for _, e := range removedSessions {
			if ps.adjAt(e.Local, e.Remote) != nil {
				dirty[i] = true
				break
			}
		}
	}

	for _, asn := range w.DirtyASes {
		routers := s.cfg.Topo.AS(asn).Routers
		for i := range s.prefixes {
			if dirty[i] {
				continue
			}
			for _, q := range routers {
				b := seeds[i].best[q]
				if b == nil {
					continue
				}
				// Per-(router, egress) check: r's decision for p reads the
				// IGP only through Dist(r, egress) of its candidates (the
				// hot-potato tie-break and iBGP egress reachability). Dirty
				// deltas are pure degradations — distances only grow — so
				// rival candidates can only get worse; the prior winner can
				// lose its seat only if its own egress distance changed.
				if prior.cfg.IGP.Dist(q, b.Egress) != s.cfg.IGP.Dist(q, b.Egress) {
					dirty[i] = true
					break
				}
			}
		}
	}
	return dirty, seeds
}

// filterDelta diffs two export-filter multisets.
func filterDelta(prior, cur []ExportFilter) (added []ExportFilter, removed bool) {
	if len(prior) == 0 {
		return cur, false
	}
	if len(cur) == 0 {
		return nil, true
	}
	count := map[ExportFilter]int{}
	for _, f := range prior {
		count[f]++
	}
	for _, f := range cur {
		if count[f] > 0 {
			count[f]--
		} else {
			added = append(added, f)
		}
	}
	for _, left := range count {
		if left > 0 {
			removed = true
			break
		}
	}
	return added, removed
}

// layoutDelta diffs two session layouts: removed is every directed session
// present in prior but absent now; addedAny reports whether the new layout
// has any session prior lacked.
func layoutDelta(prior, cur *sessionLayout) (removed []session, addedAny bool) {
	if prior == cur {
		return nil, false
	}
	for _, e := range prior.flat {
		if cur.slot(e.Local, e.Remote) < 0 {
			removed = append(removed, e)
		}
	}
	// cur holds (prior ∩ cur) plus any genuinely new sessions, and
	// |prior ∩ cur| = |prior| - |removed|.
	addedAny = len(cur.flat) > len(prior.flat)-len(removed)
	return removed, addedAny
}
