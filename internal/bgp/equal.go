package bgp

import (
	"fmt"
	"sort"

	"netdiag/internal/topology"
)

// RoutesEqual reports whether two converged states carry route-for-route
// identical routing: the same prefix set, semantically equal best routes at
// every router, and semantically equal Adj-RIB-In content on every eBGP
// session either state knows about. It is the equivalence the incremental
// reconvergence tests assert between warm and cold computes.
func (s *State) RoutesEqual(o *State) bool {
	return len(s.DiffRoutes(o, 1)) == 0
}

// DiffRoutes returns up to max human-readable differences between two
// converged states (route-level, deterministic order). An empty result
// means the states are route-for-route identical.
func (s *State) DiffRoutes(o *State, max int) []string {
	var out []string
	add := func(format string, args ...any) bool {
		out = append(out, fmt.Sprintf(format, args...))
		return len(out) >= max
	}
	if len(s.prefixes) != len(o.prefixes) {
		add("prefix count %d vs %d", len(s.prefixes), len(o.prefixes))
		return out
	}
	for i, p := range s.prefixes {
		if o.prefixes[i] != p {
			if add("prefix[%d] %s vs %s", i, p, o.prefixes[i]) {
				return out
			}
		}
	}
	for _, p := range s.prefixes {
		sp, op := s.per[p], o.per[p]
		if sp == nil || op == nil {
			if sp != op {
				if add("%s: missing prefix state (%v vs %v)", p, sp != nil, op != nil) {
					return out
				}
			}
			continue
		}
		for r := range sp.best {
			if !sp.best[r].equal(op.best[r]) {
				if add("%s: best[%d] %s vs %s", p, r, routeStr(sp.best[r]), routeStr(op.best[r])) {
					return out
				}
			}
		}
		// Compare Adj-RIB-Ins over the union of both states' session sets;
		// shared prefixStates may be indexed by an older (superset) layout,
		// where sessions absent from the other state must hold nil.
		for _, e := range adjUnion(sp, op) {
			a, b := sp.adjAt(e.Local, e.Remote), op.adjAt(e.Local, e.Remote)
			if !a.equal(b) {
				if add("%s: adjIn[%d][%d] %s vs %s", p, e.Local, e.Remote, routeStr(a), routeStr(b)) {
					return out
				}
			}
		}
	}
	return out
}

// adjUnion returns the union of the two prefixStates' directed sessions in
// deterministic (Local, Remote) order.
func adjUnion(a, b *prefixState) []session {
	type pair struct{ l, r topology.RouterID }
	seen := map[pair]bool{}
	var out []session
	for _, e := range a.layout.flat {
		if !seen[pair{e.Local, e.Remote}] {
			seen[pair{e.Local, e.Remote}] = true
			out = append(out, e)
		}
	}
	for _, e := range b.layout.flat {
		if !seen[pair{e.Local, e.Remote}] {
			seen[pair{e.Local, e.Remote}] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Local != out[j].Local {
			return out[i].Local < out[j].Local
		}
		return out[i].Remote < out[j].Remote
	})
	return out
}

// routeStr renders a route for diff output.
func routeStr(r *Route) string {
	if r == nil {
		return "<none>"
	}
	return fmt.Sprintf("{path %v pref %d egress %d peer %d local %v ibgp %v}",
		r.ASPath, r.LocalPref, r.Egress, r.PeerRouter, r.Local, r.viaIBGP)
}
