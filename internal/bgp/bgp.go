// Package bgp implements the interdomain routing substrate: a router-level
// path-vector protocol in the style of C-BGP's static solver. Each router
// runs the standard decision process over routes received on eBGP sessions
// (one per inter-AS physical link) and over iBGP (full mesh within the AS,
// subject to IGP reachability), with Gao–Rexford export policies derived
// from the topology's business relationships and optional per-neighbor
// export filters used to simulate the paper's router misconfigurations.
//
// The simulator computes the stable routing state by synchronous fixpoint
// iteration. The NetDiagnoser paper diagnoses non-transient failures after
// routing has converged, so the stable state — not BGP's transient message
// dynamics — is the only thing the diagnosis algorithms observe.
//
// Prefixes converge independently of each other (the decision process for
// one prefix never reads another prefix's state), so Compute runs one
// fixpoint per prefix and, when Config.Parallelism allows, fans the
// per-prefix fixpoints out over a bounded worker pool. The converged state
// is identical at any parallelism level.
package bgp

import (
	"context"
	"fmt"
	"sort"

	"netdiag/internal/igp"
	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Metrics instruments the convergence pipeline: the per-prefix fixpoint
// iteration counts, a convergence counter, and the pool-layer task
// metrics of the per-prefix fan-out. A nil *Metrics disables everything.
type Metrics struct {
	// FixpointRounds observes the synchronous rounds each prefix took.
	FixpointRounds *telemetry.Histogram
	// PrefixesConverged counts successfully converged prefixes.
	PrefixesConverged *telemetry.Counter
	// PrefixesDirty counts prefixes a warm compute had to re-run the
	// fixpoint for; PrefixesSkipped counts prefixes that shared the prior
	// state untouched.
	PrefixesDirty   *telemetry.Counter
	PrefixesSkipped *telemetry.Counter
	// WarmRounds observes the fixpoint rounds of warm-started prefixes
	// only, where a near-fixpoint seed should confirm in very few rounds.
	WarmRounds *telemetry.Histogram
	// Pool carries the shared pool-layer task metrics.
	Pool *pool.Metrics
}

// NewMetrics returns the BGP metrics of a registry (nil registry -> nil).
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		FixpointRounds:    r.Histogram("bgp.fixpoint_rounds", telemetry.CountBuckets),
		PrefixesConverged: r.Counter("bgp.prefixes_converged"),
		PrefixesDirty:     r.Counter("bgp.prefixes_dirty"),
		PrefixesSkipped:   r.Counter("bgp.prefixes_skipped"),
		WarmRounds:        r.Histogram("bgp.warm_fixpoint_rounds", telemetry.CountBuckets),
		Pool:              pool.NewMetrics(r),
	}
}

func (m *Metrics) prefixConverged(rounds int) {
	if m == nil {
		return
	}
	m.PrefixesConverged.Inc()
	m.FixpointRounds.Observe(int64(rounds))
}

// warmOutcome records the dirty/skipped split of one warm compute and the
// per-prefix warm fixpoint rounds.
func (m *Metrics) warmOutcome(dirtyRounds []int, skipped int) {
	if m == nil {
		return
	}
	m.PrefixesDirty.Add(int64(len(dirtyRounds)))
	m.PrefixesSkipped.Add(int64(skipped))
	for _, r := range dirtyRounds {
		m.WarmRounds.Observe(int64(r))
	}
}

func (m *Metrics) poolMetrics() *pool.Metrics {
	if m == nil {
		return nil
	}
	return m.Pool
}

// Prefix names a destination prefix. The simulation originates one prefix
// per sensor-hosting AS (see netsim), which is all the diagnoser needs.
type Prefix string

// PrefixFor returns the canonical prefix name for an origin AS.
func PrefixFor(as topology.ASN) Prefix { return Prefix(fmt.Sprintf("p%d/24", as)) }

// Local-preference tiers of the standard Gao–Rexford policy.
const (
	prefLocal    = 200
	prefCustomer = 100
	prefPeer     = 90
	prefProvider = 80
)

// Route is one BGP route as held in a router's RIB.
type Route struct {
	Prefix    Prefix
	ASPath    []topology.ASN // nearest AS first, origin AS last; empty for local routes
	LocalPref int
	// Egress is the border router of this AS where traffic exits (the
	// router holding the eBGP session the route was learned on), or the
	// router itself for locally originated routes.
	Egress topology.RouterID
	// PeerRouter is the eBGP neighbor router at the egress; undefined for
	// local routes.
	PeerRouter topology.RouterID
	// Local marks a locally originated route.
	Local bool
	// viaIBGP marks that the holding router learned the route over iBGP
	// (used by the eBGP-over-iBGP decision step).
	viaIBGP bool
}

// equal reports semantic equality of two routes (fixpoint detection).
func (r *Route) equal(o *Route) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.Prefix != o.Prefix || r.LocalPref != o.LocalPref ||
		r.Egress != o.Egress || r.PeerRouter != o.PeerRouter ||
		r.Local != o.Local || r.viaIBGP != o.viaIBGP ||
		len(r.ASPath) != len(o.ASPath) {
		return false
	}
	for i := range r.ASPath {
		if r.ASPath[i] != o.ASPath[i] {
			return false
		}
	}
	return true
}

// hasAS reports whether the AS path contains asn (loop detection).
func (r *Route) hasAS(asn topology.ASN) bool {
	for _, a := range r.ASPath {
		if a == asn {
			return true
		}
	}
	return false
}

// ExportFilter suppresses the announcement of Prefix from Router to its
// eBGP neighbor Peer. This is exactly the paper's simulated router
// misconfiguration (§4): an incorrectly set outbound route filter.
type ExportFilter struct {
	Router topology.RouterID
	Peer   topology.RouterID
	Prefix Prefix
}

// Config assembles everything needed to compute a stable routing state.
type Config struct {
	Topo *topology.Topology
	IGP  *igp.State
	// IsLinkUp reports physical link liveness; eBGP sessions ride links.
	IsLinkUp func(topology.LinkID) bool
	// IsRouterUp reports router liveness (router failures take down all
	// sessions of the router).
	IsRouterUp func(topology.RouterID) bool
	// Origins maps each announced prefix to its origin AS.
	Origins map[Prefix]topology.ASN
	// Filters are the active export filters (misconfigurations).
	Filters []ExportFilter
	// MaxRounds caps the fixpoint iteration; 0 means a generous default.
	MaxRounds int
	// Parallelism bounds the worker pool the per-prefix fixpoints run on.
	// Values <= 1 converge sequentially (the default); the result is the
	// same either way.
	Parallelism int
	// Metrics receives convergence telemetry; nil (the default) disables
	// it. Telemetry never affects the converged state.
	Metrics *Metrics
	// Warm, when non-nil, seeds the compute from a previously converged
	// state of the same topology and origins (see Delta): prefixes whose
	// routing cannot be affected by the described delta share the prior
	// state untouched, and every other prefix starts its fixpoint from the
	// prior routes instead of empty RIBs. The converged result is
	// route-for-route identical to a cold compute.
	Warm *Delta
}

// session is one live eBGP session endpoint as seen from Local.
type session struct {
	Local  topology.RouterID
	Remote topology.RouterID
	Rel    topology.Rel // Local AS's view of Remote's AS
}

// sessionLayout is the flattened, deterministic index of the live eBGP
// sessions of one computed State: flat holds every directed session grouped
// by Local router (groups sorted by Remote), and start is the CSR offset
// table — router r's sessions occupy flat[start[r]:start[r+1]], and the
// slot index of a session doubles as its Adj-RIB-In index in prefixState.
// A layout is immutable once built and shared by every prefixState computed
// against it.
type sessionLayout struct {
	start []int // len NumRouters+1
	flat  []session
}

// of returns router r's live sessions (sorted by Remote).
func (ly *sessionLayout) of(r topology.RouterID) []session {
	return ly.flat[ly.start[r]:ly.start[r+1]]
}

// slot returns the Adj-RIB-In slot of the (local, remote) session, or -1 if
// the layout has no such session. Per-router fan-out is small, so a linear
// scan of the router's group beats any index structure.
func (ly *sessionLayout) slot(local, remote topology.RouterID) int {
	for i := ly.start[local]; i < ly.start[int(local)+1]; i++ {
		if ly.flat[i].Remote == remote {
			return i
		}
	}
	return -1
}

// prefixState is the converged state of a single prefix. Each prefix's
// fixpoint reads and writes only its own prefixState, which is what makes
// the per-prefix convergence safely parallel.
type prefixState struct {
	// best is the router's best route, indexed by RouterID (nil = none).
	best []*Route
	// adj is the slot-indexed Adj-RIB-In: adj[i] is what layout.flat[i].Local
	// received from layout.flat[i].Remote (nil = nothing advertised).
	adj []*Route
	// layout is the session layout adj is indexed by. A prefixState shared
	// from a prior state keeps the prior layout, which is a superset of any
	// later pure-degradation layout; removed sessions hold nil entries.
	layout *sessionLayout
	rounds int
}

// adjAt returns the route local received from remote, resolved through the
// prefixState's own layout (states shared across computes keep their
// original layout).
func (ps *prefixState) adjAt(local, remote topology.RouterID) *Route {
	if i := ps.layout.slot(local, remote); i >= 0 {
		return ps.adj[i]
	}
	return nil
}

// State is a converged routing state.
type State struct {
	cfg      Config
	prefixes []Prefix
	layout   *sessionLayout
	per      map[Prefix]*prefixState
	rounds   int
	// warmDirty / warmSkipped describe how a warm compute split the
	// prefixes; both zero for a cold compute.
	warmDirty, warmSkipped int
}

// Compute converges the routing state. It returns an error only if some
// prefix's iteration fails to reach a fixpoint within the round cap, which
// for relationship-consistent topologies indicates a configuration bug.
func Compute(cfg Config) (*State, error) {
	return ComputeCtx(context.Background(), cfg)
}

// ComputeCtx is Compute with cancellation: ctx is checked between the
// synchronous rounds of every prefix's fixpoint and between the per-prefix
// tasks of the fan-out, so a served diagnosis with a deadline aborts the
// convergence promptly with ctx.Err(). The converged state is identical to
// Compute for an uncancelled context. A nil ctx means context.Background().
func ComputeCtx(ctx context.Context, cfg Config) (*State, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.IsLinkUp == nil {
		cfg.IsLinkUp = func(topology.LinkID) bool { return true }
	}
	if cfg.IsRouterUp == nil {
		cfg.IsRouterUp = func(topology.RouterID) bool { return true }
	}
	s := &State{
		cfg: cfg,
		per: make(map[Prefix]*prefixState, len(cfg.Origins)),
	}
	prior := (*State)(nil)
	if cfg.Warm != nil {
		prior = cfg.Warm.Prior
	}
	if prior != nil && len(prior.prefixes) == len(cfg.Origins) {
		// Warm computes run over the same Origins as the prior state (the
		// Delta contract), so the sorted prefix list is reusable read-only.
		s.prefixes = prior.prefixes
	} else {
		s.prefixes = make([]Prefix, 0, len(cfg.Origins))
		for p := range cfg.Origins {
			s.prefixes = append(s.prefixes, p)
		}
		sort.Slice(s.prefixes, func(i, j int) bool { return s.prefixes[i] < s.prefixes[j] })
	}
	if prior != nil && cfg.Warm.SessionsUnchanged {
		// No inter-AS link or router liveness changed, so the live eBGP
		// session set is exactly the prior one.
		s.layout = prior.layout
	} else {
		s.layout = buildLayout(&s.cfg)
	}

	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 500
	}
	var dirty []bool
	var seeds []*prefixState
	if prior != nil {
		dirty, seeds = s.planWarm(cfg.Warm)
	}
	if dirty != nil && noneDirty(dirty) {
		// Entirely clean delta: share every prior prefixState without
		// spinning up the per-prefix fan-out at all.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i, p := range s.prefixes {
			s.per[p] = seeds[i]
			s.warmSkipped++
		}
		cfg.Metrics.warmOutcome(nil, s.warmSkipped)
		return s, nil
	}
	states := make([]*prefixState, len(s.prefixes))
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	err := pool.ForEachM(ctx, workers, len(s.prefixes), func(i int) error {
		if dirty != nil && !dirty[i] {
			// Clean prefix: the prior converged state is provably the
			// fixpoint under the new configuration too — share it.
			states[i] = seeds[i]
			return nil
		}
		var seed *prefixState
		if seeds != nil {
			seed = seeds[i]
		}
		ps, err := s.convergePrefix(ctx, s.prefixes[i], maxRounds, seed)
		if err != nil {
			return err
		}
		cfg.Metrics.prefixConverged(ps.rounds)
		states[i] = ps
		return nil
	}, cfg.Metrics.poolMetrics())
	if err != nil {
		return nil, err
	}
	var warmRounds []int
	for i, p := range s.prefixes {
		s.per[p] = states[i]
		if dirty != nil && !dirty[i] {
			s.warmSkipped++
			continue
		}
		if dirty != nil {
			s.warmDirty++
			warmRounds = append(warmRounds, states[i].rounds)
		}
		if states[i].rounds > s.rounds {
			s.rounds = states[i].rounds
		}
	}
	if dirty != nil {
		cfg.Metrics.warmOutcome(warmRounds, s.warmSkipped)
	}
	return s, nil
}

// noneDirty reports whether a warm plan left every prefix clean.
func noneDirty(dirty []bool) bool {
	for _, d := range dirty {
		if d {
			return false
		}
	}
	return true
}

// buildLayout enumerates the live eBGP sessions into their flattened,
// deterministic slot index.
func buildLayout(cfg *Config) *sessionLayout {
	topo := cfg.Topo
	byRouter := make([][]session, topo.NumRouters())
	for _, l := range topo.Links() {
		if l.Kind != topology.Inter || !cfg.IsLinkUp(l.ID) {
			continue
		}
		if !cfg.IsRouterUp(l.A) || !cfg.IsRouterUp(l.B) {
			continue
		}
		asA, asB := topo.RouterAS(l.A), topo.RouterAS(l.B)
		byRouter[l.A] = append(byRouter[l.A], session{Local: l.A, Remote: l.B, Rel: topo.Rel(asA, asB)})
		byRouter[l.B] = append(byRouter[l.B], session{Local: l.B, Remote: l.A, Rel: topo.Rel(asB, asA)})
	}
	ly := &sessionLayout{start: make([]int, topo.NumRouters()+1)}
	for r, ss := range byRouter {
		// Deterministic order for reproducible tie-breaking paths.
		sort.Slice(ss, func(i, j int) bool { return ss[i].Remote < ss[j].Remote })
		ly.start[r] = len(ly.flat)
		ly.flat = append(ly.flat, ss...)
	}
	ly.start[topo.NumRouters()] = len(ly.flat)
	return ly
}

// convergePrefix runs the synchronous fixpoint for one prefix, checking ctx
// between rounds so long convergences abort promptly under a deadline. A
// non-nil seed warm-starts the iteration from a prior converged state
// (remapped onto the current session layout); the fixpoint reached is the
// same either way, a seeded run just reaches it in fewer rounds.
//
// The two prefixStates double-buffer the iteration: each round reads one
// and overwrites every slot of the other, so the per-round map and slice
// churn of the hot loop collapses to two allocations per fixpoint.
func (s *State) convergePrefix(ctx context.Context, p Prefix, maxRounds int, seed *prefixState) (*prefixState, error) {
	nr := s.cfg.Topo.NumRouters()
	cur := &prefixState{best: make([]*Route, nr), adj: make([]*Route, len(s.layout.flat)), layout: s.layout}
	next := &prefixState{best: make([]*Route, nr), adj: make([]*Route, len(s.layout.flat)), layout: s.layout}
	if seed != nil {
		copy(cur.best, seed.best)
		for i, e := range s.layout.flat {
			cur.adj[i] = seed.adjAt(e.Local, e.Remote)
		}
	}
	for rounds := 1; rounds <= maxRounds; rounds++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !s.stepPrefix(p, cur, next) {
			next.rounds = rounds
			return next, nil
		}
		cur, next = next, cur
	}
	return nil, fmt.Errorf("bgp: prefix %s: no convergence after %d rounds", p, maxRounds)
}

// stepPrefix runs one synchronous round for one prefix: recompute every
// router's best route from the previous round's state (prev), then
// recompute every Adj-RIB-In slot from the new bests, writing into next.
// It reports whether anything changed.
func (s *State) stepPrefix(p Prefix, prev, next *prefixState) bool {
	topo := s.cfg.Topo
	changed := false

	for id := 0; id < topo.NumRouters(); id++ {
		r := topology.RouterID(id)
		if !s.cfg.IsRouterUp(r) {
			next.best[r] = nil
			if prev.best[r] != nil {
				changed = true
			}
			continue
		}
		next.best[r] = s.decide(r, p, prev)
		if !changed && !next.best[r].equal(prev.best[r]) {
			changed = true
		}
	}

	// Exports read the bests just computed (next), matching the original
	// synchronous round: best pass first, then Adj-RIB-Ins from the new
	// bests. export only reads .best, so the half-filled next.adj is fine.
	for i, e := range s.layout.flat {
		// The route e.Local receives FROM e.Remote: Remote's export.
		in := s.export(e.Remote, e.Local, p, next)
		next.adj[i] = in
		if !changed && !in.equal(prev.adj[i]) {
			changed = true
		}
	}
	return changed
}

// export computes the route router `from` advertises to eBGP neighbor `to`
// for prefix p under Gao–Rexford policy and the active export filters, or
// nil when nothing is advertised.
func (s *State) export(from, to topology.RouterID, p Prefix, ps *prefixState) *Route {
	topo := s.cfg.Topo
	b := ps.best[from]
	if b == nil {
		return nil
	}
	fromAS, toAS := topo.RouterAS(from), topo.RouterAS(to)
	if !s.exportAllowed(b, topo.Rel(fromAS, toAS)) {
		return nil
	}
	if s.filtered(from, to, p) {
		return nil
	}
	return &Route{
		Prefix:     p,
		ASPath:     append([]topology.ASN{fromAS}, b.ASPath...),
		Egress:     from, // meaningful to the receiver as "came from"
		PeerRouter: from,
	}
}

// exportAllowed implements Gao–Rexford: own and customer routes go to
// everyone; peer and provider routes go to customers only.
func (s *State) exportAllowed(b *Route, relToNeighbor topology.Rel) bool {
	if b.Local {
		return true
	}
	if b.LocalPref == prefCustomer {
		return true
	}
	return relToNeighbor == topology.Customer
}

func (s *State) filtered(from, to topology.RouterID, p Prefix) bool {
	for _, f := range s.cfg.Filters {
		if f.Router == from && f.Peer == to && f.Prefix == p {
			return true
		}
	}
	return false
}

// decide runs the BGP decision process at router r for prefix p over the
// previous round's Adj-RIB-Ins and iBGP-learned bests.
func (s *State) decide(r topology.RouterID, p Prefix, ps *prefixState) *Route {
	topo := s.cfg.Topo
	asn := topo.RouterAS(r)

	var best *Route
	consider := func(c *Route) {
		if c != nil && s.better(r, c, best) {
			best = c
		}
	}

	// Locally originated.
	if s.cfg.Origins[p] == asn {
		consider(&Route{Prefix: p, LocalPref: prefLocal, Egress: r, Local: true})
	}

	// eBGP: routes in Adj-RIB-In from live sessions. The fixpoint always
	// iterates states indexed by s.layout, so the session slot addresses
	// the Adj-RIB-In directly.
	base := s.layout.start[r]
	for i, e := range s.layout.of(r) {
		adv := ps.adj[base+i]
		if adv == nil || adv.hasAS(asn) {
			continue
		}
		consider(&Route{
			Prefix:     p,
			ASPath:     adv.ASPath,
			LocalPref:  prefForRel(e.Rel),
			Egress:     r,
			PeerRouter: e.Remote,
		})
	}

	// iBGP full mesh: adopt same-AS border routers' eBGP/local bests,
	// subject to IGP reachability of the egress.
	for _, peer := range topo.AS(asn).Routers {
		if peer == r || !s.cfg.IsRouterUp(peer) {
			continue
		}
		pb := ps.best[peer]
		if pb == nil || pb.viaIBGP || pb.Local {
			// iBGP-learned routes are not re-advertised over iBGP;
			// local origination is known to every router already.
			continue
		}
		if !s.cfg.IGP.Reachable(r, pb.Egress) {
			continue
		}
		c := *pb
		c.viaIBGP = true
		consider(&c)
	}

	return best
}

func prefForRel(rel topology.Rel) int {
	switch rel {
	case topology.Customer:
		return prefCustomer
	case topology.Peer:
		return prefPeer
	default:
		return prefProvider
	}
}

// better reports whether candidate a beats b at router r under the decision
// process: local-pref, AS-path length, eBGP over iBGP, IGP distance to
// egress (hot potato), then lowest egress and peer router IDs.
func (s *State) better(r topology.RouterID, a, b *Route) bool {
	if b == nil {
		return true
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.viaIBGP != b.viaIBGP {
		return !a.viaIBGP
	}
	da, db := s.cfg.IGP.Dist(r, a.Egress), s.cfg.IGP.Dist(r, b.Egress)
	if da != db {
		return da < db
	}
	if a.Egress != b.Egress {
		return a.Egress < b.Egress
	}
	return a.PeerRouter < b.PeerRouter
}

// Best returns router r's best route for prefix p.
func (s *State) Best(r topology.RouterID, p Prefix) (*Route, bool) {
	ps := s.per[p]
	if ps == nil || int(r) >= len(ps.best) || ps.best[r] == nil {
		return nil, false
	}
	return ps.best[r], true
}

// Prefixes returns the announced prefixes in sorted order. The returned
// slice is shared; callers must not modify it.
func (s *State) Prefixes() []Prefix { return s.prefixes }

// Rounds returns the number of synchronous rounds the slowest prefix's
// fixpoint took. Prefixes shared untouched from a warm compute's prior
// state do not count — they took zero rounds this compute.
func (s *State) Rounds() int { return s.rounds }

// WarmStats reports how a warm compute split the prefixes: dirty prefixes
// re-ran the (seeded) fixpoint, skipped prefixes shared the prior state
// untouched. Both are zero for a cold compute.
func (s *State) WarmStats() (dirty, skipped int) { return s.warmDirty, s.warmSkipped }

// ChangedPrefixes returns, in sorted order, the prefixes whose converged
// routes differ from prior: "not returned" is a proof that every router's
// best route for the prefix is semantically unchanged. Prefixes sharing
// the prior prefixState by pointer (a warm compute's clean set) are
// trivially unchanged; prefixes whose fixpoint re-ran are compared
// route-for-route, so a fixpoint that merely re-confirmed the prior
// routes (the common case for a warm re-run whose candidates only got
// worse) does not count as changed. A nil prior (or one missing a prefix)
// marks every prefix changed.
func (s *State) ChangedPrefixes(prior *State) []Prefix {
	out := make([]Prefix, 0, len(s.prefixes))
	for _, p := range s.prefixes {
		if prior == nil || prefixRoutesChanged(prior.per[p], s.per[p]) {
			out = append(out, p)
		}
	}
	return out
}

// prefixRoutesChanged reports whether any router's best route differs
// between two converged states of one prefix.
func prefixRoutesChanged(prior, cur *prefixState) bool {
	if prior == cur {
		return false
	}
	if prior == nil || cur == nil || len(prior.best) != len(cur.best) {
		return true
	}
	for r := range cur.best {
		if !cur.best[r].equal(prior.best[r]) {
			return true
		}
	}
	return false
}

// AdjInPrefixes returns the set of prefixes router r currently receives
// from eBGP neighbor `from`. Diffing this across a failure event yields the
// BGP withdrawals the paper's ND-bgpigp consumes.
func (s *State) AdjInPrefixes(r, from topology.RouterID) map[Prefix]bool {
	out := map[Prefix]bool{}
	for p, ps := range s.per {
		// Resolve through each prefixState's own layout: states shared from
		// a prior compute are indexed by the prior session layout.
		if ps.adjAt(r, from) != nil {
			out[p] = true
		}
	}
	return out
}

// EBGPNeighbors returns the remote routers of r's live eBGP sessions in
// ascending order.
func (s *State) EBGPNeighbors(r topology.RouterID) []topology.RouterID {
	var out []topology.RouterID
	for _, e := range s.layout.of(r) {
		out = append(out, e.Remote)
	}
	return out
}

// ASPathFrom returns the AS-level path from AS `from` to prefix p as a
// Looking Glass server in that AS would report it: the AS's own number
// followed by the AS path of its best route. ok is false when the AS has
// no route to p.
func (s *State) ASPathFrom(from topology.ASN, p Prefix) ([]topology.ASN, bool) {
	if s.cfg.Origins[p] == from {
		return []topology.ASN{from}, true
	}
	ps := s.per[p]
	if ps == nil {
		return nil, false
	}
	var best *Route
	for _, r := range s.cfg.Topo.AS(from).Routers {
		if b := ps.best[r]; b != nil && !b.viaIBGP {
			if best == nil || s.better(r, b, best) {
				best = b
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return append([]topology.ASN{from}, best.ASPath...), true
}
