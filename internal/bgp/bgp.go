// Package bgp implements the interdomain routing substrate: a router-level
// path-vector protocol in the style of C-BGP's static solver. Each router
// runs the standard decision process over routes received on eBGP sessions
// (one per inter-AS physical link) and over iBGP (full mesh within the AS,
// subject to IGP reachability), with Gao–Rexford export policies derived
// from the topology's business relationships and optional per-neighbor
// export filters used to simulate the paper's router misconfigurations.
//
// The simulator computes the stable routing state by synchronous fixpoint
// iteration. The NetDiagnoser paper diagnoses non-transient failures after
// routing has converged, so the stable state — not BGP's transient message
// dynamics — is the only thing the diagnosis algorithms observe.
//
// Prefixes converge independently of each other (the decision process for
// one prefix never reads another prefix's state), so Compute runs one
// fixpoint per prefix and, when Config.Parallelism allows, fans the
// per-prefix fixpoints out over a bounded worker pool. The converged state
// is identical at any parallelism level.
package bgp

import (
	"context"
	"fmt"
	"sort"

	"netdiag/internal/igp"
	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Metrics instruments the convergence pipeline: the per-prefix fixpoint
// iteration counts, a convergence counter, and the pool-layer task
// metrics of the per-prefix fan-out. A nil *Metrics disables everything.
type Metrics struct {
	// FixpointRounds observes the synchronous rounds each prefix took.
	FixpointRounds *telemetry.Histogram
	// PrefixesConverged counts successfully converged prefixes.
	PrefixesConverged *telemetry.Counter
	// Pool carries the shared pool-layer task metrics.
	Pool *pool.Metrics
}

// NewMetrics returns the BGP metrics of a registry (nil registry -> nil).
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		FixpointRounds:    r.Histogram("bgp.fixpoint_rounds", telemetry.CountBuckets),
		PrefixesConverged: r.Counter("bgp.prefixes_converged"),
		Pool:              pool.NewMetrics(r),
	}
}

func (m *Metrics) prefixConverged(rounds int) {
	if m == nil {
		return
	}
	m.PrefixesConverged.Inc()
	m.FixpointRounds.Observe(int64(rounds))
}

func (m *Metrics) poolMetrics() *pool.Metrics {
	if m == nil {
		return nil
	}
	return m.Pool
}

// Prefix names a destination prefix. The simulation originates one prefix
// per sensor-hosting AS (see netsim), which is all the diagnoser needs.
type Prefix string

// PrefixFor returns the canonical prefix name for an origin AS.
func PrefixFor(as topology.ASN) Prefix { return Prefix(fmt.Sprintf("p%d/24", as)) }

// Local-preference tiers of the standard Gao–Rexford policy.
const (
	prefLocal    = 200
	prefCustomer = 100
	prefPeer     = 90
	prefProvider = 80
)

// Route is one BGP route as held in a router's RIB.
type Route struct {
	Prefix    Prefix
	ASPath    []topology.ASN // nearest AS first, origin AS last; empty for local routes
	LocalPref int
	// Egress is the border router of this AS where traffic exits (the
	// router holding the eBGP session the route was learned on), or the
	// router itself for locally originated routes.
	Egress topology.RouterID
	// PeerRouter is the eBGP neighbor router at the egress; undefined for
	// local routes.
	PeerRouter topology.RouterID
	// Local marks a locally originated route.
	Local bool
	// viaIBGP marks that the holding router learned the route over iBGP
	// (used by the eBGP-over-iBGP decision step).
	viaIBGP bool
}

// equal reports semantic equality of two routes (fixpoint detection).
func (r *Route) equal(o *Route) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.Prefix != o.Prefix || r.LocalPref != o.LocalPref ||
		r.Egress != o.Egress || r.PeerRouter != o.PeerRouter ||
		r.Local != o.Local || r.viaIBGP != o.viaIBGP ||
		len(r.ASPath) != len(o.ASPath) {
		return false
	}
	for i := range r.ASPath {
		if r.ASPath[i] != o.ASPath[i] {
			return false
		}
	}
	return true
}

// hasAS reports whether the AS path contains asn (loop detection).
func (r *Route) hasAS(asn topology.ASN) bool {
	for _, a := range r.ASPath {
		if a == asn {
			return true
		}
	}
	return false
}

// ExportFilter suppresses the announcement of Prefix from Router to its
// eBGP neighbor Peer. This is exactly the paper's simulated router
// misconfiguration (§4): an incorrectly set outbound route filter.
type ExportFilter struct {
	Router topology.RouterID
	Peer   topology.RouterID
	Prefix Prefix
}

// Config assembles everything needed to compute a stable routing state.
type Config struct {
	Topo *topology.Topology
	IGP  *igp.State
	// IsLinkUp reports physical link liveness; eBGP sessions ride links.
	IsLinkUp func(topology.LinkID) bool
	// IsRouterUp reports router liveness (router failures take down all
	// sessions of the router).
	IsRouterUp func(topology.RouterID) bool
	// Origins maps each announced prefix to its origin AS.
	Origins map[Prefix]topology.ASN
	// Filters are the active export filters (misconfigurations).
	Filters []ExportFilter
	// MaxRounds caps the fixpoint iteration; 0 means a generous default.
	MaxRounds int
	// Parallelism bounds the worker pool the per-prefix fixpoints run on.
	// Values <= 1 converge sequentially (the default); the result is the
	// same either way.
	Parallelism int
	// Metrics receives convergence telemetry; nil (the default) disables
	// it. Telemetry never affects the converged state.
	Metrics *Metrics
}

// session is one live eBGP session endpoint as seen from Local.
type session struct {
	Local  topology.RouterID
	Remote topology.RouterID
	Rel    topology.Rel // Local AS's view of Remote's AS
}

// prefixState is the converged state of a single prefix. Each prefix's
// fixpoint reads and writes only its own prefixState, which is what makes
// the per-prefix convergence safely parallel.
type prefixState struct {
	// best is the router's best route, indexed by RouterID (nil = none).
	best []*Route
	// adjIn[router][neighbor router]: what neighbor advertised.
	adjIn  map[topology.RouterID]map[topology.RouterID]*Route
	rounds int
}

// State is a converged routing state.
type State struct {
	cfg      Config
	prefixes []Prefix
	sessions map[topology.RouterID][]session
	per      map[Prefix]*prefixState
	rounds   int
}

// Compute converges the routing state. It returns an error only if some
// prefix's iteration fails to reach a fixpoint within the round cap, which
// for relationship-consistent topologies indicates a configuration bug.
func Compute(cfg Config) (*State, error) {
	return ComputeCtx(context.Background(), cfg)
}

// ComputeCtx is Compute with cancellation: ctx is checked between the
// synchronous rounds of every prefix's fixpoint and between the per-prefix
// tasks of the fan-out, so a served diagnosis with a deadline aborts the
// convergence promptly with ctx.Err(). The converged state is identical to
// Compute for an uncancelled context. A nil ctx means context.Background().
func ComputeCtx(ctx context.Context, cfg Config) (*State, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.IsLinkUp == nil {
		cfg.IsLinkUp = func(topology.LinkID) bool { return true }
	}
	if cfg.IsRouterUp == nil {
		cfg.IsRouterUp = func(topology.RouterID) bool { return true }
	}
	s := &State{
		cfg:      cfg,
		sessions: map[topology.RouterID][]session{},
		per:      map[Prefix]*prefixState{},
	}
	for p := range cfg.Origins {
		s.prefixes = append(s.prefixes, p)
	}
	sort.Slice(s.prefixes, func(i, j int) bool { return s.prefixes[i] < s.prefixes[j] })
	s.buildSessions()

	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 500
	}
	states := make([]*prefixState, len(s.prefixes))
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	err := pool.ForEachM(ctx, workers, len(s.prefixes), func(i int) error {
		ps, err := s.convergePrefix(ctx, s.prefixes[i], maxRounds)
		if err != nil {
			return err
		}
		cfg.Metrics.prefixConverged(ps.rounds)
		states[i] = ps
		return nil
	}, cfg.Metrics.poolMetrics())
	if err != nil {
		return nil, err
	}
	for i, p := range s.prefixes {
		s.per[p] = states[i]
		if states[i].rounds > s.rounds {
			s.rounds = states[i].rounds
		}
	}
	return s, nil
}

// buildSessions enumerates the live eBGP sessions.
func (s *State) buildSessions() {
	topo := s.cfg.Topo
	for _, l := range topo.Links() {
		if l.Kind != topology.Inter || !s.cfg.IsLinkUp(l.ID) {
			continue
		}
		if !s.cfg.IsRouterUp(l.A) || !s.cfg.IsRouterUp(l.B) {
			continue
		}
		asA, asB := topo.RouterAS(l.A), topo.RouterAS(l.B)
		s.sessions[l.A] = append(s.sessions[l.A], session{Local: l.A, Remote: l.B, Rel: topo.Rel(asA, asB)})
		s.sessions[l.B] = append(s.sessions[l.B], session{Local: l.B, Remote: l.A, Rel: topo.Rel(asB, asA)})
	}
	// Deterministic order for reproducible tie-breaking paths.
	for r := range s.sessions {
		ss := s.sessions[r]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Remote < ss[j].Remote })
	}
}

// convergePrefix runs the synchronous fixpoint for one prefix, checking ctx
// between rounds so long convergences abort promptly under a deadline.
func (s *State) convergePrefix(ctx context.Context, p Prefix, maxRounds int) (*prefixState, error) {
	ps := &prefixState{
		best:  make([]*Route, s.cfg.Topo.NumRouters()),
		adjIn: map[topology.RouterID]map[topology.RouterID]*Route{},
	}
	for ps.rounds = 1; ps.rounds <= maxRounds; ps.rounds++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !s.stepPrefix(p, ps) {
			return ps, nil
		}
	}
	return nil, fmt.Errorf("bgp: prefix %s: no convergence after %d rounds", p, maxRounds)
}

// stepPrefix runs one synchronous round for one prefix: recompute every
// router's best route from the previous round's state, then recompute every
// Adj-RIB-In from the new bests. It reports whether anything changed.
func (s *State) stepPrefix(p Prefix, ps *prefixState) bool {
	topo := s.cfg.Topo
	changed := false

	newBest := make([]*Route, topo.NumRouters())
	for id := 0; id < topo.NumRouters(); id++ {
		r := topology.RouterID(id)
		if !s.cfg.IsRouterUp(r) {
			continue
		}
		newBest[r] = s.decide(r, p, ps)
		if !changed && !newBest[r].equal(ps.best[r]) {
			changed = true
		}
	}
	ps.best = newBest

	newAdj := map[topology.RouterID]map[topology.RouterID]*Route{}
	for _, sess := range s.sessions {
		for _, e := range sess {
			// The route e.Local receives FROM e.Remote: Remote's export.
			in := s.export(e.Remote, e.Local, p, ps)
			if in != nil {
				m := newAdj[e.Local]
				if m == nil {
					m = map[topology.RouterID]*Route{}
					newAdj[e.Local] = m
				}
				m[e.Remote] = in
			}
		}
	}
	if !changed {
		changed = !adjEqual(ps.adjIn, newAdj)
	}
	ps.adjIn = newAdj
	return changed
}

func adjEqual(a, b map[topology.RouterID]map[topology.RouterID]*Route) bool {
	if len(a) != len(b) {
		return false
	}
	for r, am := range a {
		bm, ok := b[r]
		if !ok || len(am) != len(bm) {
			return false
		}
		for n, ar := range am {
			if !ar.equal(bm[n]) {
				return false
			}
		}
	}
	return true
}

// export computes the route router `from` advertises to eBGP neighbor `to`
// for prefix p under Gao–Rexford policy and the active export filters, or
// nil when nothing is advertised.
func (s *State) export(from, to topology.RouterID, p Prefix, ps *prefixState) *Route {
	topo := s.cfg.Topo
	b := ps.best[from]
	if b == nil {
		return nil
	}
	fromAS, toAS := topo.RouterAS(from), topo.RouterAS(to)
	if !s.exportAllowed(b, topo.Rel(fromAS, toAS)) {
		return nil
	}
	if s.filtered(from, to, p) {
		return nil
	}
	return &Route{
		Prefix:     p,
		ASPath:     append([]topology.ASN{fromAS}, b.ASPath...),
		Egress:     from, // meaningful to the receiver as "came from"
		PeerRouter: from,
	}
}

// exportAllowed implements Gao–Rexford: own and customer routes go to
// everyone; peer and provider routes go to customers only.
func (s *State) exportAllowed(b *Route, relToNeighbor topology.Rel) bool {
	if b.Local {
		return true
	}
	if b.LocalPref == prefCustomer {
		return true
	}
	return relToNeighbor == topology.Customer
}

func (s *State) filtered(from, to topology.RouterID, p Prefix) bool {
	for _, f := range s.cfg.Filters {
		if f.Router == from && f.Peer == to && f.Prefix == p {
			return true
		}
	}
	return false
}

// decide runs the BGP decision process at router r for prefix p over the
// previous round's Adj-RIB-Ins and iBGP-learned bests.
func (s *State) decide(r topology.RouterID, p Prefix, ps *prefixState) *Route {
	topo := s.cfg.Topo
	asn := topo.RouterAS(r)

	var best *Route
	consider := func(c *Route) {
		if c != nil && s.better(r, c, best) {
			best = c
		}
	}

	// Locally originated.
	if s.cfg.Origins[p] == asn {
		consider(&Route{Prefix: p, LocalPref: prefLocal, Egress: r, Local: true})
	}

	// eBGP: routes in Adj-RIB-In from live sessions.
	for _, e := range s.sessions[r] {
		adv := ps.adjIn[r][e.Remote]
		if adv == nil || adv.hasAS(asn) {
			continue
		}
		consider(&Route{
			Prefix:     p,
			ASPath:     adv.ASPath,
			LocalPref:  prefForRel(e.Rel),
			Egress:     r,
			PeerRouter: e.Remote,
		})
	}

	// iBGP full mesh: adopt same-AS border routers' eBGP/local bests,
	// subject to IGP reachability of the egress.
	for _, peer := range topo.AS(asn).Routers {
		if peer == r || !s.cfg.IsRouterUp(peer) {
			continue
		}
		pb := ps.best[peer]
		if pb == nil || pb.viaIBGP || pb.Local {
			// iBGP-learned routes are not re-advertised over iBGP;
			// local origination is known to every router already.
			continue
		}
		if !s.cfg.IGP.Reachable(r, pb.Egress) {
			continue
		}
		c := *pb
		c.viaIBGP = true
		consider(&c)
	}

	return best
}

func prefForRel(rel topology.Rel) int {
	switch rel {
	case topology.Customer:
		return prefCustomer
	case topology.Peer:
		return prefPeer
	default:
		return prefProvider
	}
}

// better reports whether candidate a beats b at router r under the decision
// process: local-pref, AS-path length, eBGP over iBGP, IGP distance to
// egress (hot potato), then lowest egress and peer router IDs.
func (s *State) better(r topology.RouterID, a, b *Route) bool {
	if b == nil {
		return true
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.viaIBGP != b.viaIBGP {
		return !a.viaIBGP
	}
	da, db := s.cfg.IGP.Dist(r, a.Egress), s.cfg.IGP.Dist(r, b.Egress)
	if da != db {
		return da < db
	}
	if a.Egress != b.Egress {
		return a.Egress < b.Egress
	}
	return a.PeerRouter < b.PeerRouter
}

// Best returns router r's best route for prefix p.
func (s *State) Best(r topology.RouterID, p Prefix) (*Route, bool) {
	ps := s.per[p]
	if ps == nil || int(r) >= len(ps.best) || ps.best[r] == nil {
		return nil, false
	}
	return ps.best[r], true
}

// Prefixes returns the announced prefixes in sorted order. The returned
// slice is shared; callers must not modify it.
func (s *State) Prefixes() []Prefix { return s.prefixes }

// Rounds returns the number of synchronous rounds the slowest prefix's
// fixpoint took.
func (s *State) Rounds() int { return s.rounds }

// AdjInPrefixes returns the set of prefixes router r currently receives
// from eBGP neighbor `from`. Diffing this across a failure event yields the
// BGP withdrawals the paper's ND-bgpigp consumes.
func (s *State) AdjInPrefixes(r, from topology.RouterID) map[Prefix]bool {
	out := map[Prefix]bool{}
	for p, ps := range s.per {
		if ps.adjIn[r][from] != nil {
			out[p] = true
		}
	}
	return out
}

// EBGPNeighbors returns the remote routers of r's live eBGP sessions in
// ascending order.
func (s *State) EBGPNeighbors(r topology.RouterID) []topology.RouterID {
	var out []topology.RouterID
	for _, e := range s.sessions[r] {
		out = append(out, e.Remote)
	}
	return out
}

// ASPathFrom returns the AS-level path from AS `from` to prefix p as a
// Looking Glass server in that AS would report it: the AS's own number
// followed by the AS path of its best route. ok is false when the AS has
// no route to p.
func (s *State) ASPathFrom(from topology.ASN, p Prefix) ([]topology.ASN, bool) {
	if s.cfg.Origins[p] == from {
		return []topology.ASN{from}, true
	}
	ps := s.per[p]
	if ps == nil {
		return nil, false
	}
	var best *Route
	for _, r := range s.cfg.Topo.AS(from).Routers {
		if b := ps.best[r]; b != nil && !b.viaIBGP {
			if best == nil || s.better(r, b, best) {
				best = b
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return append([]topology.ASN{from}, best.ASPath...), true
}
