package bgp

import (
	"testing"

	"netdiag/internal/igp"
	"netdiag/internal/topology"
)

// BenchmarkConvergence measures a full path-vector convergence of the
// 165-AS research topology with 10 announced prefixes — the dominant cost
// of every simulated failure trial.
func BenchmarkConvergence(b *testing.B) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	origins := map[Prefix]topology.ASN{}
	for i := 0; i < 10; i++ {
		s := res.Stubs[i*13]
		origins[PrefixFor(s)] = s
	}
	up := func(topology.LinkID) bool { return true }
	ig := igp.New(res.Topo, up)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(Config{Topo: res.Topo, IGP: ig, IsLinkUp: up, Origins: origins}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecisionProcess measures the per-router decision step in
// isolation on a converged state.
func BenchmarkDecisionProcess(b *testing.B) {
	f := topology.BuildFig2()
	up := func(topology.LinkID) bool { return true }
	st, err := Compute(Config{
		Topo: f.Topo, IGP: igp.New(f.Topo, up), IsLinkUp: up,
		Origins: map[Prefix]topology.ASN{
			PrefixFor(f.ASA): f.ASA,
			PrefixFor(f.ASB): f.ASB,
			PrefixFor(f.ASC): f.ASC,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	p := PrefixFor(f.ASB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.decide(f.R["x1"], p, st.per[p]) == nil {
			b.Fatal("no route")
		}
	}
}

// BenchmarkConvergenceParallel measures the same full convergence with the
// per-prefix fixpoints fanned out over 4 workers. On a multi-core machine
// this should approach a 4x speedup over BenchmarkConvergence.
func BenchmarkConvergenceParallel(b *testing.B) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	origins := map[Prefix]topology.ASN{}
	for i := 0; i < 10; i++ {
		s := res.Stubs[i*13]
		origins[PrefixFor(s)] = s
	}
	up := func(topology.LinkID) bool { return true }
	ig := igp.New(res.Topo, up)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(Config{Topo: res.Topo, IGP: ig, IsLinkUp: up, Origins: origins, Parallelism: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
