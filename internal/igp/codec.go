package igp

import (
	"fmt"

	"netdiag/internal/binpack"
	"netdiag/internal/topology"
)

// AppendBinary encodes the all-pairs distance tables into w in the dense
// layout the snapshot codec persists: for every AS in ascending ASN
// order, for every source router in the AS's canonical router order, one
// varint per potential destination in that same order — value+1 when the
// destination is reachable, 0 when the table has no entry. Router
// identity is positional (derived from the topology at decode time), so
// the encoding carries no IDs at all.
func (s *State) AppendBinary(w *binpack.Writer) {
	for _, asn := range s.topo.ASNumbers() {
		routers := s.topo.AS(asn).Routers
		for _, src := range routers {
			row := s.dist[src]
			for _, dst := range routers {
				if v := row[dst]; v != Infinity {
					w.Uint(uint64(v) + 1)
				} else {
					w.Uint(0)
				}
			}
		}
	}
}

// DecodeBinary rebuilds a State from an AppendBinary stream. topo must be
// the topology the state was encoded against and isUp must describe the
// same link liveness (the snapshot layer checks both via its digest);
// they are retained for next-hop derivation exactly as in New.
func DecodeBinary(r *binpack.Reader, topo *topology.Topology, isUp func(topology.LinkID) bool) (*State, error) {
	n := topo.NumRouters()
	s := &State{
		topo: topo,
		isUp: isUp,
		dist: make([][]int32, n),
	}
	// All rows come from one Infinity-initialized slab: a single
	// allocation rebuilds every distance table, and only the in-AS
	// positions the stream carries are overwritten.
	slab := make([]int32, n*n)
	for i := range slab {
		slab[i] = Infinity
	}
	for _, asn := range topo.ASNumbers() {
		routers := topo.AS(asn).Routers
		for _, src := range routers {
			row := slab[int(src)*n : (int(src)+1)*n : (int(src)+1)*n]
			for _, dst := range routers {
				if v := r.Uint(); v != 0 {
					row[dst] = int32(v - 1)
				}
			}
			s.dist[src] = row
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("igp: decoding distance tables: %w", err)
	}
	return s, nil
}
