package igp

import (
	"math/rand"
	"testing"

	"netdiag/internal/topology"
)

func allUp(topology.LinkID) bool { return true }

func TestShortestPathsFig1(t *testing.T) {
	f := topology.BuildFig1()
	s := New(f.Topo, allUp)
	// s1 -> s2 goes via 7 unit-cost links.
	if d := s.Dist(f.S1, f.S2); d != 7 {
		t.Fatalf("Dist(s1,s2) = %d, want 7", d)
	}
	if d := s.Dist(f.S1, f.S3); d != 6 {
		t.Fatalf("Dist(s1,s3) = %d, want 6", d)
	}
	// Walking next hops must reach the destination in Dist steps.
	cur, steps := f.S1, 0
	for cur != f.S2 {
		nh, ok := s.NextHop(cur, f.S2)
		if !ok {
			t.Fatalf("NextHop(%d, s2) missing", cur)
		}
		cur = nh
		steps++
		if steps > 20 {
			t.Fatal("forwarding loop")
		}
	}
	if steps != 7 {
		t.Fatalf("walked %d hops, want 7", steps)
	}
}

func TestFailureDisconnects(t *testing.T) {
	f := topology.BuildFig1()
	// Fail r9-r11: s2 becomes unreachable from everywhere in the tree.
	l, ok := f.Topo.LinkBetween(f.R["r9"], f.R["r11"])
	if !ok {
		t.Fatal("r9-r11 link missing")
	}
	s := New(f.Topo, func(id topology.LinkID) bool { return id != l.ID })
	if s.Reachable(f.S1, f.S2) {
		t.Fatal("s2 should be unreachable after r9-r11 failure")
	}
	if !s.Reachable(f.S1, f.S3) {
		t.Fatal("s3 should still be reachable")
	}
	if _, ok := s.NextHop(f.S1, f.S2); ok {
		t.Fatal("NextHop should fail for unreachable destination")
	}
}

func TestReroutingAroundFailure(t *testing.T) {
	// Fig2's AS-Y is a ring y1-y2-y3-y4-y1; failing y1-y2 must reroute
	// y1->y3 via y4.
	f := topology.BuildFig2()
	l, ok := f.Topo.LinkBetween(f.R["y1"], f.R["y2"])
	if !ok {
		t.Fatal("y1-y2 missing")
	}
	before := New(f.Topo, allUp)
	if d := before.Dist(f.R["y1"], f.R["y3"]); d != 2 {
		t.Fatalf("pre-failure Dist(y1,y3) = %d, want 2", d)
	}
	after := New(f.Topo, func(id topology.LinkID) bool { return id != l.ID })
	if d := after.Dist(f.R["y1"], f.R["y3"]); d != 3 {
		t.Fatalf("post-failure Dist(y1,y3) = %d, want 3 (via y4)", d)
	}
	nh, ok := after.NextHop(f.R["y1"], f.R["y3"])
	if !ok || nh != f.R["y4"] {
		t.Fatalf("post-failure NextHop(y1,y3) = %d, want y4", nh)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	// On undirected links with symmetric costs, IGP distance is symmetric
	// and satisfies the triangle inequality within an AS.
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	s := New(res.Topo, allUp)
	rng := rand.New(rand.NewSource(1))
	for _, core := range res.Cores {
		routers := res.Topo.AS(core).Routers
		for trial := 0; trial < 50; trial++ {
			a := routers[rng.Intn(len(routers))]
			b := routers[rng.Intn(len(routers))]
			c := routers[rng.Intn(len(routers))]
			if s.Dist(a, b) != s.Dist(b, a) {
				t.Fatalf("asymmetric dist %d<->%d", a, b)
			}
			if s.Dist(a, c) > s.Dist(a, b)+s.Dist(b, c) {
				t.Fatalf("triangle inequality violated %d,%d,%d", a, b, c)
			}
		}
	}
}

func TestForwardingLoopFreeProperty(t *testing.T) {
	// Under random single intra-AS link failures, following NextHop from
	// any router either reaches the destination or reports unreachable;
	// it never loops.
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	intra := res.Topo.IntraLinks(res.Cores[0])
	routers := res.Topo.AS(res.Cores[0]).Routers
	for trial := 0; trial < 20; trial++ {
		failed := intra[rng.Intn(len(intra))].ID
		s := New(res.Topo, func(id topology.LinkID) bool { return id != failed })
		for _, src := range routers {
			for _, dst := range routers {
				cur, hops := src, 0
				for cur != dst {
					nh, ok := s.NextHop(cur, dst)
					if !ok {
						break
					}
					cur = nh
					hops++
					if hops > len(routers) {
						t.Fatalf("loop routing %d->%d with link %d down", src, dst, failed)
					}
				}
			}
		}
	}
}

func TestNextHopDecreasesDistance(t *testing.T) {
	f := topology.BuildFig2()
	s := New(f.Topo, allUp)
	for _, asn := range f.Topo.ASNumbers() {
		routers := f.Topo.AS(asn).Routers
		for _, a := range routers {
			for _, b := range routers {
				if a == b {
					continue
				}
				nh, ok := s.NextHop(a, b)
				if !ok {
					t.Fatalf("NextHop(%d,%d) missing in connected AS", a, b)
				}
				if s.Dist(nh, b) >= s.Dist(a, b) {
					t.Fatalf("next hop does not decrease distance %d->%d", a, b)
				}
			}
		}
	}
}

func TestNextHopsECMP(t *testing.T) {
	// Build a diamond with two equal-cost branches inside one AS.
	b := topology.NewBuilder()
	b.AddAS(1, topology.Core, "")
	a := b.AddRouter(1, "")
	m1 := b.AddRouter(1, "")
	m2 := b.AddRouter(1, "")
	z := b.AddRouter(1, "")
	b.Connect(a, m1, 1)
	b.Connect(a, m2, 1)
	b.Connect(m1, z, 1)
	b.Connect(m2, z, 1)
	topo := b.MustBuild()
	s := New(topo, allUp)

	hops := s.NextHops(a, z)
	if len(hops) != 2 || hops[0] != m1 || hops[1] != m2 {
		t.Fatalf("NextHops = %v, want [m1 m2] sorted", hops)
	}
	single, ok := s.NextHop(a, z)
	if !ok || single != hops[0] {
		t.Fatalf("NextHop %v must be the first ECMP member %v", single, hops[0])
	}
	if got := s.NextHops(a, a); len(got) != 1 || got[0] != a {
		t.Fatalf("NextHops to self = %v", got)
	}
	// Unreachable: disconnect z.
	s2 := New(topo, func(id topology.LinkID) bool {
		l := topo.Link(id)
		return !l.Has(z)
	})
	if got := s2.NextHops(a, z); got != nil {
		t.Fatalf("NextHops to unreachable = %v, want nil", got)
	}
	if _, ok := s2.NextHop(a, z); ok {
		t.Fatal("NextHop to unreachable must fail")
	}
}
