package igp

import (
	"testing"

	"netdiag/internal/topology"
)

// BenchmarkFullSPF measures computing IGP state for the whole research
// topology (all ASes, all sources) — done once per failure trial.
func BenchmarkFullSPF(b *testing.B) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	up := func(topology.LinkID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(res.Topo, up)
	}
}

// BenchmarkNextHop measures a single next-hop derivation in a core AS.
func BenchmarkNextHop(b *testing.B) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	s := New(res.Topo, func(topology.LinkID) bool { return true })
	routers := res.Topo.AS(res.Cores[1]).Routers
	src, dst := routers[0], routers[len(routers)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.NextHop(src, dst); !ok {
			b.Fatal("unreachable")
		}
	}
}
