// Package igp implements the intradomain routing substrate: a link-state
// IGP (IS-IS-like) computing shortest paths per AS with Dijkstra over the
// currently-up intra-AS links. It also surfaces the "link down" events the
// ND-bgpigp algorithm of the paper consumes from AS-X's own network.
package igp

import (
	"container/heap"
	"math"
	"sort"
	"strconv"
	"sync"

	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Infinity is the distance reported between IGP-disconnected routers.
const Infinity = math.MaxInt32

// LinkDown is the IGP event a troubleshooter observes for a failed
// intra-AS link in its own network (paper §3.3).
type LinkDown struct {
	AS   topology.ASN
	Link topology.LinkID
}

// State holds the IGP routing state of every AS, computed from the set of
// currently-up links at construction time. Next hops are derived from the
// all-pairs (within-AS) distances: router r forwards towards dst via its
// lowest-ID neighbor nb satisfying dist(r,dst) = cost(r,nb) + dist(nb,dst).
// Because link costs are positive, hop-by-hop forwarding under this rule is
// loop-free and deterministic.
type State struct {
	topo *topology.Topology
	isUp func(topology.LinkID) bool
	// dist is indexed by source RouterID (IDs are dense), one per-source
	// distance row per router, itself indexed by destination RouterID with
	// Infinity marking "no entry" (different AS or IGP-unreachable). Dense
	// rows keep the BGP decision process's Dist reads at two slice
	// indexings, let Rebuild clone the whole state with a memmove before
	// overwriting the dirty ASes' rows, and let the snapshot codec rebuild
	// all rows from one backing slab. Rows are read-only once published —
	// Rebuild and the SPF cache share them by pointer.
	dist [][]int32
}

// New computes IGP state for all ASes. isUp reports whether a physical
// link is currently up; the function is retained for next-hop derivation
// and must keep answering consistently until the State is discarded.
func New(topo *topology.Topology, isUp func(topology.LinkID) bool) *State {
	return NewCached(topo, isUp, nil, 1)
}

// Cache memoizes per-AS SPF results across IGP recomputations, keyed by
// (AS, set of failed intra-AS links). Experiment loops converge thousands
// of fault scenarios on one topology, and any given fault touches at most
// a couple of ASes — every other AS's intra-domain routing is bit-identical
// to the healthy network's, so its SPF tables are reused instead of
// recomputed. A Cache is safe for concurrent use and returns shared,
// read-only distance maps.
type Cache struct {
	mu      sync.Mutex
	entries map[string]map[topology.RouterID][]int32

	// Telemetry handles; nil (no-op) unless Instrument was called.
	hits, misses *telemetry.Counter
	size         *telemetry.Gauge
}

// NewCache returns an empty SPF cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]map[topology.RouterID][]int32{}}
}

// Instrument attaches cache telemetry to a registry: the counters
// "igp.spf_cache_hits"/"igp.spf_cache_misses", the entry-count gauge
// "igp.spf_cache_entries", and the derived "igp.spf_cache_hit_ratio".
// Call before the cache is shared across goroutines; a nil registry is a
// no-op. Returns the cache for chaining.
func (c *Cache) Instrument(r *telemetry.Registry) *Cache {
	if r == nil {
		return c
	}
	c.hits = r.Counter("igp.spf_cache_hits")
	c.misses = r.Counter("igp.spf_cache_misses")
	c.size = r.Gauge("igp.spf_cache_entries")
	r.Derive("igp.spf_cache_hit_ratio", func(s telemetry.Snapshot) float64 {
		return telemetry.Ratio(s.Counters["igp.spf_cache_hits"], s.Counters["igp.spf_cache_misses"])
	})
	return c
}

// Len reports the number of cached (AS, failed-link-set) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// key canonically names one AS's intra-domain failure state. This runs on
// every (AS, reconvergence) pair, so it avoids fmt.
//ndlint:hotpath
func cacheKey(asn topology.ASN, failed []topology.LinkID) string {
	b := make([]byte, 0, 16+8*len(failed))
	b = strconv.AppendInt(b, int64(asn), 10)
	b = append(b, '|')
	for i, l := range failed {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	return string(b)
}

// NewCached computes IGP state for all ASes, reusing cached per-AS SPF
// tables where the AS's failed intra-link set matches a previous
// computation. A nil cache disables reuse. Per-AS computations fan out
// over at most `workers` goroutines; the result is identical at any
// parallelism level.
func NewCached(topo *topology.Topology, isUp func(topology.LinkID) bool, cache *Cache, workers int) *State {
	s := &State{
		topo: topo,
		isUp: isUp,
		dist: make([][]int32, topo.NumRouters()),
	}
	asns := topo.ASNumbers()
	perAS := make([]map[topology.RouterID][]int32, len(asns))
	_ = pool.ForEach(nil, workers, len(asns), func(i int) error {
		perAS[i] = s.asTables(asns[i], cache)
		return nil
	})
	for _, tables := range perAS {
		for src, d := range tables {
			s.dist[src] = d
		}
	}
	return s
}

// Rebuild computes IGP state for a changed fault set by perturbing a
// previous State: every AS outside dirty shares prev's per-AS tables by
// pointer (its intra-domain failure set is unchanged, so its tables are
// bit-identical), and only the dirty ASes run SPF — through the cache when
// one is attached, so even a dirty AS whose failure set was seen before is
// a lookup, not a recompute. isUp must describe the NEW fault state; the
// dirty list must name every AS whose intra-AS link liveness (including
// links silenced by router failures) differs from what prev was computed
// with. The result is identical to a fresh NewCached over isUp.
func Rebuild(prev *State, isUp func(topology.LinkID) bool, dirty []topology.ASN, cache *Cache, workers int) *State {
	topo := prev.topo
	s := &State{
		topo: topo,
		isUp: isUp,
		// The copy shares every per-source row by pointer (read-only
		// after construction); dirty-AS routers are overwritten below, so
		// clean ones keep prev's rows — bit-identical, never recomputed.
		dist: make([][]int32, len(prev.dist)),
	}
	copy(s.dist, prev.dist)
	if len(dirty) == 1 || workers <= 1 {
		// Single-AS deltas (the common incremental case) skip the fan-out
		// machinery entirely.
		for _, asn := range dirty {
			for src, d := range s.asTables(asn, cache) {
				s.dist[src] = d
			}
		}
		return s
	}
	perAS := make([]map[topology.RouterID][]int32, len(dirty))
	_ = pool.ForEach(nil, workers, len(dirty), func(i int) error {
		perAS[i] = s.asTables(dirty[i], cache)
		return nil
	})
	for _, tables := range perAS {
		for src, d := range tables {
			s.dist[src] = d
		}
	}
	return s
}

// TablesEqual reports whether two States hold identical all-pairs distance
// tables — the equivalence the incremental reconvergence tests assert
// between a Rebuild and a cold recompute.
func (s *State) TablesEqual(o *State) bool {
	if len(s.dist) != len(o.dist) {
		return false
	}
	for src, d := range s.dist {
		od := o.dist[src]
		if len(d) != len(od) {
			return false
		}
		for dst, v := range d {
			if od[dst] != v {
				return false
			}
		}
	}
	return true
}

// asTables returns the per-source SPF tables of one AS, from the cache
// when possible.
func (s *State) asTables(asn topology.ASN, cache *Cache) map[topology.RouterID][]int32 {
	var key string
	if cache != nil {
		var failed []topology.LinkID
		for _, l := range s.topo.IntraLinks(asn) {
			if !s.isUp(l.ID) {
				failed = append(failed, l.ID)
			}
		}
		// Insertion sort: failed sets are tiny (0–2 links), and sort.Slice
		// would force the slice to the heap on every reconvergence.
		for i := 1; i < len(failed); i++ {
			for j := i; j > 0 && failed[j] < failed[j-1]; j-- {
				failed[j], failed[j-1] = failed[j-1], failed[j]
			}
		}
		key = cacheKey(asn, failed)
		cache.mu.Lock()
		hit, ok := cache.entries[key]
		cache.mu.Unlock()
		if ok {
			cache.hits.Inc()
			return hit
		}
		cache.misses.Inc()
	}
	routers := s.topo.AS(asn).Routers
	tables := make(map[topology.RouterID][]int32, len(routers))
	// Dijkstra only ever settles routers inside asn, so clearing just
	// those positions resets the scratch for the next source.
	visited := make([]bool, s.topo.NumRouters())
	for _, src := range routers {
		tables[src] = s.runSPF(src, visited)
		for _, r := range routers {
			visited[r] = false
		}
	}
	if cache != nil {
		cache.mu.Lock()
		cache.entries[key] = tables
		cache.size.Set(int64(len(cache.entries)))
		cache.mu.Unlock()
	}
	return tables
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	router topology.RouterID
	dist   int
}

type pq []item

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(item)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// runSPF computes single-source shortest path distances within src's AS as
// a dense row over all router IDs (Infinity outside the AS or when
// disconnected). visited is caller-owned scratch, all-false on entry.
func (s *State) runSPF(src topology.RouterID, visited []bool) []int32 {
	topo := s.topo
	asn := topo.RouterAS(src)
	row := make([]int32, topo.NumRouters())
	for i := range row {
		row[i] = Infinity
	}
	row[src] = 0

	q := &pq{{router: src, dist: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if visited[cur.router] {
			continue
		}
		visited[cur.router] = true
		for _, lid := range topo.Router(cur.router).Links {
			l := topo.Link(lid)
			if l.Kind != topology.Intra || !s.isUp(lid) {
				continue
			}
			nb := l.Other(cur.router)
			if topo.RouterAS(nb) != asn {
				continue
			}
			nd := cur.dist + l.Cost
			if int32(nd) < row[nb] {
				row[nb] = int32(nd)
				heap.Push(q, item{router: nb, dist: nd})
			}
		}
	}
	return row
}

// Dist returns the IGP distance from src to dst (same AS), or Infinity if
// dst is unreachable within the AS.
func (s *State) Dist(src, dst topology.RouterID) int {
	if src == dst {
		return 0
	}
	row := s.dist[src]
	if row == nil {
		return Infinity
	}
	return int(row[dst])
}

// NextHop returns the next router on a shortest path from src to dst (both
// in the same AS), breaking equal-cost ties by the lowest neighbor router
// ID. ok is false if dst is IGP-unreachable from src.
func (s *State) NextHop(src, dst topology.RouterID) (topology.RouterID, bool) {
	if src == dst {
		return dst, true
	}
	total := s.Dist(src, dst)
	if total == Infinity {
		return 0, false
	}
	topo := s.topo
	asn := topo.RouterAS(src)
	best := topology.RouterID(-1)
	for _, lid := range topo.Router(src).Links {
		l := topo.Link(lid)
		if l.Kind != topology.Intra || !s.isUp(lid) {
			continue
		}
		nb := l.Other(src)
		if topo.RouterAS(nb) != asn {
			continue
		}
		if l.Cost+s.Dist(nb, dst) == total && (best < 0 || nb < best) {
			best = nb
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// NextHops returns every neighbor of src lying on some shortest path to
// dst (the ECMP next-hop set), sorted by router ID. It returns nil when
// dst is unreachable. NextHop always returns the first element.
func (s *State) NextHops(src, dst topology.RouterID) []topology.RouterID {
	if src == dst {
		return []topology.RouterID{dst}
	}
	total := s.Dist(src, dst)
	if total == Infinity {
		return nil
	}
	topo := s.topo
	asn := topo.RouterAS(src)
	var out []topology.RouterID
	for _, lid := range topo.Router(src).Links {
		l := topo.Link(lid)
		if l.Kind != topology.Intra || !s.isUp(lid) {
			continue
		}
		nb := l.Other(src)
		if topo.RouterAS(nb) != asn {
			continue
		}
		if l.Cost+s.Dist(nb, dst) == total {
			out = append(out, nb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable reports whether src can reach dst within their AS.
func (s *State) Reachable(src, dst topology.RouterID) bool {
	return s.Dist(src, dst) < Infinity
}
