// Package igp implements the intradomain routing substrate: a link-state
// IGP (IS-IS-like) computing shortest paths per AS with Dijkstra over the
// currently-up intra-AS links. It also surfaces the "link down" events the
// ND-bgpigp algorithm of the paper consumes from AS-X's own network.
package igp

import (
	"container/heap"
	"math"
	"sort"

	"netdiag/internal/topology"
)

// Infinity is the distance reported between IGP-disconnected routers.
const Infinity = math.MaxInt32

// LinkDown is the IGP event a troubleshooter observes for a failed
// intra-AS link in its own network (paper §3.3).
type LinkDown struct {
	AS   topology.ASN
	Link topology.LinkID
}

// State holds the IGP routing state of every AS, computed from the set of
// currently-up links at construction time. Next hops are derived from the
// all-pairs (within-AS) distances: router r forwards towards dst via its
// lowest-ID neighbor nb satisfying dist(r,dst) = cost(r,nb) + dist(nb,dst).
// Because link costs are positive, hop-by-hop forwarding under this rule is
// loop-free and deterministic.
type State struct {
	topo *topology.Topology
	isUp func(topology.LinkID) bool
	dist map[topology.RouterID]map[topology.RouterID]int
}

// New computes IGP state for all ASes. isUp reports whether a physical
// link is currently up; the function is retained for next-hop derivation
// and must keep answering consistently until the State is discarded.
func New(topo *topology.Topology, isUp func(topology.LinkID) bool) *State {
	s := &State{
		topo: topo,
		isUp: isUp,
		dist: make(map[topology.RouterID]map[topology.RouterID]int, topo.NumRouters()),
	}
	for _, asn := range topo.ASNumbers() {
		for _, src := range topo.AS(asn).Routers {
			s.dist[src] = s.runSPF(src)
		}
	}
	return s
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	router topology.RouterID
	dist   int
}

type pq []item

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(item)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// runSPF computes single-source shortest path distances within src's AS.
func (s *State) runSPF(src topology.RouterID) map[topology.RouterID]int {
	topo := s.topo
	asn := topo.RouterAS(src)
	dist := map[topology.RouterID]int{src: 0}
	done := map[topology.RouterID]bool{}

	q := &pq{{router: src, dist: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if done[cur.router] {
			continue
		}
		done[cur.router] = true
		for _, lid := range topo.Router(cur.router).Links {
			l := topo.Link(lid)
			if l.Kind != topology.Intra || !s.isUp(lid) {
				continue
			}
			nb := l.Other(cur.router)
			if topo.RouterAS(nb) != asn {
				continue
			}
			nd := cur.dist + l.Cost
			if old, ok := dist[nb]; !ok || nd < old {
				dist[nb] = nd
				heap.Push(q, item{router: nb, dist: nd})
			}
		}
	}
	return dist
}

// Dist returns the IGP distance from src to dst (same AS), or Infinity if
// dst is unreachable within the AS.
func (s *State) Dist(src, dst topology.RouterID) int {
	if src == dst {
		return 0
	}
	d, ok := s.dist[src][dst]
	if !ok {
		return Infinity
	}
	return d
}

// NextHop returns the next router on a shortest path from src to dst (both
// in the same AS), breaking equal-cost ties by the lowest neighbor router
// ID. ok is false if dst is IGP-unreachable from src.
func (s *State) NextHop(src, dst topology.RouterID) (topology.RouterID, bool) {
	if src == dst {
		return dst, true
	}
	total := s.Dist(src, dst)
	if total == Infinity {
		return 0, false
	}
	topo := s.topo
	asn := topo.RouterAS(src)
	best := topology.RouterID(-1)
	for _, lid := range topo.Router(src).Links {
		l := topo.Link(lid)
		if l.Kind != topology.Intra || !s.isUp(lid) {
			continue
		}
		nb := l.Other(src)
		if topo.RouterAS(nb) != asn {
			continue
		}
		if l.Cost+s.Dist(nb, dst) == total && (best < 0 || nb < best) {
			best = nb
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// NextHops returns every neighbor of src lying on some shortest path to
// dst (the ECMP next-hop set), sorted by router ID. It returns nil when
// dst is unreachable. NextHop always returns the first element.
func (s *State) NextHops(src, dst topology.RouterID) []topology.RouterID {
	if src == dst {
		return []topology.RouterID{dst}
	}
	total := s.Dist(src, dst)
	if total == Infinity {
		return nil
	}
	topo := s.topo
	asn := topo.RouterAS(src)
	var out []topology.RouterID
	for _, lid := range topo.Router(src).Links {
		l := topo.Link(lid)
		if l.Kind != topology.Intra || !s.isUp(lid) {
			continue
		}
		nb := l.Other(src)
		if topo.RouterAS(nb) != asn {
			continue
		}
		if l.Cost+s.Dist(nb, dst) == total {
			out = append(out, nb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable reports whether src can reach dst within their AS.
func (s *State) Reachable(src, dst topology.RouterID) bool {
	return s.Dist(src, dst) < Infinity
}
