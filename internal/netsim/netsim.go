// Package netsim ties the substrates together into a runnable network: a
// topology with IGP and BGP state, failure injection (link failures, router
// failures, BGP export-filter misconfigurations), a forwarding engine, and
// simulated traceroute. It plays the role C-BGP plays in the paper's
// evaluation (§4).
package netsim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"netdiag/internal/bgp"
	"netdiag/internal/igp"
	"netdiag/internal/pool"
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// MaxTTL bounds the forwarding walk, like a real traceroute's max hop count.
const MaxTTL = 64

// Network is a simulated internetwork in a consistent, converged state.
// Mutate it with FailLink/FailRouter/AddExportFilter and call Reconverge
// before issuing new traceroutes.
//
// A converged Network is safe for concurrent reads (Traceroute, Mesh,
// AllPaths, the state accessors); the fault-injection mutators and
// Reconverge are not. To run fault scenarios concurrently on one topology,
// give each goroutine its own Fork.
type Network struct {
	topo     *topology.Topology
	linkUp   []bool
	routerUp []bool
	filters  []bgp.ExportFilter
	origins  map[bgp.Prefix]topology.ASN
	// linkUpFn/routerUpFn are the LinkIsUp/RouterIsUp method values, bound
	// once per Network: ReconvergeCtx hands them to the IGP and BGP layers
	// on every convergence, and binding there would allocate each time.
	linkUpFn   func(topology.LinkID) bool
	routerUpFn func(topology.RouterID) bool

	parallelism int
	spfCache    *igp.Cache
	tele        *telemetry.Registry
	met         *simMetrics
	incremental bool

	igp       *igp.State
	bgp       *bgp.State
	converged bool
	// base is the last converged state reconvergence can be computed as a
	// delta of (see ReconvergeCtx); nil until the first convergence or when
	// incremental reconvergence is disabled.
	base *baseState
	// shared marks linkUp/routerUp/filters as aliased by a base snapshot,
	// a checkpoint, or a fork; mutators clone them first (ensureOwned).
	shared bool
}

// baseState is an immutable snapshot of a converged network: the routing
// state plus the exact fault configuration it was computed under. Forks
// share it by pointer; diffing the live fault arrays against it yields the
// reconvergence delta.
type baseState struct {
	igp      *igp.State
	bgp      *bgp.State
	linkUp   []bool
	routerUp []bool
	filters  []bgp.ExportFilter
}

// captureBase snapshots the network's current converged state and fault
// configuration. The returned baseState is never mutated afterwards: the
// snapshot aliases the live arrays and flips the network to copy-on-write
// (the next fault mutation clones them), so reconverging a long chain of
// deltas never re-copies an unchanged fault configuration.
func (n *Network) captureBase() *baseState {
	n.shared = true
	return &baseState{
		igp:      n.igp,
		bgp:      n.bgp,
		linkUp:   n.linkUp,
		routerUp: n.routerUp,
		filters:  n.filters,
	}
}

// ensureOwned clones the fault arrays when they alias a base snapshot, a
// checkpoint, or a forked sibling, so mutations never reach shared state.
func (n *Network) ensureOwned() {
	if !n.shared {
		return
	}
	// One backing buffer for both liveness arrays; they are never appended
	// to, only indexed.
	buf := make([]bool, len(n.linkUp)+len(n.routerUp))
	copy(buf, n.linkUp)
	copy(buf[len(n.linkUp):], n.routerUp)
	n.linkUp, n.routerUp = buf[:len(n.linkUp):len(n.linkUp)], buf[len(n.linkUp):]
	n.filters = append([]bgp.ExportFilter(nil), n.filters...)
	n.shared = false
}

// reconvergeDelta is the difference between the live fault configuration
// and the base snapshot, in the terms the incremental pipeline consumes.
type reconvergeDelta struct {
	base              *baseState
	dirtyASes         []topology.ASN
	failedRouters     []topology.RouterID
	forceAll          bool
	sessionsUnchanged bool
}

// computeDelta diffs the current fault arrays against the base snapshot.
// It returns nil when no base exists (first convergence, or incremental
// reconvergence disabled) and the cold path must run.
func (n *Network) computeDelta() *reconvergeDelta {
	if !n.incremental || n.base == nil {
		return nil
	}
	b := n.base
	d := &reconvergeDelta{base: b, sessionsUnchanged: true}
	for i := range n.linkUp {
		if n.linkUp[i] == b.linkUp[i] {
			continue
		}
		l := n.topo.Link(topology.LinkID(i))
		if l.Kind == topology.Intra {
			d.dirtyASes = appendUniqueAS(d.dirtyASes, n.topo.RouterAS(l.A))
		} else {
			d.sessionsUnchanged = false
		}
		if !b.linkUp[i] {
			// Link restored: new sessions/paths can appear anywhere.
			d.forceAll = true
		}
	}
	for i := range n.routerUp {
		if n.routerUp[i] == b.routerUp[i] {
			continue
		}
		r := topology.RouterID(i)
		d.dirtyASes = appendUniqueAS(d.dirtyASes, n.topo.RouterAS(r))
		d.sessionsUnchanged = false
		if b.routerUp[i] {
			d.failedRouters = append(d.failedRouters, r)
		} else {
			d.forceAll = true
		}
	}
	if filtersRemoved(b.filters, n.filters) {
		d.forceAll = true
	}
	sort.Slice(d.dirtyASes, func(i, j int) bool { return d.dirtyASes[i] < d.dirtyASes[j] })
	return d
}

// appendUniqueAS adds an AS to the dirty list unless present. Deltas touch
// a couple of ASes at most, so a linear-scan set beats a map here (this
// runs on every incremental reconvergence).
func appendUniqueAS(list []topology.ASN, as topology.ASN) []topology.ASN {
	for _, seen := range list {
		if seen == as {
			return list
		}
	}
	return append(list, as)
}

// filtersRemoved reports whether any filter of the base multiset is gone
// from the current one (additions are handled per-prefix by the BGP layer).
func filtersRemoved(base, cur []bgp.ExportFilter) bool {
	if len(cur) >= len(base) {
		count := map[bgp.ExportFilter]int{}
		for _, f := range cur {
			count[f]++
		}
		for _, f := range base {
			if count[f] == 0 {
				return true
			}
			count[f]--
		}
		return false
	}
	return true
}

// simMetrics holds the simulator-level telemetry handles. A nil *simMetrics
// disables all of it, including the clock reads around the phases.
type simMetrics struct {
	reconverges    *telemetry.Counter
	reconvergesInc *telemetry.Counter
	asRebuilds     *telemetry.Counter
	spfNS          *telemetry.Histogram
	bgpNS          *telemetry.Histogram
	meshNS         *telemetry.Histogram
	withdrawals    *telemetry.Counter
	bgpM           *bgp.Metrics
	probeM         *probe.Metrics
}

func newSimMetrics(r *telemetry.Registry) *simMetrics {
	if r == nil {
		return nil
	}
	return &simMetrics{
		reconverges:    r.Counter("netsim.reconverges"),
		reconvergesInc: r.Counter("netsim.reconverges_incremental"),
		asRebuilds:     r.Counter("igp.as_rebuilds"),
		spfNS:          r.Histogram("netsim.phase.spf_ns", telemetry.DurationBuckets),
		bgpNS:          r.Histogram("netsim.phase.bgp_ns", telemetry.DurationBuckets),
		meshNS:         r.Histogram("netsim.phase.mesh_ns", telemetry.DurationBuckets),
		withdrawals:    r.Counter("bgp.withdrawals_seen"),
		bgpM:           bgp.NewMetrics(r),
		probeM:         probe.NewMetrics(r),
	}
}

// phaseStart returns the clock reading a later phase observation needs,
// without touching the clock when telemetry is off.
func (m *simMetrics) phaseStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return telemetry.Now()
}

func (m *simMetrics) bgpMetrics() *bgp.Metrics {
	if m == nil {
		return nil
	}
	return m.bgpM
}

func (m *simMetrics) probeMetrics() *probe.Metrics {
	if m == nil {
		return nil
	}
	return m.probeM
}

// Option configures a Network at construction time.
type Option func(*Network)

// WithParallelism bounds the worker pool used by convergence (per-prefix
// BGP fixpoints, per-AS SPF) and by Mesh (per-pair traceroutes). n <= 1
// keeps everything sequential, reproducing the exact single-threaded
// behavior; n <= 0 selects runtime.GOMAXPROCS(0). The converged state and
// all measurements are identical at any parallelism level.
func WithParallelism(n int) Option {
	return func(net *Network) { net.parallelism = pool.Size(n) }
}

// WithSPFCache attaches a shared IGP SPF cache, so reconvergences across
// fault scenarios reuse the per-AS shortest-path tables of every AS whose
// intra-domain failure state is unchanged. The cache may be shared across
// Networks and Forks of the same topology.
func WithSPFCache(c *igp.Cache) Option {
	return func(net *Network) { net.spfCache = c }
}

// WithTelemetry attaches a telemetry registry: convergence-phase latency
// histograms ("netsim.phase.{spf,bgp,mesh}_ns"), the "netsim.reconverges"
// and "bgp.withdrawals_seen" counters, and the bgp/probe/pool layer metrics
// of everything the network drives. An attached SPF cache is instrumented
// too. A nil registry (the default) disables all of it — telemetry never
// changes routing or measurement results.
func WithTelemetry(r *telemetry.Registry) Option {
	return func(net *Network) { net.tele = r }
}

// WithIncrementalReconvergence enables or disables delta-driven
// reconvergence (enabled by default): with it on, every Reconverge after
// the first is computed as a perturbation of the last converged state —
// per-AS SPF rebuilds only for ASes the fault delta touches, and a
// warm-started BGP fixpoint that skips prefixes the delta provably cannot
// affect. The converged state is route-for-route identical either way;
// disabling it forces every Reconverge through the cold path (the
// differential tests and benchmarks rely on this).
func WithIncrementalReconvergence(on bool) Option {
	return func(net *Network) { net.incremental = on }
}

// New builds a network announcing one prefix per AS in originASes and
// converges it.
func New(topo *topology.Topology, originASes []topology.ASN, opts ...Option) (*Network, error) {
	n := &Network{
		topo:        topo,
		linkUp:      make([]bool, topo.NumLinks()),
		routerUp:    make([]bool, topo.NumRouters()),
		origins:     map[bgp.Prefix]topology.ASN{},
		parallelism: 1,
		incremental: true,
	}
	n.linkUpFn, n.routerUpFn = n.LinkIsUp, n.RouterIsUp
	for _, o := range opts {
		o(n)
	}
	if n.tele != nil {
		n.met = newSimMetrics(n.tele)
		if n.spfCache != nil {
			n.spfCache.Instrument(n.tele)
		}
	}
	for i := range n.linkUp {
		n.linkUp[i] = true
	}
	for i := range n.routerUp {
		n.routerUp[i] = true
	}
	for _, as := range originASes {
		if topo.AS(as) == nil {
			return nil, fmt.Errorf("netsim: origin AS%d not in topology", as)
		}
		n.origins[bgp.PrefixFor(as)] = as
	}
	if err := n.Reconverge(); err != nil {
		return nil, err
	}
	return n, nil
}

// Fork returns an independent copy of the network sharing the immutable
// substrate (topology, origins, SPF cache) and the current converged
// routing state. Faulting and reconverging the fork never touches the
// parent, so forks are how concurrent trials run against one environment.
func (n *Network) Fork() *Network {
	f := &Network{
		topo:        n.topo,
		origins:     n.origins,
		parallelism: n.parallelism,
		spfCache:    n.spfCache,
		tele:        n.tele,
		met:         n.met,
		incremental: n.incremental,
		igp:         n.igp,
		bgp:         n.bgp,
		converged:   n.converged,
		base:        n.base,
	}
	f.linkUpFn, f.routerUpFn = f.LinkIsUp, f.RouterIsUp
	if n.shared {
		// The parent's arrays are already frozen copy-on-write (a base
		// snapshot or checkpoint aliases them), so the fork can alias them
		// too — its first mutation clones. Fork never writes to the
		// parent, keeping concurrent Forks of one parent race-free.
		f.linkUp, f.routerUp, f.filters = n.linkUp, n.routerUp, n.filters
		f.shared = true
	} else {
		f.linkUp = append([]bool(nil), n.linkUp...)
		f.routerUp = append([]bool(nil), n.routerUp...)
		f.filters = append([]bgp.ExportFilter(nil), n.filters...)
	}
	return f
}

// Topology returns the underlying topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// IGP returns the converged IGP state.
func (n *Network) IGP() *igp.State { return n.igp }

// BGP returns the converged BGP state.
func (n *Network) BGP() *bgp.State { return n.bgp }

// LinkIsUp reports whether a physical link is currently up (both the link
// itself and both endpoint routers).
func (n *Network) LinkIsUp(id topology.LinkID) bool {
	l := n.topo.Link(id)
	return n.linkUp[id] && n.routerUp[l.A] && n.routerUp[l.B]
}

// RouterIsUp reports router liveness.
func (n *Network) RouterIsUp(r topology.RouterID) bool { return n.routerUp[r] }

// FailLink takes a physical link down. Call Reconverge afterwards.
func (n *Network) FailLink(id topology.LinkID) {
	n.ensureOwned()
	n.linkUp[id] = false
	n.converged = false
}

// RestoreLink brings a physical link back up. Call Reconverge afterwards.
func (n *Network) RestoreLink(id topology.LinkID) {
	n.ensureOwned()
	n.linkUp[id] = true
	n.converged = false
}

// FailRouter takes a router down along with all its links' sessions.
func (n *Network) FailRouter(r topology.RouterID) {
	n.ensureOwned()
	n.routerUp[r] = false
	n.converged = false
}

// AddExportFilter installs a BGP export filter (a simulated
// misconfiguration). Call Reconverge afterwards.
func (n *Network) AddExportFilter(f bgp.ExportFilter) {
	n.ensureOwned()
	n.filters = append(n.filters, f)
	n.converged = false
}

// ClearFaults restores all links and routers and removes all filters.
func (n *Network) ClearFaults() {
	n.ensureOwned()
	for i := range n.linkUp {
		n.linkUp[i] = true
	}
	for i := range n.routerUp {
		n.routerUp[i] = true
	}
	n.filters = nil
	n.converged = false
}

// Reconverge recomputes IGP and BGP state for the current fault set.
func (n *Network) Reconverge() error {
	return n.ReconvergeCtx(context.Background())
}

// ReconvergeCtx is Reconverge with cancellation: ctx flows into the BGP
// fixpoint, which checks it between synchronous rounds and between
// per-prefix tasks, so a convergence under a per-request deadline aborts
// promptly with ctx.Err() and leaves the network unconverged. For an
// uncancelled context the converged state is identical to Reconverge. This
// is the warm-path entry point the ndserve diagnosis service forks through.
//
// After the first convergence (and on every Fork, which inherits its
// parent's converged snapshot) reconvergence is incremental: the fault
// arrays are diffed against the last converged base, per-AS SPF runs only
// for ASes the delta touches (every other AS shares the base's tables),
// and the BGP fixpoint is warm-started from the base's routes with
// prefixes the delta provably cannot affect sharing the base state
// untouched. The result is route-for-route identical to a cold
// reconvergence — see WithIncrementalReconvergence to force the cold path.
func (n *Network) ReconvergeCtx(ctx context.Context) error {
	return n.reconvergeCtx(ctx, n.computeDelta())
}

// reconvergeCtx applies a precomputed delta (nil forces the cold path).
// Split out so ReconvergeDirtyCtx can inspect the delta it converged with.
func (n *Network) reconvergeCtx(ctx context.Context, d *reconvergeDelta) error {
	isUp := n.linkUpFn
	start := n.met.phaseStart()
	if d == nil {
		n.igp = igp.NewCached(n.topo, isUp, n.spfCache, n.parallelism)
	} else {
		n.igp = igp.Rebuild(d.base.igp, isUp, d.dirtyASes, n.spfCache, n.parallelism)
		if n.met != nil {
			n.met.asRebuilds.Add(int64(len(d.dirtyASes)))
		}
	}
	if n.met != nil {
		n.met.spfNS.Observe(int64(telemetry.Since(start)))
		start = telemetry.Now()
	}
	cfg := bgp.Config{
		Topo:        n.topo,
		IGP:         n.igp,
		IsLinkUp:    isUp,
		IsRouterUp:  n.routerUpFn,
		Origins:     n.origins,
		Filters:     n.filters,
		Parallelism: n.parallelism,
		Metrics:     n.met.bgpMetrics(),
	}
	if d != nil {
		cfg.Warm = &bgp.Delta{
			Prior:             d.base.bgp,
			FailedRouters:     d.failedRouters,
			DirtyASes:         d.dirtyASes,
			ForceAll:          d.forceAll,
			SessionsUnchanged: d.sessionsUnchanged,
		}
	}
	st, err := bgp.ComputeCtx(ctx, cfg)
	if err != nil {
		return err
	}
	if n.met != nil {
		n.met.bgpNS.Observe(int64(telemetry.Since(start)))
		n.met.reconverges.Inc()
		if d != nil {
			n.met.reconvergesInc.Inc()
		}
	}
	n.bgp = st
	n.converged = true
	if n.incremental {
		n.base = n.captureBase()
	}
	return nil
}

// Converged reports whether the network's routing state is current (no
// fault mutations are pending a Reconverge).
func (n *Network) Converged() bool { return n.converged }

// Checkpoint captures a converged network — the routing state together
// with the exact fault configuration (link/router liveness, filters) it
// was computed under — so experiment loops can return to it without
// recomputing convergence.
type Checkpoint struct {
	base *baseState
}

// Checkpoint snapshots the current converged state and fault
// configuration. It panics if the network has pending unconverged
// mutations. The baseline may be degraded: a checkpoint of a network with
// active faults round-trips those faults through Restore.
func (n *Network) Checkpoint() Checkpoint {
	if !n.converged {
		panic("netsim: Checkpoint on unconverged network")
	}
	return Checkpoint{base: n.captureBase()}
}

// Restore reinstates a checkpointed network: the routing state and the
// checkpoint's fault configuration, including any faults and filters that
// were active when the checkpoint was taken (earlier versions blanket-reset
// every link and router to up instead). A later Reconverge is computed as
// a delta against the restored state.
func (n *Network) Restore(cp Checkpoint) {
	// Alias the checkpoint's arrays copy-on-write: two networks restored
	// from one checkpoint both go through ensureOwned before mutating, so
	// neither can grow into (or write through) the shared backing arrays.
	n.linkUp = cp.base.linkUp
	n.routerUp = cp.base.routerUp
	n.filters = cp.base.filters
	n.shared = true
	n.igp = cp.base.igp
	n.bgp = cp.base.bgp
	n.converged = true
	if n.incremental {
		n.base = cp.base
	}
}

// forward computes the next hop from cur towards destination router dst,
// or ok=false on a blackhole.
//ndlint:hotpath
func (n *Network) forward(cur, dst topology.RouterID) (topology.RouterID, bool) {
	topo := n.topo
	if topo.RouterAS(cur) == topo.RouterAS(dst) {
		return n.igp.NextHop(cur, dst)
	}
	p := bgp.PrefixFor(topo.RouterAS(dst))
	rt, ok := n.bgp.Best(cur, p)
	if !ok {
		return 0, false
	}
	if rt.Egress == cur && !rt.Local {
		// We are the border router: hand off over the eBGP session.
		return rt.PeerRouter, true
	}
	return n.igp.NextHop(cur, rt.Egress)
}

// Traceroute walks the forwarding state from src to dst and reports the
// hop sequence, like the paper's sensors do. The network must be converged.
func (n *Network) Traceroute(src, dst topology.RouterID) *probe.Path {
	if !n.converged {
		panic("netsim: Traceroute on unconverged network")
	}
	p := &probe.Path{Src: src, Dst: dst}
	if !n.routerUp[src] || !n.routerUp[dst] {
		p.Hops = append(p.Hops, n.hop(src))
		return p
	}
	visited := map[topology.RouterID]bool{}
	cur := src
	p.Hops = append(p.Hops, n.hop(cur))
	for ttl := 0; ttl < MaxTTL; ttl++ {
		if cur == dst {
			p.OK = true
			return p
		}
		if visited[cur] {
			return p // forwarding loop: path fails
		}
		visited[cur] = true
		next, ok := n.forward(cur, dst)
		if !ok || !n.routerUp[next] {
			return p // blackhole
		}
		if l, ok := n.topo.LinkBetween(cur, next); !ok || !n.LinkIsUp(l.ID) {
			// The control plane points at a dead link (stale route):
			// traffic is dropped here.
			return p
		}
		cur = next
		p.Hops = append(p.Hops, n.hop(cur))
	}
	return p
}

//ndlint:hotpath
func (n *Network) hop(r topology.RouterID) probe.Hop {
	rt := n.topo.Router(r)
	return probe.Hop{Addr: rt.Addr, Router: r, AS: rt.AS}
}

// forwardAll returns every next hop cur may use towards dst under ECMP:
// the full equal-cost next-hop set inside an AS, the single eBGP handoff
// at a border. It returns nil on a blackhole.
func (n *Network) forwardAll(cur, dst topology.RouterID) []topology.RouterID {
	topo := n.topo
	if topo.RouterAS(cur) == topo.RouterAS(dst) {
		return n.igp.NextHops(cur, dst)
	}
	p := bgp.PrefixFor(topo.RouterAS(dst))
	rt, ok := n.bgp.Best(cur, p)
	if !ok {
		return nil
	}
	if rt.Egress == cur && !rt.Local {
		return []topology.RouterID{rt.PeerRouter}
	}
	return n.igp.NextHops(cur, rt.Egress)
}

// AllPaths enumerates the distinct forwarding paths from src to dst when
// routers spread traffic over equal-cost shortest paths — what a
// Paris-traceroute-style measurement discovers (paper §2.2). At most limit
// paths are returned (0 means 64). Only complete paths are reported; an
// empty result means dst is unreachable.
func (n *Network) AllPaths(src, dst topology.RouterID, limit int) []*probe.Path {
	if !n.converged {
		panic("netsim: AllPaths on unconverged network")
	}
	if limit <= 0 {
		limit = 64
	}
	var out []*probe.Path
	if !n.routerUp[src] || !n.routerUp[dst] {
		return nil
	}
	var walk func(cur topology.RouterID, hops []probe.Hop, visited map[topology.RouterID]bool)
	walk = func(cur topology.RouterID, hops []probe.Hop, visited map[topology.RouterID]bool) {
		if len(out) >= limit {
			return
		}
		if cur == dst {
			p := &probe.Path{Src: src, Dst: dst, OK: true}
			p.Hops = append(p.Hops, hops...)
			out = append(out, p)
			return
		}
		if visited[cur] || len(hops) > MaxTTL {
			return
		}
		visited[cur] = true
		defer delete(visited, cur)
		for _, next := range n.forwardAll(cur, dst) {
			if !n.routerUp[next] {
				continue
			}
			if l, ok := n.topo.LinkBetween(cur, next); !ok || !n.LinkIsUp(l.ID) {
				continue
			}
			walk(next, append(hops, n.hop(next)), visited)
		}
	}
	walk(src, []probe.Hop{n.hop(src)}, map[topology.RouterID]bool{})
	return out
}

// Mesh runs the full mesh of traceroutes among the sensors. Sensor-pair
// paths are computed concurrently when the network was built with
// WithParallelism > 1; since each traceroute only reads the converged
// forwarding state, the mesh is identical at any parallelism level.
func (n *Network) Mesh(sensors []topology.RouterID) *probe.Mesh {
	m, _ := n.MeshCtx(context.Background(), sensors)
	return m
}

// MeshCtx is Mesh with cancellation: ctx is checked between sensor-pair
// traceroutes, so a full-mesh measurement under a per-request deadline
// aborts promptly with ctx.Err(). For an uncancelled context the mesh is
// identical to Mesh at any parallelism level.
func (n *Network) MeshCtx(ctx context.Context, sensors []topology.RouterID) (*probe.Mesh, error) {
	if !n.converged {
		panic("netsim: Mesh on unconverged network")
	}
	start := n.met.phaseStart()
	m, err := probe.FillMeshCtx(ctx, sensors, n.parallelism, func(i, j int) *probe.Path {
		return n.Traceroute(sensors[i], sensors[j])
	}, n.met.probeMetrics())
	if err != nil {
		return nil, err
	}
	if n.met != nil {
		n.met.meshNS.Observe(int64(telemetry.Since(start)))
	}
	return m, nil
}

// Withdrawal is a BGP withdrawal observed at an AS-X border router from an
// eBGP neighbor for a prefix (paper §3.3).
type Withdrawal struct {
	At     topology.RouterID
	From   topology.RouterID
	Prefix bgp.Prefix
}

// Withdrawals diffs the Adj-RIB-Ins of AS-X's border routers between two
// converged states and returns the withdrawals AS-X observed. Sessions
// that are down in the after state produce no withdrawals (that is a
// session loss, which AS-X observes through its own interface state, not
// through a BGP message).
func Withdrawals(topo *topology.Topology, before, after *bgp.State, asx topology.ASN) []Withdrawal {
	var out []Withdrawal
	for _, r := range topo.AS(asx).Routers {
		liveAfter := map[topology.RouterID]bool{}
		for _, nb := range after.EBGPNeighbors(r) {
			liveAfter[nb] = true
		}
		for _, nb := range before.EBGPNeighbors(r) {
			if !liveAfter[nb] {
				continue
			}
			pre := before.AdjInPrefixes(r, nb)
			post := after.AdjInPrefixes(r, nb)
			for p := range pre {
				if !post[p] {
					out = append(out, Withdrawal{At: r, From: nb, Prefix: p})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Prefix < b.Prefix
	})
	return out
}

// ObserveWithdrawals returns the withdrawals AS-X observed between a prior
// converged state and the network's current one (see Withdrawals), counting
// them under "bgp.withdrawals_seen" when telemetry is attached.
func (n *Network) ObserveWithdrawals(before *bgp.State, asx topology.ASN) []Withdrawal {
	ws := Withdrawals(n.topo, before, n.bgp, asx)
	if n.met != nil {
		n.met.withdrawals.Add(int64(len(ws)))
	}
	return ws
}

// IGPLinkDowns returns the failed intra-AS links of asx — the "link down"
// IGP messages the troubleshooter in AS-X observes from its own network.
func (n *Network) IGPLinkDowns(asx topology.ASN) []igp.LinkDown {
	var out []igp.LinkDown
	for _, l := range n.topo.IntraLinks(asx) {
		if !n.LinkIsUp(l.ID) {
			out = append(out, igp.LinkDown{AS: asx, Link: l.ID})
		}
	}
	return out
}

// Origins exposes prefix origins (used by adapters and Looking Glasses).
func (n *Network) Origins() map[bgp.Prefix]topology.ASN { return n.origins }
