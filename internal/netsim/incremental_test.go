package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/topology"
)

// The tests in this file pin the central contract of incremental
// reconvergence: a warm (delta-driven, dirty-set-pruned) reconvergence is
// route-for-route identical to a cold recompute of the same fault set. Each
// randomized trial drives one incremental network and one cold network
// through an identical mutation script and compares IGP tables, BGP routing
// (best routes and Adj-RIB-Ins) and the probe mesh after every step, so
// chained deltas — where the warm base is itself the product of a warm
// reconvergence — are exercised as heavily as single faults.

// diffPair is a warm/cold pair of networks kept in fault lockstep.
type diffPair struct {
	warm, cold *Network
}

func newDiffPair(t testing.TB, topo *topology.Topology, origins []topology.ASN) diffPair {
	t.Helper()
	warm, err := New(topo, origins)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(topo, origins, WithIncrementalReconvergence(false))
	if err != nil {
		t.Fatal(err)
	}
	return diffPair{warm: warm, cold: cold}
}

func (d diffPair) fork() diffPair {
	return diffPair{warm: d.warm.Fork(), cold: d.cold.Fork()}
}

// reconverge converges both networks and asserts full state equivalence.
func (d diffPair) reconverge(t testing.TB, sensors []topology.RouterID, label string) {
	t.Helper()
	if err := d.warm.Reconverge(); err != nil {
		t.Fatalf("%s: warm reconverge: %v", label, err)
	}
	if err := d.cold.Reconverge(); err != nil {
		t.Fatalf("%s: cold reconverge: %v", label, err)
	}
	if !d.warm.IGP().TablesEqual(d.cold.IGP()) {
		t.Fatalf("%s: warm IGP tables diverge from cold recompute", label)
	}
	if diffs := d.warm.BGP().DiffRoutes(d.cold.BGP(), 5); len(diffs) > 0 {
		t.Fatalf("%s: warm BGP state diverges from cold recompute:\n%v", label, diffs)
	}
	if len(sensors) > 0 {
		if wk, ck := meshKey(d.warm.Mesh(sensors)), meshKey(d.cold.Mesh(sensors)); wk != ck {
			t.Fatalf("%s: warm mesh diverges from cold:\n%s\nvs\n%s", label, wk, ck)
		}
	}
}

// mutator generates random fault-script steps applied to both networks.
type mutator struct {
	rng     *rand.Rand
	topo    *topology.Topology
	origins []topology.ASN
	inter   []*topology.PhysLink
}

func newMutator(rng *rand.Rand, topo *topology.Topology, origins []topology.ASN) *mutator {
	m := &mutator{rng: rng, topo: topo, origins: origins}
	for _, l := range topo.Links() {
		if l.Kind == topology.Inter {
			m.inter = append(m.inter, l)
		}
	}
	return m
}

// step applies one random mutation to both networks and describes it.
func (m *mutator) step(d diffPair) string {
	apply := func(f func(n *Network)) {
		f(d.warm)
		f(d.cold)
	}
	op := m.rng.Intn(10)
	switch {
	case op < 4: // fail a random link
		id := topology.LinkID(m.rng.Intn(m.topo.NumLinks()))
		apply(func(n *Network) { n.FailLink(id) })
		return fmt.Sprintf("fail link %d", id)
	case op < 6: // fail a random router
		r := topology.RouterID(m.rng.Intn(m.topo.NumRouters()))
		apply(func(n *Network) { n.FailRouter(r) })
		return fmt.Sprintf("fail router %d", r)
	case op < 8 && len(m.inter) > 0: // add an export filter on a real session
		l := m.inter[m.rng.Intn(len(m.inter))]
		router, peer := l.A, l.B
		if m.rng.Intn(2) == 0 {
			router, peer = peer, router
		}
		f := bgp.ExportFilter{
			Router: router,
			Peer:   peer,
			Prefix: bgp.PrefixFor(m.origins[m.rng.Intn(len(m.origins))]),
		}
		apply(func(n *Network) { n.AddExportFilter(f) })
		return fmt.Sprintf("filter %s at %d->%d", f.Prefix, f.Router, f.Peer)
	case op < 9: // restore a random link (often a no-op restore)
		id := topology.LinkID(m.rng.Intn(m.topo.NumLinks()))
		apply(func(n *Network) { n.RestoreLink(id) })
		return fmt.Sprintf("restore link %d", id)
	default: // clear every fault (restoration + filter removal => ForceAll)
		apply(func(n *Network) { n.ClearFaults() })
		return "clear faults"
	}
}

// runDifferentialTrials drives `trials` independent forked fault scripts of
// 1-3 reconverged steps each against the shared converged pair.
func runDifferentialTrials(t *testing.T, base diffPair, m *mutator, sensors []topology.RouterID, trials int) {
	t.Helper()
	base.reconverge(t, sensors, "baseline")
	for trial := 0; trial < trials; trial++ {
		d := base.fork()
		steps := 1 + m.rng.Intn(3)
		for s := 0; s < steps; s++ {
			desc := m.step(d)
			d.reconverge(t, sensors, fmt.Sprintf("trial %d step %d (%s)", trial, s, desc))
		}
	}
}

func TestIncrementalEquivalenceFig2(t *testing.T) {
	f := topology.BuildFig2()
	origins := []topology.ASN{f.ASA, f.ASB, f.ASC, f.ASX, f.ASY}
	d := newDiffPair(t, f.Topo, origins)
	m := newMutator(rand.New(rand.NewSource(42)), f.Topo, origins)
	runDifferentialTrials(t, d, m, []topology.RouterID{f.S1, f.S2, f.S3}, 100)
}

func TestIncrementalEquivalenceFig1(t *testing.T) {
	f := topology.BuildFig1()
	origins := []topology.ASN{1}
	d := newDiffPair(t, f.Topo, origins)
	m := newMutator(rand.New(rand.NewSource(7)), f.Topo, origins)
	runDifferentialTrials(t, d, m, []topology.RouterID{f.S1, f.S2, f.S3}, 60)
}

func TestIncrementalEquivalenceResearch(t *testing.T) {
	if testing.Short() {
		t.Skip("research-topology trials in -short mode")
	}
	cfg := topology.ResearchConfig{
		NumTier2:            4,
		NumStubs:            12,
		Tier2Routers:        5,
		Tier2MultihomedFrac: 0.5,
		StubMultihomedFrac:  0.25,
		StubsOnCoreFrac:     0.2,
		Seed:                3,
	}
	res, err := topology.GenerateResearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origins := append([]topology.ASN{}, res.Stubs...)
	d := newDiffPair(t, res.Topo, origins)
	m := newMutator(rand.New(rand.NewSource(99)), res.Topo, origins)
	sensors := []topology.RouterID{
		res.Topo.AS(res.Stubs[0]).Routers[0],
		res.Topo.AS(res.Stubs[1]).Routers[0],
		res.Topo.AS(res.Stubs[2]).Routers[0],
	}
	runDifferentialTrials(t, d, m, sensors, 48)
}

// TestIncrementalFilterOnlyDelta pins the pruning payoff on the cheapest
// delta: adding one export filter must mark only that filter's prefix dirty
// and share every other prefix's state with the base.
func TestIncrementalFilterOnlyDelta(t *testing.T) {
	f := topology.BuildFig2()
	origins := []topology.ASN{f.ASA, f.ASB, f.ASC}
	d := newDiffPair(t, f.Topo, origins)
	d.reconverge(t, nil, "baseline")
	d = d.fork()
	filt := bgp.ExportFilter{Router: f.R["y4"], Peer: f.R["b1"], Prefix: bgp.PrefixFor(f.ASC)}
	d.warm.AddExportFilter(filt)
	d.cold.AddExportFilter(filt)
	d.reconverge(t, []topology.RouterID{f.S1, f.S2, f.S3}, "filter-only")
	dirty, skipped := d.warm.BGP().WarmStats()
	if dirty != 1 || skipped != len(origins)-1 {
		t.Fatalf("filter-only delta: dirty=%d skipped=%d, want 1/%d", dirty, skipped, len(origins)-1)
	}
}

// TestIncrementalRestoreForcesAll pins the conservative fallback: restoring
// a failed link can create routes anywhere, so every prefix re-runs its
// (warm-seeded) fixpoint and none shares the degraded base state.
func TestIncrementalRestoreForcesAll(t *testing.T) {
	f := topology.BuildFig2()
	origins := []topology.ASN{f.ASA, f.ASB, f.ASC}
	d := newDiffPair(t, f.Topo, origins)
	l, _ := f.Topo.LinkBetween(f.R["y4"], f.R["b1"])
	d.warm.FailLink(l.ID)
	d.cold.FailLink(l.ID)
	d.reconverge(t, nil, "degrade")
	d.warm.RestoreLink(l.ID)
	d.cold.RestoreLink(l.ID)
	d.reconverge(t, []topology.RouterID{f.S1, f.S2, f.S3}, "restore")
	dirty, skipped := d.warm.BGP().WarmStats()
	if skipped != 0 || dirty != len(origins) {
		t.Fatalf("restore delta: dirty=%d skipped=%d, want %d/0", dirty, skipped, len(origins))
	}
}

// TestIncrementalPruningSkipsUnaffected pins that a single-link failure
// whose IGP fallout is local leaves unrelated prefixes shared rather than
// recomputed. Failing y3-y4 (AS-Y's cost-2 backup) only changes the
// y3<->y4 distances, so only prefixes with a best route egressing across
// that pair (B's at y3, C's at y4) go dirty; A's, X's and Y's own prefix
// ride egresses whose distances are untouched and must be shared.
func TestIncrementalPruningSkipsUnaffected(t *testing.T) {
	f := topology.BuildFig2()
	origins := []topology.ASN{f.ASA, f.ASB, f.ASC, f.ASX, f.ASY}
	d := newDiffPair(t, f.Topo, origins)
	d.reconverge(t, nil, "baseline")
	d = d.fork()
	l, ok := f.Topo.LinkBetween(f.R["y3"], f.R["y4"])
	if !ok {
		t.Fatal("no y3-y4 link")
	}
	d.warm.FailLink(l.ID)
	d.cold.FailLink(l.ID)
	d.reconverge(t, []topology.RouterID{f.S1, f.S2, f.S3}, "backup link")
	dirty, skipped := d.warm.BGP().WarmStats()
	if dirty != 2 || skipped != 3 {
		t.Fatalf("y3-y4 failure: dirty=%d skipped=%d, want 2/3", dirty, skipped)
	}
}

// FuzzIncrementalEquivalence feeds arbitrary mutation scripts through the
// warm/cold pair. Each input byte encodes one scripted step; the networks
// must stay route-for-route identical after every reconvergence.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x07, 0x13})
	f.Add([]byte{0x21, 0x21})       // fault then its own restore
	f.Add([]byte{0x02, 0x44, 0x09}) // fault, clear, fault
	f.Add([]byte{0x33, 0x18, 0x2a, 0x05})
	fig := topology.BuildFig2()
	origins := []topology.ASN{fig.ASA, fig.ASB, fig.ASC, fig.ASX, fig.ASY}
	sensors := []topology.RouterID{fig.S1, fig.S2, fig.S3}
	base := newDiffPair(f, fig.Topo, origins)
	if err := base.warm.Reconverge(); err != nil {
		f.Fatal(err)
	}
	if err := base.cold.Reconverge(); err != nil {
		f.Fatal(err)
	}
	var prefixes []bgp.Prefix
	for _, as := range origins {
		prefixes = append(prefixes, bgp.PrefixFor(as))
	}
	var inter []*topology.PhysLink
	for _, l := range fig.Topo.Links() {
		if l.Kind == topology.Inter {
			inter = append(inter, l)
		}
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 || len(script) > 6 {
			t.Skip()
		}
		d := base.fork()
		for s, b := range script {
			arg := int(b >> 3)
			apply := func(fn func(n *Network)) { fn(d.warm); fn(d.cold) }
			switch b & 0x7 {
			case 0, 1:
				apply(func(n *Network) { n.FailLink(topology.LinkID(arg % fig.Topo.NumLinks())) })
			case 2, 3:
				apply(func(n *Network) { n.FailRouter(topology.RouterID(arg % fig.Topo.NumRouters())) })
			case 4:
				l := inter[arg%len(inter)]
				filt := bgp.ExportFilter{Router: l.A, Peer: l.B, Prefix: prefixes[arg%len(prefixes)]}
				apply(func(n *Network) { n.AddExportFilter(filt) })
			case 5, 6:
				apply(func(n *Network) { n.RestoreLink(topology.LinkID(arg % fig.Topo.NumLinks())) })
			default:
				apply(func(n *Network) { n.ClearFaults() })
			}
			d.reconverge(t, sensors, fmt.Sprintf("step %d (op %#x)", s, b))
		}
	})
}

// TestConcurrentForkDisjointFaults runs disjoint-fault trials on concurrent
// forks of one warm-converged research network (delta tracking shares the
// base snapshot across forks) and asserts each outcome is byte-identical to
// the same fault applied sequentially. Run under -race.
func TestConcurrentForkDisjointFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("research-topology trials in -short mode")
	}
	cfg := topology.ResearchConfig{
		NumTier2:            4,
		NumStubs:            10,
		Tier2Routers:        5,
		Tier2MultihomedFrac: 0.5,
		StubMultihomedFrac:  0.25,
		StubsOnCoreFrac:     0.2,
		Seed:                11,
	}
	res, err := topology.GenerateResearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origins := append([]topology.ASN{}, res.Stubs...)
	base, err := New(res.Topo, origins, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	sensors := []topology.RouterID{
		res.Topo.AS(res.Stubs[0]).Routers[0],
		res.Topo.AS(res.Stubs[1]).Routers[0],
		res.Topo.AS(res.Stubs[2]).Routers[0],
	}
	baseKey := meshKey(base.Mesh(sensors))

	// Disjoint fault sets: one intra link per tier-2 AS plus one router.
	type fault struct {
		link   topology.LinkID
		router topology.RouterID
	}
	var faults []fault
	for i, asn := range res.Tier2 {
		rs := res.Topo.AS(asn).Routers
		l, ok := res.Topo.LinkBetween(rs[0], rs[1])
		if !ok {
			t.Fatalf("tier-2 AS %d: no hub-spoke link", asn)
		}
		faults = append(faults, fault{link: l.ID, router: rs[(i%(len(rs)-1))+1]})
	}

	apply := func(fk fault) (string, error) {
		fork := base.Fork()
		fork.FailLink(fk.link)
		fork.FailRouter(fk.router)
		if err := fork.Reconverge(); err != nil {
			return "", err
		}
		return meshKey(fork.Mesh(sensors)), nil
	}

	want := make([]string, len(faults))
	for i, fk := range faults {
		k, err := apply(fk)
		if err != nil {
			t.Fatalf("sequential trial %d: %v", i, err)
		}
		want[i] = k
	}

	got := make([]string, len(faults))
	errs := make([]error, len(faults))
	var wg sync.WaitGroup
	for i, fk := range faults {
		wg.Add(1)
		go func(i int, fk fault) {
			defer wg.Done()
			got[i], errs[i] = apply(fk)
		}(i, fk)
	}
	wg.Wait()
	for i := range faults {
		if errs[i] != nil {
			t.Fatalf("concurrent trial %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("concurrent trial %d diverged from sequential run", i)
		}
	}
	if meshKey(base.Mesh(sensors)) != baseKey {
		t.Fatal("fork trials mutated the base network")
	}
}
