package netsim

import (
	"fmt"
	"sort"

	"netdiag/internal/bgp"
	"netdiag/internal/binpack"
	"netdiag/internal/igp"
	"netdiag/internal/topology"
)

// AppendState encodes the network's converged state into w: the fault
// configuration (link/router liveness, export filters), the origin ASes,
// then the IGP distance tables and the BGP routing state. The topology
// itself is not serialized — DecodeNetwork is handed the same one, and
// the snapshot layer's digest guards against a mismatch.
func (n *Network) AppendState(w *binpack.Writer) error {
	if !n.converged {
		return fmt.Errorf("netsim: encoding unconverged network")
	}
	w.Bits(n.linkUp)
	w.Bits(n.routerUp)
	w.Uint(uint64(len(n.filters)))
	for _, f := range n.filters {
		w.Uint(uint64(f.Router))
		w.Uint(uint64(f.Peer))
		w.String(string(f.Prefix))
	}
	asns := make([]topology.ASN, 0, len(n.origins))
	for _, as := range n.origins {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	w.Uint(uint64(len(asns)))
	for _, as := range asns {
		w.Uint(uint64(as))
	}
	n.igp.AppendBinary(w)
	n.bgp.AppendBinary(w)
	return nil
}

// DecodeNetwork rebuilds a converged Network from an AppendState stream
// over the given topology, skipping SPF and the BGP fixpoint entirely.
// Options apply exactly as in New (parallelism, SPF cache, telemetry,
// incremental reconvergence); the decoded network is converged, serves
// traceroutes immediately, and later Reconverges are computed as deltas
// against the decoded state just as they would be against a live one.
func DecodeNetwork(r *binpack.Reader, topo *topology.Topology, opts ...Option) (*Network, error) {
	n := &Network{
		topo:        topo,
		origins:     map[bgp.Prefix]topology.ASN{},
		parallelism: 1,
		incremental: true,
	}
	n.linkUpFn, n.routerUpFn = n.LinkIsUp, n.RouterIsUp
	for _, o := range opts {
		o(n)
	}
	if n.tele != nil {
		n.met = newSimMetrics(n.tele)
		if n.spfCache != nil {
			n.spfCache.Instrument(n.tele)
		}
	}
	n.linkUp = r.Bits()
	n.routerUp = r.Bits()
	if r.Err() == nil && (len(n.linkUp) != topo.NumLinks() || len(n.routerUp) != topo.NumRouters()) {
		return nil, fmt.Errorf("netsim: encoded liveness arrays (%d links, %d routers) do not match topology (%d, %d)",
			len(n.linkUp), len(n.routerUp), topo.NumLinks(), topo.NumRouters())
	}
	nfilters := r.Uint()
	if nfilters > uint64(r.Remaining()) {
		r.Fail(binpack.ErrTooLarge)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("netsim: decoding network state: %w", err)
	}
	for i := uint64(0); i < nfilters; i++ {
		n.filters = append(n.filters, bgp.ExportFilter{
			Router: topology.RouterID(r.Uint()),
			Peer:   topology.RouterID(r.Uint()),
			Prefix: bgp.Prefix(r.String()),
		})
	}
	norigins := r.Uint()
	if norigins > uint64(r.Remaining()) {
		r.Fail(binpack.ErrTooLarge)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("netsim: decoding network state: %w", err)
	}
	for i := uint64(0); i < norigins; i++ {
		as := topology.ASN(r.Uint())
		if r.Err() == nil && topo.AS(as) == nil {
			return nil, fmt.Errorf("netsim: encoded origin AS%d not in topology", as)
		}
		n.origins[bgp.PrefixFor(as)] = as
	}
	igpState, err := igp.DecodeBinary(r, topo, n.linkUpFn)
	if err != nil {
		return nil, err
	}
	n.igp = igpState
	bgpState, err := bgp.DecodeBinary(r, bgp.Config{
		Topo:        topo,
		IGP:         n.igp,
		IsLinkUp:    n.linkUpFn,
		IsRouterUp:  n.routerUpFn,
		Origins:     n.origins,
		Filters:     n.filters,
		Parallelism: n.parallelism,
		Metrics:     n.met.bgpMetrics(),
	})
	if err != nil {
		return nil, err
	}
	n.bgp = bgpState
	n.converged = true
	if n.incremental {
		n.base = n.captureBase()
	}
	return n, nil
}
