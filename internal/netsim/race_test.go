package netsim

import (
	"fmt"
	"sync"
	"testing"

	"netdiag/internal/igp"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// meshKey serializes a mesh to a comparable string.
func meshKey(m *probe.Mesh) string {
	s := ""
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if p == nil {
				continue
			}
			s += fmt.Sprintf("%d->%d:%s;", i, j, p.String())
		}
	}
	return s
}

// TestConcurrentNew converges several independent networks over one shared
// Topology at parallelism 4, concurrently. The topology is immutable and
// each Network owns its state, so this must be race-free (run with -race)
// and every goroutine must converge to the same forwarding behavior.
func TestConcurrentNew(t *testing.T) {
	f := topology.BuildFig2()
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}
	origins := []topology.ASN{f.ASA, f.ASB, f.ASC}
	cache := igp.NewCache()

	const goroutines = 8
	keys := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n, err := New(f.Topo, origins, WithParallelism(4), WithSPFCache(cache))
			if err != nil {
				errs[g] = err
				return
			}
			keys[g] = meshKey(n.Mesh(sensors))
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if keys[g] != keys[0] {
			t.Fatalf("goroutine %d converged differently:\n%s\nvs\n%s", g, keys[g], keys[0])
		}
	}
}

// TestConcurrentForkTrials runs fault trials on concurrent forks of one
// converged network while other goroutines keep reading the base network's
// mesh. Forks copy the mutable fault state and share only immutable
// converged inputs, so the base must stay untouched and -race must stay
// quiet. Each fork's outcome must equal the same fault applied
// sequentially.
func TestConcurrentForkTrials(t *testing.T) {
	f := topology.BuildFig2()
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}
	base, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC},
		WithParallelism(2), WithSPFCache(igp.NewCache()))
	if err != nil {
		t.Fatal(err)
	}
	baseKey := meshKey(base.Mesh(sensors))

	faults := []string{"b1", "y1", "x1", "a1"}
	want := make([]string, len(faults))
	for i, name := range faults {
		l, ok := f.Topo.LinkBetween(f.R[name], f.R[neighborOf(name)])
		if !ok {
			t.Fatalf("no link at %s", name)
		}
		fork := base.Fork()
		fork.FailLink(l.ID)
		if err := fork.Reconverge(); err != nil {
			t.Fatal(err)
		}
		want[i] = meshKey(fork.Mesh(sensors))
	}

	got := make([]string, len(faults))
	trialErrs := make([]error, len(faults))
	var wg sync.WaitGroup
	for i, name := range faults {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			l, _ := f.Topo.LinkBetween(f.R[name], f.R[neighborOf(name)])
			fork := base.Fork()
			fork.FailLink(l.ID)
			if err := fork.Reconverge(); err != nil {
				trialErrs[i] = err
				return
			}
			got[i] = meshKey(fork.Mesh(sensors))
		}(i, name)
		// Concurrent readers of the (immutable, converged) base network.
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = meshKey(base.Mesh(sensors))
		}()
	}
	wg.Wait()
	for i, err := range trialErrs {
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	for i := range faults {
		if got[i] != want[i] {
			t.Fatalf("fork trial %d (%s) diverged from sequential run", i, faults[i])
		}
	}
	if k := meshKey(base.Mesh(sensors)); k != baseKey {
		t.Fatal("fork trials mutated the base network")
	}
}

// neighborOf pairs each fault router with an adjacent one on Fig 2.
func neighborOf(name string) string {
	switch name {
	case "b1":
		return "b2"
	case "y1":
		return "y4"
	case "x1":
		return "x2"
	case "a1":
		return "a2"
	}
	return ""
}
