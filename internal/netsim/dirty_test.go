package netsim

import (
	"context"
	"math/rand"
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// dirtyFixture converges a network over topo with one origin prefix per
// sensor AS, mirroring the server snapshot setup.
func dirtyFixture(t *testing.T, topo *topology.Topology, sensors []topology.RouterID) (*Network, []bgp.Prefix) {
	t.Helper()
	seen := map[topology.ASN]bool{}
	var origins []topology.ASN
	prefixes := make([]bgp.Prefix, len(sensors))
	for i, s := range sensors {
		as := topo.RouterAS(s)
		prefixes[i] = bgp.PrefixFor(as)
		if !seen[as] {
			seen[as] = true
			origins = append(origins, as)
		}
	}
	n, err := New(topo, origins)
	if err != nil {
		t.Fatal(err)
	}
	return n, prefixes
}

// reprobeDirty applies scope to a baseline mesh: dirty pairs are re-traced
// on n, clean pairs keep the baseline path. It returns the patched mesh
// and the number of re-probed pairs.
func reprobeDirty(t *testing.T, n *Network, scope *DirtyScope, base *probe.Mesh, sensors []topology.RouterID, prefixes []bgp.Prefix) (*probe.Mesh, int) {
	t.Helper()
	out := base.Clone()
	var pairs [][2]int
	for i := range sensors {
		for j := range sensors {
			if i != j && scope.AffectsPath(base.Paths[i][j], prefixes[j]) {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	err := probe.FillPairsCtx(context.Background(), out, pairs, 1, func(i, j int) *probe.Path {
		return n.Traceroute(sensors[i], sensors[j])
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out, len(pairs)
}

// meshEqual compares two meshes path-for-path (hop sequence and OK bit).
func meshEqual(a, b *probe.Mesh) bool {
	for i := range a.Paths {
		for j := range a.Paths[i] {
			pa, pb := a.Paths[i][j], b.Paths[i][j]
			if (pa == nil) != (pb == nil) {
				return false
			}
			if pa == nil {
				continue
			}
			if pa.OK != pb.OK || len(pa.Hops) != len(pb.Hops) {
				return false
			}
			for h := range pa.Hops {
				if pa.Hops[h] != pb.Hops[h] {
					return false
				}
			}
		}
	}
	return true
}

// TestDirtyScopeSoundness is the load-bearing guarantee of the delta mesh
// store: re-probing only the pairs AffectsPath marks dirty reproduces the
// full re-mesh exactly, over randomized single- and multi-fault deltas on
// both example topologies and a generated internet.
func TestDirtyScopeSoundness(t *testing.T) {
	type tc struct {
		name    string
		topo    *topology.Topology
		sensors []topology.RouterID
	}
	f1 := topology.BuildFig1()
	f2 := topology.BuildFig2()
	cases := []tc{
		{"fig1", f1.Topo, []topology.RouterID{f1.S1, f1.S2, f1.S3}},
		{"fig2", f2.Topo, []topology.RouterID{f2.S1, f2.S2, f2.S3}},
	}
	if res, err := topology.GenerateResearch(topology.DefaultResearchConfig(7)); err == nil {
		var sensors []topology.RouterID
		for i := 0; i < 6; i++ {
			sensors = append(sensors, res.Topo.AS(res.Stubs[i*17]).Routers[0])
		}
		cases = append(cases, tc{"research", res.Topo, sensors})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, prefixes := dirtyFixture(t, c.topo, c.sensors)
			base := n.Mesh(c.sensors)
			cp := n.Checkpoint()
			rng := rand.New(rand.NewSource(42))
			links := c.topo.Links()
			for trial := 0; trial < 30; trial++ {
				faults := 1 + rng.Intn(2)
				for f := 0; f < faults; f++ {
					if rng.Intn(4) == 0 {
						r := topology.RouterID(rng.Intn(c.topo.NumRouters()))
						n.FailRouter(r)
					} else {
						n.FailLink(links[rng.Intn(len(links))].ID)
					}
				}
				scope, err := n.ReconvergeDirtyCtx(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				patched, _ := reprobeDirty(t, n, scope, base, c.sensors, prefixes)
				full := n.Mesh(c.sensors)
				if !meshEqual(patched, full) {
					t.Fatalf("trial %d: delta re-probe diverged from full re-mesh", trial)
				}
				n.Restore(cp)
			}
		})
	}
}

// TestDirtyScopeNoop pins the quiet-tick contract: reconverging with no
// actual fault change yields an Empty scope, so zero pairs re-probe.
func TestDirtyScopeNoop(t *testing.T) {
	f2 := topology.BuildFig2()
	sensors := []topology.RouterID{f2.S1, f2.S2, f2.S3}
	n, prefixes := dirtyFixture(t, f2.Topo, sensors)
	base := n.Mesh(sensors)

	// Mutator called, but the link is failed and restored before the
	// reconvergence: the delta against the base is empty.
	link := f2.Topo.Links()[0].ID
	n.FailLink(link)
	n.RestoreLink(link)
	scope, err := n.ReconvergeDirtyCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !scope.Empty() {
		t.Fatalf("no-op delta not Empty: %+v", scope)
	}
	_, reprobed := reprobeDirty(t, n, scope, base, sensors, prefixes)
	if reprobed != 0 {
		t.Fatalf("no-op delta re-probed %d pairs, want 0", reprobed)
	}
}

// TestDirtyScopePruning pins the pruning power the streaming bench
// reports: a single backup-link withdrawal on fig2 re-probes under half
// of the ordered sensor pairs.
func TestDirtyScopePruning(t *testing.T) {
	f2 := topology.BuildFig2()
	sensors := []topology.RouterID{f2.S1, f2.S2, f2.S3}
	n, prefixes := dirtyFixture(t, f2.Topo, sensors)
	base := n.Mesh(sensors)

	link, ok := f2.Topo.LinkBetween(f2.R["y3"], f2.R["y4"])
	if !ok {
		t.Fatal("no y3-y4 link")
	}
	n.FailLink(link.ID)
	scope, err := n.ReconvergeDirtyCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	patched, reprobed := reprobeDirty(t, n, scope, base, sensors, prefixes)
	if !meshEqual(patched, n.Mesh(sensors)) {
		t.Fatal("delta re-probe diverged from full re-mesh")
	}
	total := len(sensors) * (len(sensors) - 1)
	if 2*reprobed >= total {
		t.Fatalf("y3-y4 withdrawal re-probed %d/%d pairs, want < 50%%", reprobed, total)
	}
}

// TestDirtyScopeForceAll pins the unbounded cases: restorations and cold
// converges mark everything dirty.
func TestDirtyScopeForceAll(t *testing.T) {
	f2 := topology.BuildFig2()
	sensors := []topology.RouterID{f2.S1, f2.S2, f2.S3}
	n, _ := dirtyFixture(t, f2.Topo, sensors)

	link := f2.Topo.Links()[0].ID
	n.FailLink(link)
	if _, err := n.ReconvergeDirtyCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	n.RestoreLink(link)
	scope, err := n.ReconvergeDirtyCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !scope.ForceAll {
		t.Fatal("restoration delta did not report ForceAll")
	}
	if !scope.AffectsPath(&probe.Path{OK: true}, "") {
		t.Fatal("ForceAll scope must mark every pair dirty")
	}
}
