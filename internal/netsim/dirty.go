// Pair-level dirty scoping: ReconvergeDirtyCtx reconverges like
// ReconvergeCtx but additionally reports *what* the delta could have
// touched — the failed links and routers, the rebuilt ASes, and the
// prefixes whose converged BGP routes actually changed — so a
// measurement layer holding per-pair traceroutes can re-probe only the
// pairs the routing event could have moved. This is the streaming
// plane's analogue of the per-prefix pruning the incremental BGP
// warm-start does (see warm.go in internal/bgp).
package netsim

import (
	"context"

	"netdiag/internal/bgp"
	"netdiag/internal/probe"
	"netdiag/internal/topology"
)

// DirtyScope describes the reach of one reconvergence delta. The contract
// is one-sided: a pair whose last observed path AffectsPath rejects
// provably kept its forwarding state, so skipping its re-probe is
// lossless. The scope itself is conservative — a listed prefix or link
// may leave some paths through it untouched.
type DirtyScope struct {
	// ForceAll marks deltas whose reach cannot be bounded: the first
	// (cold) convergence, restorations (links/routers back up, filters
	// removed), or incremental reconvergence disabled. Every pair is
	// then dirty.
	ForceAll bool
	// Links are the physical links that went down in this delta, as
	// (router, router) endpoint pairs in ascending LinkID order.
	Links [][2]topology.RouterID
	// Routers are the routers that went down in this delta, ascending.
	Routers []topology.RouterID
	// ASes are the ASes whose intra-domain IGP tables were rebuilt,
	// ascending. AffectsPath does not need them (the link/router and
	// prefix checks are sharper); they are reported for telemetry and
	// the streaming bench section.
	ASes []topology.ASN
	// Prefixes are the prefixes whose converged BGP routes changed
	// (bgp.State.ChangedPrefixes against the pre-delta state), sorted.
	// Empty when ForceAll.
	Prefixes []bgp.Prefix

	linkSet   map[[2]topology.RouterID]bool
	routerSet map[topology.RouterID]bool
	prefixSet map[bgp.Prefix]bool
}

// Empty reports whether the delta provably touched nothing: nothing
// failed, no prefix's routes changed, nothing forced. An Empty scope
// means zero pairs need re-probing.
func (d *DirtyScope) Empty() bool {
	return !d.ForceAll && len(d.Links) == 0 && len(d.Routers) == 0 && len(d.Prefixes) == 0
}

// PrefixDirty reports whether the prefix's converged BGP routes changed.
func (d *DirtyScope) PrefixDirty(p bgp.Prefix) bool {
	return d.ForceAll || d.prefixSet[p]
}

// AffectsPath reports whether the delta could have changed the
// forwarding of a pair whose last observed path is p and whose
// destination announces dstPrefix. The pair is dirty iff the
// destination prefix's BGP routes changed, or the old path crosses a
// failed link or router. Soundness of skipping everything else is
// inductive along the old path: with dstPrefix's routes unchanged, every
// hop resolves the same egress, and inside each AS the old IGP segment
// stays both available (no failed link/router on it) and optimal — a
// pure-degradation delta only removes competing candidates, and the
// deterministic tie-break keeps a surviving winner. Restorations, which
// could create strictly better candidates anywhere, set ForceAll.
// Unknown inputs stay conservative: a nil path marks the pair dirty.
func (d *DirtyScope) AffectsPath(p *probe.Path, dstPrefix bgp.Prefix) bool {
	if d.ForceAll || p == nil {
		return true
	}
	if d.prefixSet[dstPrefix] {
		return true
	}
	for i := range p.Hops {
		if d.routerSet[p.Hops[i].Router] {
			return true
		}
		if i+1 < len(p.Hops) && d.linkSet[[2]topology.RouterID{p.Hops[i].Router, p.Hops[i+1].Router}] {
			return true
		}
	}
	return false
}

// seal builds the lookup sets once the slices are final. Links are
// indexed in both orientations so AffectsPath can walk directed hops.
func (d *DirtyScope) seal() *DirtyScope {
	d.linkSet = make(map[[2]topology.RouterID]bool, 2*len(d.Links))
	for _, l := range d.Links {
		d.linkSet[l] = true
		d.linkSet[[2]topology.RouterID{l[1], l[0]}] = true
	}
	d.routerSet = make(map[topology.RouterID]bool, len(d.Routers))
	for _, r := range d.Routers {
		d.routerSet[r] = true
	}
	d.prefixSet = make(map[bgp.Prefix]bool, len(d.Prefixes))
	for _, p := range d.Prefixes {
		d.prefixSet[p] = true
	}
	return d
}

// ReconvergeDirtyCtx reconverges exactly like ReconvergeCtx — the
// converged state is identical — and reports the scope of the delta it
// applied. A network with pending restorations or with incremental
// reconvergence disabled reports ForceAll; a no-op delta (mutators
// called but nothing actually changed against the base) reports an
// Empty scope.
func (n *Network) ReconvergeDirtyCtx(ctx context.Context) (*DirtyScope, error) {
	d := n.computeDelta()
	scope := &DirtyScope{}
	if d != nil && !d.forceAll {
		// Diff the fault arrays against the pre-delta base before the
		// reconvergence replaces it. Only downs appear here: any
		// restoration sets forceAll in the delta.
		for i := range n.linkUp {
			if d.base.linkUp[i] && !n.linkUp[i] {
				l := n.topo.Link(topology.LinkID(i))
				scope.Links = append(scope.Links, [2]topology.RouterID{l.A, l.B})
			}
		}
		scope.Routers = d.failedRouters
		scope.ASes = d.dirtyASes
	}
	prior := (*baseState)(nil)
	if d != nil {
		prior = d.base
	}
	if err := n.reconvergeCtx(ctx, d); err != nil {
		return nil, err
	}
	if d == nil || d.forceAll {
		scope.ForceAll = true
		return scope.seal(), nil
	}
	scope.Prefixes = n.bgp.ChangedPrefixes(prior.bgp)
	return scope.seal(), nil
}
