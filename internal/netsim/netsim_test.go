package netsim

import (
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/topology"
)

func fig2Net(t *testing.T) (*topology.Fig2, *Network) {
	t.Helper()
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	return f, n
}

func pathNames(f *topology.Fig2, p []string) map[int]string {
	names := map[int]string{}
	for i, s := range p {
		names[i] = s
	}
	return names
}

func TestTracerouteFig2Paths(t *testing.T) {
	f, n := fig2Net(t)
	p := n.Traceroute(f.S1, f.S2)
	if !p.OK {
		t.Fatalf("s1->s2 failed: %v", p)
	}
	want := []string{"s1", "a1", "a2", "x1", "x2", "y1", "y4", "b1", "b2", "s2"}
	if len(p.Hops) != len(want) {
		t.Fatalf("s1->s2 hops = %d (%v), want %d", len(p.Hops), p, len(want))
	}
	for i, name := range want {
		if p.Hops[i].Router != f.R[name] && !(name == "s1" && p.Hops[i].Router == f.S1) &&
			!(name == "s2" && p.Hops[i].Router == f.S2) {
			t.Fatalf("hop %d = router %d, want %s", i, p.Hops[i].Router, name)
		}
	}

	q := n.Traceroute(f.S1, f.S3)
	wantQ := []string{"s1", "a1", "a2", "x1", "x2", "y1", "y2", "y3", "c1", "c2", "s3"}
	if !q.OK || len(q.Hops) != len(wantQ) {
		t.Fatalf("s1->s3 = %v, want %d hops", q, len(wantQ))
	}
	_ = pathNames
}

func TestLinkFailureBreaksPath(t *testing.T) {
	f, n := fig2Net(t)
	l, _ := f.Topo.LinkBetween(f.R["b1"], f.R["b2"])
	n.FailLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	p := n.Traceroute(f.S1, f.S2)
	if p.OK {
		t.Fatal("s1->s2 should fail after b1-b2 failure")
	}
	q := n.Traceroute(f.S1, f.S3)
	if !q.OK {
		t.Fatal("s1->s3 should still work")
	}
	// Restore and verify recovery.
	n.RestoreLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if !n.Traceroute(f.S1, f.S2).OK {
		t.Fatal("s1->s2 should recover after restore")
	}
}

func TestReroutedPathAfterIntraFailure(t *testing.T) {
	// Failing y1-y2 reroutes s1->s3 via y4-y3 instead of breaking it.
	f, n := fig2Net(t)
	before := n.Traceroute(f.S1, f.S3)
	l, _ := f.Topo.LinkBetween(f.R["y1"], f.R["y2"])
	n.FailLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	after := n.Traceroute(f.S1, f.S3)
	if !after.OK {
		t.Fatalf("s1->s3 should be rerouted, got %v", after)
	}
	if len(after.Hops) == len(before.Hops) {
		same := true
		for i := range after.Hops {
			if after.Hops[i].Router != before.Hops[i].Router {
				same = false
				break
			}
		}
		if same {
			t.Fatal("path should have changed after y1-y2 failure")
		}
	}
	// The rerouted path must traverse y4.
	seenY4 := false
	for _, h := range after.Hops {
		if h.Router == f.R["y4"] {
			seenY4 = true
		}
	}
	if !seenY4 {
		t.Fatalf("rerouted path should use y4: %v", after)
	}
}

func TestMeshAndReachability(t *testing.T) {
	f, n := fig2Net(t)
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}
	m := n.Mesh(sensors)
	if m.AnyFailed() {
		t.Fatal("healthy network must have a fully reachable mesh")
	}
	r := m.Reachability()
	for i := range r {
		for j := range r[i] {
			if !r[i][j] {
				t.Fatalf("R[%d][%d] = false in healthy network", i, j)
			}
		}
	}
	// Fail B's internal link: rows/cols touching s2 fail.
	l, _ := f.Topo.LinkBetween(f.R["b1"], f.R["b2"])
	n.FailLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	m2 := n.Mesh(sensors)
	r2 := m2.Reachability()
	if r2[0][1] || r2[1][0] || r2[2][1] || r2[1][2] {
		t.Fatal("paths to/from s2 should fail")
	}
	if !r2[0][2] || !r2[2][0] {
		t.Fatal("s1<->s3 should still work")
	}
	if !m2.AnyFailed() {
		t.Fatal("AnyFailed should be true")
	}
}

func TestWithdrawalsObservedAtASX(t *testing.T) {
	f, n := fig2Net(t)
	before := n.BGP()
	// Fail the Y-B link: y1 withdraws B's prefix from x2.
	l, _ := f.Topo.LinkBetween(f.R["y4"], f.R["b1"])
	n.FailLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	w := Withdrawals(f.Topo, before, n.BGP(), f.ASX)
	found := false
	for _, wd := range w {
		if wd.At == f.R["x2"] && wd.From == f.R["y1"] && wd.Prefix == bgp.PrefixFor(f.ASB) {
			found = true
		}
		if wd.Prefix == bgp.PrefixFor(f.ASC) {
			t.Fatalf("spurious withdrawal for C: %+v", wd)
		}
	}
	if !found {
		t.Fatalf("expected withdrawal of B at x2 from y1, got %+v", w)
	}
}

func TestSessionLossProducesNoWithdrawals(t *testing.T) {
	f, n := fig2Net(t)
	before := n.BGP()
	// Fail the X-Y link itself: x2 loses the session; that must NOT be
	// reported as withdrawals.
	l, _ := f.Topo.LinkBetween(f.R["x2"], f.R["y1"])
	n.FailLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	for _, wd := range Withdrawals(f.Topo, before, n.BGP(), f.ASX) {
		if wd.At == f.R["x2"] && wd.From == f.R["y1"] {
			t.Fatalf("withdrawal reported across a dead session: %+v", wd)
		}
	}
}

func TestIGPLinkDowns(t *testing.T) {
	f, n := fig2Net(t)
	if got := n.IGPLinkDowns(f.ASY); len(got) != 0 {
		t.Fatalf("healthy AS-Y reports link downs: %v", got)
	}
	l, _ := f.Topo.LinkBetween(f.R["y1"], f.R["y2"])
	n.FailLink(l.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	got := n.IGPLinkDowns(f.ASY)
	if len(got) != 1 || got[0].Link != l.ID {
		t.Fatalf("IGPLinkDowns = %v, want [%d]", got, l.ID)
	}
	if downs := n.IGPLinkDowns(f.ASX); len(downs) != 0 {
		t.Fatalf("AS-X should see no link downs: %v", downs)
	}
}

func TestRouterFailureBreaksTransit(t *testing.T) {
	f, n := fig2Net(t)
	n.FailRouter(f.R["y1"])
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if n.Traceroute(f.S1, f.S2).OK {
		t.Fatal("s1->s2 should fail when y1 dies (only X-Y peering point)")
	}
	if n.Traceroute(f.S2, f.S3).OK != true {
		t.Fatal("s2->s3 inside Y should survive via y4-y3")
	}
}

func TestMisconfigurationPartialFailure(t *testing.T) {
	// The paper's motivating partial failure: the x2-y1 link works for
	// s1->s2 but not for s1->s3.
	f, n := fig2Net(t)
	n.AddExportFilter(bgp.ExportFilter{
		Router: f.R["y1"], Peer: f.R["x2"], Prefix: bgp.PrefixFor(f.ASC),
	})
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if !n.Traceroute(f.S1, f.S2).OK {
		t.Fatal("s1->s2 must keep working under the misconfiguration")
	}
	if n.Traceroute(f.S1, f.S3).OK {
		t.Fatal("s1->s3 must fail under the misconfiguration")
	}
	// Reverse direction s3->s1 still works (Y has a route to A via X).
	if !n.Traceroute(f.S3, f.S1).OK {
		t.Fatal("s3->s1 should still work: only X's view of C is filtered")
	}
}

func TestMaskProducesUHs(t *testing.T) {
	f, n := fig2Net(t)
	m := n.Mesh([]topology.RouterID{f.S1, f.S2, f.S3})
	masked := m.Mask(map[topology.ASN]bool{f.ASY: true})
	p := masked.Paths[0][1] // s1->s2 crosses Y (y1, y4)
	uhs := 0
	for _, h := range p.Hops {
		if h.Unidentified {
			uhs++
			if h.Addr != "*" {
				t.Fatalf("UH hop must print *, got %q", h.Addr)
			}
		}
	}
	if uhs != 2 {
		t.Fatalf("s1->s2 should have 2 UHs (y1,y4), got %d", uhs)
	}
	// Original mesh untouched.
	for _, h := range m.Paths[0][1].Hops {
		if h.Unidentified {
			t.Fatal("Mask mutated the original mesh")
		}
	}
}

func TestTracerouteOnResearchTopology(t *testing.T) {
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	sensorASes := []topology.ASN{res.Stubs[3], res.Stubs[50], res.Stubs[99], res.Stubs[120]}
	n, err := New(res.Topo, sensorASes)
	if err != nil {
		t.Fatal(err)
	}
	var sensors []topology.RouterID
	for _, as := range sensorASes {
		sensors = append(sensors, res.Topo.AS(as).Routers[0])
	}
	m := n.Mesh(sensors)
	if m.AnyFailed() {
		t.Fatal("healthy research topology must be fully reachable")
	}
	// Paths must be valley-free at the AS level and never repeat a router.
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if i == j {
				continue
			}
			seen := map[topology.RouterID]bool{}
			for _, h := range p.Hops {
				if seen[h.Router] {
					t.Fatalf("router repeated on path %d->%d", i, j)
				}
				seen[h.Router] = true
			}
		}
	}
}
