package netsim

import (
	"testing"

	"netdiag/internal/topology"
)

// diamond builds one AS with an ECMP diamond: a - {m1,m2} - b, equal costs.
func diamond(t *testing.T) (*topology.Topology, topology.RouterID, topology.RouterID) {
	t.Helper()
	b := topology.NewBuilder()
	b.AddAS(1, topology.Core, "d")
	a := b.AddRouter(1, "a")
	m1 := b.AddRouter(1, "m1")
	m2 := b.AddRouter(1, "m2")
	z := b.AddRouter(1, "z")
	b.Connect(a, m1, 1)
	b.Connect(a, m2, 1)
	b.Connect(m1, z, 1)
	b.Connect(m2, z, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, a, z
}

func TestAllPathsECMPDiamond(t *testing.T) {
	topo, a, z := diamond(t)
	n, err := New(topo, []topology.ASN{1})
	if err != nil {
		t.Fatal(err)
	}
	paths := n.AllPaths(a, z, 0)
	if len(paths) != 2 {
		t.Fatalf("want 2 ECMP paths, got %d", len(paths))
	}
	for _, p := range paths {
		if !p.OK || len(p.Hops) != 3 {
			t.Fatalf("malformed path %v", p)
		}
	}
	// The deterministic single-path traceroute must be one of them.
	single := n.Traceroute(a, z)
	match := false
	for _, p := range paths {
		if len(p.Hops) == len(single.Hops) && p.Hops[1].Router == single.Hops[1].Router {
			match = true
		}
	}
	if !match {
		t.Fatal("Traceroute path missing from AllPaths")
	}
}

func TestAllPathsLimit(t *testing.T) {
	topo, a, z := diamond(t)
	n, err := New(topo, []topology.ASN{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.AllPaths(a, z, 1); len(got) != 1 {
		t.Fatalf("limit 1 returned %d paths", len(got))
	}
}

func TestAllPathsUnreachable(t *testing.T) {
	topo, a, z := diamond(t)
	n, err := New(topo, []topology.ASN{1})
	if err != nil {
		t.Fatal(err)
	}
	// Fail both diamond arms into z.
	for _, lid := range topo.Router(z).Links {
		n.FailLink(lid)
	}
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if got := n.AllPaths(a, z, 0); len(got) != 0 {
		t.Fatalf("unreachable destination returned %d paths", len(got))
	}
}

func TestAllPathsInterdomainMatchesTraceroute(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	// Fig2 has no ECMP ties: AllPaths must return exactly the traceroute.
	paths := n.AllPaths(f.S1, f.S3, 0)
	if len(paths) != 1 {
		t.Fatalf("want a single path, got %d", len(paths))
	}
	single := n.Traceroute(f.S1, f.S3)
	if len(paths[0].Hops) != len(single.Hops) {
		t.Fatalf("AllPaths disagrees with Traceroute: %v vs %v", paths[0], single)
	}
	for i := range single.Hops {
		if paths[0].Hops[i].Router != single.Hops[i].Router {
			t.Fatalf("hop %d differs", i)
		}
	}
}

func TestNextHopsSubsetInvariant(t *testing.T) {
	// Every router's single NextHop must be the first of NextHops, across
	// a research topology core.
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(res.Topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	routers := res.Topo.AS(res.Cores[1]).Routers
	for _, a := range routers {
		for _, b := range routers {
			if a == b {
				continue
			}
			hops := n.IGP().NextHops(a, b)
			single, ok := n.IGP().NextHop(a, b)
			if !ok || len(hops) == 0 {
				t.Fatalf("connected AS missing next hops %d->%d", a, b)
			}
			if hops[0] != single {
				t.Fatalf("NextHop %d != NextHops[0] %d", single, hops[0])
			}
		}
	}
}
