package netsim

import (
	"testing"

	"netdiag/internal/topology"
)

func benchNetwork(b *testing.B) (*Network, []topology.RouterID) {
	b.Helper()
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	var origins []topology.ASN
	var sensors []topology.RouterID
	for i := 0; i < 10; i++ {
		as := res.Stubs[i*13]
		origins = append(origins, as)
		sensors = append(sensors, res.Topo.AS(as).Routers[0])
	}
	n, err := New(res.Topo, origins)
	if err != nil {
		b.Fatal(err)
	}
	return n, sensors
}

// BenchmarkTraceroute measures one forwarding walk across the internet.
func BenchmarkTraceroute(b *testing.B) {
	n, sensors := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Traceroute(sensors[0], sensors[9]).OK {
			b.Fatal("path failed")
		}
	}
}

// BenchmarkFullMesh measures the 90-traceroute measurement round the
// sensors perform each period.
func BenchmarkFullMesh(b *testing.B) {
	n, sensors := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.Mesh(sensors).AnyFailed() {
			b.Fatal("healthy mesh failed")
		}
	}
}

// BenchmarkFailureTrial measures a full fail-reconverge-measure-restore
// cycle, the unit of every evaluation run.
func BenchmarkFailureTrial(b *testing.B) {
	n, sensors := benchNetwork(b)
	cp := n.Checkpoint()
	link := n.Topology().Links()[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.FailLink(link)
		if err := n.Reconverge(); err != nil {
			b.Fatal(err)
		}
		n.Mesh(sensors)
		n.Restore(cp)
	}
}

// BenchmarkAllPaths measures multipath enumeration for one pair.
func BenchmarkAllPaths(b *testing.B) {
	n, sensors := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(n.AllPaths(sensors[0], sensors[9], 16)) == 0 {
			b.Fatal("no paths")
		}
	}
}
