package netsim

import (
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/igp"
	"netdiag/internal/topology"
)

func benchNetwork(b *testing.B) (*Network, []topology.RouterID) {
	b.Helper()
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	var origins []topology.ASN
	var sensors []topology.RouterID
	for i := 0; i < 10; i++ {
		as := res.Stubs[i*13]
		origins = append(origins, as)
		sensors = append(sensors, res.Topo.AS(as).Routers[0])
	}
	n, err := New(res.Topo, origins)
	if err != nil {
		b.Fatal(err)
	}
	return n, sensors
}

// BenchmarkTraceroute measures one forwarding walk across the internet.
func BenchmarkTraceroute(b *testing.B) {
	n, sensors := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Traceroute(sensors[0], sensors[9]).OK {
			b.Fatal("path failed")
		}
	}
}

// BenchmarkFullMesh measures the 90-traceroute measurement round the
// sensors perform each period.
func BenchmarkFullMesh(b *testing.B) {
	n, sensors := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.Mesh(sensors).AnyFailed() {
			b.Fatal("healthy mesh failed")
		}
	}
}

// BenchmarkFailureTrial measures a full fail-reconverge-measure-restore
// cycle, the unit of every evaluation run.
func BenchmarkFailureTrial(b *testing.B) {
	n, sensors := benchNetwork(b)
	cp := n.Checkpoint()
	link := n.Topology().Links()[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.FailLink(link)
		if err := n.Reconverge(); err != nil {
			b.Fatal(err)
		}
		n.Mesh(sensors)
		n.Restore(cp)
	}
}

// reconvergeScenario is one cold-vs-incremental comparison case: a
// converged base network and the fault delta applied to its fork.
type reconvergeScenario struct {
	name  string
	build func(b *testing.B, incremental bool) *Network
	fault func(n *Network)
}

// reconvergeScenarios returns the delta cases both Reconverge benchmarks
// run, so the "incremental" section of BENCH_pipeline.json can pair them
// by sub-benchmark name.
func reconvergeScenarios(b *testing.B) []reconvergeScenario {
	b.Helper()
	buildFig1 := func(b *testing.B, incremental bool) *Network {
		fig := topology.BuildFig1()
		n, err := New(fig.Topo, []topology.ASN{1},
			WithSPFCache(igp.NewCache()), WithIncrementalReconvergence(incremental))
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	buildFig2 := func(b *testing.B, incremental bool) *Network {
		fig := topology.BuildFig2()
		n, err := New(fig.Topo, []topology.ASN{fig.ASA, fig.ASB, fig.ASC, fig.ASX, fig.ASY},
			WithSPFCache(igp.NewCache()), WithIncrementalReconvergence(incremental))
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	buildResearch := func(b *testing.B, incremental bool) *Network {
		res, err := topology.GenerateResearch(topology.DefaultResearchConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		var origins []topology.ASN
		for i := 0; i < 10; i++ {
			origins = append(origins, res.Stubs[i*13])
		}
		n, err := New(res.Topo, origins,
			WithSPFCache(igp.NewCache()), WithIncrementalReconvergence(incremental))
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	linkOf := func(n *Network, a, bn string) topology.LinkID {
		var id topology.LinkID = topology.LinkID(^uint32(0) >> 1)
		for _, l := range n.Topology().Links() {
			if (n.Topology().Router(l.A).Name == a && n.Topology().Router(l.B).Name == bn) ||
				(n.Topology().Router(l.A).Name == bn && n.Topology().Router(l.B).Name == a) {
				return l.ID
			}
		}
		b.Fatalf("no link %s-%s", a, bn)
		return id
	}
	return []reconvergeScenario{
		{
			name:  "fig1-link",
			build: buildFig1,
			fault: func(n *Network) { n.FailLink(linkOf(n, "r9", "r11")) },
		},
		{
			name:  "fig2-link",
			build: buildFig2,
			fault: func(n *Network) { n.FailLink(linkOf(n, "y3", "y4")) },
		},
		{
			name:  "fig2-2link",
			build: buildFig2,
			fault: func(n *Network) {
				n.FailLink(linkOf(n, "y3", "y4"))
				n.FailLink(linkOf(n, "c1", "c2"))
			},
		},
		{
			name:  "fig2-filter",
			build: buildFig2,
			fault: func(n *Network) {
				topo := n.Topology()
				var y4, b1 topology.RouterID
				for i := 0; i < topo.NumRouters(); i++ {
					switch topo.Router(topology.RouterID(i)).Name {
					case "y4":
						y4 = topology.RouterID(i)
					case "b1":
						b1 = topology.RouterID(i)
					}
				}
				n.AddExportFilter(bgp.ExportFilter{Router: y4, Peer: b1, Prefix: n.BGP().Prefixes()[0]})
			},
		},
		{
			name:  "research-link",
			build: buildResearch,
			fault: func(n *Network) { n.FailLink(n.Topology().Links()[0].ID) },
		},
	}
}

// reconvergeOnce runs one fork-fault-reconverge cycle, the measured unit
// of both Reconverge benchmarks. It doubles as the pre-timer warm-up so a
// -benchtime 1x sweep measures a steady-state cycle (SPF cache populated)
// rather than first-run cache misses.
func reconvergeOnce(b *testing.B, base *Network, fault func(*Network)) {
	b.Helper()
	f := base.Fork()
	fault(f)
	if err := f.Reconverge(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReconvergeCold measures a from-scratch reconvergence of each
// delta scenario: full SPF for every AS plus empty-state BGP fixpoints.
func BenchmarkReconvergeCold(b *testing.B) {
	for _, sc := range reconvergeScenarios(b) {
		b.Run(sc.name, func(b *testing.B) {
			base := sc.build(b, false)
			reconvergeOnce(b, base, sc.fault)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := base.Fork()
				sc.fault(f)
				if err := f.Reconverge(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReconvergeIncremental measures the same deltas on the
// incremental path: dirty-AS-only SPF and a warm-started, dirty-set-pruned
// BGP fixpoint. The dirty-fraction column reports how much of the prefix
// set re-ran its fixpoint (the rest shared the base state untouched).
func BenchmarkReconvergeIncremental(b *testing.B) {
	for _, sc := range reconvergeScenarios(b) {
		b.Run(sc.name, func(b *testing.B) {
			base := sc.build(b, true)
			reconvergeOnce(b, base, sc.fault)
			var dirty, skipped int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := base.Fork()
				sc.fault(f)
				if err := f.Reconverge(); err != nil {
					b.Fatal(err)
				}
				dirty, skipped = f.BGP().WarmStats()
			}
			b.StopTimer()
			if total := dirty + skipped; total > 0 {
				b.ReportMetric(float64(dirty)/float64(total), "dirty-fraction")
			}
		})
	}
}

// BenchmarkAllPaths measures multipath enumeration for one pair.
func BenchmarkAllPaths(b *testing.B) {
	n, sensors := benchNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(n.AllPaths(sensors[0], sensors[9], 16)) == 0 {
			b.Fatal("no paths")
		}
	}
}
