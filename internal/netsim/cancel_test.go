package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"netdiag/internal/topology"
)

// TestReconvergeCtxCancelled pins the server contract: a cancelled context
// aborts convergence before any fixpoint work and surfaces as ctx.Err().
func TestReconvergeCtxCancelled(t *testing.T) {
	fig := topology.BuildFig2()
	n, err := New(fig.Topo, []topology.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	link, _ := fig.Topo.LinkBetween(fig.R["b1"], fig.R["b2"])
	f := n.Fork()
	f.FailLink(link.ID)
	if err := f.ReconvergeCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReconvergeCtx(cancelled) = %v, want context.Canceled", err)
	}
	if f.Converged() {
		t.Fatal("fork reports converged after a cancelled reconvergence")
	}
}

// TestMeshCtxCancelled pins that a cancelled context aborts the mesh
// fan-out between sensor pairs.
func TestMeshCtxCancelled(t *testing.T) {
	fig := topology.BuildFig2()
	n, err := New(fig.Topo, []topology.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.MeshCtx(ctx, []topology.RouterID{fig.S1, fig.S2, fig.S3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeshCtx(cancelled) = %v, want context.Canceled", err)
	}
}

// TestCancellationLatency bounds how long the convergence hot path keeps
// running after its deadline fires: the BGP fixpoint checks ctx between
// rounds and between per-prefix tasks, so even on the paper-scale research
// topology the abort must land well within a generous wall-clock bound.
func TestCancellationLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("research-topology convergence in -short mode")
	}
	res, err := topology.GenerateResearch(topology.DefaultResearchConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	// Force the cold path over every stub prefix: the test measures
	// cancellation of a long full convergence (hundreds of ms), which an
	// incremental reconvergence would finish before the deadline fires. The
	// workload must dwarf the deadline so OS timer latency cannot let the
	// compute complete before any ctx check observes the expiry.
	origins := append([]topology.ASN{}, res.Stubs...)
	n, err := New(res.Topo, origins, WithIncrementalReconvergence(false))
	if err != nil {
		t.Fatal(err)
	}
	f := n.Fork()
	f.FailRouter(res.Topo.AS(res.Tier2[0]).Routers[0])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = f.ReconvergeCtx(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ReconvergeCtx under 5ms deadline = %v, want context.DeadlineExceeded", err)
	}
	// The deadline fires 5ms in; everything beyond that is cancellation
	// latency. 5s is orders of magnitude above a single fixpoint round.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}
