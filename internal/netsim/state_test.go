package netsim

import (
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/topology"
)

func TestCheckpointRestore(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	cp := n.Checkpoint()
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}
	healthy := n.Mesh(sensors)

	// Break things thoroughly.
	l, _ := f.Topo.LinkBetween(f.R["b1"], f.R["b2"])
	n.FailLink(l.ID)
	n.FailRouter(f.R["y2"])
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if !n.Mesh(sensors).AnyFailed() {
		t.Fatal("faults should break the mesh")
	}

	// Restore: the network must behave exactly like the healthy one
	// without reconverging.
	n.Restore(cp)
	if !n.LinkIsUp(l.ID) || !n.RouterIsUp(f.R["y2"]) {
		t.Fatal("Restore must clear faults")
	}
	m := n.Mesh(sensors)
	if m.AnyFailed() {
		t.Fatal("restored network must be healthy")
	}
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if i == j {
				continue
			}
			h := healthy.Paths[i][j]
			if len(p.Hops) != len(h.Hops) {
				t.Fatalf("restored path %d->%d differs from healthy", i, j)
			}
			for k := range p.Hops {
				if p.Hops[k].Router != h.Hops[k].Router {
					t.Fatalf("restored hop differs at %d->%d[%d]", i, j, k)
				}
			}
		}
	}
}

// TestCheckpointDegradedRoundTrip pins the repaired Checkpoint/Restore
// contract: a checkpoint taken on a network with ACTIVE faults must restore
// the fault configuration (link/router liveness, filters) along with the
// routing state — not just the routing state, as an earlier version did.
func TestCheckpointDegradedRoundTrip(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}

	// Build a degraded baseline: one failed link, one failed router, one
	// export filter — then checkpoint it.
	lb, _ := f.Topo.LinkBetween(f.R["b1"], f.R["b2"])
	filt := bgp.ExportFilter{Router: f.R["y3"], Peer: f.R["c1"], Prefix: bgp.PrefixFor(f.ASA)}
	n.FailLink(lb.ID)
	n.FailRouter(f.R["y2"])
	n.AddExportFilter(filt)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	degraded := meshKey(n.Mesh(sensors))
	cp := n.Checkpoint()

	// Wander far away from the baseline, including clearing every fault.
	n.ClearFaults()
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	lc, _ := f.Topo.LinkBetween(f.R["c1"], f.R["c2"])
	n.FailLink(lc.ID)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}

	// Restore must bring back the degraded fault configuration exactly.
	n.Restore(cp)
	if n.LinkIsUp(lb.ID) {
		t.Fatal("Restore must re-apply the checkpointed link failure")
	}
	if n.RouterIsUp(f.R["y2"]) {
		t.Fatal("Restore must re-apply the checkpointed router failure")
	}
	if !n.LinkIsUp(lc.ID) {
		t.Fatal("Restore must clear faults added after the checkpoint")
	}
	if k := meshKey(n.Mesh(sensors)); k != degraded {
		t.Fatalf("restored mesh differs from checkpointed degraded mesh:\n%s\nvs\n%s", k, degraded)
	}

	// The restored fault state must feed the next (incremental) delta: a
	// further reconvergence must match a cold recompute of the same faults.
	n2, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC}, WithIncrementalReconvergence(false))
	if err != nil {
		t.Fatal(err)
	}
	n2.FailLink(lb.ID)
	n2.FailRouter(f.R["y2"])
	n2.AddExportFilter(filt)
	n2.FailRouter(f.R["x2"])
	if err := n2.Reconverge(); err != nil {
		t.Fatal(err)
	}
	n.FailRouter(f.R["x2"])
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if diffs := n.BGP().DiffRoutes(n2.BGP(), 5); len(diffs) > 0 {
		t.Fatalf("post-restore incremental reconvergence diverges from cold:\n%v", diffs)
	}
}

// TestRestoreDoesNotShareFilterState pins that two networks restored from
// one checkpoint own independent filter slices: appending a filter to one
// must not leak into the other.
func TestRestoreDoesNotShareFilterState(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB})
	if err != nil {
		t.Fatal(err)
	}
	n.AddExportFilter(bgp.ExportFilter{Router: f.R["y4"], Peer: f.R["b1"], Prefix: bgp.PrefixFor(f.ASA)})
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	cp := n.Checkpoint()
	a, b := n.Fork(), n.Fork()
	a.Restore(cp)
	b.Restore(cp)
	a.AddExportFilter(bgp.ExportFilter{Router: f.R["x1"], Peer: f.R["a2"], Prefix: bgp.PrefixFor(f.ASB)})
	if err := a.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if err := b.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if got := b.Traceroute(f.S1, f.S2); !got.OK {
		t.Fatal("sibling restore saw a filter appended to the other network")
	}
}

func TestCheckpointPanicsUnconverged(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Checkpoint on unconverged network must panic")
		}
	}()
	n.Checkpoint()
}

func TestTraceroutePanicsUnconverged(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Traceroute on unconverged network must panic")
		}
	}()
	n.Traceroute(f.S1, f.S2)
}

func TestNewRejectsUnknownOrigin(t *testing.T) {
	f := topology.BuildFig2()
	if _, err := New(f.Topo, []topology.ASN{9999}); err == nil {
		t.Fatal("unknown origin AS must be rejected")
	}
}

func TestClearFaults(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0)
	n.FailRouter(f.R["y1"])
	n.AddExportFilter(bgp.ExportFilter{
		Router: f.R["y1"], Peer: f.R["x2"], Prefix: bgp.PrefixFor(f.ASB),
	})
	n.ClearFaults()
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if !n.Traceroute(f.S1, f.S2).OK {
		t.Fatal("ClearFaults should restore full reachability")
	}
}

func TestForwardingFollowsBGPEgress(t *testing.T) {
	// In Fig2, traffic from x1 towards AS-C must leave X at x2 (the only
	// X-Y session) and enter Y at y1: the walk follows the BGP egress via
	// IGP, then hands off on the eBGP session.
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	p := n.Traceroute(f.R["x1"], f.R["c2"])
	if !p.OK {
		t.Fatalf("x1 -> c2 failed: %v", p)
	}
	want := []topology.RouterID{f.R["x1"], f.R["x2"], f.R["y1"], f.R["y2"], f.R["y3"], f.R["c1"], f.R["c2"]}
	if len(p.Hops) != len(want) {
		t.Fatalf("hops = %v", p)
	}
	for i, w := range want {
		if p.Hops[i].Router != w {
			t.Fatalf("hop %d = %d, want %d", i, p.Hops[i].Router, w)
		}
	}
}

func TestTracerouteToDownRouter(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASB})
	if err != nil {
		t.Fatal(err)
	}
	n.FailRouter(f.S2)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	p := n.Traceroute(f.S1, f.S2)
	if p.OK {
		t.Fatal("traceroute to a dead router must fail")
	}
	q := n.Traceroute(f.S2, f.S1)
	if q.OK || len(q.Hops) != 1 {
		t.Fatalf("traceroute from a dead router should stop immediately: %v", q)
	}
}
