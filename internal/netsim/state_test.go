package netsim

import (
	"testing"

	"netdiag/internal/bgp"
	"netdiag/internal/topology"
)

func TestCheckpointRestore(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB, f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	cp := n.Checkpoint()
	sensors := []topology.RouterID{f.S1, f.S2, f.S3}
	healthy := n.Mesh(sensors)

	// Break things thoroughly.
	l, _ := f.Topo.LinkBetween(f.R["b1"], f.R["b2"])
	n.FailLink(l.ID)
	n.FailRouter(f.R["y2"])
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if !n.Mesh(sensors).AnyFailed() {
		t.Fatal("faults should break the mesh")
	}

	// Restore: the network must behave exactly like the healthy one
	// without reconverging.
	n.Restore(cp)
	if !n.LinkIsUp(l.ID) || !n.RouterIsUp(f.R["y2"]) {
		t.Fatal("Restore must clear faults")
	}
	m := n.Mesh(sensors)
	if m.AnyFailed() {
		t.Fatal("restored network must be healthy")
	}
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if i == j {
				continue
			}
			h := healthy.Paths[i][j]
			if len(p.Hops) != len(h.Hops) {
				t.Fatalf("restored path %d->%d differs from healthy", i, j)
			}
			for k := range p.Hops {
				if p.Hops[k].Router != h.Hops[k].Router {
					t.Fatalf("restored hop differs at %d->%d[%d]", i, j, k)
				}
			}
		}
	}
}

func TestCheckpointPanicsUnconverged(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Checkpoint on unconverged network must panic")
		}
	}()
	n.Checkpoint()
}

func TestTraceroutePanicsUnconverged(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Traceroute on unconverged network must panic")
		}
	}()
	n.Traceroute(f.S1, f.S2)
}

func TestNewRejectsUnknownOrigin(t *testing.T) {
	f := topology.BuildFig2()
	if _, err := New(f.Topo, []topology.ASN{9999}); err == nil {
		t.Fatal("unknown origin AS must be rejected")
	}
}

func TestClearFaults(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASA, f.ASB})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink(0)
	n.FailRouter(f.R["y1"])
	n.AddExportFilter(bgp.ExportFilter{
		Router: f.R["y1"], Peer: f.R["x2"], Prefix: bgp.PrefixFor(f.ASB),
	})
	n.ClearFaults()
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if !n.Traceroute(f.S1, f.S2).OK {
		t.Fatal("ClearFaults should restore full reachability")
	}
}

func TestForwardingFollowsBGPEgress(t *testing.T) {
	// In Fig2, traffic from x1 towards AS-C must leave X at x2 (the only
	// X-Y session) and enter Y at y1: the walk follows the BGP egress via
	// IGP, then hands off on the eBGP session.
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASC})
	if err != nil {
		t.Fatal(err)
	}
	p := n.Traceroute(f.R["x1"], f.R["c2"])
	if !p.OK {
		t.Fatalf("x1 -> c2 failed: %v", p)
	}
	want := []topology.RouterID{f.R["x1"], f.R["x2"], f.R["y1"], f.R["y2"], f.R["y3"], f.R["c1"], f.R["c2"]}
	if len(p.Hops) != len(want) {
		t.Fatalf("hops = %v", p)
	}
	for i, w := range want {
		if p.Hops[i].Router != w {
			t.Fatalf("hop %d = %d, want %d", i, p.Hops[i].Router, w)
		}
	}
}

func TestTracerouteToDownRouter(t *testing.T) {
	f := topology.BuildFig2()
	n, err := New(f.Topo, []topology.ASN{f.ASB})
	if err != nil {
		t.Fatal(err)
	}
	n.FailRouter(f.S2)
	if err := n.Reconverge(); err != nil {
		t.Fatal(err)
	}
	p := n.Traceroute(f.S1, f.S2)
	if p.OK {
		t.Fatal("traceroute to a dead router must fail")
	}
	q := n.Traceroute(f.S2, f.S1)
	if q.OK || len(q.Hops) != 1 {
		t.Fatalf("traceroute from a dead router should stop immediately: %v", q)
	}
}
