package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"netdiag/internal/topology"
)

// randomScenario builds a random but internally consistent measurement set:
// a pool of routers spread over a few ASes, random simple before-paths, one
// randomly chosen failed link; pairs whose path crosses it fail at T+, all
// other paths stay unchanged. It returns the measurements and the failed
// link.
func randomScenario(rng *rand.Rand) (*Measurements, Link) {
	const (
		numSensors = 5
		numRouters = 18
		numASes    = 4
	)
	hop := func(r int) Hop {
		return Hop{Node: Node(fmt.Sprintf("r%d", r)), AS: topology.ASN(1 + r%numASes)}
	}
	sensorHop := func(s int) Hop {
		return Hop{Node: Node(fmt.Sprintf("s%d", s)), AS: topology.ASN(1 + s%numASes)}
	}
	m := &Measurements{NumSensors: numSensors}
	var all []*TracePath
	for i := 0; i < numSensors; i++ {
		for j := 0; j < numSensors; j++ {
			if i == j {
				continue
			}
			p := &TracePath{SrcSensor: i, DstSensor: j, OK: true}
			p.Hops = append(p.Hops, sensorHop(i))
			used := map[int]bool{}
			for k := 0; k < 2+rng.Intn(4); k++ {
				r := rng.Intn(numRouters)
				if used[r] {
					continue
				}
				used[r] = true
				p.Hops = append(p.Hops, hop(r))
			}
			p.Hops = append(p.Hops, sensorHop(j))
			m.Before = append(m.Before, p)
			all = append(all, p)
		}
	}
	// Choose the failed link from a random path's interior.
	victim := all[rng.Intn(len(all))]
	li := rng.Intn(len(victim.Hops) - 1)
	failed := Link{From: victim.Hops[li].Node, To: victim.Hops[li+1].Node}
	for _, p := range m.Before {
		crossed := false
		var cut int
		for i, l := range p.Links() {
			if l == failed {
				crossed = true
				cut = i
				break
			}
		}
		if crossed {
			m.After = append(m.After, &TracePath{
				SrcSensor: p.SrcSensor, DstSensor: p.DstSensor, OK: false,
				Hops: append([]Hop{}, p.Hops[:cut+1]...),
			})
		} else {
			cp := *p
			m.After = append(m.After, &cp)
		}
	}
	return m, failed
}

// TestPropertyGreedyFindsInjectedLink checks the central guarantee the
// paper relies on: when a single link failure explains all observations,
// the failed link is in every failure set, gets the maximum greedy score,
// and therefore always enters the hypothesis (no false negatives).
func TestPropertyGreedyFindsInjectedLink(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, failed := randomScenario(rng)
		res, err := Tomo(m)
		if err != nil {
			return false
		}
		if res.UnexplainedFailures != 0 {
			return false
		}
		for _, h := range res.Hypothesis {
			if h.Link == failed {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoWorkingLinkInHypothesis verifies the paper's hard
// constraint W: the hypothesis never contains a link that carried a
// working path.
func TestPropertyNoWorkingLinkInHypothesis(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, _ := randomScenario(rng)
		for _, opts := range []Options{
			{},
			{UseReroutes: true},
			{LogicalLinks: true, UseReroutes: true},
		} {
			res, err := Run(m, opts)
			if err != nil {
				return false
			}
			working := linkSet{}
			if opts.UseReroutes {
				for _, p := range m.After {
					if p.OK {
						for _, l := range p.Links() {
							working.add(l)
						}
					}
				}
			} else {
				after := map[pair]bool{}
				for _, p := range m.After {
					after[pair{p.SrcSensor, p.DstSensor}] = p.OK
				}
				for _, p := range m.Before {
					if after[pair{p.SrcSensor, p.DstSensor}] {
						for _, l := range p.Links() {
							working.add(l)
						}
					}
				}
			}
			for _, h := range res.Hypothesis {
				// Compare in physical space: logical links map back.
				if working.has(h.Link) || (h.PhysKnown && !IsLogical(h.Link.From) &&
					!IsLogical(h.Link.To) && working.has(h.Phys)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterministic verifies that diagnosing the same measurements
// twice yields the identical hypothesis (stable iteration everywhere).
func TestPropertyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, _ := randomScenario(rng)
		a, err := NDEdge(m)
		if err != nil {
			return false
		}
		b, err := NDEdge(m)
		if err != nil {
			return false
		}
		if len(a.Hypothesis) != len(b.Hypothesis) {
			return false
		}
		for i := range a.Hypothesis {
			if a.Hypothesis[i].Link != b.Hypothesis[i].Link {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHypothesisIsMinimalish verifies every hypothesis link earns
// its place: it intersects at least one failure or reroute set (greedy
// never picks a zero-score link).
func TestPropertyHypothesisCoversSomething(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, _ := randomScenario(rng)
		res, err := Tomo(m)
		if err != nil {
			return false
		}
		failLinks := linkSet{}
		afterOK := map[pair]bool{}
		for _, p := range m.After {
			afterOK[pair{p.SrcSensor, p.DstSensor}] = p.OK
		}
		for _, p := range m.Before {
			if !afterOK[pair{p.SrcSensor, p.DstSensor}] {
				for _, l := range p.Links() {
					failLinks.add(l)
				}
			}
		}
		for _, h := range res.Hypothesis {
			if !failLinks.has(h.Link) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
