package core

import "math/bits"

// This file holds the packed bitset primitives of the default diagnosis
// engine. A bitset is a dense bit vector over one of the engine's interned
// ID spaces (link IDs, failure-set indices, reroute-set indices, pair
// indices). The kernels are deliberately branch-light word loops: greedy
// scoring is popcount-over-word-AND, set explanation is word AND-NOT, and
// cluster path-sharing is a single AND-any sweep.
//
// Reads (has, andAny, andPopcount, popcount) tolerate out-of-range indices
// and mismatched lengths — a bit beyond a set's words is simply absent.
// Writes via set require capacity; the engine grows through setGrow, so the
// primitives themselves stay allocation-free.

const wordBits = 64

// bitset is a packed bit vector. The zero value is an empty set.
type bitset []uint64

// newBitset returns a zeroed bitset with capacity for n bits.
func newBitset(n int) bitset { return make(bitset, (n+wordBits-1)/wordBits) }

// set sets bit i. The bit must be within the allocated words (grow first
// via setGrow when the universe is still expanding).
func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint32(i) & 63) }

// clear clears bit i; clearing a bit beyond the allocated words is a no-op
// (the bit is already absent).
func (b bitset) clear(i int32) {
	if w := int(i >> 6); w < len(b) {
		b[w] &^= 1 << (uint32(i) & 63)
	}
}

// has reports whether bit i is set; bits beyond the allocated words are
// absent.
//
//ndlint:hotpath
func (b bitset) has(i int32) bool {
	w := int(i >> 6)
	return w < len(b) && b[w]&(1<<(uint32(i)&63)) != 0
}

// setGrow sets bit i, growing the word slice as needed. It is the only
// write path the engine uses while an ID space is still being interned.
func setGrow(b *bitset, i int32) {
	w := int(i >> 6)
	if w >= len(*b) {
		nb := make(bitset, w+1+w/2)
		copy(nb, *b)
		*b = nb
	}
	(*b)[w] |= 1 << (uint32(i) & 63)
}

// popcount returns the number of set bits.
//
//ndlint:hotpath
func (b bitset) popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// andAny reports whether a and b share any set bit.
//
//ndlint:hotpath
func andAny(a, b bitset) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		if a[w]&b[w] != 0 {
			return true
		}
	}
	return false
}

// andPopcount returns the number of bits set in both a and b — the scoring
// kernel: a candidate's cover incidence AND the unexplained-set mask.
//
//ndlint:hotpath
func andPopcount(a, b bitset) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for w := 0; w < n; w++ {
		c += bits.OnesCount64(a[w] & b[w])
	}
	return c
}

// orInto folds src into dst (dst |= src). dst must be at least as long as
// src; the engine only ORs rows of one fixed-size ID space.
func orInto(dst, src bitset) {
	for w, v := range src {
		dst[w] |= v
	}
}
