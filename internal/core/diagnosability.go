package core

import "sort"

// Diagnosability computes the metric D(G) of §4: the number of distinct
// hitting sets (sets of paths traversing a link) divided by the number of
// probed links. D=1 means every single-link failure produces a unique
// reachability matrix and is therefore exactly identifiable; low values
// mean many links are indistinguishable.
//
// The input is the set of (typically pre-failure) traceroute paths; failed
// partial paths are used as-is, mirroring how the troubleshooter sees them.
func Diagnosability(paths []*TracePath) float64 {
	linkPaths := map[Link][]int{}
	for i, p := range paths {
		for _, l := range p.Links() {
			linkPaths[l] = append(linkPaths[l], i)
		}
	}
	if len(linkPaths) == 0 {
		return 0
	}
	distinct := map[string]bool{}
	for _, ps := range linkPaths {
		sort.Ints(ps)
		key := make([]byte, 0, len(ps)*3)
		for _, id := range ps {
			key = appendInt(key, id)
			key = append(key, ',')
		}
		distinct[string(key)] = true
	}
	return float64(len(distinct)) / float64(len(linkPaths))
}

func appendInt(b []byte, n int) []byte {
	if n == 0 {
		return append(b, '0')
	}
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	start := len(b)
	for n > 0 {
		b = append(b, byte('0'+n%10))
		n /= 10
	}
	for i, j := start, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return b
}
