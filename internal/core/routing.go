package core

import (
	"netdiag/internal/topology"
)

// This file holds the control-plane inputs of ND-bgpigp (§3.3): IGP
// link-down events from AS-X's own network and BGP withdrawals observed at
// AS-X's border routers, plus the failure-set trimming the withdrawals
// enable.

// Withdrawal is a BGP withdrawal as seen by the troubleshooter: border
// router At stopped receiving, from eBGP neighbor From, the route for a
// prefix covering the sensors in DstSensors. Per the paper, only the most
// specific prefix for a destination should be reported here.
type Withdrawal struct {
	At, From   Node
	DstSensors []int
}

// RoutingInfo is the control-plane information available to AS-X.
type RoutingInfo struct {
	ASX topology.ASN
	// IGPDownLinks are the directed diagnosis-space links corresponding to
	// failed intra-AS-X physical links (both directions of each). The
	// troubleshooter adds them to the hypothesis set directly.
	IGPDownLinks []Link
	// Withdrawals observed at AS-X after the failure event.
	Withdrawals []Withdrawal
}

// trimByWithdrawals returns the failure set of a failed path, reduced by
// the withdrawal rule of §3.3: when AS-X's border router At receives a
// withdrawal from neighbor From for the path's destination, the failed
// link must lie strictly beyond the At->From hop, so every link up to and
// including it is exonerated for this path.
//
// bp is the (possibly logically expanded) before-failure path; links is
// bp.Links(). The returned slice aliases links.
func trimByWithdrawals(bp *TracePath, links []Link, ri *RoutingInfo) []Link {
	if ri == nil || len(ri.Withdrawals) == 0 {
		return links
	}
	cut := 0
	for _, w := range ri.Withdrawals {
		if !containsInt(w.DstSensors, bp.DstSensor) {
			continue
		}
		atIdx := -1
		for i := range bp.Hops {
			switch bp.Hops[i].Node {
			case w.At:
				if atIdx == -1 {
					atIdx = i
				}
			case w.From:
				// Only trim when the path traverses At before From,
				// i.e. the withdrawal edge lies on this path in the
				// forwarding direction.
				if atIdx < 0 || i <= atIdx {
					continue
				}
				c := i
				// With logical expansion, the At->From edge appears as
				// At->From(tag)->From. The withdrawal says From offered
				// At no route — which is exactly what a failed logical
				// link From(tag)->From means, so that sub-link must stay
				// a suspect: cut at the logical node, not past it.
				if c > 0 && IsLogical(bp.Hops[c-1].Node) {
					c--
				}
				if c > cut {
					cut = c
				}
			}
		}
	}
	if cut >= len(links) {
		return nil
	}
	return links[cut:]
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
