package core

import (
	"fmt"
	"math/rand"
	"testing"

	"netdiag/internal/topology"
)

// synthMeasurements builds a synthetic measurement mesh: n sensors, paths
// of ~8 hops over a shared pool of routers across several ASes, with
// `broken` randomly failed pairs. Deterministic in seed.
func synthMeasurements(n, broken int, seed int64) *Measurements {
	rng := rand.New(rand.NewSource(seed))
	const routers = 120
	const ases = 12
	hopName := func(r int) Hop {
		return Hop{Node: Node(fmt.Sprintf("r%d", r)), AS: topology.ASN(1 + r%ases)}
	}
	m := &Measurements{NumSensors: n}
	failPair := map[pair]bool{}
	for broken > 0 {
		p := pair{rng.Intn(n), rng.Intn(n)}
		if p.src != p.dst && !failPair[p] {
			failPair[p] = true
			broken--
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			// A deterministic pseudo-route per pair.
			prng := rand.New(rand.NewSource(seed*1000 + int64(i*n+j)))
			hops := []Hop{{Node: Node(fmt.Sprintf("s%d", i)), AS: topology.ASN(1 + i%ases)}}
			for k := 0; k < 6; k++ {
				hops = append(hops, hopName(prng.Intn(routers)))
			}
			hops = append(hops, Hop{Node: Node(fmt.Sprintf("s%d", j)), AS: topology.ASN(1 + j%ases)})
			before := &TracePath{SrcSensor: i, DstSensor: j, OK: true, Hops: hops}
			after := &TracePath{SrcSensor: i, DstSensor: j, OK: true, Hops: hops}
			if failPair[pair{i, j}] {
				after = &TracePath{SrcSensor: i, DstSensor: j, OK: false, Hops: hops[:2]}
			}
			m.Before = append(m.Before, before)
			m.After = append(m.After, after)
		}
	}
	return m
}

// BenchmarkTomo measures the greedy hitting-set on a 10-sensor mesh with
// 8 failed pairs.
func BenchmarkTomo(b *testing.B) {
	m := synthMeasurements(10, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tomo(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNDEdge measures the full ND-edge pipeline (logical expansion +
// reroutes + greedy) on the same mesh.
func BenchmarkNDEdge(b *testing.B) {
	m := synthMeasurements(10, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NDEdge(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandPaths measures the logical-link expansion alone.
func BenchmarkExpandPaths(b *testing.B) {
	m := synthMeasurements(10, 0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := newExpander(false)
		e.expandAll(m)
	}
}

// BenchmarkDiagnosability measures the D(G) computation on 90 paths.
func BenchmarkDiagnosability(b *testing.B) {
	m := synthMeasurements(10, 0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Diagnosability(m.Before) <= 0 {
			b.Fatal("bad diagnosability")
		}
	}
}
