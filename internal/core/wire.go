package core

import (
	"encoding/json"
	"io"
)

// WireHyp is one hypothesis entry in the stable JSON wire form shared by
// the netdiagnoser CLI (-json) and the ndserve diagnosis service. The link
// is rendered with Display (logical-node keys collapse to the paper's
// "router(AS)" form), so the wire form is human-readable and diffable.
type WireHyp struct {
	Link string `json:"link"`
	Phys string `json:"phys,omitempty"`
	ASes []int  `json:"ases,omitempty"`
}

// WireResult is the stable JSON wire form of a diagnosis Result. The CLI
// and the ndserve HTTP API both emit exactly this shape through Encode, so
// a served diagnosis is byte-comparable to a one-shot CLI run. Telemetry
// spans are deliberately excluded: the wire form is identical whether or
// not the run was observed.
type WireResult struct {
	Algorithm   string    `json:"algorithm"`
	Hypothesis  []WireHyp `json:"hypothesis"`
	Unexplained int       `json:"unexplained_failures"`
	Iterations  int       `json:"iterations"`
	SuspectASes []int     `json:"suspect_ases,omitempty"`
}

// Wire converts the result into its wire form under the given algorithm
// name. Hypothesis order (sorted by link) and AS order (ascending) are
// inherited from Result, so the wire form is deterministic.
func (r *Result) Wire(algorithm string) *WireResult {
	w := &WireResult{
		Algorithm:   algorithm,
		Unexplained: r.UnexplainedFailures,
		Iterations:  r.Iterations,
	}
	for _, h := range r.Hypothesis {
		wh := WireHyp{Link: Display(h.Link.From) + "->" + Display(h.Link.To)}
		if h.PhysKnown {
			wh.Phys = h.Phys.String()
		}
		for _, a := range h.ASes {
			wh.ASes = append(wh.ASes, int(a))
		}
		w.Hypothesis = append(w.Hypothesis, wh)
	}
	for _, a := range r.ASes() {
		w.SuspectASes = append(w.SuspectASes, int(a))
	}
	return w
}

// Encode writes the canonical rendering of the wire form: two-space
// indented JSON with a trailing newline. Every producer (CLI, server) uses
// this single encoder so outputs are byte-identical.
func (w *WireResult) Encode(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// TraceHeader is the request/response header carrying the fleet-wide
// request trace ID. The edge (front, or a worker hit directly) assigns an
// ID when the client did not send a valid one, forwards it to the owning
// shard, and echoes it on every response — including error envelopes. The
// ID travels in headers only: response bodies are byte-identical with
// tracing on or off.
const TraceHeader = "ND-Trace-Id"

// Stable machine-readable codes for WireError.Code. Every error the v1
// HTTP surface emits carries exactly one of these.
const (
	ErrBadRequest = "bad_request" // malformed body or invalid failure set
	ErrNotFound   = "not_found"   // unknown scenario
	ErrQueueFull  = "queue_full"  // admission queue shed the request
	ErrDraining   = "draining"    // server is shutting down
	ErrTimeout    = "timeout"     // computation or wait exceeded its deadline
	ErrCanceled   = "canceled"    // computation canceled mid-flight
	ErrInternal   = "internal"    // unexpected server-side failure
	ErrBadGateway = "bad_gateway" // shard front could not reach a backend
)

// MaxBatchItems caps the items of one POST /v1/diagnose/batch request.
// It is part of the v1 wire contract: the 400 envelope a too-large batch
// receives names this limit, so clients can split deterministically
// instead of probing for it.
const MaxBatchItems = 64

// WireError is the stable JSON error form of the v1 HTTP surface. Every
// error response is the envelope {"error": WireError}; retryable statuses
// (429, 502, 503) also carry RetryAfterS, mirroring the Retry-After header
// for clients that only look at bodies.
type WireError struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// WireObservation is one contributing observation of a streaming event:
// an ingested record that indicated trouble (a failing streamed
// traceroute, a withdrawal/announcement feed record). Key is the
// record's stable journal key, so replays list identical observations.
type WireObservation struct {
	Key          string   `json:"key"`
	TS           int64    `json:"ts"`
	Kind         string   `json:"kind"`
	Pair         string   `json:"pair,omitempty"`
	Detail       string   `json:"detail,omitempty"`
	SuspectLinks []string `json:"suspect_links,omitempty"`
	SuspectASes  []int    `json:"suspect_ases,omitempty"`
}

// Streaming event lifecycle states, as emitted on GET /v1/events.
const (
	EventOpen       = "open"       // still accepting correlated observations
	EventDiagnosing = "diagnosing" // closed, diagnosis in flight
	EventPending    = "pending"    // closed, diagnosis shed; retried on the next sweep or listing
	EventDiagnosed  = "diagnosed"  // closed with a hypothesis
	EventFailed     = "failed"     // closed, diagnosis failed terminally
)

// WireEvent is the stable JSON form of one correlated network event on
// the GET /v1/events surface. TraceID equals the event ID (a digest of
// the observation keys), so the body is byte-identical with tracing on
// or off and across replay parallelism.
type WireEvent struct {
	ID           string            `json:"id"`
	Scenario     string            `json:"scenario"`
	Status       string            `json:"status"`
	FirstTS      int64             `json:"first_ts"`
	LastTS       int64             `json:"last_ts"`
	TraceID      string            `json:"trace_id"`
	Observations []WireObservation `json:"observations"`
	Hypothesis   *WireResult       `json:"hypothesis,omitempty"`
	Error        string            `json:"error,omitempty"`
}

// EncodeWireEvents writes the canonical rendering of an event list: the
// same two-space-indented JSON + trailing newline convention as
// WireResult.Encode, so replayed feeds diff byte-for-byte.
func EncodeWireEvents(out io.Writer, evs []*WireEvent) error {
	if evs == nil {
		evs = []*WireEvent{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(evs)
}

// EncodeWireEvent writes one event in the same canonical rendering.
func (e *WireEvent) Encode(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Envelope renders the single-line {"error":{...}} form with a trailing
// newline — the exact bytes every v1 error response carries, whether
// standalone or embedded in a batch result slot (minus the newline there).
func (e *WireError) Envelope() []byte {
	b, err := json.Marshal(struct {
		Error *WireError `json:"error"`
	}{e})
	if err != nil {
		// Marshal of this shape cannot fail; keep a valid envelope anyway.
		b = []byte(`{"error":{"code":"internal","message":"error encoding failed"}}`)
	}
	return append(b, '\n')
}
