package core

// linkInterner assigns every Link of a diagnosis run a small dense int ID,
// so sets of links become packed bitsets and per-link state becomes flat
// slices. IDs are assigned on first sight during set building (in sorted
// pair order) and candidate construction (in sorted parent order), so the
// table is deterministic for a given input; no output ever depends on the
// numeric ID values themselves — every user-visible iteration goes through
// an order sorted by Link.
type linkInterner struct {
	ids   map[Link]int32
	links []Link
}

func newLinkInterner() *linkInterner {
	return &linkInterner{ids: map[Link]int32{}}
}

// id returns l's dense ID, assigning the next one on first sight.
func (in *linkInterner) id(l Link) int32 {
	if id, ok := in.ids[l]; ok {
		return id
	}
	id := int32(len(in.links))
	in.ids[l] = id
	in.links = append(in.links, l)
	return id
}

// lookup returns l's ID without assigning one. A miss means the link was
// never seen on any path, working constraint, or candidate — set-membership
// tests against it are vacuously false.
func (in *linkInterner) lookup(l Link) (int32, bool) {
	id, ok := in.ids[l]
	return id, ok
}

// size is the number of interned links (the link-ID universe).
func (in *linkInterner) size() int { return len(in.links) }
