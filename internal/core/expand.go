package core

import (
	"fmt"
	"strings"

	"netdiag/internal/topology"
)

// This file implements the logical-link expansion of §3.1. Each interdomain
// link (u,v) on a path is replaced by two logical links u->v(W) and
// v(W)->v, where W is the next AS the path visits after v's AS — or v's
// own AS when the path terminates there (traffic delivered into v's AS is
// its own per-neighbor class). A BGP export misconfiguration at v towards
// u for routes through W then appears as the failure of exactly these
// logical links, while the physical link (u,v) keeps carrying paths
// towards other neighbor ASes.
//
// The logical node is keyed internally by (u, v, W): the same border router
// v reached from different upstream routers yields distinct logical nodes,
// so every logical link maps back to exactly one physical link. The paper's
// Figure 3 writes the node as "y1(B)"; Display renders that form.

// expander rewrites paths with logical links and records how each logical
// link maps back to its physical interdomain link. In per-prefix mode
// (the finest granularity §3.1 discusses and rejects for scalability, kept
// here for the ablation study) the logical tag is the destination prefix
// of the path instead of the next AS.
type expander struct {
	perPrefix bool
	phys      map[Link]Link // logical-space link -> physical link
	// children lists the logical links derived from each physical
	// interdomain link. A physical failure of the link fails all of them;
	// a misconfiguration fails a subset. Each logical child belongs to
	// exactly one parent (its name embeds the physical endpoints), so one
	// flat seen-set dedups the lists — no per-parent set needed.
	children  map[Link][]Link
	childSeen linkSet
}

func newExpander(perPrefix bool) *expander {
	return &expander{
		perPrefix: perPrefix,
		phys:      map[Link]Link{},
		children:  map[Link][]Link{},
		childSeen: linkSet{},
	}
}

func (e *expander) addChild(parent, child Link) {
	if !e.childSeen.has(child) {
		e.childSeen.add(child)
		e.children[parent] = append(e.children[parent], child)
	}
}

// logicalNodeName builds the unique internal name of a logical node.
func logicalNodeName(u, v Node, tag string) Node {
	return Node(fmt.Sprintf("%s(%s)@%s", v, tag, u))
}

// Display renders a node for humans, collapsing the internal logical-node
// key to the paper's "v(W)" form.
func Display(n Node) string {
	s := string(n)
	if i := strings.Index(s, ")@"); i >= 0 {
		return s[:i+1]
	}
	return s
}

// IsLogical reports whether n is a logical node from the expansion.
func IsLogical(n Node) bool { return strings.Contains(string(n), ")@") }

// physical maps a diagnosis-space link back to its physical link. For
// ordinary links this is the identity.
func (e *expander) physical(l Link) Link {
	if p, ok := e.phys[l]; ok {
		return p
	}
	return l
}

// expandPath returns a rewritten copy of p with logical links inserted.
// Links with unidentified endpoints (or whose next-AS determination is
// hidden by unidentified hops) are kept physical.
func (e *expander) expandPath(p *TracePath) *TracePath {
	hops := p.Hops
	out := &TracePath{SrcSensor: p.SrcSensor, DstSensor: p.DstSensor, OK: p.OK}
	if len(hops) == 0 {
		return out
	}
	out.Hops = append(out.Hops, hops[0])
	for i := 0; i+1 < len(hops); i++ {
		u, v := hops[i], hops[i+1]
		if !u.Unidentified && !v.Unidentified && u.AS != v.AS {
			tag, ok := "", false
			if e.perPrefix {
				tag, ok = fmt.Sprintf("p%d", p.DstSensor), true
			} else if w, wok := nextASAfter(hops, i+1); wok {
				tag, ok = itoaASN(w), true
			}
			if ok {
				ln := Hop{Node: logicalNodeName(u.Node, v.Node, tag), AS: v.AS}
				out.Hops = append(out.Hops, ln, v)
				physLink := Link{From: u.Node, To: v.Node}
				up := Link{From: u.Node, To: ln.Node}
				down := Link{From: ln.Node, To: v.Node}
				e.phys[up] = physLink
				e.phys[down] = physLink
				e.addChild(physLink, up)
				e.addChild(physLink, down)
				continue
			}
		}
		out.Hops = append(out.Hops, v)
	}
	return out
}

// nextASAfter scans past the AS segment starting at hops[idx] and returns
// the next identified AS the path enters — or the segment's own AS when
// the path terminates inside it (terminating traffic forms its own
// per-neighbor class). ok is false only when an unidentified hop hides the
// answer.
func nextASAfter(hops []Hop, idx int) (topology.ASN, bool) {
	cur := hops[idx].AS
	for j := idx + 1; j < len(hops); j++ {
		if hops[j].Unidentified {
			return 0, false
		}
		if hops[j].AS != cur {
			return hops[j].AS, true
		}
	}
	return cur, true
}

// ExpandedSize reports the size of the diagnosis graph after logical-link
// expansion: distinct nodes and distinct directed links over all paths.
// With perPrefix true it uses per-prefix granularity. This quantifies the
// §3.1 scalability trade-off between the two tag granularities.
func ExpandedSize(m *Measurements, perPrefix bool) (nodes, links int) {
	e := newExpander(perPrefix)
	work := e.expandAll(m)
	nodeSet := map[Node]struct{}{}
	edgeSet := linkSet{}
	count := func(paths []*TracePath) {
		for _, p := range paths {
			for _, h := range p.Hops {
				nodeSet[h.Node] = struct{}{}
			}
			for _, l := range p.Links() {
				edgeSet.add(l)
			}
		}
	}
	count(work.Before)
	count(work.After)
	return len(nodeSet), len(edgeSet)
}

// expandAll rewrites every path of the measurements, sharing one logical
// namespace so identical (u,v,W) combinations across paths coincide.
func (e *expander) expandAll(m *Measurements) *Measurements {
	out := &Measurements{NumSensors: m.NumSensors}
	for _, p := range m.Before {
		out.Before = append(out.Before, e.expandPath(p))
	}
	for _, p := range m.After {
		out.After = append(out.After, e.expandPath(p))
	}
	return out
}
