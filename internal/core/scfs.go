package core

import (
	"fmt"
	"sort"
)

// SCFS implements Duffield's "Smallest Common Failure Set" algorithm, the
// single-source Boolean tomography baseline the paper starts from (§2.1).
// It takes the tree of paths from one source sensor to multiple
// destinations with their good/bad status (TracePath.OK) and returns the
// links nearest the source consistent with the bad paths: the link above
// every maximal subtree whose destinations are all bad.
//
// It returns an error if the paths do not share a source or do not form a
// tree (two paths disagreeing on the route to a shared node).
func SCFS(paths []*TracePath) ([]Link, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	src := paths[0].SrcSensor
	root := paths[0].Hops[0].Node
	parent := map[Node]Node{}
	// total/bad destination counts per subtree root
	total := map[Node]int{}
	bad := map[Node]int{}

	for _, p := range paths {
		if p.SrcSensor != src {
			return nil, fmt.Errorf("core: SCFS requires a single source, got sensors %d and %d", src, p.SrcSensor)
		}
		if p.Hops[0].Node != root {
			return nil, fmt.Errorf("core: SCFS paths start at different nodes %q and %q", root, p.Hops[0].Node)
		}
		for i := 1; i < len(p.Hops); i++ {
			child, par := p.Hops[i].Node, p.Hops[i-1].Node
			if prev, ok := parent[child]; ok && prev != par {
				return nil, fmt.Errorf("core: paths do not form a tree at node %q", child)
			}
			parent[child] = par
		}
		for _, h := range p.Hops {
			total[h.Node]++
			if !p.OK {
				bad[h.Node]++
			}
		}
	}

	// A node is failed-consistent when every destination below it is bad.
	consistent := func(n Node) bool { return total[n] > 0 && bad[n] == total[n] }

	set := linkSet{}
	for child, par := range parent {
		if consistent(child) && !consistent(par) {
			set.add(Link{From: par, To: child})
		}
	}
	// If even the root is consistent (every destination bad), blame the
	// links directly below the source: nothing closer can be exonerated.
	if consistent(root) {
		children := map[Node]bool{}
		for child, par := range parent {
			if par == root {
				children[child] = true
			}
		}
		var cs []Node
		for c := range children {
			cs = append(cs, c)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		for _, c := range cs {
			set.add(Link{From: root, To: c})
		}
	}
	return set.sorted(), nil
}
