package core

import (
	"testing"

	"netdiag/internal/topology"
)

// TestLGFirstAvailableOnPath verifies query-ordering: the source AS's LG
// is unavailable, so the mapper falls back to the next identified AS on
// the path whose LG can align the run — the paper's "first available
// Looking Glass on the path" rule.
func TestLGFirstAvailableOnPath(t *testing.T) {
	m := &Measurements{
		NumSensors: 2,
		Before: []*TracePath{
			tp(0, 1, true, "s0@10", "x@10", "m@15", "*u1", "z@30", "s1@30"),
		},
		After: []*TracePath{
			tp(0, 1, false, "s0@10", "x@10"),
		},
	}
	lg := &tableLG{
		avail: map[topology.ASN]bool{15: true}, // only the mid-path AS
		paths: map[topology.ASN]map[int][]topology.ASN{
			15: {1: {15, 20, 30}},
		},
	}
	res, err := NDLG(m, &RoutingInfo{ASX: 99}, lg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.ASes() {
		if a == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("mid-path LG should map the UH run to AS 20; ASes = %v", res.ASes())
	}
}

// TestLGNoAlignmentLeavesUntagged verifies graceful degradation: when no
// available LG can align a UH run, the links stay untagged and never
// cluster, but the failure is still explained.
func TestLGNoAlignmentLeavesUntagged(t *testing.T) {
	m := &Measurements{
		NumSensors: 2,
		Before: []*TracePath{
			tp(0, 1, true, "s0@10", "x@10", "*u1", "z@30", "s1@30"),
		},
		After: []*TracePath{
			tp(0, 1, false, "s0@10", "x@10"),
		},
	}
	lg := &tableLG{
		avail: map[topology.ASN]bool{10: true},
		paths: map[topology.ASN]map[int][]topology.ASN{
			// The LG's view disagrees entirely (no AS 30 in it): the run
			// cannot be aligned.
			10: {1: {10, 77}},
		},
	}
	res, err := NDLG(m, &RoutingInfo{ASX: 10}, lg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnexplainedFailures != 0 {
		t.Fatal("failure must still be explained by the untagged candidates")
	}
}

// TestLGAdjacentInLGPath verifies the whole-AS-blocking consistency check:
// an LG path showing the bounding ASes adjacent cannot explain hidden hops
// between them, so that LG is skipped.
func TestLGAdjacentInLGPath(t *testing.T) {
	m := &Measurements{
		NumSensors: 2,
		Before: []*TracePath{
			tp(0, 1, true, "s0@10", "x@10", "*u1", "z@30", "s1@30"),
		},
		After: []*TracePath{
			tp(0, 1, false, "s0@10", "x@10"),
		},
	}
	lg := &tableLG{
		avail: map[topology.ASN]bool{10: true, 30: true},
		paths: map[topology.ASN]map[int][]topology.ASN{
			10: {1: {10, 30}}, // adjacent: inconsistent with the UHs
			30: {1: {30}},     // origin view: useless for alignment
		},
	}
	res, err := NDLG(m, &RoutingInfo{ASX: 10}, lg)
	if err != nil {
		t.Fatal(err)
	}
	// No tag is derivable; the diagnosis still runs.
	for _, h := range res.Hypothesis {
		for _, a := range h.ASes {
			if a != 10 && a != 30 {
				t.Fatalf("unexpected tag %d from inconsistent LG", a)
			}
		}
	}
}

// TestScoreWeightPreferenceOrdersPicks verifies a > b makes failure
// evidence dominate reroute evidence in the greedy ordering.
func TestScoreWeightPreferenceOrdersPicks(t *testing.T) {
	// One failed path {A->q} and two rerouted paths abandoning {A->m}.
	m := &Measurements{
		NumSensors: 4,
		Before: []*TracePath{
			tp(0, 1, true, "A", "m", "B"),
			tp(0, 3, true, "A", "m", "D"),
			tp(0, 2, true, "A", "q", "C"),
		},
		After: []*TracePath{
			tp(0, 1, true, "A", "n", "B"),
			tp(0, 3, true, "A", "n", "D"),
			tp(0, 2, false, "A"),
		},
	}
	// With a=10, b=1: the failed path's links (score 10) beat A->m
	// (score 2) in the first iteration.
	res, err := Run(m, Options{UseReroutes: true, FailureWeight: 10, RerouteWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("weighted run should need two iterations, got %d", res.Iterations)
	}
	got := hypLinks(res)
	if !got[link("A", "q")] && !got[link("q", "C")] {
		t.Fatalf("failure evidence missing from H: %v", res.Hypothesis)
	}
	if !got[link("A", "m")] {
		t.Fatalf("reroute evidence should still be explained eventually: %v", res.Hypothesis)
	}
}

// TestEndpointKeyBehavior pins the clustering key rules: identified
// endpoints compare by node, UHs by tag, and missing tags invalidate.
func TestEndpointKeyBehavior(t *testing.T) {
	tags := map[Node]asTag{"*u1": {20}, "*u2": {20}, "*u3": {21}}
	k1 := makeEndpointKey("*u1", true, tags)
	k2 := makeEndpointKey("*u2", true, tags)
	k3 := makeEndpointKey("*u3", true, tags)
	if !k1.ok || k1 != k2 {
		t.Fatal("same-tag UHs must share a key")
	}
	if k1 == k3 {
		t.Fatal("different tags must differ")
	}
	if k := makeEndpointKey("*u9", true, tags); k.ok {
		t.Fatal("untagged UH must be invalid")
	}
	ka := makeEndpointKey("r1", false, tags)
	kb := makeEndpointKey("r2", false, tags)
	if !ka.ok || ka == kb {
		t.Fatal("identified endpoints compare by node")
	}
	if ka == k1 {
		t.Fatal("identified vs UH keys must differ")
	}
}

// TestASTagEqual covers the tag set comparison helper.
func TestASTagEqual(t *testing.T) {
	if !(asTag{1, 2}).equal(asTag{1, 2}) {
		t.Fatal("equal tags")
	}
	if (asTag{1}).equal(asTag{1, 2}) || (asTag{1, 2}).equal(asTag{1, 3}) {
		t.Fatal("unequal tags compared equal")
	}
}
